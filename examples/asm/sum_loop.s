; Sum the integers 1..10 and store the result at word 2048.
;
; A minimal hand-written program for the textual assembly format
; (see `repro asm` to run it and `repro check` to statically check it):
;
;     repro asm examples/asm/sum_loop.s
;     repro check examples/asm/sum_loop.s
;
; The program is clean under every reset model: all reads are dominated
; by definitions, the loop branch targets exist, and no instruction pair
; sits closer than the producer's latency.

.entry start

start:
    li r5, 0                ; sum
    li r6, 1                ; i

loop:
    add r5, r5, r6          ; sum += i
    add r6, r6, 1           ; i += 1
    blt r6, 11 -> loop [taken]

    li r9, 2048
    store r5, 0(r9)
    halt
