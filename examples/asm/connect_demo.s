; Register Connection in hand-written assembly.
;
; Run the static checker with the RC extension enabled:
;
;     repro check examples/asm/connect_demo.s --rc --model 3
;     repro check examples/asm/connect_demo.s --rc --models 1,2,3,4,5
;
; connect_def redirects *writes* of a core index to an extended register;
; connect_use redirects *reads*.  Under the write-reset models (2-4) the
; write mapping snaps back to the core register after one write, so the
; read side is re-connected explicitly before the value is consumed --
; that keeps this program clean under every reset model at once.

.entry start

start:
    li r5, 7
    connect_def ri6, rp20   ; writes of r6 now land in extended r20
    add r6, r5, 3           ; 10 -> physical r20 (write map may reset here)
    ; Under model 3 the write above already updated the read map, so this
    ; explicit connect_use is redundant *there* -- but it is load-bearing
    ; under every other model, so the portable form keeps it and
    ; suppresses the model-3 redundancy lint on this line.
    connect_use ri6, rp20   ; check: ignore=RC005
    add r7, r6, 5           ; reads r20 through the mapping table

    li r9, 2048
    store r7, 0(r9)
    load r10, 0(r9)
    ; The load's value is consumed on the very next cycle; at load
    ; latency 2 the machine interlocks here, which is intentional in
    ; this demo, so the hazard lint is suppressed for this line.
    add r11, r10, 1         ; check: ignore=LAT001
    halt
