#!/usr/bin/env python3
"""Upward compatibility walkthrough (paper section 4).

Demonstrates, on the cycle-level simulator:

1. a legacy binary (no connect instructions) running unmodified on an
   RC-extended processor;
2. why ``jsr``/``rts`` must reset the register map (the callee-save bug of
   section 4.1), shown by emulating the broken behaviour at the mapping
   table level;
3. traps bypassing the register map through the PSW map-enable flag
   (section 4.3);
4. the two context-switch formats selected by the PSW rc-mode flag
   (section 4.2).

Run:  python examples/upward_compatibility.py
"""

from repro.isa import Imm, Instr, Opcode, PhysReg, RClass, connect_use, rc_spec
from repro.rc import MappingTable, PSW, RCModel
from repro.sim import MachineConfig, Simulator, assemble, simulate


def r(n: int) -> PhysReg:
    return PhysReg(RClass.INT, n)


RC_MACHINE = MachineConfig(
    issue_width=2,
    int_spec=rc_spec(RClass.INT, 16),   # 16 core + 240 extended
)


def legacy_binary_runs_unmodified() -> None:
    print("1. Legacy binary on RC hardware")
    legacy = assemble([
        Instr(Opcode.LI, dest=r(5), imm=20),
        Instr(Opcode.LI, dest=r(6), imm=22),
        Instr(Opcode.ADD, dest=r(7), srcs=(r(5), r(6))),
        Instr(Opcode.STORE, srcs=(r(7), Imm(0)), imm=100),
        Instr(Opcode.HALT),
    ])
    result = simulate(legacy, RC_MACHINE)
    print(f"   result {result.load_word(100)} (expected 42): the map stays "
          "at its home locations, so core-register semantics are unchanged")
    print()


def jsr_reset_prevents_callee_save_bug() -> None:
    print("2. The jsr/rts map reset (section 4.1)")
    # A caller connects index 5 to extended register 30 (e.g. to save it),
    # then calls a subroutine that treats r5 as callee-save.
    prog = assemble([
        Instr(Opcode.LI, dest=r(5), imm=111),        # caller's r5
        connect_use(RClass.INT, 5, 30),              # reads of idx5 -> rp30
        Instr(Opcode.CALL, label="sub"),
        Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=200),
        Instr(Opcode.HALT),
        # sub: "callee-saves" r5, clobbers it, restores, returns
        Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=300),   # save
        Instr(Opcode.LI, dest=r(5), imm=999),                # clobber
        Instr(Opcode.LOAD, dest=r(5), srcs=(Imm(0),), imm=300),  # restore
        Instr(Opcode.RET),
    ], labels={"sub": 5})
    result = simulate(prog, RC_MACHINE)
    print(f"   callee saved the value {result.load_word(300)} "
          "(the CORRECT core r5, thanks to the jsr reset)")
    print(f"   caller sees r5 = {result.load_word(200)} after return")

    # Without the hardware reset the callee would have saved the contents
    # of extended register 30 instead -- reproduce at the table level:
    table = MappingTable(16, 256, RCModel.WRITE_RESET_READ_UPDATE)
    table.connect_use(5, 30)
    print(f"   without the reset, reads of idx 5 would go to physical "
          f"r{table.read_target(5)} - the wrong register (section 4.1's bug)")
    print()


def traps_bypass_the_map() -> None:
    print("3. Traps bypass the map via PSW.map_enable (section 4.3)")
    prog = assemble([
        Instr(Opcode.LI, dest=r(5), imm=7),
        connect_use(RClass.INT, 5, 31),      # reads of idx5 -> rp31 (== 0)
        Instr(Opcode.TRAP, imm=1),
        Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=400),  # mapped read
        Instr(Opcode.HALT),
        # handler: reads r5 directly (map disabled), then returns
        Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=401),
        Instr(Opcode.RTE),
    ], trap_handlers={1: 5})
    result = simulate(prog, RC_MACHINE)
    print(f"   handler saw core r5 = {result.load_word(401)} "
          "(map bypassed, no connect bookkeeping needed)")
    print(f"   after rte the map is live again: mapped read = "
          f"{result.load_word(400)} (extended r31 = 0)")
    print()


def context_switch_formats() -> None:
    print("4. Context switch formats (section 4.2)")
    prog = assemble([connect_use(RClass.INT, 5, 40), Instr(Opcode.HALT)])
    sim = Simulator(prog, RC_MACHINE)
    state = sim.run().state

    rc_ctx = state.save_process_context()
    state.psw.rc_mode = False
    legacy_ctx = state.save_process_context()
    print(f"   RC-process frame:     {rc_ctx.word_count()} words "
          "(core + extended + connection info)")
    print(f"   legacy-process frame: {legacy_ctx.word_count()} words "
          "(core registers only)")
    print("   the PSW rc-mode bit selects the format, so legacy processes "
          "pay no context-switch cost for the extension")


if __name__ == "__main__":
    legacy_binary_runs_unmodified()
    jsr_reset_prevents_callee_save_bug()
    traps_bypass_the_map()
    context_switch_formats()
