#!/usr/bin/env python3
"""The four automatic register connection models (paper section 2.3, Fig 3).

First shows the mapping-table state transitions of each model after a write
through a connected index, then compares end-to-end performance of a
benchmark compiled and simulated under each model.

Run:  python examples/rc_models.py [benchmark]
"""

import sys

from repro.experiments import ExperimentRunner
from repro.experiments.figures import _config
from repro.rc import MappingTable, RCModel


def show_transitions() -> None:
    print("Figure 3: table state after a write through index 1")
    print("(read map was connected to rp8, write map to rp9)\n")
    print(f"{'model':>28} {'read map':>9} {'write map':>10}")
    for model in RCModel:
        table = MappingTable(4, 16, model)
        table.connect_use(1, 8)
        table.connect_def(1, 9)
        table.after_write(1)
        print(f"{model.name:>28} {'rp' + str(table.read_target(1)):>9} "
              f"{'rp' + str(table.write_target(1)):>10}")
    print()
    print("Model 3 (WRITE_RESET_READ_UPDATE) is the paper's choice: the "
          "written value\nstays readable through its index while the write "
          "map returns home,\nprotecting the extended register from "
          "accidental overwrites.\n")


def compare_performance(name: str) -> None:
    runner = ExperimentRunner()
    print(f"end-to-end speedup of {name!r} under each model "
          "(4-issue, 16/32 core registers + RC):\n")
    for model in RCModel:
        cfg = _config(name, rc=True, int_core=16, fp_core=32, model=model)
        rec = runner.run(name, cfg)
        speedup = runner.baseline_cycles(name) / rec.cycles
        print(f"  model {model.value} ({model.name:<24}): "
              f"speedup {speedup:.2f}, {rec.connect_static} static connects")


if __name__ == "__main__":
    show_transitions()
    compare_performance(sys.argv[1] if len(sys.argv) > 1 else "eqntott")
