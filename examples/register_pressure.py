#!/usr/bin/env python3
"""Register-pressure study: sweep the core register file size on one
benchmark and watch spill code, connect code, and performance respond —
a miniature, single-benchmark version of the paper's Figure 8 / Figure 9.

Run:  python examples/register_pressure.py [benchmark] [issue-width]
      e.g. python examples/register_pressure.py eqntott 8
"""

import sys

from repro.experiments import ExperimentRunner
from repro.experiments.figures import SIZE_PAIRS, _config
from repro.sim import unlimited_machine
from repro.workloads import ALL_BENCHMARKS, workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "eqntott"
    issue = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    if name not in ALL_BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; one of "
                         f"{', '.join(ALL_BENCHMARKS)}")
    kind = workload(name).kind
    runner = ExperimentRunner()

    unl = runner.speedup(name, unlimited_machine(issue_width=issue))
    print(f"benchmark {name} ({kind}), {issue}-issue, 2-cycle loads")
    print(f"unlimited-register speedup: {unl:.2f}\n")
    header = (f"{'core regs':>10} {'model':>6} {'speedup':>8} {'%unl':>6} "
              f"{'spilled':>8} {'extended':>9} {'spill+':>7} {'connect+':>9} "
              f"{'save+':>6}")
    print(header)
    print("-" * len(header))
    for int_core, fp_core in SIZE_PAIRS:
        shown = int_core if kind == "int" else fp_core
        for rc in (False, True):
            cfg = _config(name, rc=rc, int_core=int_core, fp_core=fp_core,
                          issue=issue)
            rec = runner.run(name, cfg)
            speedup = runner.baseline_cycles(name) / rec.cycles
            print(f"{shown:>10} {'RC' if rc else 'no':>6} {speedup:>8.2f} "
                  f"{100 * speedup / unl:>5.0f}% {rec.spilled_vregs:>8} "
                  f"{rec.extended_vregs:>9} {rec.spill_static:>7} "
                  f"{rec.connect_static:>9} {rec.callsave_static:>6}")
    print("\nColumns: spill+/connect+/save+ are static instruction counts "
          "added by spilling, register connection, and extended-register "
          "save/restore at calls.")


if __name__ == "__main__":
    main()
