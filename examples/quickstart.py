#!/usr/bin/env python3
"""Quickstart: build a program, compile it with and without Register
Connection, and watch the connect instructions recover the performance a
small register file loses to spill code.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_module
from repro.ir import FnBuilder, Module, run_module
from repro.isa import RClass
from repro.isa.asmfmt import format_listing
from repro.sim import paper_machine, simulate, unlimited_machine


def build_program() -> Module:
    """A register-hungry kernel: 20 running sums updated in a loop."""
    module = Module("quickstart")
    module.add_global("out", 1)
    module.add_global("data", 64, [(7 * i) % 31 for i in range(64)])

    b = FnBuilder(module, "main")
    base = b.la("data")
    sums = [b.li(0, name=f"sum{k}") for k in range(20)]
    i = b.li(0, name="i")
    b.block("loop")
    for k, acc in enumerate(sums):
        b.add(acc, b.load(base, k, name=f"x{k}"), dest=acc)
    b.add(i, 1, dest=i)
    b.br("blt", i, 100, "loop")
    b.block("exit")
    total = b.li(0, name="total")
    for acc in sums:
        b.add(total, acc, dest=total)
    b.store(total, b.la("out"), 0)
    b.halt()
    b.done()
    return module


def main() -> None:
    module = build_program()

    # 1. The golden result comes from the IR interpreter.
    golden = run_module(module).load_word(module.global_addr("out"))
    print(f"golden result (interpreter): {golden}")

    # 2. Three 4-issue machines: unlimited registers, a 16-register core
    #    file, and the same core file with 240 extended registers behind
    #    the register connection mechanism.
    machines = [
        ("unlimited registers", unlimited_machine(issue_width=4)),
        ("16 core registers (spill code)",
         paper_machine(issue_width=4, int_core=16)),
        ("16 core + 240 extended (RC)",
         paper_machine(issue_width=4, int_core=16, rc_class=RClass.INT)),
    ]
    baseline_cycles = None
    for label, config in machines:
        out = compile_module(module, config)
        result = simulate(out.program, config)
        value = result.load_word(module.global_addr("out"))
        assert value == golden, "compiled code must match the interpreter"
        if baseline_cycles is None:
            baseline_cycles = result.cycles
        print(f"\n{label}")
        print(f"  cycles           : {result.cycles}"
              f"  (x{baseline_cycles / result.cycles:.2f} vs unlimited)")
        print(f"  IPC              : {result.stats.ipc:.2f}")
        print(f"  static instrs    : {out.stats.total_instructions}"
              f"  (+{100 * out.stats.code_size_increase:.0f}% from "
              "spill/connect code)")
        print(f"  spilled values   : {out.stats.spilled_vregs}")
        print(f"  extended values  : {out.stats.extended_vregs}")
        print(f"  connects (static): {out.stats.connect_instructions}")

    # 3. Show a few connect instructions from the RC compilation.
    out = compile_module(module, machines[2][1])
    connects = [ins for ins in out.program.instrs if ins.is_connect]
    print(f"\nfirst connect instructions of the RC binary "
          f"({len(connects)} total):")
    print(format_listing(connects[:6]))


if __name__ == "__main__":
    main()
