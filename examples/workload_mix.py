#!/usr/bin/env python3
"""Characterize the twelve benchmark kernels: dynamic instruction mix,
branch density/bias, memory intensity, FP share, call counts.

Run:  python examples/workload_mix.py
"""

from repro.workloads import ALL_BENCHMARKS
from repro.workloads.analysis import profile_workload


def main() -> None:
    for name in ALL_BENCHMARKS:
        print(profile_workload(name).render())
        print()


if __name__ == "__main__":
    main()
