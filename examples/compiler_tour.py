#!/usr/bin/env python3
"""A guided tour of the compiler pipeline, stage by stage.

Builds a tiny register-hungry function and shows the code after each phase:
ILP optimization, prepass scheduling, call lowering, register allocation
with spills, connect insertion, and final lowered machine code — the
pipeline DESIGN.md describes, driven through the public APIs.

Run:  python examples/compiler_tour.py
"""

import copy

from repro.compiler import (
    CompileOptions,
    OptOptions,
    allocate_function,
    apply_allocation,
    compile_module,
    insert_connects,
    insert_prologue_epilogue,
    lower_calls,
    optimize_module,
    schedule_function,
)
from repro.compiler.alias import annotate_module
from repro.ir import FnBuilder, Module, run_module
from repro.isa import RClass
from repro.isa.asmfmt import format_instr, format_listing
from repro.sim import paper_machine, simulate


def build_module() -> Module:
    m = Module("tour")
    m.add_global("out", 1)
    m.add_global("data", 32, [(3 * i + 1) % 17 for i in range(32)])
    b = FnBuilder(m, "main")
    base = b.la("data")
    acc = b.li(0, name="acc")
    i = b.li(0, name="i")
    b.block("loop")
    x = b.load(b.add(base, i), 0, name="x")
    y = b.load(b.add(base, i), 1, name="y")
    b.add(acc, b.mul(x, y), dest=acc)
    b.add(i, 2, dest=i)
    b.br("blt", i, 32, "loop")
    b.block("exit")
    b.store(acc, b.la("out"), 0)
    b.halt()
    b.done()
    return m


def show(title: str, fn, block_name: str, limit: int = 14) -> None:
    print(f"--- {title} ---")
    if fn.has_block(block_name):
        instrs = fn.block(block_name).instrs
    else:
        instrs = fn.entry.instrs
    for instr in instrs[:limit]:
        print(f"    {format_instr(instr)}")
    if len(instrs) > limit:
        print(f"    ... ({len(instrs) - limit} more)")
    print()


def main() -> None:
    module = build_module()
    golden = run_module(module).load_word(module.global_addr("out"))
    config = paper_machine(issue_width=4, int_core=8,
                           rc_class=RClass.INT)
    print(f"target: {config.describe()}\n")

    work = copy.deepcopy(module)
    fn = work.function("main")
    show("source IR (hot loop)", fn, "loop")

    optimize_module(work, OptOptions(level="ilp", unroll_factor=2))
    fn = work.function("main")
    show("after unrolling + classical opts (loop.u2)", fn, "loop.u2")

    annotate_module(work)
    schedule_function(fn, config, None)
    show("after prepass scheduling (virtual registers)", fn, "loop.u2")

    lower_calls(fn)
    from repro.ir import run_module as _rm
    profile = _rm(work).profile
    result = allocate_function(fn, profile, config.int_spec, config.fp_spec)
    ext = {RClass.INT: config.int_spec.core,
           RClass.FP: config.fp_spec.core}
    apply_allocation(fn, result, ext)
    insert_prologue_epilogue(fn, result.frame, result.callee_saves,
                             result.param_homes, is_entry=True)
    show("after register allocation (extended registers visible)", fn,
         "loop.u2")

    windows = result.windows.get(RClass.INT)
    if windows:
        steal = [c for c in config.int_spec.allocatable_core()
                 if c not in set(windows)]
        insert_connects(fn, RClass.INT, config.int_spec.core, windows,
                        config.rc_model, steal_pool=steal)
        show("after connect insertion (encodable again)", fn, "loop.u2")

    # The real driver does all of the above plus postpass scheduling,
    # layout, and flattening:
    out = compile_module(module, config,
                         CompileOptions(opt=OptOptions(unroll_factor=2)))
    print("--- final machine program (head) ---")
    print(format_listing(out.program.instrs[:14]))
    sim = simulate(out.program, config)
    value = sim.load_word(module.global_addr("out"))
    print(f"\nsimulated result {value} (golden {golden}) in "
          f"{sim.cycles} cycles, IPC {sim.stats.ipc:.2f}")
    assert value == golden


if __name__ == "__main__":
    main()
