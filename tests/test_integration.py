"""Integration: every benchmark, compiled for representative machines, must
reproduce the interpreter's checksum exactly (execution-driven validation,
the analog of the paper's DEC-3100 output verification)."""

import pytest

from repro.compiler import compile_module
from repro.ir import run_module
from repro.isa import RClass
from repro.sim import paper_machine, simulate, unlimited_machine
from repro.workloads import ALL_BENCHMARKS, workload


def _configs_for(kind: str):
    rc_class = RClass.INT if kind == "int" else RClass.FP
    small = 8 if kind == "int" else 16
    return [
        unlimited_machine(issue_width=4),
        paper_machine(issue_width=4, int_core=16, fp_core=32),
        paper_machine(issue_width=4, int_core=16, fp_core=32,
                      rc_class=rc_class),
        paper_machine(issue_width=8,
                      int_core=small if kind == "int" else 64,
                      fp_core=small if kind == "fp" else 64,
                      rc_class=rc_class, load_latency=4),
    ]


_golden_cache: dict[str, int | float] = {}


def golden_checksum(name: str):
    if name not in _golden_cache:
        m = workload(name).module()
        _golden_cache[name] = run_module(m).load_word(
            m.global_addr("checksum"))
    return _golden_cache[name]


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_compiled_checksums_match_golden(name):
    w = workload(name)
    m = w.module()
    want = golden_checksum(name)
    addr = m.global_addr("checksum")
    for cfg in _configs_for(w.kind):
        out = compile_module(m, cfg)
        res = simulate(out.program, cfg)
        got = res.load_word(addr)
        # Compiled output must match the optimized module's interpretation
        # exactly; FP reassociation (an explicit opt) may round differently
        # from the original source, integer results may not change at all.
        assert got == out.interp.load_word(addr), \
            f"{name} sim/interp mismatch on {cfg.describe()}"
        if isinstance(want, float):
            assert got == pytest.approx(want, rel=1e-9)
        else:
            assert got == want, f"{name} mismatch on {cfg.describe()}"


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_ipc_is_physical(name):
    """Sanity: IPC never exceeds issue width, cycles are positive."""
    w = workload(name)
    m = w.module()
    cfg = paper_machine(issue_width=4, int_core=16, fp_core=32)
    out = compile_module(m, cfg)
    res = simulate(out.program, cfg)
    assert 0 < res.stats.ipc <= 4.0
    assert res.stats.branches > 0


def test_rc_recovers_most_of_unlimited_performance():
    """The paper's headline (conclusion): with 16 core integer registers and
    240 extended, a 4-issue machine reaches ~90% of unlimited-register
    performance; without RC it falls well short.  We check the ordering and
    a generous version of the gap on one register-hungry benchmark."""
    name = "eqntott"
    m = workload(name).module()
    unlimited = unlimited_machine(issue_width=4)
    with_rc = paper_machine(issue_width=4, int_core=16, fp_core=64,
                            rc_class=RClass.INT)
    without = paper_machine(issue_width=4, int_core=16, fp_core=64)
    cycles = {}
    for key, cfg in (("unl", unlimited), ("rc", with_rc), ("wo", without)):
        out = compile_module(m, cfg)
        cycles[key] = simulate(out.program, cfg).cycles
    assert cycles["unl"] <= cycles["rc"] <= cycles["wo"]
