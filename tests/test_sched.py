"""Unit tests for dependence-graph construction and list scheduling."""

from repro.compiler import DepGraph, schedule_block_instrs
from repro.isa import (
    Imm,
    Instr,
    LatencyModel,
    Opcode,
    PhysReg,
    RClass,
    VReg,
    connect_def,
    connect_use,
    core_spec,
)
from repro.rc import RCModel
from repro.sim import MachineConfig


def r(n):
    return PhysReg(RClass.INT, n)


def v(n):
    return VReg(RClass.INT, n)


def graph(instrs, connect=0, model=RCModel.WRITE_RESET_READ_UPDATE,
          windows=None):
    return DepGraph(instrs, LatencyModel(load=2, connect=connect), model,
                    windows)


def config(issue=4, **kw):
    defaults = dict(issue_width=issue, mem_channels=2,
                    int_spec=core_spec(RClass.INT, 16),
                    fp_spec=core_spec(RClass.FP, 16))
    defaults.update(kw)
    return MachineConfig(**defaults)


def edge(g, a, b):
    return g.nodes[a].succs.get(b)


class TestDepGraphRegisters:
    def test_raw_edge_carries_latency(self):
        g = graph([
            Instr(Opcode.MUL, dest=r(5), srcs=(r(6), r(6))),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(5), Imm(1))),
        ])
        assert edge(g, 0, 1) == 3  # mul latency

    def test_war_edge_orders_without_latency(self):
        g = graph([
            Instr(Opcode.ADD, dest=r(7), srcs=(r(5), Imm(1))),  # reads r5
            Instr(Opcode.LI, dest=r(5), imm=0),                 # writes r5
        ])
        assert edge(g, 0, 1) == 0

    def test_independent_instrs_have_no_edge(self):
        g = graph([
            Instr(Opcode.LI, dest=r(5), imm=1),
            Instr(Opcode.LI, dest=r(6), imm=2),
        ])
        assert edge(g, 0, 1) is None

    def test_virtual_registers_supported(self):
        g = graph([
            Instr(Opcode.LI, dest=v(0), imm=1),
            Instr(Opcode.ADD, dest=v(1), srcs=(v(0), Imm(2))),
        ])
        assert edge(g, 0, 1) == 1

    def test_waw_edge(self):
        g = graph([
            Instr(Opcode.DIV, dest=r(5), srcs=(r(6), r(7))),
            Instr(Opcode.LI, dest=r(5), imm=0),
        ])
        assert edge(g, 0, 1) == 10


class TestDepGraphMemory:
    def _load(self, dest, base, off, alias=None):
        i = Instr(Opcode.LOAD, dest=r(dest), srcs=(r(base),), imm=off)
        i.alias = alias
        return i

    def _store(self, val, base, off, alias=None):
        i = Instr(Opcode.STORE, srcs=(r(val), r(base)), imm=off)
        i.alias = alias
        return i

    def test_loads_reorder_freely(self):
        g = graph([self._load(5, 10, 0), self._load(6, 11, 4)])
        assert edge(g, 0, 1) is None

    def test_store_load_same_unknown_base_conflict(self):
        g = graph([self._store(5, 10, 0), self._load(6, 11, 0)])
        assert edge(g, 0, 1) == 1

    def test_same_base_different_offset_disambiguated(self):
        g = graph([self._store(5, 10, 0), self._load(6, 10, 4)])
        assert edge(g, 0, 1) is None

    def test_same_base_same_offset_conflicts(self):
        g = graph([self._store(5, 10, 0), self._load(6, 10, 0)])
        assert edge(g, 0, 1) == 1

    def test_base_redefinition_invalidates_disambiguation(self):
        g = graph([
            self._store(5, 10, 0),
            Instr(Opcode.LI, dest=r(10), imm=99),
            self._load(6, 10, 4),  # different offset but new base value
        ])
        assert edge(g, 0, 2) == 1

    def test_alias_tags_disambiguate_across_bases(self):
        g = graph([
            self._store(5, 10, 0, alias=("global", "A")),
            self._load(6, 11, 0, alias=("global", "B")),
        ])
        assert edge(g, 0, 1) is None

    def test_same_alias_tag_conflicts(self):
        g = graph([
            self._store(5, 10, 0, alias=("global", "A")),
            self._load(6, 11, 0, alias=("global", "A")),
        ])
        assert edge(g, 0, 1) == 1

    def test_sp_base_is_stack_region(self):
        g = graph([
            self._store(5, 0, 3),                       # SP-relative
            self._load(6, 11, 0, alias=("global", "A")),
        ])
        assert edge(g, 0, 1) is None


class TestDepGraphConnects:
    WINDOWS = {RClass.INT: [14, 15]}

    def test_connect_feeds_consumer(self):
        g = graph([
            connect_use(RClass.INT, 14, 30),
            Instr(Opcode.ADD, dest=r(5), srcs=(r(14), Imm(1))),
        ], windows=self.WINDOWS)
        assert edge(g, 0, 1) == 0  # zero-cycle connect

    def test_one_cycle_connect_latency_edge(self):
        g = graph([
            connect_use(RClass.INT, 14, 30),
            Instr(Opcode.ADD, dest=r(5), srcs=(r(14), Imm(1))),
        ], connect=1, windows=self.WINDOWS)
        assert edge(g, 0, 1) == 1

    def test_window_accesses_resolve_to_physical_targets(self):
        # Writing rp30 via window 14, then reading rp30 via window 15, must
        # create a RAW edge even though the window indices differ.
        g = graph([
            connect_def(RClass.INT, 14, 30),
            Instr(Opcode.LI, dest=r(14), imm=7),   # writes physical 30
            connect_use(RClass.INT, 15, 30),
            Instr(Opcode.ADD, dest=r(5), srcs=(r(15), Imm(0))),  # reads 30
        ], windows=self.WINDOWS)
        assert edge(g, 1, 3) == 1

    def test_map_entry_waw_orders_connects(self):
        g = graph([
            connect_use(RClass.INT, 14, 30),
            connect_use(RClass.INT, 14, 31),
        ], windows=self.WINDOWS)
        assert edge(g, 0, 1) == 0

    def test_consumer_pinned_before_reconnect(self):
        g = graph([
            connect_use(RClass.INT, 14, 30),
            Instr(Opcode.ADD, dest=r(5), srcs=(r(14), Imm(1))),
            connect_use(RClass.INT, 14, 31),
        ], windows=self.WINDOWS)
        assert edge(g, 1, 2) == 0  # WAR on the map entry


class TestDepGraphBarriers:
    def test_call_is_barrier(self):
        g = graph([
            Instr(Opcode.LI, dest=r(5), imm=1),
            Instr(Opcode.CALL, label="f"),
            Instr(Opcode.LI, dest=r(6), imm=2),
        ])
        assert edge(g, 0, 1) is not None
        assert edge(g, 1, 2) is not None

    def test_terminator_anchored_last(self):
        g = graph([
            Instr(Opcode.LI, dest=r(5), imm=1),
            Instr(Opcode.LI, dest=r(6), imm=2),
            Instr(Opcode.BEQ, srcs=(r(5), r(6)), label="x"),
        ])
        assert edge(g, 0, 2) is not None
        assert edge(g, 1, 2) is not None

    def test_heights_reflect_critical_path(self):
        g = graph([
            Instr(Opcode.MUL, dest=r(5), srcs=(r(6), r(6))),   # 3
            Instr(Opcode.ADD, dest=r(7), srcs=(r(5), Imm(1))),  # +1
            Instr(Opcode.LI, dest=r(8), imm=0),                 # independent
        ])
        heights = g.heights()
        assert heights[0] == 3  # the mul->add RAW edge dominates
        assert heights[1] == 0  # sinks have height zero
        assert heights[2] == 0


class TestListScheduler:
    def test_schedule_is_a_permutation(self):
        instrs = [
            Instr(Opcode.LI, dest=r(5), imm=1),
            Instr(Opcode.MUL, dest=r(6), srcs=(r(5), r(5))),
            Instr(Opcode.LI, dest=r(7), imm=2),
            Instr(Opcode.ADD, dest=r(8), srcs=(r(6), r(7))),
            Instr(Opcode.HALT),
        ]
        out = schedule_block_instrs(instrs, config(), None)
        assert sorted(map(id, out)) == sorted(map(id, instrs))

    def test_dependences_preserved(self):
        instrs = [
            Instr(Opcode.LI, dest=r(5), imm=1),
            Instr(Opcode.ADD, dest=r(6), srcs=(r(5), Imm(1))),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), Imm(1))),
            Instr(Opcode.HALT),
        ]
        out = schedule_block_instrs(instrs, config(), None)
        order = {id(i): k for k, i in enumerate(out)}
        assert order[id(instrs[0])] < order[id(instrs[1])]
        assert order[id(instrs[1])] < order[id(instrs[2])]
        assert out[-1].op is Opcode.HALT

    def test_independent_work_fills_latency_shadow(self):
        # A long divide followed by its consumer: independent LIs should be
        # hoisted between them.
        instrs = [
            Instr(Opcode.DIV, dest=r(5), srcs=(r(6), r(7))),
            Instr(Opcode.ADD, dest=r(8), srcs=(r(5), Imm(1))),
            Instr(Opcode.LI, dest=r(9), imm=1),
            Instr(Opcode.LI, dest=r(10), imm=2),
            Instr(Opcode.HALT),
        ]
        out = schedule_block_instrs(instrs, config(issue=1), None)
        positions = {id(i): k for k, i in enumerate(out)}
        assert positions[id(instrs[2])] < positions[id(instrs[1])]
        assert positions[id(instrs[3])] < positions[id(instrs[1])]

    def test_tiny_blocks_untouched(self):
        instrs = [Instr(Opcode.HALT)]
        assert schedule_block_instrs(instrs, config(), None) == instrs
