"""Unit tests for the ISA layer: registers, opcodes, latencies, instructions."""

import pytest

from repro.errors import ConfigError, SimulationFault
from repro.isa import (
    Imm,
    Instr,
    LatencyModel,
    Opcode,
    PhysReg,
    RClass,
    VReg,
    branch_taken,
    combine_connects,
    connect_def,
    connect_use,
    core_spec,
    evaluate,
    rc_spec,
    spec,
    table1_rows,
    unlimited_spec,
    wrap64,
)
from repro.isa.asmfmt import format_instr, format_listing
from repro.isa.opcodes import NEGATED_BRANCH, SPECS
from repro.isa.registers import (
    INT_SPILL_TEMPS,
    NUM_RESERVED_FP,
    NUM_RESERVED_INT,
    SP,
)


class TestRegisters:
    def test_physreg_repr(self):
        assert repr(PhysReg(RClass.INT, 5)) == "r5"
        assert repr(PhysReg(RClass.FP, 8)) == "f8"

    def test_sp_is_int_zero(self):
        assert SP == PhysReg(RClass.INT, 0)

    def test_spill_temps_distinct_from_sp(self):
        assert SP not in INT_SPILL_TEMPS
        assert len(set(INT_SPILL_TEMPS)) == 4

    def test_core_spec_without_rc(self):
        s = core_spec(RClass.INT, 16)
        assert not s.has_rc
        assert s.extended == 0
        assert s.allocatable_core() == list(range(NUM_RESERVED_INT, 16))

    def test_rc_spec_extended_section(self):
        s = rc_spec(RClass.INT, 16)
        assert s.has_rc
        assert s.extended == 240  # 256 total (paper section 5.2)
        assert s.extended_registers()[0] == 16
        assert s.extended_registers()[-1] == 255

    def test_fp_allocatable_registers_are_even_pairs(self):
        s = core_spec(RClass.FP, 16)
        regs = s.allocatable_core()
        assert all(r % 2 == 0 for r in regs)
        assert regs[0] == NUM_RESERVED_FP

    def test_fp_extended_registers_are_even_pairs(self):
        s = rc_spec(RClass.FP, 32)
        assert all(r % 2 == 0 for r in s.extended_registers())
        assert len(s.extended_registers()) == (256 - 32) // 2

    def test_too_small_core_rejected(self):
        with pytest.raises(ConfigError):
            core_spec(RClass.INT, 4)

    def test_total_smaller_than_core_rejected(self):
        with pytest.raises(ConfigError):
            rc_spec(RClass.INT, 64, 32)

    def test_unlimited_spec(self):
        s = unlimited_spec(RClass.INT)
        assert not s.has_rc
        assert len(s.allocatable_core()) > 1000


class TestOpcodes:
    def test_every_opcode_has_a_spec(self):
        for op in Opcode:
            assert op in SPECS

    def test_branch_specs(self):
        assert spec(Opcode.BEQ).is_cond_branch
        assert spec(Opcode.JMP).is_branch
        assert not spec(Opcode.JMP).is_cond_branch
        assert not spec(Opcode.ADD).is_branch

    def test_mem_specs(self):
        assert spec(Opcode.LOAD).is_mem
        assert spec(Opcode.FSTORE).is_mem
        assert spec(Opcode.FSTORE).srcs == (RClass.FP, RClass.INT)

    def test_connect_category(self):
        for op in (Opcode.CUSE, Opcode.CDEF, Opcode.CUU, Opcode.CDU, Opcode.CDD):
            assert spec(op).is_connect

    def test_negated_branches_are_involutions(self):
        for op, neg in NEGATED_BRANCH.items():
            assert NEGATED_BRANCH[neg] is op

    def test_fcmp_writes_int(self):
        assert spec(Opcode.FCMPLT).dest is RClass.INT
        assert spec(Opcode.FCMPLT).srcs == (RClass.FP, RClass.FP)


class TestLatencies:
    def test_table1_fixed_latencies(self):
        lm = LatencyModel(load=2, connect=0)
        assert lm.of(Opcode.ADD) == 1
        assert lm.of(Opcode.MUL) == 3
        assert lm.of(Opcode.DIV) == 10
        assert lm.of(Opcode.FADD) == 3
        assert lm.of(Opcode.CVTIF) == 3
        assert lm.of(Opcode.FMUL) == 3
        assert lm.of(Opcode.FDIV) == 10
        assert lm.of(Opcode.STORE) == 1
        assert lm.of(Opcode.BEQ) == 1

    def test_load_latency_configurable(self):
        assert LatencyModel(load=2).of(Opcode.LOAD) == 2
        assert LatencyModel(load=4).of(Opcode.FLOAD) == 4

    def test_connect_latency_configurable(self):
        assert LatencyModel(connect=0).of(Opcode.CUSE) == 0
        assert LatencyModel(connect=1).of(Opcode.CDD) == 1

    def test_invalid_latencies_rejected(self):
        with pytest.raises(ConfigError):
            LatencyModel(load=3)
        with pytest.raises(ConfigError):
            LatencyModel(connect=2)

    def test_table1_rows_cover_paper(self):
        rows = dict(table1_rows())
        assert rows["INT divide"] == "10"
        assert rows["branch"] == "1/1-slot"
        assert rows["memory load"] == "2 or 4"


class TestSemantics:
    def test_wrap64(self):
        assert wrap64(2**63) == -(2**63)
        assert wrap64(-(2**63) - 1) == 2**63 - 1
        assert wrap64(42) == 42

    def test_add_wraps(self):
        assert evaluate(Opcode.ADD, 2**63 - 1, 1) == -(2**63)

    def test_div_truncates_toward_zero(self):
        assert evaluate(Opcode.DIV, 7, 2) == 3
        assert evaluate(Opcode.DIV, -7, 2) == -3
        assert evaluate(Opcode.REM, -7, 2) == -1

    def test_div_by_zero_faults(self):
        with pytest.raises(SimulationFault):
            evaluate(Opcode.DIV, 1, 0)
        with pytest.raises(SimulationFault):
            evaluate(Opcode.FDIV, 1.0, 0.0)

    def test_srl_is_logical(self):
        assert evaluate(Opcode.SRL, -1, 60) == 15
        assert evaluate(Opcode.SRA, -8, 1) == -4

    def test_compares(self):
        assert evaluate(Opcode.CMPLT, 1, 2) == 1
        assert evaluate(Opcode.CMPGE, 1, 2) == 0
        assert evaluate(Opcode.FCMPLE, 1.0, 1.0) == 1

    def test_branch_predicates(self):
        assert branch_taken(Opcode.BEQ, 3, 3)
        assert not branch_taken(Opcode.BNE, 3, 3)
        assert branch_taken(Opcode.BEQZ, 0)
        assert branch_taken(Opcode.BGT, 5, 4)

    def test_cvt(self):
        assert evaluate(Opcode.CVTIF, 3) == 3.0
        assert evaluate(Opcode.CVTFI, 3.9) == 3
        assert evaluate(Opcode.CVTFI, -3.9) == -3


class TestInstr:
    def test_regs_iteration(self):
        d = VReg(RClass.INT, 0)
        a = VReg(RClass.INT, 1)
        i = Instr(Opcode.ADD, dest=d, srcs=(a, Imm(3)))
        assert list(i.reg_srcs()) == [a]
        assert list(i.regs()) == [a, d]

    def test_replace_operands(self):
        d = VReg(RClass.INT, 0)
        a = VReg(RClass.INT, 1)
        p = PhysReg(RClass.INT, 7)
        i = Instr(Opcode.MOVE, dest=d, srcs=(a,))
        i.replace_operands({a: p, d: PhysReg(RClass.INT, 8)})
        assert i.srcs == (p,)
        assert i.dest == PhysReg(RClass.INT, 8)

    def test_copy_is_independent(self):
        i = Instr(Opcode.LI, dest=VReg(RClass.INT, 0), imm=5)
        j = i.copy()
        j.imm = 6
        assert i.imm == 5

    def test_connect_updates_single(self):
        cu = connect_use(RClass.INT, 3, 200)
        assert cu.connect_updates() == [(RClass.INT, "read", 3, 200)]
        cd = connect_def(RClass.FP, 4, 100)
        assert cd.connect_updates() == [(RClass.FP, "write", 4, 100)]

    def test_connect_updates_not_connect_raises(self):
        with pytest.raises(ValueError):
            Instr(Opcode.ADD).connect_updates()

    def test_combine_use_use(self):
        c = combine_connects(connect_use(RClass.INT, 1, 30),
                             connect_use(RClass.INT, 2, 31))
        assert c.op is Opcode.CUU
        assert c.connect_updates() == [
            (RClass.INT, "read", 1, 30),
            (RClass.INT, "read", 2, 31),
        ]

    def test_combine_def_use_normalizes_order(self):
        c = combine_connects(connect_use(RClass.INT, 1, 30),
                             connect_def(RClass.INT, 2, 31))
        assert c.op is Opcode.CDU
        assert c.connect_updates() == [
            (RClass.INT, "write", 2, 31),
            (RClass.INT, "read", 1, 30),
        ]

    def test_combine_def_def(self):
        c = combine_connects(connect_def(RClass.INT, 1, 30),
                             connect_def(RClass.INT, 2, 31))
        assert c.op is Opcode.CDD

    def test_combine_rejects_cross_class(self):
        assert combine_connects(connect_use(RClass.INT, 1, 30),
                                connect_use(RClass.FP, 2, 30)) is None

    def test_combine_rejects_non_connects(self):
        assert combine_connects(Instr(Opcode.NOP),
                                connect_use(RClass.INT, 1, 30)) is None


class TestAsmFormat:
    def test_format_alu(self):
        i = Instr(Opcode.ADD, dest=PhysReg(RClass.INT, 5),
                  srcs=(PhysReg(RClass.INT, 6), Imm(3)))
        assert format_instr(i) == "add r5, r6, 3"

    def test_format_load_store(self):
        ld = Instr(Opcode.LOAD, dest=PhysReg(RClass.INT, 5),
                   srcs=(PhysReg(RClass.INT, 0),), imm=4)
        assert format_instr(ld) == "load r5, 4(r0)"
        st = Instr(Opcode.FSTORE, srcs=(PhysReg(RClass.FP, 4),
                                        PhysReg(RClass.INT, 0)), imm=-2)
        assert format_instr(st) == "fstore f4, -2(r0)"

    def test_format_branch_with_hint(self):
        i = Instr(Opcode.BLT, srcs=(PhysReg(RClass.INT, 5), Imm(10)),
                  label="loop", hint_taken=True)
        assert "blt r5, 10 -> loop [taken]" == format_instr(i)

    def test_format_connect(self):
        assert format_instr(connect_use(RClass.INT, 3, 200)) == \
            "connect_use ri3, rp200"

    def test_format_listing_addresses(self):
        text = format_listing([Instr(Opcode.NOP), Instr(Opcode.HALT)])
        lines = text.splitlines()
        assert lines[0].strip().startswith("0: nop")
        assert lines[1].strip().startswith("1: halt")
