"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("cccp", "tomcatv", "yacc"):
            assert name in out


class TestRun:
    def test_run_without_rc(self, capsys):
        assert main(["run", "cmp", "--issue", "2"]) == 0
        out = capsys.readouterr().out
        assert "verification" in out and "OK" in out

    def test_run_with_rc(self, capsys):
        assert main(["run", "grep", "--rc", "--int-core", "8"]) == 0
        out = capsys.readouterr().out
        assert "int RC 8+248" in out
        assert "OK" in out

    def test_run_unlimited(self, capsys):
        assert main(["run", "eqn", "--unlimited"]) == 0
        assert "no RC" in capsys.readouterr().out

    def test_run_fp_benchmark_rc_targets_fp_file(self, capsys):
        assert main(["run", "matrix300", "--rc", "--fp-core", "16"]) == 0
        assert "fp RC 16+240" in capsys.readouterr().out

    def test_run_model_option(self, capsys):
        assert main(["run", "cmp", "--rc", "--model", "1"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])


class TestDisasm:
    def test_disasm_head(self, capsys):
        assert main(["disasm", "cmp", "--head", "5"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 5
        assert out[0].lstrip().startswith("0:")

    def test_disasm_shows_connects_with_rc(self, capsys):
        assert main(["disasm", "cmp", "--rc", "--int-core", "8"]) == 0
        assert "connect" in capsys.readouterr().out


class TestAsm:
    def test_assemble_and_run(self, tmp_path, capsys):
        src = tmp_path / "prog.s"
        src.write_text("""
            li r5, 6
            li r6, 7
            mul r7, r5, r6
            store r7, 0(900)
            halt
        """)
        assert main(["asm", str(src), "--dump", "900"]) == 0
        assert "mem[900] = 42" in capsys.readouterr().out


class TestFigures:
    def test_single_figure_subset(self, capsys):
        assert main(["figures", "table1"]) == 0
        assert "Instruction latencies" in capsys.readouterr().out

    def test_figure_with_benchmark_subset(self, capsys):
        assert main(["figures", "figure7", "--benchmarks", "cmp"]) == 0
        out = capsys.readouterr().out
        assert "cmp" in out and "geomean" in out

    def test_unknown_figure(self, capsys):
        assert main(["figures", "figure99"]) == 2


class TestFigureExport:
    def test_csv_format(self, capsys):
        assert main(["figures", "table1", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("benchmark,")

    def test_json_format(self, capsys):
        import json
        assert main(["figures", "table1", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["figure"] == "Table 1"


class TestSweep:
    def test_sweep_figure_subset(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["sweep", "figure7", "--benchmarks", "cmp",
                     "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "cmp" in captured.out and "geomean" in captured.out
        assert "[sweep:" in captured.out  # counters in the figure footer
        assert "misses" in captured.err  # summary + progress on stderr
        assert "[5/5]" in captured.err

    def test_sweep_unknown_figure(self, capsys):
        assert main(["sweep", "figure99"]) == 2


class TestTraceCommand:
    def test_trace_output(self, capsys):
        assert main(["trace", "cmp", "--count", "8", "--issue", "2"]) == 0
        out = capsys.readouterr().out
        assert "slot utilization" in out
        assert out.count("|") >= 2


class TestTraceFormats:
    def test_chrome_format_is_golden_json(self, capsys):
        import json
        assert main(["trace", "cmp", "--format", "chrome",
                     "--issue", "2"]) == 0
        doc = json.loads(capsys.readouterr().out)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process = next(e for e in meta if e["name"] == "process_name")
        assert process["pid"] == 1
        assert process["args"]["name"].startswith("repro-sim")
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert doc["otherData"]["cycles"] > 0
        assert "2-issue" in doc["otherData"]["machine"]

    def test_konata_format(self, capsys):
        assert main(["trace", "cmp", "--format", "konata",
                     "--issue", "2"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "Kanata\t0004"

    def test_jsonl_format(self, capsys):
        import json
        assert main(["trace", "cmp", "--format", "jsonl",
                     "--issue", "2"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        assert all("type" in json.loads(line) for line in lines[:50])

    def test_output_file(self, tmp_path, capsys):
        import json
        target = tmp_path / "trace.json"
        assert main(["trace", "cmp", "--format", "chrome",
                     "-o", str(target)]) == 0
        captured = capsys.readouterr()
        assert str(target) in captured.err
        assert json.loads(target.read_text())["traceEvents"]

    def test_text_format_unchanged(self, capsys):
        assert main(["trace", "cmp", "--format", "text", "--count", "8"]) == 0
        assert "slot utilization" in capsys.readouterr().out


class TestProfileCommand:
    def test_text_output(self, capsys):
        assert main(["profile", "cmp", "--issue", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycle attribution" in out
        assert "optimize" in out and "schedule" in out  # pass table
        assert "instructions by class:" in out  # stats summary

    def test_json_output_reconciles(self, capsys):
        import json
        assert main(["profile", "cmp", "--rc", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "cmp"
        assert [row["pass"] for row in doc["passes"]]
        cpi = doc["cpi"]
        assert cpi["issue"] + cpi["raw_interlock"] + cpi["map_busy"] \
            + sum(cpi["redirect"].values()) == cpi["cycles"]

    def test_forwards_flag(self, capsys):
        assert main(["profile", "cmp", "--rc", "--int-core", "8",
                     "--forwards"]) == 0
        assert "zero-cycle" in capsys.readouterr().out

    def test_compile_only_skips_simulation(self, capsys):
        assert main(["profile", "cmp", "--compile"]) == 0
        out = capsys.readouterr().out
        assert "compiler passes:" in out
        assert "optimize" in out and "allocate" in out
        assert "cycle attribution" not in out

    def test_compile_only_json(self, capsys):
        import json
        assert main(["profile", "cmp", "--compile", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["benchmark"] == "cmp"
        assert [row["pass"] for row in doc["passes"]]
        assert "cpi" not in doc


class TestSweepCpi:
    def test_sweep_cpi_footer(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["sweep", "figure7", "--benchmarks", "cmp",
                     "--jobs", "1", "--cpi"]) == 0
        assert "cpi mix:" in capsys.readouterr().out


LATENT_HAZARD = """
start:
    li r5, 2048
    store r5, 0(r5)
    load r6, 0(r5)
    add r7, r6, 1
    halt
"""


class TestCheck:
    def test_check_benchmark_clean(self, capsys):
        assert main(["check", "cmp", "--rc", "--model", "3"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_matrix_json_output(self, tmp_path, capsys):
        import json
        target = tmp_path / "findings.json"
        assert main(["check", "cmp", "--models", "1,4", "--json",
                     "-o", str(target)]) == 0
        captured = capsys.readouterr()
        assert str(target) in captured.err
        payload = json.loads(target.read_text())
        assert payload["clean"] is True
        assert len(payload["runs"]) == 2
        assert {run["model"] for run in payload["runs"]} == {1, 4}

    def test_check_asm_strict_fails_on_info(self, tmp_path):
        src = tmp_path / "hazard.s"
        src.write_text(LATENT_HAZARD)
        assert main(["check", str(src)]) == 0
        assert main(["check", str(src), "--strict"]) == 1

    def test_check_asm_error_fails_without_strict(self, tmp_path, capsys):
        src = tmp_path / "bad.s"
        src.write_text("start:\n    li r5, 1\n")  # falls off the end
        assert main(["check", str(src)]) == 1
        assert "CFG001" in capsys.readouterr().out

    def test_check_json_stdout(self, tmp_path, capsys):
        import json
        src = tmp_path / "hazard.s"
        src.write_text(LATENT_HAZARD)
        assert main(["check", str(src), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["counts"] == {"LAT001": 1}

    def test_check_unknown_benchmark(self, capsys):
        assert main(["check", "doom"]) == 2

    def test_check_parallel_fanout_matches_serial(self, capsys):
        assert main(["check", "cmp", "--models", "1,4", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["check", "cmp", "--models", "1,4", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Everything except the timing footer is identical.
        assert serial.splitlines()[:-1] == parallel.splitlines()[:-1]
        assert "2 workers" in parallel.splitlines()[-1]

    def test_check_footer_reports_timing(self, capsys):
        assert main(["check", "cmp", "--rc", "--jobs", "1"]) == 0
        footer = capsys.readouterr().out.splitlines()[-1]
        assert "run(s)" in footer and "s (1 worker)" in footer

    def test_check_shipped_examples_are_clean(self, capsys):
        import pathlib
        asm_dir = pathlib.Path(__file__).resolve().parent.parent \
            / "examples" / "asm"
        assert main(["check", str(asm_dir / "sum_loop.s"),
                     "--models", "1,2,3,4,5"]) == 0
        assert main(["check", str(asm_dir / "connect_demo.s"), "--rc",
                     "--models", "1,2,3,4,5"]) == 0

    def test_check_baseline_roundtrip(self, tmp_path, capsys):
        import json
        src = tmp_path / "hazard.s"
        src.write_text(LATENT_HAZARD)
        base = tmp_path / "baseline.json"
        # Strict fails on the LAT001 info before a baseline exists.
        assert main(["check", str(src), "--strict"]) == 1
        assert main(["check", str(src), "--baseline", str(base),
                     "--update-baseline"]) == 0
        assert "updated baseline" in capsys.readouterr().err
        # Applying the recorded baseline suppresses exactly that finding.
        assert main(["check", str(src), "--strict", "--baseline",
                     str(base), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["counts"] == {}
        assert payload["runs"][0]["suppressed"] == 1

    def test_check_baseline_does_not_hide_new_findings(self, tmp_path,
                                                       capsys):
        src = tmp_path / "prog.s"
        src.write_text(LATENT_HAZARD)
        base = tmp_path / "baseline.json"
        assert main(["check", str(src), "--baseline", str(base),
                     "--update-baseline"]) == 0
        # A new problem in the same file is not covered by the baseline.
        src.write_text(LATENT_HAZARD.replace("halt\n", ""))
        assert main(["check", str(src), "--strict", "--baseline",
                     str(base)]) == 1
        assert "CFG001" in capsys.readouterr().out

    def test_check_update_baseline_requires_path(self, tmp_path):
        src = tmp_path / "hazard.s"
        src.write_text(LATENT_HAZARD)
        with pytest.raises(SystemExit):
            main(["check", str(src), "--update-baseline"])


class TestDisasmAnnotate:
    def test_annotate_interleaves_blocks(self, capsys):
        assert main(["disasm", "cmp", "--rc", "--int-core", "8",
                     "--annotate"]) == 0
        out = capsys.readouterr().out
        assert "; -- block @" in out
        assert "map:" in out

    def test_annotate_appends_connect_opt_footer(self, capsys):
        assert main(["disasm", "cmp", "--rc", "--annotate"]) == 0
        out = capsys.readouterr().out
        assert "; connect-opt:" in out
        assert "static connects" in out
