"""Tests for block layout, branch normalization, and program lowering."""

import pytest

from repro.compiler import layout_function, lower_module
from repro.errors import CompileError
from repro.ir import FnBuilder, Module
from repro.isa import Imm, Instr, Opcode, PhysReg, RClass
from repro.sim import MachineConfig, simulate
from repro.isa.registers import core_spec


def r(n):
    return PhysReg(RClass.INT, n)


def machine_fn(m, name="main"):
    """Build a small physical-register function directly."""
    b = FnBuilder(m, name)
    return b


def simple_config():
    return MachineConfig(issue_width=1,
                         int_spec=core_spec(RClass.INT, 16),
                         fp_spec=core_spec(RClass.FP, 16))


class TestLayout:
    def _branchy(self):
        m = Module()
        b = FnBuilder(m, "main")
        b.fn.new_block("entry")
        entry = b.fn.block("entry")
        entry.instrs = [
            Instr(Opcode.BEQ, srcs=(r(5), r(6)), label="join"),
        ]
        entry.fallthrough = "side"
        side = b.fn.new_block("side")
        side.instrs = [Instr(Opcode.JMP, label="join")]
        join = b.fn.new_block("join")
        join.instrs = [Instr(Opcode.HALT)]
        return m, b.fn

    def test_fallthrough_placed_adjacent(self):
        _m, fn = self._branchy()
        order = [blk.name for blk in layout_function(fn)]
        assert order.index("side") == order.index("entry") + 1

    def test_trampoline_inserted_when_fallthrough_placed(self):
        m = Module()
        b = FnBuilder(m, "main")
        entry = b.fn.new_block("entry")
        entry.instrs = [Instr(Opcode.JMP, label="hot")]
        hot = b.fn.new_block("hot")
        hot.instrs = [Instr(Opcode.BNE, srcs=(r(5), r(6)), label="hot")]
        hot.fallthrough = "entry"  # already placed -> needs a trampoline
        order = layout_function(b.fn)
        names = [blk.name for blk in order]
        tramp = names[names.index("hot") + 1]
        assert tramp.endswith(".tramp0")
        assert b.fn.block(tramp).instrs[0].op is Opcode.JMP

    def test_hot_taken_branch_negated(self):
        m = Module()
        b = FnBuilder(m, "main")
        entry = b.fn.new_block("entry")
        entry.instrs = [Instr(Opcode.BEQ, srcs=(r(5), r(6)), label="hot",
                              hint_taken=True)]
        entry.fallthrough = "cold"
        cold = b.fn.new_block("cold")
        cold.instrs = [Instr(Opcode.HALT)]
        hot = b.fn.new_block("hot")
        hot.instrs = [Instr(Opcode.HALT)]
        layout_function(b.fn)
        term = entry.terminator
        assert term.op is Opcode.BNE          # negated
        assert term.label == "cold"           # targets swapped
        assert entry.fallthrough == "hot"     # hot path falls through
        assert term.hint_taken is False

    def test_backward_branch_not_negated(self):
        m = Module()
        b = FnBuilder(m, "main")
        loop = b.fn.new_block("loop")
        loop.instrs = [Instr(Opcode.BNE, srcs=(r(5), r(6)), label="loop",
                             hint_taken=True)]
        loop.fallthrough = "exit"
        exit_ = b.fn.new_block("exit")
        exit_.instrs = [Instr(Opcode.HALT)]
        layout_function(b.fn)
        assert loop.terminator.op is Opcode.BNE
        assert loop.terminator.label == "loop"


class TestLowerModule:
    def _module(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "helper")
        helper = b.fn.new_block("entry")
        helper.instrs = [
            Instr(Opcode.LI, dest=r(1), imm=9),
            Instr(Opcode.RET),
        ]
        b.fn.blocks.append(helper) if helper not in b.fn.blocks else None
        m.add_function(b.fn)

        b2 = FnBuilder(m, "main")
        main = b2.fn.new_block("entry")
        main.instrs = [
            Instr(Opcode.CALL, label="helper"),
            Instr(Opcode.STORE, srcs=(r(1), Imm(0)),
                  imm=m.global_addr("out")),
            Instr(Opcode.HALT),
        ]
        m.add_function(b2.fn)
        return m

    def test_entry_function_placed_first(self):
        m = self._module()
        program = lower_module(m, entry="main")
        assert program.entry == 0
        assert program.func_ranges["main"][0] == 0

    def test_call_targets_resolved_across_functions(self):
        m = self._module()
        program = lower_module(m, entry="main")
        call_idx = next(i for i, ins in enumerate(program.instrs)
                        if ins.op is Opcode.CALL)
        assert program.targets[call_idx] == program.func_ranges["helper"][0]
        result = simulate(program, simple_config())
        assert result.load_word(m.global_addr("out")) == 9

    def test_unknown_entry_rejected(self):
        with pytest.raises(CompileError):
            lower_module(self._module(), entry="ghost")

    def test_unknown_callee_rejected(self):
        m = Module()
        b = FnBuilder(m, "main")
        blk = b.fn.new_block("entry")
        blk.instrs = [Instr(Opcode.CALL, label="ghost"), Instr(Opcode.HALT)]
        m.add_function(b.fn)
        with pytest.raises(CompileError):
            lower_module(m, entry="main")

    def test_function_of_lookup(self):
        m = self._module()
        program = lower_module(m, entry="main")
        assert program.function_of(0) == "main"
        helper_start = program.func_ranges["helper"][0]
        assert program.function_of(helper_start) == "helper"
        assert program.function_of(10_000) is None

    def test_static_counts_by_origin(self):
        m = self._module()
        program = lower_module(m, entry="main")
        counts = program.static_counts()
        assert counts[None] == len(program)
