"""End-to-end compiler tests: golden equivalence across configurations,
connect insertion invariants, scheduling, code-size accounting."""

import pytest

from repro.compiler import (
    CompileOptions,
    OptOptions,
    compile_module,
)
from repro.compiler.regalloc.allocator import AllocationOptions
from repro.ir import FnBuilder, Module, run_module
from repro.isa import Opcode, RClass
from repro.rc import RCModel
from repro.sim import paper_machine, simulate, unlimited_machine

from helpers import call_module, diamond_module, fp_module, sum_to_n_module


def golden(m, gname):
    return run_module(m).load_word(m.global_addr(gname))


def compiled_value(m, gname, cfg, **opt):
    out = compile_module(m, cfg, CompileOptions(**opt) if opt else None)
    return simulate(out.program, cfg).load_word(m.global_addr(gname))


CONFIGS = [
    ("unlimited-1", unlimited_machine(1)),
    ("unlimited-8", unlimited_machine(8)),
    ("core16-4", paper_machine(issue_width=4, int_core=16, fp_core=16)),
    ("core8-2", paper_machine(issue_width=2, int_core=8, fp_core=16)),
    ("rc16-4", paper_machine(issue_width=4, int_core=16, fp_core=16,
                             rc_class=RClass.INT)),
    ("rc8-8", paper_machine(issue_width=8, int_core=8, fp_core=16,
                            rc_class=RClass.INT)),
    ("rc8-c1", paper_machine(issue_width=4, int_core=8, fp_core=16,
                             rc_class=RClass.INT, connect_latency=1)),
    ("rc8-extra", paper_machine(issue_width=4, int_core=8, fp_core=16,
                                rc_class=RClass.INT,
                                extra_decode_stage=True)),
    ("rcfp16-4", paper_machine(issue_width=4, int_core=16, fp_core=16,
                               rc_class=RClass.FP)),
]


@pytest.mark.parametrize("cfg_name,cfg", CONFIGS)
@pytest.mark.parametrize("maker,gname", [
    (lambda: sum_to_n_module(23), "out"),
    (call_module, "out"),
    (fp_module, "fout"),
    (diamond_module, "out"),
])
def test_golden_equivalence(maker, gname, cfg_name, cfg):
    m = maker()
    assert compiled_value(m, gname, cfg) == golden(m, gname)


@pytest.mark.parametrize("model", list(RCModel))
def test_golden_equivalence_all_rc_models(model):
    m = sum_to_n_module(23)
    cfg = paper_machine(issue_width=4, int_core=8, fp_core=16,
                        rc_class=RClass.INT, rc_model=model)
    assert compiled_value(m, "out", cfg) == golden(m, "out")


def high_pressure_module(n=24, iters=50):
    """A loop keeping n accumulators live: guaranteed extended-reg usage."""
    m = Module()
    m.add_global("out", 1)
    b = FnBuilder(m, "main")
    accs = [b.li(i, name=f"acc{i}") for i in range(n)]
    i = b.li(0, name="i")
    b.block("loop")
    for j, acc in enumerate(accs):
        b.add(acc, j + 1, dest=acc)
    b.add(i, 1, dest=i)
    b.br("blt", i, iters, "loop")
    b.block("exit")
    total = b.li(0, name="total")
    for acc in accs:
        b.add(total, acc, dest=total)
    b.store(total, b.la("out"), 0)
    b.halt()
    b.done()
    return m


class TestHighPressure:
    @pytest.mark.parametrize("model", list(RCModel))
    def test_equivalence_under_pressure_all_models(self, model):
        m = high_pressure_module()
        ref = golden(m, "out")
        cfg = paper_machine(issue_width=4, int_core=16, fp_core=16,
                            rc_class=RClass.INT, rc_model=model)
        assert compiled_value(m, "out", cfg) == ref

    def test_rc_uses_connects_and_wins_over_spilling(self):
        m = high_pressure_module()
        ref = golden(m, "out")
        without = paper_machine(issue_width=4, int_core=16, fp_core=16)
        with_rc = paper_machine(issue_width=4, int_core=16, fp_core=16,
                                rc_class=RClass.INT)
        out_wo = compile_module(m, without)
        out_rc = compile_module(m, with_rc)
        res_wo = simulate(out_wo.program, without)
        res_rc = simulate(out_rc.program, with_rc)
        assert res_wo.load_word(m.global_addr("out")) == ref
        assert res_rc.load_word(m.global_addr("out")) == ref
        assert out_rc.stats.connect_instructions > 0
        assert out_wo.stats.spill_instructions > 0
        assert out_rc.stats.spilled_vregs == 0  # extended section absorbs all
        # the paper's headline: RC beats spilling under pressure
        assert res_rc.cycles < res_wo.cycles

    def test_connects_are_combined(self):
        m = high_pressure_module()
        cfg = paper_machine(issue_width=4, int_core=8, fp_core=16,
                            rc_class=RClass.INT)
        out = compile_module(m, cfg)
        combined = [i for i in out.program.instrs
                    if i.op in (Opcode.CUU, Opcode.CDU, Opcode.CDD)]
        assert combined, "expected multiple-connect instructions"

    def test_window_count_configurable(self):
        m = high_pressure_module()
        cfg = paper_machine(issue_width=4, int_core=16, fp_core=16,
                            rc_class=RClass.INT)
        ref = golden(m, "out")
        for windows in (2, 3, 6):
            opts = CompileOptions(alloc=AllocationOptions(num_windows=windows))
            out = compile_module(m, cfg, opts)
            assert simulate(out.program, cfg).load_word(
                m.global_addr("out")) == ref


class TestCodeSize:
    def test_unlimited_has_no_overhead(self):
        out = compile_module(sum_to_n_module(10), unlimited_machine(4))
        assert out.stats.overhead_instructions == 0
        assert out.stats.code_size_increase == 0.0

    def test_spill_overhead_counted(self):
        m = high_pressure_module()
        out = compile_module(m, paper_machine(issue_width=4, int_core=16,
                                              fp_core=16))
        assert out.stats.spill_instructions > 0
        assert out.stats.code_size_increase > 0

    def test_both_models_grow_under_pressure(self):
        # Paper Figure 9: at small core files both models pay substantial
        # code growth (spill code vs connect + save/restore code).
        m = high_pressure_module()
        wo = compile_module(m, paper_machine(issue_width=4, int_core=16,
                                             fp_core=16))
        rc = compile_module(m, paper_machine(issue_width=4, int_core=16,
                                             fp_core=16,
                                             rc_class=RClass.INT))
        assert wo.stats.code_size_increase > 0.10
        assert rc.stats.code_size_increase > 0.10

    @staticmethod
    def _call_heavy_pressure_module(n=20):
        """Non-constant values live across a call: forces extended
        caller-save code (the Figure 9 'black bar')."""
        m = Module()
        m.add_global("out", 1)
        m.add_global("data", n, list(range(3, 3 + n)))
        b = FnBuilder(m, "leaf", params=[("i", "x")], ret="i")
        b.ret(b.add(b.params[0], 1))
        b.done()
        b = FnBuilder(m, "main")
        base = b.la("data")
        vals = [b.load(base, j, name=f"v{j}") for j in range(n)]
        r = b.call("leaf", [5], ret="i")
        total = b.move(r, name="total")
        for v in vals:
            b.add(total, v, dest=total)
        b.store(total, b.la("out"), 0)
        b.halt()
        b.done()
        return m

    def test_callsave_counted_for_calls_with_extended_liveness(self):
        m = self._call_heavy_pressure_module()
        ref = golden(m, "out")
        cfg = paper_machine(issue_width=4, int_core=8, fp_core=16,
                            rc_class=RClass.INT)
        out = compile_module(m, cfg)
        assert out.stats.callsave_instructions > 0
        assert out.stats.callsave_increase > 0
        assert simulate(out.program, cfg).load_word(m.global_addr("out")) == ref


class TestScheduling:
    def test_scheduling_reduces_cycles(self):
        # A chain-heavy loop benefits from reordering independent work.
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        i = b.li(0, name="i")
        acc = b.li(0, name="acc")
        acc2 = b.li(0, name="acc2")
        b.block("loop")
        t = b.mul(i, 3)
        u = b.mul(i, 5)
        b.add(acc, t, dest=acc)
        b.add(acc2, u, dest=acc2)
        b.add(i, 1, dest=i)
        b.br("blt", i, 200, "loop")
        b.block("exit")
        b.store(b.add(acc, acc2), b.la("out"), 0)
        b.halt()
        b.done()
        ref = golden(m, "out")
        cfg = paper_machine(issue_width=4, int_core=16, fp_core=16)
        fast = compile_module(m, cfg, CompileOptions(schedule=True))
        slow = compile_module(m, cfg, CompileOptions(schedule=False))
        rf = simulate(fast.program, cfg)
        rs = simulate(slow.program, cfg)
        assert rf.load_word(m.global_addr("out")) == ref
        assert rs.load_word(m.global_addr("out")) == ref
        assert rf.cycles <= rs.cycles

    def test_unrolling_plus_wide_issue_beats_scalar(self):
        m = sum_to_n_module(400)
        cfg = unlimited_machine(8)
        ilp = compile_module(m, cfg, CompileOptions(
            opt=OptOptions(level="ilp", unroll_factor=4)))
        scalar = compile_module(m, cfg, CompileOptions(
            opt=OptOptions(level="scalar")))
        ref = golden(m, "out")
        ri = simulate(ilp.program, cfg)
        rs = simulate(scalar.program, cfg)
        assert ri.load_word(m.global_addr("out")) == ref
        assert rs.load_word(m.global_addr("out")) == ref
        assert ri.cycles < rs.cycles


class TestRecursion:
    def test_recursive_function_compiles_and_runs(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "fib", params=[("i", "n")], ret="i")
        (n,) = b.params
        b.br("bgt", n, 1, "rec")
        b.block("base")
        b.ret(n)
        b.block("rec")
        a = b.call("fib", [b.sub(n, 1)], ret="i")
        c = b.call("fib", [b.sub(n, 2)], ret="i")
        b.ret(b.add(a, c))
        b.done()
        b = FnBuilder(m, "main")
        b.store(b.call("fib", [10], ret="i"), b.la("out"), 0)
        b.halt()
        b.done()
        ref = golden(m, "out")
        assert ref == 55
        for _, cfg in CONFIGS:
            assert compiled_value(m, "out", cfg) == ref


class TestParallelBackend:
    """jobs=N must emit exactly the program jobs=1 does."""

    def _multi_fn_module(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "square", params=[("i", "x")], ret="i")
        (x,) = b.params
        b.ret(b.mul(x, x))
        b.done()
        b = FnBuilder(m, "cube", params=[("i", "x")], ret="i")
        (x,) = b.params
        b.ret(b.mul(b.call("square", [x], ret="i"), x))
        b.done()
        b = FnBuilder(m, "main")
        b.store(b.call("cube", [5], ret="i"), b.la("out"), 0)
        b.halt()
        b.done()
        return m

    @pytest.mark.parametrize("cfg_name,cfg", CONFIGS)
    def test_jobs_parity(self, cfg_name, cfg):
        m = self._multi_fn_module()
        serial = compile_module(m, cfg, CompileOptions(jobs=1))
        parallel = compile_module(m, cfg, CompileOptions(jobs=3))
        assert ([repr(i) for i in serial.program.instrs]
                == [repr(i) for i in parallel.program.instrs])
        assert serial.profile == parallel.profile
        assert serial.stats == parallel.stats
        assert set(serial.allocations) == set(parallel.allocations)

    def test_parallel_output_still_simulates(self):
        m = self._multi_fn_module()
        cfg = paper_machine()
        out = compile_module(m, cfg, CompileOptions(jobs=2))
        assert simulate(out.program, cfg).load_word(
            m.global_addr("out")) == 125

    def test_jobs_env_resolution(self, monkeypatch):
        from repro.compiler import COMPILE_JOBS_ENV, resolve_compile_jobs
        monkeypatch.delenv(COMPILE_JOBS_ENV, raising=False)
        assert resolve_compile_jobs() == 1
        assert resolve_compile_jobs(5) == 5
        monkeypatch.setenv(COMPILE_JOBS_ENV, "3")
        assert resolve_compile_jobs() == 3
        assert resolve_compile_jobs(1) == 1  # explicit beats env
        monkeypatch.setenv(COMPILE_JOBS_ENV, "nonsense")
        assert resolve_compile_jobs() == 1

    def test_metrics_compile_stays_serial_and_identical(self, monkeypatch):
        from repro.compiler import COMPILE_JOBS_ENV
        from repro.observe import PassMetrics
        m = self._multi_fn_module()
        cfg = paper_machine()
        plain = compile_module(m, cfg, CompileOptions(jobs=4))
        metrics = PassMetrics()
        measured = compile_module(m, cfg, CompileOptions(jobs=4),
                                  metrics=metrics)
        assert ([repr(i) for i in plain.program.instrs]
                == [repr(i) for i in measured.program.instrs])
        assert any(r.name == "allocate" for r in metrics.records)

    def test_ir_engine_option_is_output_invariant(self):
        m = self._multi_fn_module()
        cfg = paper_machine()
        fast = compile_module(m, cfg, CompileOptions(ir_engine="fast"))
        ref = compile_module(m, cfg, CompileOptions(ir_engine="reference"))
        assert ([repr(i) for i in fast.program.instrs]
                == [repr(i) for i in ref.program.instrs])
        assert fast.profile == ref.profile
