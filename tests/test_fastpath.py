"""Differential tests: the specializing fast engine vs the reference.

The fast engine (:mod:`repro.sim.fastpath`) must be bit-exact with the
reference :class:`~repro.sim.core.Simulator` — same cycles, same full
:class:`~repro.sim.stats.SimStats`, same architectural state — across every
benchmark, RC reset model, and issue width.  Interrupts, observers, and
trace hooks must transparently fall back to the reference engine.
"""

import pytest

from repro.compiler import compile_module
from repro.errors import ConfigError
from repro.isa import Imm, Instr, Opcode, PhysReg, RClass
from repro.rc import RCModel
from repro.sim import (
    ENGINE_ENV,
    FastSimulator,
    Simulator,
    assemble,
    paper_machine,
    resolve_engine,
    simulate,
    unlimited_machine,
)
from repro.workloads import ALL_BENCHMARKS, build_workload, workload

WIDTHS = (1, 2, 4, 8)
MODELS = tuple(RCModel)

#: One compilation per (benchmark, width, model) shared by all assertions.
_compiled: dict = {}


def _point(name: str, width: int, model: RCModel):
    key = (name, width, model)
    if key not in _compiled:
        kind = workload(name).kind
        rc_class = RClass.INT if kind == "int" else RClass.FP
        cfg = paper_machine(issue_width=width, rc_class=rc_class,
                            rc_model=model)
        module = build_workload(name, scale=1)
        out = compile_module(module, cfg)
        _compiled[key] = (module, out, cfg)
    return _compiled[key]


def _assert_parity(program, config, label: str):
    """Run both engines on (program, config) and compare everything."""
    ref = Simulator(program, config).run()
    fast_sim = FastSimulator(program, config)
    fast = fast_sim.run()
    assert fast_sim.ran_fastpath, f"{label}: unexpectedly fell back"
    assert fast.stats == ref.stats, (
        f"{label}: stats diverge\nfast {fast.stats}\nref  {ref.stats}")
    assert fast.halted == ref.halted, label
    assert fast.state.memory == ref.state.memory, f"{label}: memory diverges"
    assert fast.state.int_regs == ref.state.int_regs, label
    assert fast.state.fp_regs == ref.state.fp_regs, label
    fast.stats.reconcile()
    ref.stats.reconcile()
    return ref, fast


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_engine_parity_all_models_and_widths(name):
    """Fast == reference on cycles, full SimStats, checksum, and state for
    every RC model × issue width combination of one benchmark."""
    for model in MODELS:
        for width in WIDTHS:
            module, out, cfg = _point(name, width, model)
            label = f"{name} w{width} {model.name}"
            ref, fast = _assert_parity(out.program, cfg, label)
            addr = module.global_addr("checksum")
            assert fast.load_word(addr) == ref.load_word(addr), label


@pytest.mark.parametrize("name", ALL_BENCHMARKS[:3])
def test_engine_parity_unlimited_and_connect_latency(name):
    """Edge configs: unlimited registers, 1-cycle connects, extra decode
    stage."""
    module = build_workload(name, scale=1)
    kind = workload(name).kind
    rc_class = RClass.INT if kind == "int" else RClass.FP
    for cfg in (
        unlimited_machine(issue_width=4),
        paper_machine(issue_width=4, rc_class=rc_class, connect_latency=1,
                      extra_decode_stage=True),
    ):
        out = compile_module(module, cfg)
        _assert_parity(out.program, cfg, f"{name} {cfg.describe()}")


def _interrupt_program():
    def li(dest, value):
        return Instr(Opcode.LI, dest=PhysReg(RClass.INT, dest), imm=value)

    return assemble([
        li(5, 7),
        li(6, 0),
        # loop: r6 += r5, 200 iterations
        li(7, 0),
        Instr(Opcode.ADD, dest=PhysReg(RClass.INT, 6),
              srcs=(PhysReg(RClass.INT, 6), PhysReg(RClass.INT, 5))),
        Instr(Opcode.ADD, dest=PhysReg(RClass.INT, 7),
              srcs=(PhysReg(RClass.INT, 7), Imm(1))),
        Instr(Opcode.BLT, srcs=(PhysReg(RClass.INT, 7), Imm(200)),
              label="loop"),
        Instr(Opcode.STORE, srcs=(PhysReg(RClass.INT, 6), Imm(0)), imm=900),
        Instr(Opcode.HALT),
        # handler (vector 3): store a marker, return
        Instr(Opcode.STORE, srcs=(PhysReg(RClass.INT, 5), Imm(0)), imm=901),
        Instr(Opcode.RTE),
    ], labels={"loop": 3}, trap_handlers={3: 8})


class TestFallback:
    def test_interrupts_force_reference_fallback_and_match(self):
        prog = _interrupt_program()
        cfg = paper_machine(issue_width=4, rc_class=RClass.INT)

        ref_sim = Simulator(prog, cfg)
        ref_sim.schedule_interrupt(40, 3)
        ref = ref_sim.run()

        fast_sim = FastSimulator(prog, cfg)
        fast_sim.schedule_interrupt(40, 3)
        fast = fast_sim.run()

        assert not fast_sim.ran_fastpath  # delegated to the reference
        assert fast.stats == ref.stats
        assert fast.stats.interrupts == 1
        assert fast.state.memory == ref.state.memory

    def test_trap_and_rte_stay_on_fast_path_and_match(self):
        prog = assemble([
            Instr(Opcode.LI, dest=PhysReg(RClass.INT, 5), imm=7),
            Instr(Opcode.TRAP, imm=3),
            Instr(Opcode.STORE, srcs=(PhysReg(RClass.INT, 5), Imm(0)),
                  imm=500),
            Instr(Opcode.HALT),
            # handler
            Instr(Opcode.STORE, srcs=(PhysReg(RClass.INT, 5), Imm(0)),
                  imm=501),
            Instr(Opcode.RTE),
        ], trap_handlers={3: 4})
        cfg = paper_machine(issue_width=4, rc_class=RClass.INT)
        ref, fast = _assert_parity(prog, cfg, "trap/rte")
        assert fast.load_word(501) == 7

    def test_observer_routes_to_reference(self):
        from repro.observe import Observer

        module, out, cfg = _point(ALL_BENCHMARKS[0], 4, RCModel.NO_RESET)
        sim = FastSimulator(out.program, cfg)
        sim.observer = Observer(keep_events=False)
        ref = Simulator(out.program, cfg,
                        observer=Observer(keep_events=False)).run()
        fast = sim.run()
        assert not sim.ran_fastpath
        assert fast.stats == ref.stats

    def test_until_cycle_routes_to_reference(self):
        module, out, cfg = _point(ALL_BENCHMARKS[0], 4, RCModel.NO_RESET)
        sim = FastSimulator(out.program, cfg)
        partial = sim.run(until_cycle=50)
        assert not sim.ran_fastpath
        assert not partial.halted
        # resuming to completion still matches the reference end state
        final = sim.run()
        ref = Simulator(out.program, cfg).run()
        assert final.stats.cycles == ref.stats.cycles
        assert final.state.memory == ref.state.memory


class TestEngineSelection:
    def test_resolve_engine_defaults_to_fast(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine() == "fast"
        assert resolve_engine("auto") == "fast"

    def test_resolve_engine_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "reference")
        assert resolve_engine() == "reference"
        # an explicit argument beats the environment
        assert resolve_engine("fast") == "fast"

    def test_resolve_engine_rejects_unknown(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        with pytest.raises(ConfigError, match="unknown engine"):
            resolve_engine("bogus")
        monkeypatch.setenv(ENGINE_ENV, "bogus")
        with pytest.raises(ConfigError, match="unknown engine"):
            resolve_engine()

    def test_simulate_engine_kwarg(self):
        module, out, cfg = _point(ALL_BENCHMARKS[0], 2, RCModel.NO_RESET)
        fast = simulate(out.program, cfg, engine="fast")
        ref = simulate(out.program, cfg, engine="reference")
        assert fast.stats == ref.stats


class TestFaultParity:
    def test_fell_off_end_message_matches(self):
        from repro.errors import SimulationError

        prog = assemble([Instr(Opcode.LI, dest=PhysReg(RClass.INT, 5),
                               imm=1)])
        cfg = paper_machine(issue_width=4, rc_class=RClass.INT)
        with pytest.raises(SimulationError, match="fell off"):
            FastSimulator(prog, cfg).run()

    def test_div_by_zero_faults_like_reference(self):
        from repro.errors import SimulationError

        prog = assemble([
            Instr(Opcode.LI, dest=PhysReg(RClass.INT, 5), imm=4),
            Instr(Opcode.LI, dest=PhysReg(RClass.INT, 6), imm=0),
            Instr(Opcode.DIV, dest=PhysReg(RClass.INT, 7),
                  srcs=(PhysReg(RClass.INT, 5), PhysReg(RClass.INT, 6))),
            Instr(Opcode.HALT),
        ])
        cfg = paper_machine(issue_width=4, rc_class=RClass.INT)
        with pytest.raises(SimulationError) as ref_exc:
            Simulator(prog, cfg).run()
        with pytest.raises(SimulationError) as fast_exc:
            FastSimulator(prog, cfg).run()
        assert str(fast_exc.value) == str(ref_exc.value)
