"""Guard rails for the reproduction itself: the paper's qualitative claims.

These tests assert the *shapes* EXPERIMENTS.md reports, on a small benchmark
subset, so a regression in the compiler or simulator that silently breaks
the reproduction (rather than correctness) still fails the suite.
"""

import pytest

from repro.experiments import ExperimentRunner
from repro.experiments.figures import _config
from repro.sim import unlimited_machine

BENCHES = ("cmp", "eqntott", "tomcatv")


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    return ExperimentRunner(scale=1,
                            cache_dir=tmp_path_factory.mktemp("cache"))


def geomean_speedup(runner, rc, **cfg_kwargs):
    import math
    vals = [runner.speedup(n, _config(n, rc=rc, **cfg_kwargs))
            for n in BENCHES]
    return math.exp(sum(map(math.log, vals)) / len(vals))


class TestFigure8Claims:
    def test_rc_dominates_at_small_core_files(self, runner):
        """Severe degradation at 8/16 registers; RC recovers most of it."""
        for pair in ((8, 16), (16, 32)):
            wo = geomean_speedup(runner, False, int_core=pair[0],
                                 fp_core=pair[1])
            rc = geomean_speedup(runner, True, int_core=pair[0],
                                 fp_core=pair[1])
            assert rc > wo * 1.1, f"RC advantage missing at {pair}"

    def test_large_core_files_match_unlimited(self, runner):
        import math
        unl = math.exp(sum(
            math.log(runner.speedup(n, unlimited_machine(4)))
            for n in BENCHES) / len(BENCHES))
        for rc in (False, True):
            big = geomean_speedup(runner, rc, int_core=64, fp_core=128)
            assert big > 0.95 * unl

    def test_headline_90_percent(self, runner):
        """16 core + 240 extended reaches ~90% of unlimited (Conclusion).

        The full 12-benchmark geomean reaches 90% (see EXPERIMENTS.md); this
        guard uses the three *most register-hungry* kernels, where the gap
        is naturally wider, so the thresholds are looser but the ordering
        must hold decisively.
        """
        import math
        unl = math.exp(sum(
            math.log(runner.speedup(n, unlimited_machine(4)))
            for n in BENCHES) / len(BENCHES))
        rc16 = geomean_speedup(runner, True, int_core=16, fp_core=32)
        wo16 = geomean_speedup(runner, False, int_core=16, fp_core=32)
        assert rc16 / unl > 0.65
        assert rc16 / unl > wo16 / unl + 0.15


class TestFigure10Claims:
    def test_rc_benefit_grows_with_issue_rate(self, runner):
        gains = []
        for issue in (2, 8):
            wo = geomean_speedup(runner, False, int_core=16, fp_core=32,
                                 issue=issue)
            rc = geomean_speedup(runner, True, int_core=16, fp_core=32,
                                 issue=issue)
            gains.append(rc / wo)
        assert gains[1] > gains[0]


class TestFigure11Claims:
    def test_rc_benefit_larger_at_four_cycle_loads(self, runner):
        gains = []
        for load in (2, 4):
            wo = geomean_speedup(runner, False, int_core=16, fp_core=32,
                                 load=load)
            rc = geomean_speedup(runner, True, int_core=16, fp_core=32,
                                 load=load)
            gains.append(rc / wo)
        assert gains[1] >= gains[0]


class TestFigure12Claims:
    def test_implementation_scenarios_lose_little(self, runner):
        best = geomean_speedup(runner, True, int_core=16, fp_core=32,
                               connect=0, extra_stage=False)
        worst = geomean_speedup(runner, True, int_core=16, fp_core=32,
                                connect=1, extra_stage=True)
        assert worst > 0.85 * best
        # and even the worst RC implementation beats spilling
        wo = geomean_speedup(runner, False, int_core=16, fp_core=32)
        assert worst > wo


class TestFigure13Claims:
    def test_rc_beats_doubling_memory_channels(self, runner):
        wo2 = geomean_speedup(runner, False, int_core=16, fp_core=32,
                              channels=2)
        wo4 = geomean_speedup(runner, False, int_core=16, fp_core=32,
                              channels=4)
        rc2 = geomean_speedup(runner, True, int_core=16, fp_core=32,
                              channels=2)
        assert (rc2 - wo2) > 2 * (wo4 - wo2)
