"""Tests for the 32-bit demonstrator encoding (the paper's premise)."""

import pytest

from repro.compiler import compile_module
from repro.isa import Imm, Instr, Opcode, PhysReg, RClass, connect_use
from repro.isa.encoding import (
    ConstantPool,
    EncodingError,
    decode_connect,
    decode_opcode,
    encodable_core_size,
    encode,
    encode_program,
)
from repro.sim import paper_machine
from repro.workloads import workload


def r(n, cls=RClass.INT):
    return PhysReg(cls, n)


def enc(instr, target=None):
    return encode(instr, ConstantPool(), target)


class TestOperandFields:
    def test_core_registers_encode(self):
        word = enc(Instr(Opcode.ADD, dest=r(5), srcs=(r(6), r(31))))
        assert isinstance(word, int) and 0 <= word < (1 << 32)

    def test_extended_register_cannot_be_named(self):
        """The paper's motivating limitation, verbatim."""
        with pytest.raises(EncodingError, match="connect"):
            enc(Instr(Opcode.ADD, dest=r(5), srcs=(r(6), r(32))))

    def test_encodable_core_size(self):
        assert encodable_core_size() == 32

    def test_fp_class_bit_distinguishes_files(self):
        a = enc(Instr(Opcode.MOVE, dest=r(5), srcs=(r(6),)))
        b = enc(Instr(Opcode.FMOV, dest=r(5, RClass.FP),
                      srcs=(r(6, RClass.FP),)))
        assert a != b

    def test_virtual_register_rejected(self):
        from repro.isa import VReg
        with pytest.raises(EncodingError, match="virtual"):
            enc(Instr(Opcode.MOVE, dest=VReg(RClass.INT, 0),
                      srcs=(r(1),)))


class TestConnectEncoding:
    def test_single_connect_reaches_all_256_registers(self):
        word = enc(connect_use(RClass.INT, 31, 255))
        decoded = decode_connect(word)
        assert decoded.connect_updates() == [(RClass.INT, "read", 31, 255)]

    def test_combined_connect_roundtrip(self):
        instr = Instr(Opcode.CDU, imm=(RClass.FP, 4, 100, 6, 101))
        decoded = decode_connect(enc(instr))
        assert decoded.imm == instr.imm

    def test_combined_connect_second_pair_limited_to_127(self):
        instr = Instr(Opcode.CUU, imm=(RClass.INT, 1, 30, 2, 200))
        with pytest.raises(EncodingError, match="second-pair"):
            enc(instr)

    def test_connect_target_beyond_256_rejected(self):
        with pytest.raises(EncodingError, match="256"):
            enc(connect_use(RClass.INT, 1, 300))

    def test_decode_connect_rejects_non_connect(self):
        with pytest.raises(EncodingError):
            decode_connect(enc(Instr(Opcode.NOP)))


class TestImmediatesAndPool:
    def test_small_li_is_inline(self):
        pool = ConstantPool()
        encode(Instr(Opcode.LI, dest=r(5), imm=1234), pool)
        assert len(pool) == 0

    def test_large_li_goes_to_pool(self):
        pool = ConstantPool()
        encode(Instr(Opcode.LI, dest=r(5), imm=1 << 40), pool)
        assert pool.values == [1 << 40]

    def test_fp_constant_goes_to_pool(self):
        pool = ConstantPool()
        encode(Instr(Opcode.LIF, dest=r(4, RClass.FP), imm=2.5), pool)
        assert pool.values == [2.5]

    def test_pool_interns_duplicates(self):
        pool = ConstantPool()
        for _ in range(3):
            encode(Instr(Opcode.LI, dest=r(5), imm=1 << 40), pool)
        assert len(pool) == 1

    def test_alu_large_immediate_uses_pool(self):
        pool = ConstantPool()
        encode(Instr(Opcode.AND, dest=r(5), srcs=(r(6), Imm(0xFFFFFF))),
               pool)
        assert 0xFFFFFF in pool.values

    def test_memory_offset_limit(self):
        with pytest.raises(EncodingError, match="10-bit"):
            enc(Instr(Opcode.LOAD, dest=r(5), srcs=(r(6),), imm=5000))

    def test_store_with_constant_value_and_base(self):
        pool = ConstantPool()
        encode(Instr(Opcode.STORE, srcs=(Imm(5), Imm(4096)), imm=-1), pool)
        assert 5 in pool.values and 4096 in pool.values


class TestControl:
    def test_branch_needs_resolved_target(self):
        instr = Instr(Opcode.BEQ, srcs=(r(5), r(6)), label="x")
        with pytest.raises(EncodingError, match="unresolved"):
            enc(instr)
        word = enc(instr, target=100)
        assert word & 0xFFF == 100

    def test_branch_immediate_uses_pool(self):
        pool = ConstantPool()
        encode(Instr(Opcode.BLT, srcs=(r(5), Imm(897)), label="x"),
               pool, target=3)
        assert 897 in pool.values

    def test_hint_bit(self):
        taken = enc(Instr(Opcode.BNE, srcs=(r(5), r(6)), label="x",
                          hint_taken=True), target=9)
        not_taken = enc(Instr(Opcode.BNE, srcs=(r(5), r(6)), label="x",
                              hint_taken=False), target=9)
        assert taken != not_taken

    def test_opcode_roundtrip_for_all_opcodes(self):
        for op in Opcode:
            word = (list(Opcode).index(op)) << 26
            assert decode_opcode(word) is op


class TestWholeProgram:
    def test_compiled_rc_program_encodes(self):
        """A whole compiled with-RC binary fits the 32-bit format when the
        physical file is 128 registers (combined-connect field limit)."""
        module = workload("cmp").module()
        cfg = paper_machine(issue_width=4, int_core=16, fp_core=32,
                            rc_class=RClass.INT, rc_total=128)
        out = compile_module(module, cfg)
        words, pool = encode_program(out.program.instrs,
                                     out.program.targets)
        assert len(words) == len(out.program)
        assert all(0 <= w < (1 << 32) for w in words)
        # connect opcodes survive the roundtrip
        for word, instr in zip(words, out.program.instrs):
            assert decode_opcode(word) is instr.op
