"""Tests for the experiment runner, report rendering, and figure plumbing."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    ExperimentRunner,
    FigureResult,
    Series,
    ablation_cpistack,
    ablation_unroll,
    figure7,
    geomean,
    table1,
)
from repro.experiments.figures import _config, _fixed_pressure_config
from repro.experiments.runner import RunRecord, _config_key
from repro.isa import RClass
from repro.sim import paper_machine, unlimited_machine


@pytest.fixture()
def runner(tmp_path):
    return ExperimentRunner(scale=1, cache_dir=tmp_path / "cache")


class TestReport:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, 2.0]) == pytest.approx(2.0)  # zeros skipped

    def test_render_contains_benchmarks_and_geomean(self):
        fig = FigureResult("Figure X", "demo")
        fig.series.append(Series("a", {"cmp": 1.5, "grep": 2.0}))
        fig.series.append(Series("b", {"cmp": 1.0}))
        text = fig.render()
        assert "Figure X" in text
        assert "cmp" in text and "grep" in text
        assert "geomean" in text
        assert "-" in text.splitlines()[-3]  # missing value placeholder

    def test_series_lookup(self):
        fig = FigureResult("F", "t", [Series("a", {"x": 1.0})])
        assert fig.series_by_label("a").values["x"] == 1.0
        with pytest.raises(KeyError):
            fig.series_by_label("zzz")


class TestRunner:
    def test_config_key_distinguishes_configs(self):
        a = paper_machine(issue_width=4, int_core=16)
        b = paper_machine(issue_width=4, int_core=16, rc_class=RClass.INT)
        c = paper_machine(issue_width=8, int_core=16)
        keys = {_config_key(x) for x in (a, b, c)}
        assert len(keys) == 3

    def test_run_verifies_and_caches(self, runner):
        cfg = paper_machine(issue_width=2, int_core=16)
        rec1 = runner.run("cmp", cfg)
        assert rec1.checksum_ok
        assert rec1.cycles > 0
        # Second call must come from cache (same object contents).
        rec2 = runner.run("cmp", cfg)
        assert rec2 == rec1

    def test_disk_cache_survives_new_runner(self, runner, tmp_path):
        cfg = paper_machine(issue_width=2, int_core=16)
        rec1 = runner.run("grep", cfg)
        fresh = ExperimentRunner(scale=1, cache_dir=tmp_path / "cache")
        rec2 = fresh.run("grep", cfg)
        assert rec2 == rec1

    def test_speedup_baseline_is_scalar_single_issue(self, runner):
        base = runner.baseline_cycles("cmp")
        assert base > 0
        assert runner.speedup("cmp", unlimited_machine(1),
                              opt_level="scalar") == pytest.approx(1.0)

    def test_rc_class_follows_benchmark_kind(self, runner):
        assert runner.rc_class_for("cmp") is RClass.INT
        assert runner.rc_class_for("tomcatv") is RClass.FP

    def test_unknown_benchmark_raises(self, runner):
        with pytest.raises(ConfigError):
            runner.run("doom", unlimited_machine(1))

    def test_record_derived_metrics(self):
        rec = RunRecord(
            benchmark="x", cycles=100, instructions=200, ipc=2.0,
            checksum_ok=True, total_static=120, program_static=80,
            spill_static=10, connect_static=6, callsave_static=4,
            spilled_vregs=2, extended_vregs=3, dyn_connects=50,
            dyn_spills=40, mispredicts=1,
        )
        assert rec.overhead_static == 20
        assert rec.code_size_increase == pytest.approx(0.2)
        assert rec.callsave_increase == pytest.approx(0.04)


class TestFigures:
    def test_table1_is_static(self):
        fig = table1()
        assert fig.series[0].values["INT divide"] == 10.0
        assert any("1/1-slot" in note for note in fig.notes)

    def test_figure7_subset(self, runner):
        fig = figure7(runner, benchmarks=("cmp",))
        assert [s.label for s in fig.series] == [
            "1-issue", "2-issue", "4-issue", "8-issue"]
        values = [s.values["cmp"] for s in fig.series]
        assert values[0] <= values[2]  # wider machines are not slower

    def test_config_helper_targets_right_class(self):
        int_cfg = _config("cmp", rc=True, int_core=16, fp_core=32)
        assert int_cfg.int_spec.has_rc and not int_cfg.fp_spec.has_rc
        assert int_cfg.fp_spec.core == 64  # other file fixed at 64
        fp_cfg = _config("tomcatv", rc=True, int_core=16, fp_core=32)
        assert fp_cfg.fp_spec.has_rc and not fp_cfg.int_spec.has_rc
        assert fp_cfg.int_spec.core == 64

    def test_ablation_unroll_subset(self, runner):
        fig = ablation_unroll(runner, benchmarks=("cmp",))
        assert len(fig.series) == 6  # 3 unroll factors x with/without RC

    def test_ablation_cpistack_subset(self, runner):
        fig = ablation_cpistack(runner, benchmarks=("cmp",))
        # 2 machines (no-RC / RC) x 4 cycle buckets, stacked per machine.
        assert len(fig.series) == 8
        labels = [s.label for s in fig.series]
        assert "no-issue" in labels and "RC-raw_interlock" in labels
        for tag in ("no", "RC"):
            rec = runner.cached(
                "cmp", _fixed_pressure_config("cmp", rc=(tag == "RC"),
                                              issue=4, load=2),
                collect_cpi=True)
            stacked = sum(s.values["cmp"] for s in fig.series
                          if s.label.startswith(f"{tag}-"))
            assert stacked == pytest.approx(
                rec.cpi["cycles"] / rec.cpi["instructions"])


class TestExport:
    def _fig(self):
        fig = FigureResult("Figure X", "demo")
        fig.series.append(Series("a", {"cmp": 1.5, "grep": 2.0}))
        fig.series.append(Series("b", {"cmp": 3.0, "grep": 4.0}))
        return fig

    def test_to_rows(self):
        rows = self._fig().to_rows()
        assert rows[0] == {"benchmark": "cmp", "a": 1.5, "b": 3.0}
        assert rows[-1]["benchmark"] == "geomean"
        assert rows[-1]["a"] == pytest.approx((1.5 * 2.0) ** 0.5)

    def test_to_csv(self):
        csv_text = self._fig().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "benchmark,a,b"
        assert lines[1].startswith("cmp,1.5,3.0")

    def test_to_json_roundtrips(self):
        import json
        doc = json.loads(self._fig().to_json())
        assert doc["figure"] == "Figure X"
        assert doc["series"] == ["a", "b"]
        assert doc["rows"][0]["a"] == 1.5
