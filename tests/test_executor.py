"""Tests for the sweep executor and the reworked experiment cache layer.

Covers the cache-key collision fix (full latency tuple + max_cycles),
corrupt/old-schema cache eviction, automatic code-fingerprint
invalidation, and serial/parallel sweep equivalence.
"""

import dataclasses
import pickle

import pytest

from repro.experiments import (
    ExperimentRunner,
    SweepExecutor,
    SweepJob,
    code_fingerprint,
    figure7,
)
from repro.experiments import executor as executor_mod
from repro.experiments import runner as runner_mod
from repro.experiments.runner import RunRecord, _config_key
from repro.isa import LatencyModel
from repro.sim import MachineConfig, unlimited_machine


@pytest.fixture()
def runner(tmp_path):
    return ExperimentRunner(scale=1, cache_dir=tmp_path / "cache")


def _cfg(**lat):
    return MachineConfig(issue_width=2, latency=LatencyModel(**lat))


class TestConfigKey:
    def test_distinct_for_unkeyed_latency(self):
        """Regression: configs differing only in a non-load/connect latency
        must not collide (they previously shared one cache record)."""
        a = _cfg()
        b = _cfg(int_mul=5)
        c = _cfg(fp_div=12)
        keys = {_config_key(x) for x in (a, b, c)}
        assert len(keys) == 3

    def test_distinct_for_max_cycles(self):
        a = MachineConfig(issue_width=2)
        b = MachineConfig(issue_width=2, max_cycles=1_000_000)
        assert _config_key(a) != _config_key(b)

    def test_covers_every_latency_field(self):
        base = _config_key(_cfg())
        for f in dataclasses.fields(LatencyModel):
            if f.name == "load":
                other = _cfg(load=4)
            elif f.name == "connect":
                other = _cfg(connect=1)
            else:
                other = _cfg(**{f.name: getattr(LatencyModel(), f.name) + 1})
            assert _config_key(other) != base, f.name

    def test_distinct_cached_cycles(self, runner):
        """The two keys must map to independently computed records."""
        fast = runner.run("cmp", _cfg())
        slow = runner.run("cmp", _cfg(int_alu=3))
        assert fast.cycles != slow.cycles
        # And both survive in the cache side by side.
        assert runner.cached("cmp", _cfg()).cycles == fast.cycles
        assert runner.cached("cmp", _cfg(int_alu=3)).cycles == slow.cycles


class TestCacheHygiene:
    def test_corrupt_cache_file_deleted_and_recomputed(self, runner):
        cfg = _cfg()
        rec = runner.run("cmp", cfg)
        key = runner.cache_key("cmp", cfg)
        path = runner._cache_path(key)
        assert path.exists()
        path.write_bytes(b"not a pickle")
        fresh = ExperimentRunner(scale=1, cache_dir=runner.cache_dir)
        assert fresh._load(key) is None
        assert not path.exists()  # bad file evicted, not re-parsed forever
        assert fresh.run("cmp", cfg) == rec
        assert fresh.cache_misses == 1

    def test_old_schema_pickle_rejected(self, runner, tmp_path):
        cfg = _cfg()
        runner.run("cmp", cfg)
        key = runner.cache_key("cmp", cfg)
        path = runner._cache_path(key)
        # Simulate an old-schema record: unpickles fine but lacks fields.
        state = dict(runner._memory[key].__dict__)
        del state["mispredicts"]
        stale = object.__new__(RunRecord)
        stale.__dict__.update(state)
        path.write_bytes(pickle.dumps(stale))
        fresh = ExperimentRunner(scale=1, cache_dir=runner.cache_dir)
        assert fresh._load(key) is None
        assert not path.exists()

    def test_atomic_store_leaves_no_tmp_files(self, runner):
        runner.run("cmp", _cfg())
        leftovers = list(runner.cache_dir.glob("*.tmp"))
        assert leftovers == []

    def test_hit_miss_counters(self, runner):
        cfg = _cfg()
        runner.run("cmp", cfg)
        runner.run("cmp", cfg)
        assert runner.cache_misses == 1
        assert runner.cache_hits == 1


class TestFingerprint:
    def test_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()

    def test_fingerprint_tracks_source_edits(self, tmp_path, monkeypatch):
        """Editing any fingerprinted source file must change the hash."""
        import shutil

        import repro.sim as sim_pkg

        copy = tmp_path / "sim"
        shutil.copytree(sim_pkg.__path__[0], copy)
        before = code_fingerprint(refresh=True)
        monkeypatch.setattr(sim_pkg, "__path__", [str(copy)])
        assert code_fingerprint(refresh=True) == before  # same content
        (copy / "core.py").write_text(
            (copy / "core.py").read_text() + "\n# edited\n")
        assert code_fingerprint(refresh=True) != before
        monkeypatch.undo()
        code_fingerprint(refresh=True)

    def test_fingerprint_change_invalidates_cache(self, tmp_path, monkeypatch):
        """Acceptance: a code change (monkeypatched fingerprint) makes
        previously cached records invisible — no manual version bump."""
        cfg = _cfg()
        r1 = ExperimentRunner(scale=1, cache_dir=tmp_path / "c")
        r1.run("cmp", cfg)

        monkeypatch.setattr(runner_mod, "_fingerprint_cache", "deadbeef")
        r2 = ExperimentRunner(scale=1, cache_dir=tmp_path / "c")
        assert r2._fingerprint == "deadbeef"
        assert r2.cached("cmp", cfg) is None
        r2.run("cmp", cfg)
        assert r2.cache_misses == 1 and r2.cache_hits == 0


class TestSweepExecutor:
    def _jobs(self):
        return [
            SweepJob("cmp", unlimited_machine(1), opt_level="scalar"),
            SweepJob("cmp", _cfg()),
            SweepJob("cmp", _cfg(int_alu=3)),
            SweepJob("grep", _cfg()),
        ]

    def test_serial_executor_matches_runner(self, runner, tmp_path):
        serial = ExperimentRunner(scale=1, cache_dir=tmp_path / "serial")
        expected = [serial.run(j.benchmark, j.config, **j.kwargs())
                    for j in self._jobs()]
        ex = SweepExecutor(runner=runner, jobs=1)
        results = ex.run(self._jobs())
        assert [r.record for r in results] == expected
        assert ex.stats.misses == 4 and ex.stats.hits == 0

    def test_parallel_matches_serial_record_for_record(self, tmp_path):
        serial = ExperimentRunner(scale=1, cache_dir=tmp_path / "serial")
        expected = [serial.run(j.benchmark, j.config, **j.kwargs())
                    for j in self._jobs()]
        par_runner = ExperimentRunner(scale=1, cache_dir=tmp_path / "par")
        ex = SweepExecutor(runner=par_runner, jobs=2)
        results = ex.run(self._jobs())
        assert [r.record for r in results] == expected
        assert all(not r.from_cache for r in results)
        # Second pass: everything a cache hit, no pool traffic.
        again = SweepExecutor(runner=par_runner, jobs=2).run(self._jobs())
        assert [r.record for r in again] == expected
        assert all(r.from_cache for r in again)

    def test_parallel_and_serial_caches_byte_identical(self, tmp_path):
        """Acceptance: cold parallel run produces byte-identical RunRecords
        (pickles) to the serial path."""
        serial = ExperimentRunner(scale=1, cache_dir=tmp_path / "serial")
        SweepExecutor(runner=serial, jobs=1).run(self._jobs())
        par = ExperimentRunner(scale=1, cache_dir=tmp_path / "par")
        SweepExecutor(runner=par, jobs=2).run(self._jobs())
        serial_files = sorted(p.name for p in (tmp_path / "serial").iterdir())
        par_files = sorted(p.name for p in (tmp_path / "par").iterdir())
        assert serial_files == par_files
        for name in serial_files:
            assert ((tmp_path / "serial" / name).read_bytes()
                    == (tmp_path / "par" / name).read_bytes())

    def test_duplicate_jobs_computed_once(self, runner):
        job = SweepJob("cmp", _cfg())
        ex = SweepExecutor(runner=runner, jobs=2)
        results = ex.run([job, job, job])
        assert len(results) == 3
        assert len({r.record.cycles for r in results}) == 1
        assert runner.cache_misses == 1

    def test_progress_callback_sees_every_job(self, runner):
        seen = []
        ex = SweepExecutor(runner=runner, jobs=1,
                           progress=lambda done, total, res:
                           seen.append((done, total, res.from_cache)))
        ex.run(self._jobs())
        assert [s[0] for s in seen] == [1, 2, 3, 4]
        assert all(s[1] == 4 for s in seen)

    def test_errors_are_reported_not_raised(self, runner):
        ex = SweepExecutor(runner=runner, jobs=1)
        results = ex.run([SweepJob("doom", _cfg())])
        assert results[0].record is None
        assert "doom" in results[0].error or "ConfigError" in results[0].error
        assert ex.stats.errors == 1

    def test_run_figure_footer_and_values(self, runner, tmp_path):
        ex = SweepExecutor(runner=runner, jobs=1)
        fig = ex.run_figure(figure7, benchmarks=("cmp",))
        assert fig.footer is not None and "cache hits" in fig.footer
        assert "[sweep:" in fig.render()
        # The executor-driven figure matches the plain serial figure.
        plain = figure7(
            ExperimentRunner(scale=1, cache_dir=tmp_path / "plain"),
            benchmarks=("cmp",))
        assert [s.values for s in fig.series] == [
            s.values for s in plain.series]

    def test_collect_jobs_dedupes_baseline(self, runner):
        ex = SweepExecutor(runner=runner, jobs=1)
        jobs = ex.collect_jobs(figure7, benchmarks=("cmp",))
        # 4 issue widths + 1 shared baseline, not 4 baselines.
        assert len(jobs) == 5


class TestBenchCommon:
    @pytest.fixture()
    def common(self, monkeypatch):
        from pathlib import Path

        monkeypatch.syspath_prepend(
            str(Path(__file__).resolve().parent.parent / "benchmarks"))
        import _common

        monkeypatch.setattr(_common, "_runners", {})
        return _common

    def test_shared_runner_rekeys_on_env(self, common, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        r1 = common.shared_runner()
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
        r2 = common.shared_runner()
        assert r1 is not r2 and r1.cache_dir != r2.cache_dir
        monkeypatch.setenv("REPRO_SCALE", "2")
        r3 = common.shared_runner()
        assert r3 is not r2 and r3.scale == 2
        monkeypatch.setenv("REPRO_SCALE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
        assert common.shared_runner() is r1  # memoized per env key

    def test_emit_creates_missing_results_tree(self, common, monkeypatch,
                                               tmp_path, capsys):
        from repro.experiments import FigureResult, Series

        target = tmp_path / "fresh" / "results"  # parent missing too
        monkeypatch.setattr(common, "RESULTS_DIR", target)
        fig = FigureResult("Figure X", "demo",
                           [Series("a", {"cmp": 1.0})])
        common.emit(fig)
        assert (target / "figurex.txt").exists()


class TestDefaultJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert executor_mod.default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert executor_mod.default_jobs() >= 1
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert executor_mod.default_jobs() == 1


class TestCpiCollection:
    def test_run_attaches_validated_cpi_dict(self, runner):
        rec = runner.run("cmp", _cfg(), collect_cpi=True)
        cpi = rec.cpi
        assert cpi is not None
        assert cpi["issue"] + cpi["raw_interlock"] + cpi["map_busy"] \
            + sum(cpi["redirect"].values()) == cpi["cycles"] == rec.cycles

    def test_cpi_observation_does_not_change_the_record(self, runner,
                                                        tmp_path):
        plain = ExperimentRunner(scale=1, cache_dir=tmp_path / "plain")
        a = plain.run("cmp", _cfg())
        b = runner.run("cmp", _cfg(), collect_cpi=True)
        assert (a.cycles, a.instructions, a.ipc) == \
            (b.cycles, b.instructions, b.ipc)

    def test_cpi_less_cache_record_upgraded_in_place(self, runner):
        without = runner.run("cmp", _cfg())
        assert without.cpi is None
        assert runner.cached("cmp", _cfg(), collect_cpi=True) is None
        upgraded = runner.run("cmp", _cfg(), collect_cpi=True)
        assert upgraded.cpi is not None
        assert upgraded.cycles == without.cycles
        assert runner.cache_misses == 2
        # The upgrade sticks: both flavours of lookup now hit.
        assert runner.run("cmp", _cfg()).cpi is not None
        assert runner.run("cmp", _cfg(), collect_cpi=True) is upgraded
        assert runner.cache_misses == 2

    def test_collect_jobs_upgrades_deduped_job(self, runner):
        ex = SweepExecutor(runner=runner, jobs=1, collect_cpi=True)
        jobs = ex.collect_jobs(figure7, benchmarks=("cmp",))
        assert jobs and all(j.collect_cpi for j in jobs)

    def test_executor_collects_cpi_per_job(self, runner):
        ex = SweepExecutor(runner=runner, jobs=1, collect_cpi=True)
        results = ex.run([SweepJob("cmp", _cfg())])
        assert results[0].record.cpi is not None

    def test_parallel_cpi_records_reach_parent_cache(self, tmp_path):
        par = ExperimentRunner(scale=1, cache_dir=tmp_path / "par")
        ex = SweepExecutor(runner=par, jobs=2, collect_cpi=True)
        results = ex.run([SweepJob("cmp", _cfg()),
                          SweepJob("grep", _cfg())])
        assert all(r.record.cpi is not None for r in results)
        assert par.cached("cmp", _cfg(), collect_cpi=True) is not None

    def test_figure_footer_gets_cpi_mix(self, runner):
        ex = SweepExecutor(runner=runner, jobs=1, collect_cpi=True)
        fig = ex.run_figure(figure7, benchmarks=("cmp",))
        assert "cpi mix:" in fig.footer
        assert "issue" in fig.footer

    def test_footer_unchanged_without_cpi(self, runner):
        ex = SweepExecutor(runner=runner, jobs=1)
        fig = ex.run_figure(figure7, benchmarks=("cmp",))
        assert "cpi mix:" not in fig.footer


class TestProcessSafeCounters:
    """The parent runner's cache counters must aggregate worker activity.

    Pool workers run jobs on their own (forked or freshly built) runners;
    counters bumped there used to be invisible to the parent, which instead
    guessed one miss per computed record and never saw compile-cache
    traffic.  Workers now ship a per-job counter delta back.
    """

    def _jobs(self):
        return [
            SweepJob("cmp", unlimited_machine(1), opt_level="scalar"),
            SweepJob("cmp", _cfg()),
            SweepJob("cmp", _cfg(int_alu=3)),
            SweepJob("grep", _cfg()),
        ]

    def test_parallel_cold_sweep_aggregates_worker_counters(self, tmp_path):
        runner = ExperimentRunner(scale=1, cache_dir=tmp_path / "c")
        ex = SweepExecutor(runner=runner, jobs=2)
        ex.run(self._jobs())
        # Every record computed exactly once, somewhere — and the parent's
        # totals say so, including the compile-side traffic that previously
        # vanished in the workers.
        assert runner.cache_misses == 4
        assert runner.cache_hits == 0
        assert runner.compile_misses == 4
        assert ex.stats.misses == 4

    def test_parallel_sim_only_variants_report_compile_traffic(self,
                                                               tmp_path):
        runner = ExperimentRunner(scale=1, cache_dir=tmp_path / "c")
        cfg = unlimited_machine(issue_width=4)
        jobs = [SweepJob("cmp", cfg),
                SweepJob("cmp", dataclasses.replace(cfg, max_cycles=10**8)),
                SweepJob("cmp", dataclasses.replace(cfg,
                                                    extra_decode_stage=True))]
        SweepExecutor(runner=runner, jobs=2).run(jobs)
        assert runner.cache_misses == 3
        # All three jobs share one compile key; how the hits and misses
        # split depends on which workers the jobs landed on, but the total
        # compile traffic must be fully accounted for (and each worker that
        # compiled did so exactly once).
        assert runner.compile_hits + runner.compile_misses == 3
        assert 1 <= runner.compile_misses <= 2

    def test_serial_counters_unchanged(self, tmp_path):
        runner = ExperimentRunner(scale=1, cache_dir=tmp_path / "c")
        SweepExecutor(runner=runner, jobs=1).run(self._jobs())
        assert runner.cache_misses == 4
        assert runner.compile_misses == 4

    def test_counters_snapshot_roundtrip(self, tmp_path):
        runner = ExperimentRunner(scale=1, cache_dir=tmp_path / "c")
        before = runner.counters()
        assert before == {"cache_hits": 0, "cache_misses": 0,
                          "compile_hits": 0, "compile_misses": 0}
        runner.absorb_counters({"cache_hits": 2, "compile_misses": 1})
        assert runner.cache_hits == 2 and runner.compile_misses == 1


class TestCompileCache:
    def test_sim_only_variants_reuse_one_compilation(self, runner):
        cfg = unlimited_machine(issue_width=4)
        runner.run("cmp", cfg)
        assert runner.compile_misses == 1
        # extra_decode_stage and max_cycles are simulate-only: same program
        runner.run("cmp", dataclasses.replace(cfg, extra_decode_stage=True))
        runner.run("cmp", dataclasses.replace(cfg, max_cycles=10**8))
        assert runner.compile_misses == 1
        assert runner.compile_hits == 2

    def test_compile_affecting_fields_recompile(self, runner):
        cfg = unlimited_machine(issue_width=4)
        runner.run("cmp", cfg)
        runner.run("cmp", dataclasses.replace(cfg, issue_width=2))
        assert runner.compile_misses == 2
        assert runner.compile_hits == 0

    def test_sim_key_excluded_from_compile_key(self):
        from repro.experiments.runner import _compile_key, _sim_key

        cfg = unlimited_machine(issue_width=4)
        var = dataclasses.replace(cfg, extra_decode_stage=True,
                                  max_cycles=10**8)
        assert _compile_key(cfg) == _compile_key(var)
        assert _sim_key(cfg) != _sim_key(var)
        assert _config_key(cfg) != _config_key(var)

    def test_engine_excluded_from_record_keys(self, tmp_path):
        ref = ExperimentRunner(scale=1, cache_dir=tmp_path / "c",
                               engine="reference")
        fast = ExperimentRunner(scale=1, cache_dir=tmp_path / "c",
                                engine="fast")
        cfg = unlimited_machine(issue_width=2)
        assert (ref.cache_key("cmp", cfg) == fast.cache_key("cmp", cfg))
        # a record computed by one engine satisfies the other (bit-exact)
        rec_ref = ref.run("cmp", cfg)
        rec_fast = fast.run("cmp", cfg)
        assert rec_ref == rec_fast
        assert fast.cache_misses == 0 and fast.cache_hits == 1
