"""Tests for the memory-provenance alias analysis."""

from repro.compiler.alias import annotate_memory_aliases, annotate_module
from repro.ir import FnBuilder, Module
from repro.isa import Opcode


def mem_ops(fn):
    return [i for _, i in fn.iter_instrs()
            if i.op in (Opcode.LOAD, Opcode.FLOAD, Opcode.STORE,
                        Opcode.FSTORE)]


class TestProvenance:
    def test_direct_global_access_tagged(self):
        m = Module()
        m.add_global("a", 8)
        b = FnBuilder(m, "main")
        base = b.la("a")
        b.store(b.li(1), base, 3)
        b.halt()
        fn = b.done()
        assert annotate_memory_aliases(fn, m) == 1
        assert mem_ops(fn)[0].alias == ("global", "a")

    def test_indexed_access_keeps_provenance(self):
        m = Module()
        m.add_global("a", 8)
        b = FnBuilder(m, "main")
        base = b.la("a")
        i = b.li(2)
        j = b.mul(i, 2)              # arithmetic: not an address
        v = b.load(b.add(base, j), 0)
        b.store(v, b.sub(base, -1), 0)
        b.halt()
        fn = b.done()
        assert annotate_memory_aliases(fn, m) == 2
        assert all(op.alias == ("global", "a") for op in mem_ops(fn))

    def test_two_globals_get_distinct_tags(self):
        m = Module()
        m.add_global("a", 8)
        m.add_global("b", 8)
        b = FnBuilder(m, "main")
        pa, pb = b.la("a"), b.la("b")
        b.store(b.load(pa, 0), pb, 0)
        b.halt()
        fn = b.done()
        annotate_memory_aliases(fn, m)
        load, store = mem_ops(fn)
        assert load.alias == ("global", "a")
        assert store.alias == ("global", "b")

    def test_sum_of_two_addresses_is_unknown(self):
        m = Module()
        m.add_global("a", 8)
        m.add_global("b", 8)
        b = FnBuilder(m, "main")
        weird = b.add(b.la("a"), b.la("b"))
        b.store(b.li(0), weird, 0)
        b.halt()
        fn = b.done()
        assert annotate_memory_aliases(fn, m) == 0
        assert mem_ops(fn)[0].alias is None

    def test_call_result_is_unknown_address(self):
        m = Module()
        m.add_global("a", 8)
        b = FnBuilder(m, "getp", ret="i")
        b.ret(b.la("a"))
        b.done()
        b = FnBuilder(m, "main")
        p = b.call("getp", ret="i")
        b.store(b.li(1), p, 0)
        b.halt()
        b.done()
        annotate_module(m)
        main_ops = mem_ops(m.function("main"))
        assert main_ops[0].alias is None  # conservative

    def test_join_with_agreeing_provenance(self):
        m = Module()
        m.add_global("a", 16)
        b = FnBuilder(m, "main")
        base = b.la("a")
        sel = b.li(1)
        p = b.add(base, 0, name="p")
        b.br("bnez", sel, "alt")
        b.block("keep")
        b.jmp("use")
        b.block("alt")
        b.add(base, 8, dest=p)
        b.jmp("use")
        b.block("use")
        b.store(b.li(5), p, 0)
        b.halt()
        fn = b.done()
        annotate_memory_aliases(fn, m)
        store = mem_ops(fn)[0]
        assert store.alias == ("global", "a")

    def test_join_with_conflicting_provenance_degrades(self):
        m = Module()
        m.add_global("a", 8)
        m.add_global("b", 8)
        bb = FnBuilder(m, "main")
        sel = bb.li(1)
        p = bb.la("a")
        bb.br("bnez", sel, "alt")
        bb.block("keep")
        bb.jmp("use")
        bb.block("alt")
        bb.la("b", dest=p)
        bb.jmp("use")
        bb.block("use")
        bb.store(bb.li(5), p, 0)
        bb.halt()
        fn = bb.done()
        annotate_memory_aliases(fn, m)
        assert mem_ops(fn)[0].alias is None

    def test_immediate_base_tagged(self):
        m = Module()
        g = m.add_global("a", 8)
        b = FnBuilder(m, "main")
        b.store(b.li(1), g.addr, 2)  # literal base address
        b.halt()
        fn = b.done()
        assert annotate_memory_aliases(fn, m) == 1

    def test_loop_carried_pointer_keeps_tag(self):
        m = Module()
        m.add_global("a", 64)
        b = FnBuilder(m, "main")
        p = b.la("a")
        i = b.li(0)
        b.block("loop")
        b.store(i, p, 0)
        b.add(p, 1, dest=p)
        b.add(i, 1, dest=i)
        b.br("blt", i, 64, "loop")
        b.block("exit")
        b.halt()
        fn = b.done()
        assert annotate_memory_aliases(fn, m) == 1
        assert mem_ops(fn)[0].alias == ("global", "a")
