"""Unit tests for calling-convention lowering and frame management."""

import pytest

from repro.compiler import (
    FrameLayout,
    InArg,
    LocalSlot,
    OutArg,
    insert_prologue_epilogue,
    lower_calls,
)
from repro.compiler.callconv import check_no_symbolic_offsets
from repro.errors import CompileError
from repro.ir import FnBuilder, Module
from repro.isa import (
    FP_RETVAL,
    INT_RETVAL,
    Instr,
    Opcode,
    PhysReg,
    RClass,
    SP,
    VReg,
)


class TestFrameLayout:
    def test_outgoing_args_below_sp(self):
        frame = FrameLayout(num_params=0)
        assert frame.resolve(OutArg(0)) == -1
        assert frame.resolve(OutArg(2)) == -3

    def test_incoming_args_at_frame_top(self):
        frame = FrameLayout(num_params=2)
        frame.new_slot()
        frame.new_slot()
        # F = 2 locals + 2 params = 4; arg0 at F-1, arg1 at F-2
        assert frame.size == 4
        assert frame.resolve(InArg(0)) == 3
        assert frame.resolve(InArg(1)) == 2

    def test_spill_slots_are_stable(self):
        frame = FrameLayout(num_params=0)
        v = VReg(RClass.INT, 3)
        first = frame.spill_slot(v)
        assert frame.spill_slot(v) == first

    def test_spilled_param_lives_in_inarg_slot(self):
        frame = FrameLayout(num_params=1)
        v = VReg(RClass.INT, 0)
        frame.assign_param_slot(v, 0)
        assert frame.spill_slot(v) == InArg(0)

    def test_unknown_slot_rejected(self):
        frame = FrameLayout(num_params=0)
        with pytest.raises(CompileError):
            frame.resolve(LocalSlot(5))

    def test_unresolvable_offset_rejected(self):
        frame = FrameLayout(num_params=0)
        with pytest.raises(CompileError):
            frame.resolve("nonsense")


class TestLowerCalls:
    def _call_fn(self):
        m = Module()
        b = FnBuilder(m, "callee", params=[("i", "x"), ("f", "y")], ret="i")
        b.ret(b.params[0])
        b.done()
        b = FnBuilder(m, "main")
        f = b.fli(2.0)
        r = b.call("callee", [7, f], ret="i")
        b.store(r, 100, 0)
        b.halt()
        return m, b.done()

    def test_args_become_stack_stores(self):
        _m, fn = self._call_fn()
        lower_calls(fn)
        ops = [i.op for _, i in fn.iter_instrs()]
        call_at = ops.index(Opcode.CALL)
        stores = fn.entry.instrs[call_at - 2: call_at]
        assert stores[0].op is Opcode.STORE
        assert stores[0].imm == OutArg(0)
        assert stores[1].op is Opcode.FSTORE
        assert stores[1].imm == OutArg(1)
        assert all(s.srcs[1] == SP for s in stores)

    def test_retval_moved_from_convention_register(self):
        _m, fn = self._call_fn()
        lower_calls(fn)
        instrs = fn.entry.instrs
        call_at = next(i for i, ins in enumerate(instrs)
                       if ins.op is Opcode.CALL)
        move = instrs[call_at + 1]
        assert move.op is Opcode.MOVE
        assert move.srcs == (INT_RETVAL,)

    def test_ret_value_moved_into_retval_register(self):
        m, _fn = self._call_fn()
        callee = m.function("callee")
        lower_calls(callee)
        instrs = callee.entry.instrs
        assert instrs[-2].op is Opcode.MOVE
        assert instrs[-2].dest == INT_RETVAL
        assert instrs[-1].op is Opcode.RET
        assert not instrs[-1].srcs

    def test_fp_return_uses_fp_retval(self):
        m = Module()
        b = FnBuilder(m, "f", ret="f")
        b.ret(b.fli(1.0))
        fn = b.done()
        lower_calls(fn)
        move = fn.entry.instrs[-2]
        assert move.op is Opcode.FMOV
        assert move.dest == FP_RETVAL


class TestPrologueEpilogue:
    def _physical_fn(self, with_ret=True):
        m = Module()
        b = FnBuilder(m, "f")
        block = b.fn.new_block("body")
        block.instrs = [
            Instr(Opcode.LI, dest=PhysReg(RClass.INT, 7), imm=3),
            Instr(Opcode.RET) if with_ret else Instr(Opcode.HALT),
        ]
        m.add_function(b.fn)
        return b.fn

    def test_prologue_block_prepended(self):
        fn = self._physical_fn()
        frame = FrameLayout(num_params=0)
        saves = [PhysReg(RClass.INT, 7)]
        insert_prologue_epilogue(fn, frame, saves, {})
        assert fn.entry.name == "f.prologue"
        ops = [i.op for i in fn.entry.instrs]
        assert ops[0] is Opcode.SUB       # SP adjust
        assert Opcode.STORE in ops        # callee save
        assert ops[-1] is Opcode.JMP

    def test_epilogue_before_every_ret(self):
        fn = self._physical_fn()
        frame = FrameLayout(num_params=0)
        insert_prologue_epilogue(fn, frame, [PhysReg(RClass.INT, 7)], {})
        body = fn.block("body").instrs
        assert body[-1].op is Opcode.RET
        assert body[-2].op is Opcode.ADD  # SP restore
        assert body[-3].op is Opcode.LOAD  # callee-save restore

    def test_entry_function_skips_callee_saves(self):
        fn = self._physical_fn(with_ret=False)
        frame = FrameLayout(num_params=0)
        insert_prologue_epilogue(fn, frame, [PhysReg(RClass.INT, 7)], {},
                                 is_entry=True)
        ops = [i.op for _, i in fn.iter_instrs()]
        assert Opcode.STORE not in ops

    def test_param_loads_inserted(self):
        m = Module()
        b = FnBuilder(m, "g", params=[("i", "x")])
        block = b.fn.new_block("body")
        block.instrs = [Instr(Opcode.RET)]
        m.add_function(b.fn)
        frame = FrameLayout(num_params=1)
        home = PhysReg(RClass.INT, 9)
        insert_prologue_epilogue(b.fn, frame, [], {b.fn.params[0]: home})
        load = next(i for i in b.fn.entry.instrs if i.op is Opcode.LOAD)
        assert load.dest == home
        assert isinstance(load.imm, int)  # InArg already resolved

    def test_symbolic_offsets_resolved_everywhere(self):
        fn = self._physical_fn()
        fn.block("body").instrs.insert(0, Instr(
            Opcode.STORE, srcs=(PhysReg(RClass.INT, 7), SP),
            imm=OutArg(0)))
        frame = FrameLayout(num_params=0)
        insert_prologue_epilogue(fn, frame, [], {})
        check_no_symbolic_offsets(fn)

    def test_check_detects_unresolved(self):
        fn = self._physical_fn()
        fn.block("body").instrs.insert(0, Instr(
            Opcode.STORE, srcs=(PhysReg(RClass.INT, 7), SP),
            imm=OutArg(0)))
        with pytest.raises(CompileError):
            check_no_symbolic_offsets(fn)
