"""Tests for the cycle-level simulator: timing, interlocks, RC decode path."""

import pytest

from repro.errors import SimulationError
from repro.isa import (
    Imm,
    Instr,
    LatencyModel,
    Opcode,
    PhysReg,
    RClass,
    RegFileSpec,
    connect_def,
    connect_use,
)
from repro.rc import RCModel
from repro.sim import (
    MachineConfig,
    Simulator,
    assemble,
    default_memory_channels,
    paper_machine,
    simulate,
    unlimited_machine,
)


def r(n):
    return PhysReg(RClass.INT, n)


def f(n):
    return PhysReg(RClass.FP, n)


def li(dest, value):
    return Instr(Opcode.LI, dest=r(dest), imm=value)


def add(dest, a, b):
    sa = r(a) if isinstance(a, int) else a
    sb = r(b) if isinstance(b, int) else b
    return Instr(Opcode.ADD, dest=r(dest), srcs=(sa, sb))


def halt():
    return Instr(Opcode.HALT)


def config(issue=1, **kwargs):
    defaults = dict(
        issue_width=issue,
        mem_channels=2,
        int_spec=RegFileSpec(RClass.INT, 16, 16),
        fp_spec=RegFileSpec(RClass.FP, 16, 16),
    )
    defaults.update(kwargs)
    return MachineConfig(**defaults)


def rc_config(issue=1, core=8, total=32, connect=0, **kwargs):
    return config(
        issue=issue,
        int_spec=RegFileSpec(RClass.INT, core, total),
        latency=LatencyModel(load=2, connect=connect),
        **kwargs,
    )


class TestBasicExecution:
    def test_li_add_store(self):
        prog = assemble([
            li(5, 20),
            li(6, 22),
            add(7, 5, 6),
            Instr(Opcode.STORE, srcs=(r(7), Imm(0)), imm=100),
            halt(),
        ])
        result = simulate(prog, config())
        assert result.load_word(100) == 42

    def test_single_issue_one_instruction_per_cycle(self):
        prog = assemble([li(5 + i, i) for i in range(4)] + [halt()])
        result = simulate(prog, config(issue=1))
        assert result.cycles == 5
        assert result.stats.instructions == 5

    def test_wide_issue_packs_independent_instructions(self):
        prog = assemble([li(5 + i, i) for i in range(4)] + [halt()])
        result = simulate(prog, config(issue=8))
        # four LIs + halt all independent: issue in one cycle
        assert result.cycles == 1

    def test_raw_dependence_stalls_for_latency(self):
        # mul has latency 3: dependent consumer waits.
        prog = assemble([
            li(5, 6),
            Instr(Opcode.MUL, dest=r(6), srcs=(r(5), r(5))),
            add(7, 6, 6),
            halt(),
        ])
        result = simulate(prog, config(issue=1))
        # cycle0: li, cycle1: mul (r5 ready at 1), r6 ready at 4,
        # cycle4: add, cycle5: halt -> 6 cycles total
        assert result.cycles == 6
        assert result.state.int_regs[7] == 72

    def test_waw_interlock_blocks_second_writer(self):
        prog = assemble([
            li(5, 1),
            Instr(Opcode.DIV, dest=r(6), srcs=(r(5), r(5))),  # latency 10
            li(6, 9),   # WAW on r6: must wait for the divide
            halt(),
        ])
        result = simulate(prog, config(issue=1))
        assert result.cycles >= 11
        assert result.state.int_regs[6] == 9

    def test_int_arithmetic_matches_semantics(self):
        prog = assemble([
            li(5, -7),
            li(6, 2),
            Instr(Opcode.DIV, dest=r(7), srcs=(r(5), r(6))),
            Instr(Opcode.REM, dest=r(8), srcs=(r(5), r(6))),
            halt(),
        ])
        result = simulate(prog, config())
        assert result.state.int_regs[7] == -3
        assert result.state.int_regs[8] == -1

    def test_fp_pipeline(self):
        prog = assemble([
            Instr(Opcode.LIF, dest=f(4), imm=1.5),
            Instr(Opcode.LIF, dest=f(6), imm=2.5),
            Instr(Opcode.FADD, dest=f(8), srcs=(f(4), f(6))),
            Instr(Opcode.FSTORE, srcs=(f(8), Imm(0)), imm=50),
            halt(),
        ])
        result = simulate(prog, config())
        assert result.load_word(50) == pytest.approx(4.0)

    def test_sp_initialized(self):
        prog = assemble([
            Instr(Opcode.STORE, srcs=(r(0), r(0)), imm=-1),
            halt(),
        ], initial_sp=1000)
        result = simulate(prog, config())
        assert result.load_word(999) == 1000


class TestMemorySystem:
    def test_load_latency_two_vs_four(self):
        instrs = [
            li(5, 100),
            Instr(Opcode.LOAD, dest=r(6), srcs=(r(5),), imm=0),
            add(7, 6, 6),
            halt(),
        ]
        c2 = simulate(assemble(instrs), config(latency=LatencyModel(load=2)))
        c4 = simulate(assemble(instrs), config(latency=LatencyModel(load=4)))
        assert c4.cycles - c2.cycles == 2

    def test_memory_channel_limit(self):
        loads = [Instr(Opcode.LOAD, dest=r(5 + i), srcs=(Imm(100),), imm=i)
                 for i in range(4)]
        prog = assemble(loads + [halt()])
        two = simulate(prog, config(issue=8, mem_channels=2))
        four = simulate(prog, config(issue=8, mem_channels=4))
        assert four.cycles < two.cycles
        assert two.stats.mem_channel_stalls > 0

    def test_load_does_not_pass_same_cycle_store(self):
        prog = assemble([
            li(5, 7),
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=200),
            Instr(Opcode.LOAD, dest=r(6), srcs=(Imm(0),), imm=200),
            halt(),
        ])
        result = simulate(prog, config(issue=8))
        assert result.state.int_regs[6] == 7
        # store and load cannot share a cycle: at least 3 cycles
        assert result.cycles >= 3

    def test_initial_memory_image(self):
        prog = assemble([
            Instr(Opcode.LOAD, dest=r(5), srcs=(Imm(0),), imm=300),
            halt(),
        ], initial_memory={300: 77})
        assert simulate(prog, config()).state.int_regs[5] == 77


class TestBranches:
    def _loop_program(self, hint):
        # r5 counts 3..0, loop body is one add.
        return assemble([
            li(5, 3),
            li(6, 0),
            # loop:
            add(6, 6, 5),
            Instr(Opcode.SUB, dest=r(5), srcs=(r(5), Imm(1))),
            Instr(Opcode.BNEZ, srcs=(r(5),), label="loop", hint_taken=hint),
            halt(),
        ], labels={"loop": 2})

    def test_loop_computes_correct_sum(self):
        result = simulate(self._loop_program(True), config())
        assert result.state.int_regs[6] == 6  # 3+2+1

    def test_backward_branch_predicted_taken_by_default(self):
        result = simulate(self._loop_program(None), config())
        # taken twice (predicted), falls out once (mispredicted)
        assert result.stats.mispredicts == 1

    def test_wrong_hint_costs_cycles(self):
        good = simulate(self._loop_program(True), config())
        bad = simulate(self._loop_program(False), config())
        assert bad.cycles > good.cycles
        assert bad.stats.mispredicts == 2  # the two taken iterations

    def test_extra_decode_stage_increases_mispredict_cost(self):
        base = simulate(self._loop_program(False), config())
        extra = simulate(self._loop_program(False),
                         config(extra_decode_stage=True))
        # two mispredicts, one extra cycle each
        assert extra.cycles - base.cycles == 2

    def test_taken_branch_ends_issue_group(self):
        prog = assemble([
            Instr(Opcode.JMP, label="next"),
            li(5, 111),   # skipped
            # next:
            li(6, 7),
            halt(),
        ], labels={"next": 2})
        result = simulate(prog, config(issue=8))
        assert result.state.int_regs[5] == 0
        assert result.state.int_regs[6] == 7
        assert result.cycles == 2  # jmp | li+halt

    def test_call_and_ret(self):
        prog = assemble([
            Instr(Opcode.CALL, label="fn"),
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=400),
            halt(),
            # fn:
            li(5, 99),
            Instr(Opcode.RET),
        ], labels={"fn": 3})
        result = simulate(prog, config())
        assert result.load_word(400) == 99

    def test_ret_without_call_faults(self):
        prog = assemble([Instr(Opcode.RET)])
        with pytest.raises(SimulationError, match="RA stack"):
            simulate(prog, config())

    def test_fall_off_end_faults(self):
        prog = assemble([li(5, 1)])
        with pytest.raises(SimulationError, match="fell off"):
            simulate(prog, config())


class TestRCDecodePath:
    def test_connect_use_redirects_read(self):
        cfg = rc_config()
        prog = assemble([
            li(5, 3),                        # writes core r5
            connect_def(RClass.INT, 5, 20),  # writes of idx5 -> phys 20
            li(5, 42),                       # actually writes phys 20
            connect_use(RClass.INT, 6, 20),  # reads of idx6 -> phys 20
            Instr(Opcode.STORE, srcs=(r(6), Imm(0)), imm=500),
            halt(),
        ])
        result = simulate(prog, cfg)
        assert result.load_word(500) == 42
        assert result.state.int_regs[20] == 42

    def test_model3_auto_reset_read_after_write(self):
        # Section 3 example: after a def through a connected index, reads of
        # the same index see the extended register without a connect-use.
        cfg = rc_config()
        prog = assemble([
            connect_def(RClass.INT, 7, 25),
            li(7, 13),                        # writes phys 25
            add(6, 7, 7),                     # reads idx7 -> must see phys 25
            li(7, 99),                        # write map was reset: core r7
            Instr(Opcode.STORE, srcs=(r(6), Imm(0)), imm=501),
            halt(),
        ])
        result = simulate(prog, cfg)
        assert result.load_word(501) == 26
        assert result.state.int_regs[25] == 13
        assert result.state.int_regs[7] == 99

    def test_no_reset_model_keeps_connections(self):
        cfg = rc_config(rc_model=RCModel.NO_RESET)
        prog = assemble([
            connect_def(RClass.INT, 7, 25),
            li(7, 13),     # phys 25
            li(7, 14),     # still phys 25 (no write reset)
            halt(),
        ])
        result = simulate(prog, cfg)
        assert result.state.int_regs[25] == 14
        assert result.state.int_regs[7] == 0

    def test_read_write_reset_model(self):
        cfg = rc_config(rc_model=RCModel.READ_WRITE_RESET)
        prog = assemble([
            connect_use(RClass.INT, 7, 25),
            connect_def(RClass.INT, 7, 25),
            li(7, 5),      # phys 25; both maps reset home afterwards
            add(6, 7, 7),  # reads core r7 (0)
            halt(),
        ])
        result = simulate(prog, cfg)
        assert result.state.int_regs[6] == 0
        assert result.state.int_regs[25] == 5

    @staticmethod
    def _forwarding_program():
        # Fill cycle 0 with four independent LIs so the connect and its
        # consumer both *want* to issue together in cycle 1.
        return assemble([
            li(5, 42),
            li(1, 1),
            li(2, 2),
            li(3, 3),
            connect_use(RClass.INT, 6, 5),   # alias idx6 -> phys 5
            add(7, 6, 6),
            halt(),
        ])

    def test_zero_cycle_connect_forwarding(self):
        """With forwarding, a connect and its consumer share an issue cycle."""
        result = simulate(self._forwarding_program(),
                          rc_config(issue=4, connect=0))
        assert result.state.int_regs[7] == 84
        assert result.cycles == 2  # (4 LIs) | (connect, add, halt)

    def test_one_cycle_connect_delays_consumer(self):
        fast = simulate(self._forwarding_program(),
                        rc_config(issue=4, connect=0))
        slow = simulate(self._forwarding_program(),
                        rc_config(issue=4, connect=1))
        assert slow.cycles == fast.cycles + 1
        assert slow.state.int_regs[7] == 84

    def test_call_resets_map_to_home(self):
        # Section 4.1: jsr resets the map so the callee sees core registers.
        cfg = rc_config()
        prog = assemble([
            li(5, 7),                         # core r5 = 7
            connect_use(RClass.INT, 5, 20),   # reads of idx5 -> phys 20 (=0)
            Instr(Opcode.CALL, label="sub"),
            halt(),
            # sub: reads idx5 -> must be core r5 again after jsr reset
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=502),
            Instr(Opcode.RET),
        ], labels={"sub": 4})
        result = simulate(prog, cfg)
        assert result.load_word(502) == 7

    def test_connect_rejected_without_rc_support(self):
        prog = assemble([connect_use(RClass.INT, 1, 10), halt()])
        with pytest.raises(SimulationError, match="without RC"):
            Simulator(prog, config())

    def test_unaddressable_register_rejected(self):
        cfg = rc_config(core=8, total=32)
        prog = assemble([li(9, 1), halt()])  # r9 not encodable with 8 core
        with pytest.raises(SimulationError, match="not addressable"):
            Simulator(prog, cfg)

    def test_odd_fp_register_rejected(self):
        prog = assemble([Instr(Opcode.LIF, dest=f(5), imm=1.0), halt()])
        with pytest.raises(SimulationError, match="pair-aligned"):
            Simulator(prog, config())

    def test_connect_operand_out_of_range_rejected(self):
        cfg = rc_config(core=8, total=32)
        prog = assemble([connect_use(RClass.INT, 1, 99), halt()])
        with pytest.raises(SimulationError, match="out of range"):
            Simulator(prog, cfg)


class TestTrapsAndPSW:
    def _trap_program(self):
        return assemble([
            li(5, 7),
            connect_use(RClass.INT, 5, 20),   # reads of idx5 -> phys20 (=0)
            Instr(Opcode.TRAP, imm=3),
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=600),  # uses map
            halt(),
            # handler: store r5 (map bypassed -> core r5), then rte
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=601),
            Instr(Opcode.RTE),
        ], trap_handlers={3: 5})

    def test_trap_bypasses_map_and_rte_restores(self):
        result = simulate(self._trap_program(), rc_config())
        # handler saw the core register (map disabled)
        assert result.load_word(601) == 7
        # after rte the map is re-enabled: idx5 reads phys 20 (= 0)
        assert result.load_word(600) == 0

    def test_unhandled_trap_faults(self):
        prog = assemble([Instr(Opcode.TRAP, imm=9), halt()])
        with pytest.raises(SimulationError, match="no handler"):
            simulate(prog, rc_config())

    def test_mfpsw_mtpsw(self):
        cfg = rc_config()
        prog = assemble([
            Instr(Opcode.MFPSW, dest=r(5)),
            li(6, 0),                      # PSW with map disabled
            Instr(Opcode.MTPSW, srcs=(r(6),)),
            Instr(Opcode.MFPSW, dest=r(7)),
            halt(),
        ])
        result = simulate(prog, cfg)
        assert result.state.int_regs[5] == 3   # map_enable | rc_mode
        assert result.state.int_regs[7] == 0

    def test_map_disable_gives_direct_core_access(self):
        cfg = rc_config()
        prog = assemble([
            connect_use(RClass.INT, 5, 20),
            li(6, 0),
            Instr(Opcode.MTPSW, srcs=(r(6),)),   # disable map
            li(5, 3),                            # direct core write
            add(7, 5, 5),                        # direct core read
            halt(),
        ])
        result = simulate(prog, cfg)
        assert result.state.int_regs[7] == 6

    def test_mfmap_reads_connection_info(self):
        cfg = rc_config()
        prog = assemble([
            connect_use(RClass.INT, 5, 21),
            Instr(Opcode.MFMAP, dest=r(6), imm=(RClass.INT, 5, "read")),
            Instr(Opcode.MFMAP, dest=r(7), imm=(RClass.INT, 5, "write")),
            halt(),
        ])
        result = simulate(prog, cfg)
        assert result.state.int_regs[6] == 21
        assert result.state.int_regs[7] == 5

    def test_external_interrupt_delivery(self):
        cfg = rc_config()
        prog = assemble([
            li(5, 1),
            li(6, 2),
            li(7, 3),
            li(4, 4),
            halt(),
            # handler: mark memory and return
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=700),
            Instr(Opcode.RTE),
        ], trap_handlers={0: 5})
        sim = Simulator(prog, cfg)
        sim.schedule_interrupt(2, 0)
        result = sim.run()
        assert result.load_word(700) == 1
        assert result.stats.interrupts == 1
        assert result.state.int_regs[4] == 4  # program still completed

    def test_context_switch_between_processes(self):
        cfg = rc_config()
        prog = assemble([connect_use(RClass.INT, 5, 20), halt()])
        sim = Simulator(prog, cfg)
        result = sim.run()
        state = result.state
        ctx = state.save_process_context()
        assert ctx.is_extended_format
        state.int_table.reset_home()
        state.restore_process_context(ctx)
        assert state.int_table.read_target(5) == 20


class TestConfig:
    def test_default_memory_channels(self):
        assert default_memory_channels(2) == 2
        assert default_memory_channels(4) == 2
        assert default_memory_channels(8) == 4

    def test_paper_machine_rc_class(self):
        cfg = paper_machine(issue_width=4, int_core=16, rc_class=RClass.INT)
        assert cfg.int_spec.has_rc
        assert cfg.int_spec.extended == 240
        assert not cfg.fp_spec.has_rc
        assert cfg.mem_channels == 2

    def test_unlimited_machine(self):
        cfg = unlimited_machine(issue_width=8)
        assert not cfg.has_rc
        assert cfg.mem_channels == 4
        assert cfg.int_spec.core > 1000

    def test_redirect_penalty(self):
        assert config().redirect_penalty == 1
        assert config(extra_decode_stage=True).redirect_penalty == 2

    def test_describe(self):
        text = paper_machine(rc_class=RClass.INT, int_core=16).describe()
        assert "int RC 16+240" in text

    def test_invalid_issue_width(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            config(issue=3)


class TestLoadWordStrict:
    def _result(self):
        prog = assemble([
            li(5, 42),
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=100),
            halt(),
        ])
        return simulate(prog, config())

    def test_written_address_reads_back(self):
        assert self._result().load_word(100) == 42

    def test_unwritten_address_raises(self):
        # A silent 0 here can mask a checksum-address typo in a workload.
        with pytest.raises(SimulationError, match="never written"):
            self._result().load_word(101)

    def test_explicit_default_allows_unwritten(self):
        result = self._result()
        assert result.load_word(101, default=0) == 0
        assert result.load_word(101, default=None) is None
