"""Tests for the RC substrate: mapping table models, PSW, context formats."""

import pytest

from repro.errors import SimulationError
from repro.rc import (
    DEFAULT_MODEL,
    MappingTable,
    PSW,
    RCModel,
    restore_context,
    save_context,
)


def table(model=DEFAULT_MODEL, entries=4, physical=12):
    return MappingTable(entries, physical, model)


class TestMappingTableBasics:
    def test_initial_state_is_home(self):
        t = table()
        for i in range(t.entries):
            assert t.read_target(i) == i
            assert t.write_target(i) == i
            assert t.at_home(i)

    def test_connect_use_redirects_reads_only(self):
        t = table()
        t.connect_use(1, 10)
        assert t.read_target(1) == 10
        assert t.write_target(1) == 1
        assert not t.at_home(1)

    def test_connect_def_redirects_writes_only(self):
        t = table()
        t.connect_def(2, 7)
        assert t.write_target(2) == 7
        assert t.read_target(2) == 2

    def test_paper_figure2_example(self):
        # Core section of 4, extended section of 8 (12 physical).
        # connect_use Ri2,Rp10 ; connect_use Ri3,Rp7 ; connect_def Ri1,Rp6
        # add Ri1 <- Ri2 + Ri3 accesses Rp10, Rp7 and writes Rp6.
        t = table(RCModel.NO_RESET)
        t.connect_use(2, 10)
        t.connect_use(3, 7)
        t.connect_def(1, 6)
        assert t.read_target(2) == 10
        assert t.read_target(3) == 7
        assert t.write_target(1) == 6

    def test_bounds_checked(self):
        t = table()
        with pytest.raises(SimulationError):
            t.connect_use(9, 0)
        with pytest.raises(SimulationError):
            t.connect_def(0, 99)

    def test_physical_file_must_cover_map(self):
        with pytest.raises(SimulationError):
            MappingTable(8, 4)

    def test_apply_dispatch(self):
        t = table()
        t.apply("read", 0, 5)
        t.apply("write", 1, 6)
        assert t.read_target(0) == 5
        assert t.write_target(1) == 6


class TestResetModels:
    """Figure 3 of the paper: table state after a write through Rix."""

    def setup_method(self):
        self.tables = {m: table(m) for m in RCModel}
        for t in self.tables.values():
            t.connect_use(1, 8)   # Rix_read -> Rpy
            t.connect_def(1, 9)   # Rix_write -> Rpz
            t.after_write(1)      # a write through index 1 occurs

    def test_model1_no_reset(self):
        t = self.tables[RCModel.NO_RESET]
        assert t.read_target(1) == 8
        assert t.write_target(1) == 9

    def test_model2_write_reset(self):
        t = self.tables[RCModel.WRITE_RESET]
        assert t.read_target(1) == 8      # read map untouched
        assert t.write_target(1) == 1     # write map reset to home

    def test_model3_write_reset_read_update(self):
        t = self.tables[RCModel.WRITE_RESET_READ_UPDATE]
        assert t.read_target(1) == 9      # read map := previous write map
        assert t.write_target(1) == 1     # write map reset to home

    def test_model4_read_write_reset(self):
        t = self.tables[RCModel.READ_WRITE_RESET]
        assert t.read_target(1) == 1
        assert t.write_target(1) == 1

    def test_default_model_is_model3(self):
        assert DEFAULT_MODEL is RCModel.WRITE_RESET_READ_UPDATE

    def test_model_properties(self):
        assert not RCModel.NO_RESET.resets_write_map
        assert RCModel.WRITE_RESET.resets_write_map
        assert not RCModel.WRITE_RESET.updates_read_map
        assert RCModel.WRITE_RESET_READ_UPDATE.updates_read_map
        assert RCModel.READ_WRITE_RESET.updates_read_map

    def test_model3_read_after_write_sees_written_register(self):
        """Section 3's code example: no connect-use needed after a def."""
        t = table(RCModel.WRITE_RESET_READ_UPDATE, entries=8, physical=16)
        t.connect_def(7, 10)   # connect_def Ri7,Rp10
        # instruction 2 writes Ri7 -> goes to Rp10
        assert t.write_target(7) == 10
        t.after_write(7)
        # instruction 3 reads Ri7 -> must see Rp10 without a connect-use
        assert t.read_target(7) == 10
        # and subsequent writes of Ri7 go back home, protecting Rp10
        assert t.write_target(7) == 7


class TestHomeReset:
    def test_reset_home_restores_identity(self):
        t = table()
        t.connect_use(0, 11)
        t.connect_def(3, 4)
        t.reset_home()
        for i in range(t.entries):
            assert t.at_home(i)

    def test_snapshot_restore_roundtrip(self):
        t = table()
        t.connect_use(1, 10)
        t.connect_def(2, 11)
        snap = t.snapshot()
        t.reset_home()
        t.restore(snap)
        assert t.read_target(1) == 10
        assert t.write_target(2) == 11

    def test_restore_wrong_size_rejected(self):
        t = table()
        with pytest.raises(SimulationError):
            t.restore(([0], [0]))

    def test_snapshot_is_a_copy(self):
        t = table()
        snap = t.snapshot()
        t.connect_use(0, 5)
        assert snap[0][0] == 0


class TestPSW:
    def test_pack_unpack_roundtrip(self):
        for map_enable in (False, True):
            for rc_mode in (False, True):
                p = PSW(map_enable, rc_mode)
                assert PSW.unpack(p.pack()) == p

    def test_legacy_psw(self):
        p = PSW.legacy()
        assert p.map_enable and not p.rc_mode

    def test_copy_independent(self):
        p = PSW()
        q = p.copy()
        q.map_enable = False
        assert p.map_enable


class TestContextSwitch:
    def _machine(self, rc_mode: bool):
        psw = PSW(rc_mode=rc_mode)
        int_regs = list(range(100, 112))   # 12 physical int registers
        fp_regs = [float(i) for i in range(12)]
        int_table = MappingTable(4, 12)
        fp_table = MappingTable(4, 12)
        return psw, int_regs, fp_regs, int_table, fp_table

    def test_extended_format_saves_everything(self):
        psw, ir, fr, it, ft = self._machine(rc_mode=True)
        it.connect_use(1, 9)
        ctx = save_context(psw, ir, fr, it, ft)
        assert ctx.is_extended_format
        assert ctx.int_state.extended == ir[4:]
        assert ctx.int_state.read_map[1] == 9

    def test_legacy_format_saves_core_only(self):
        psw, ir, fr, it, ft = self._machine(rc_mode=False)
        ctx = save_context(psw, ir, fr, it, ft)
        assert not ctx.is_extended_format
        assert ctx.int_state.extended == []
        assert ctx.int_state.read_map is None

    def test_legacy_frame_is_smaller(self):
        psw_rc, ir, fr, it, ft = self._machine(rc_mode=True)
        big = save_context(psw_rc, ir, fr, it, ft)
        psw_legacy, ir, fr, it, ft = self._machine(rc_mode=False)
        small = save_context(psw_legacy, ir, fr, it, ft)
        assert small.word_count() < big.word_count()
        # legacy: 1 + 4 + 4 words; extended: 1 + (12+8)*2 words
        assert small.word_count() == 1 + 4 + 4

    def test_roundtrip_restores_connection_information(self):
        psw, ir, fr, it, ft = self._machine(rc_mode=True)
        it.connect_use(2, 11)
        ft.connect_def(3, 8)
        ctx = save_context(psw, ir, fr, it, ft)
        # Simulate another process trashing everything.
        ir[:] = [0] * 12
        it.reset_home()
        psw.map_enable = False
        restore_context(ctx, psw, ir, fr, it, ft)
        assert psw.map_enable
        assert ir[5] == 105
        assert it.read_target(2) == 11
        assert ft.write_target(3) == 8

    def test_legacy_restore_resets_map_home(self):
        psw, ir, fr, it, ft = self._machine(rc_mode=False)
        ctx = save_context(psw, ir, fr, it, ft)
        it.connect_use(0, 7)  # some other process connected things
        restore_context(ctx, psw, ir, fr, it, ft)
        assert it.at_home(0)
