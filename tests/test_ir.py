"""Tests for IR containers, builder, CFG analyses, liveness, verifier."""

import pytest

from repro.errors import IRError
from repro.ir import (
    FnBuilder,
    Module,
    dominators,
    liveness,
    loop_depths,
    max_live_pressure,
    natural_loops,
    predecessors,
    reverse_postorder,
    verify_function,
    verify_module,
)
from repro.isa import Imm, Instr, Opcode, RClass

from helpers import call_module, diamond_module, fp_module, sum_to_n_module


class TestModule:
    def test_global_addresses_are_sequential(self):
        m = Module()
        a = m.add_global("a", 4)
        b = m.add_global("b", 2, [7, 8])
        assert b.addr == a.addr + 4
        image = m.initial_memory()
        assert image[b.addr] == 7 and image[b.addr + 1] == 8
        assert a.addr not in image  # uninitialized globals default to 0

    def test_duplicate_global_rejected(self):
        m = Module()
        m.add_global("a", 1)
        with pytest.raises(IRError):
            m.add_global("a", 1)

    def test_duplicate_function_rejected(self):
        m = sum_to_n_module()
        b = FnBuilder(m, "main")  # building is fine, registering is not
        b.halt()
        with pytest.raises(IRError):
            b.done()  # ...registering a duplicate is not

    def test_oversized_init_rejected(self):
        m = Module()
        with pytest.raises(IRError):
            m.add_global("g", 1, [1, 2])


class TestBuilder:
    def test_sum_module_verifies(self):
        verify_module(sum_to_n_module())

    def test_call_module_verifies(self):
        verify_module(call_module())

    def test_fp_module_verifies(self):
        verify_module(fp_module())

    def test_fallthrough_wiring(self):
        m = diamond_module()
        fn = m.function("main")
        entry = fn.entry
        assert entry.terminator.op is Opcode.BNEZ
        assert entry.fallthrough == "else_"
        assert entry.successors() == ["then", "else_"]

    def test_implicit_jump_between_blocks(self):
        m = Module()
        b = FnBuilder(m, "main")
        b.li(1)
        b.block("next")
        b.halt()
        fn = b.done()
        assert fn.entry.terminator.op is Opcode.JMP
        assert fn.entry.terminator.label == "next"

    def test_emit_after_terminator_rejected(self):
        m = Module()
        b = FnBuilder(m, "f")
        b.halt()
        with pytest.raises(IRError):
            b.li(1)

    def test_dangling_fallthrough_rejected(self):
        m = Module()
        b = FnBuilder(m, "f")
        x = b.li(1)
        b.br("bnez", x, target="entry")
        with pytest.raises(IRError):
            b.done()

    def test_fp_operand_class_enforced(self):
        m = Module()
        b = FnBuilder(m, "f")
        x = b.li(1)
        with pytest.raises(IRError):
            b.fadd(x, x)

    def test_int_slot_accepts_literal(self):
        m = Module()
        b = FnBuilder(m, "f")
        v = b.add(1, 2)
        b.halt()
        b.done()
        instr = m.function("f").entry.instrs[0]
        assert instr.srcs == (Imm(1), Imm(2))
        assert instr.dest == v

    def test_duplicate_block_rejected(self):
        m = Module()
        b = FnBuilder(m, "f")
        b.block("x")
        b.li(0)
        with pytest.raises(IRError):
            b.fn.new_block("x")

    def test_params_become_vregs(self):
        m = Module()
        b = FnBuilder(m, "f", params=[("i", "n"), ("f", "x")], ret="i")
        n, x = b.params
        assert n.cls is RClass.INT and x.cls is RClass.FP
        b.ret(n)
        fn = b.done()
        assert fn.ret_class is RClass.INT


class TestCFG:
    def test_rpo_starts_at_entry(self):
        fn = diamond_module().function("main")
        rpo = reverse_postorder(fn)
        assert rpo[0] == "entry"
        assert rpo[-1] == "join"
        assert set(rpo) == {b.name for b in fn.blocks}

    def test_predecessors(self):
        fn = diamond_module().function("main")
        preds = predecessors(fn)
        assert sorted(preds["join"]) == ["else_", "then"]
        assert preds["entry"] == []

    def test_dominators_diamond(self):
        fn = diamond_module().function("main")
        dom = dominators(fn)
        assert dom["join"] == {"entry", "join"}
        assert dom["then"] == {"entry", "then"}

    def test_natural_loop_detection(self):
        fn = sum_to_n_module().function("main")
        loops = natural_loops(fn)
        assert len(loops) == 1
        assert loops[0].header == "loop"
        assert loops[0].is_self_loop

    def test_loop_depths(self):
        fn = sum_to_n_module().function("main")
        depths = loop_depths(fn)
        assert depths["loop"] == 1
        assert depths["entry"] == 0

    def test_remove_unreachable_blocks(self):
        m = Module()
        b = FnBuilder(m, "f")
        b.halt()
        dead = b.fn.new_block("dead")
        dead.instrs.append(Instr(Opcode.HALT))
        fn = b.done()
        assert fn.remove_unreachable_blocks() == 1
        assert not fn.has_block("dead")


class TestLiveness:
    def test_loop_carried_values_live_at_header(self):
        fn = sum_to_n_module().function("main")
        info = liveness(fn)
        loop_in = info.live_in["loop"]
        names = {v.name for v in loop_in}
        assert {"total", "i", "limit"} <= names

    def test_dead_after_last_use(self):
        fn = diamond_module().function("main")
        info = liveness(fn)
        assert info.live_out["join"] == set()

    def test_live_across_instr_positions(self):
        m = Module()
        b = FnBuilder(m, "f")
        a = b.li(1, name="a")
        c = b.li(2, name="c")
        d = b.add(a, c, name="d")
        b.store(d, 100, 0)
        b.halt()
        fn = b.done()
        info = liveness(fn)
        after = info.live_across_instr(fn.entry)
        assert a in after[0] and a in after[1]
        assert a not in after[2]  # dead once d is computed
        assert d in after[2] and d not in after[3]

    def test_pressure_diagnostic(self):
        fn = sum_to_n_module().function("main")
        peak = max_live_pressure(fn)
        assert peak["int"] >= 3
        assert peak["fp"] == 0


class TestVerifier:
    def test_missing_terminator_detected(self):
        m = Module()
        b = FnBuilder(m, "f")
        b.li(1)
        fn = b.fn
        with pytest.raises(IRError):
            verify_function(fn)

    def test_branch_target_must_exist(self):
        m = Module()
        b = FnBuilder(m, "f")
        b.jmp("nowhere")
        with pytest.raises(IRError):
            verify_function(b.fn)

    def test_call_arity_checked(self):
        m = call_module()
        main = m.function("main")
        call = next(i for _, i in main.iter_instrs() if i.op is Opcode.CALL)
        call.srcs = ()
        with pytest.raises(IRError):
            verify_module(m)

    def test_call_unknown_function(self):
        m = Module()
        b = FnBuilder(m, "main")
        b.call("ghost")
        b.halt()
        b.done()
        with pytest.raises(IRError):
            verify_module(m)

    def test_operand_class_mismatch_detected(self):
        m = fp_module()
        fn = m.function("main")
        fmul = next(i for _, i in fn.iter_instrs() if i.op is Opcode.FMUL)
        fmul.srcs = (fmul.srcs[0], Imm(2))
        with pytest.raises(IRError):
            verify_function(fn, m)

    def test_ret_class_checked(self):
        m = Module()
        b = FnBuilder(m, "f", ret="f")
        x = b.li(3)
        b.fn.blocks[0].instrs.append(Instr(Opcode.RET, srcs=(x,)))
        with pytest.raises(IRError):
            verify_function(b.fn)

    def test_duplicate_block_labels_rejected(self):
        # new_block() refuses duplicates, but direct list surgery (as some
        # passes do) can still produce them; the verifier must catch that.
        from repro.ir.function import BasicBlock

        m = Module()
        b = FnBuilder(m, "f")
        b.li(1)
        b.halt()
        dup = BasicBlock("entry")
        dup.instrs.append(Instr(Opcode.HALT))
        b.fn.blocks.append(dup)
        with pytest.raises(IRError, match="duplicate block label"):
            verify_function(b.fn)

    def test_call_label_required_without_module(self):
        m = call_module()
        main = m.function("main")
        call = next(i for _, i in main.iter_instrs() if i.op is Opcode.CALL)
        call.label = None
        with pytest.raises(IRError, match="callee label"):
            verify_function(main)  # structural check runs module-free

    def test_call_float_imm_arg_classified_fp(self):
        m = Module()
        g = FnBuilder(m, "g", params=[("f", "x")])
        g.ret()
        g.done()
        b = FnBuilder(m, "main")
        b.li(0)
        call = Instr(Opcode.CALL, srcs=(Imm(2.5),), label="g")
        b.fn.blocks[0].instrs.append(call)
        b.halt()
        b.done()
        verify_module(m)  # a float immediate satisfies the FP parameter
        call.srcs = (Imm(2),)
        with pytest.raises(IRError, match="argument class"):
            verify_module(m)


class TestContainersEdges:
    def test_block_body_excludes_terminator(self):
        fn = sum_to_n_module(3).function("main")
        loop = fn.block("loop")
        assert len(loop.body()) == len(loop.instrs) - 1
        assert loop.body()[-1].op is not loop.terminator.op or \
            loop.body()[-1] is not loop.terminator

    def test_successors_of_unterminated_block_raises(self):
        m = Module()
        b = FnBuilder(m, "f")
        b.li(1)
        with pytest.raises(IRError, match="terminator"):
            b.fn.entry.successors()

    def test_module_instruction_count(self):
        m = sum_to_n_module(3)
        assert m.instruction_count() == \
            m.function("main").instruction_count()

    def test_entry_of_empty_function_raises(self):
        from repro.ir import Function
        with pytest.raises(IRError):
            Function("empty").entry

    def test_unknown_block_lookup(self):
        fn = sum_to_n_module(3).function("main")
        with pytest.raises(IRError):
            fn.block("ghost")
        assert not fn.has_block("ghost")

    def test_global_addr_unknown(self):
        m = Module()
        with pytest.raises(IRError):
            m.global_addr("nope")

    def test_vregs_collects_params_and_temps(self):
        m = Module()
        b = FnBuilder(m, "f", params=[("i", "x")])
        t = b.add(b.params[0], 1)
        b.halt()
        fn = b.done()
        assert b.params[0] in fn.vregs()
        assert t in fn.vregs()
