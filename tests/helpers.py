"""Shared test helpers: small IR programs used across test modules."""

from __future__ import annotations

from repro.ir import FnBuilder, Module


def sum_to_n_module(n: int = 10) -> Module:
    """main: sum 1..n into global 'out'."""
    m = Module("sum_to_n")
    m.add_global("out", 1)
    b = FnBuilder(m, "main")
    total = b.li(0, name="total")
    i = b.li(1, name="i")
    limit = b.li(n, name="limit")
    out = b.la("out")
    b.block("loop")
    b.add(total, i, dest=total)
    b.add(i, 1, dest=i)
    b.br("ble", i, limit, "loop")
    b.block("exit")
    b.store(total, out, 0)
    b.halt()
    b.done()
    return m


def call_module() -> Module:
    """main calls square(7) and adds 1; result in global 'out'."""
    m = Module("call_demo")
    m.add_global("out", 1)

    b = FnBuilder(m, "square", params=[("i", "x")], ret="i")
    (x,) = b.params
    sq = b.mul(x, x)
    b.ret(sq)
    b.done()

    b = FnBuilder(m, "main")
    r = b.call("square", [7], ret="i")
    r2 = b.add(r, 1)
    b.store(r2, b.la("out"), 0)
    b.halt()
    b.done()
    return m


def fp_module() -> Module:
    """main: out = 1.5 * 2.0 + 0.25 (double precision)."""
    m = Module("fp_demo")
    m.add_global("fout", 1)
    b = FnBuilder(m, "main")
    a = b.fli(1.5)
    c = b.fli(2.0)
    d = b.fmul(a, c)
    e = b.fli(0.25)
    f = b.fadd(d, e)
    b.fstore(f, b.la("fout"), 0)
    b.halt()
    b.done()
    return m


def diamond_module() -> Module:
    """main with an if/else diamond writing 1 or 2 to 'out' based on 'sel'."""
    m = Module("diamond")
    m.add_global("sel", 1, [1])
    m.add_global("out", 1)
    b = FnBuilder(m, "main")
    sel = b.load(b.la("sel"), 0)
    b.br("bnez", sel, target="then")
    b.block("else_")
    v = b.li(2, name="v")
    b.jmp("join")
    b.block("then")
    b.li(1, dest=v)
    b.jmp("join")
    b.block("join")
    b.store(v, b.la("out"), 0)
    b.halt()
    b.done()
    return m
