"""Property tests: bitmask liveness/interference vs the set-based reference.

Random CFGs — straight-line runs, if/else diamonds, counted loops, dead
blocks — are checked for exact equality between :mod:`repro.ir.bitset` and
the executable set-based specifications (:func:`repro.ir.liveness.liveness`
and the pairwise interference construction, which ``build_interference``
keeps alive for exactly this purpose).
"""

from hypothesis import given, settings, strategies as st

from repro.compiler.regalloc.interference import build_interference
from repro.ir import FnBuilder, Module
from repro.ir.bitset import VRegIndex, bit_liveness
from repro.ir.liveness import liveness

N_VARS = 5
N_FVARS = 2

_BINOPS = ["add", "sub", "mul", "xor", "and_", "or_", "cmplt"]


def _ops(max_size):
    return st.lists(
        st.tuples(st.integers(0, N_VARS - 1),
                  st.sampled_from(_BINOPS),
                  st.integers(0, N_VARS - 1),
                  st.integers(0, N_VARS - 1)),
        min_size=0, max_size=max_size)


@st.composite
def cfg_spec(draw):
    """A random CFG description: a list of segments plus a dead-block flag."""
    segments = draw(st.lists(st.one_of(
        st.tuples(st.just("straight"), _ops(5)),
        st.tuples(st.just("diamond"), st.integers(0, N_VARS - 1),
                  _ops(3), _ops(3)),
        st.tuples(st.just("loop"), _ops(4)),
    ), min_size=1, max_size=4))
    fp_pairs = draw(st.lists(
        st.tuples(st.integers(0, N_FVARS - 1), st.integers(0, N_FVARS - 1)),
        min_size=0, max_size=2))
    dead = draw(st.booleans())
    return segments, fp_pairs, dead


def build_function(spec, with_dead):
    """Materialize a spec as one IR function (never executed)."""
    segments, fp_pairs, _ = spec
    m = Module()
    m.add_global("data", N_VARS)
    m.add_global("out", 1)
    b = FnBuilder(m, "main")
    base = b.la("data")
    vals = [b.load(base, j, name=f"v{j}") for j in range(N_VARS)]
    fvals = [b.fli(float(j + 1), name=f"f{j}") for j in range(N_FVARS)]

    def emit(op_tuple):
        d, op, a, c = op_tuple
        getattr(b, op)(vals[a], vals[c], dest=vals[d])

    for k, seg in enumerate(segments):
        if seg[0] == "straight":
            for t in seg[1]:
                emit(t)
        elif seg[0] == "diamond":
            _, cond, then_ops, else_ops = seg
            b.br("bnez", vals[cond], target=f"then{k}")
            b.block(f"else{k}")
            for t in else_ops:
                emit(t)
            b.jmp(f"join{k}")
            b.block(f"then{k}")
            for t in then_ops:
                emit(t)
            b.jmp(f"join{k}")
            b.block(f"join{k}")
        else:  # loop
            i = b.li(0, name=f"i{k}")
            limit = b.li(3, name=f"lim{k}")
            b.block(f"loop{k}")
            for t in seg[1]:
                emit(t)
            b.add(i, 1, dest=i)
            b.br("blt", i, limit, f"loop{k}")
            b.block(f"after{k}")
    for a, c in fp_pairs:
        b.fadd(fvals[a], fvals[c], dest=fvals[a])

    acc = vals[0]
    for v in vals[1:]:
        b.add(acc, v, dest=acc)
    b.store(acc, b.la("out"), 0)
    b.halt()
    if with_dead:
        # Unreachable block using otherwise-dead values: must not perturb
        # the (reachable-only) liveness domain.
        b.block("dead")
        b.add(vals[0], vals[1], dest=vals[2])
        b.halt()
    return b.done()


@given(cfg_spec())
@settings(max_examples=60, deadline=None)
def test_liveness_masks_equal_reference_sets(spec):
    fn = build_function(spec, with_dead=spec[2])
    ref = liveness(fn)
    bit = bit_liveness(fn)
    as_sets = bit.to_sets()
    assert as_sets.live_in == ref.live_in
    assert as_sets.live_out == ref.live_out
    conv = bit.index.set_of
    for name in ref.live_in:
        block = fn.block(name)
        masks = bit.live_across_instr_masks(block)
        assert [conv(mask) for mask in masks] == ref.live_across_instr(block)


@given(cfg_spec())
@settings(max_examples=60, deadline=None)
def test_interference_masks_equal_reference_pairs(spec):
    fn = build_function(spec, with_dead=False)
    mask_graph = build_interference(fn)
    set_graph = build_interference(fn, liveness(fn))
    assert mask_graph.adj == set_graph.adj


def test_liveness_domain_is_reachable_blocks_only():
    spec = ([("straight", [(0, "add", 1, 2)])], [], True)
    fn = build_function(spec, with_dead=True)
    ref = liveness(fn)
    bit = bit_liveness(fn)
    assert set(bit.live_in) == set(ref.live_in)
    assert "dead" not in bit.live_in


def test_vreg_index_orders_params_first():
    m = Module()
    b = FnBuilder(m, "f", params=[("i", "x"), ("f", "y")], ret="i")
    x, y = b.params
    z = b.add(x, 1)
    b.fadd(y, y)
    b.ret(z)
    fn = b.done()
    index = VRegIndex(fn)
    assert index.vregs[0] == x
    assert index.vregs[1] == y
    assert index.index[x] == 0 and index.index[y] == 1
    # Round-trip and class masks.
    everything = (1 << len(index)) - 1
    assert index.mask_of(index.set_of(everything)) == everything
    assert index.class_mask[x.cls] & (1 << index.index[x])
    assert not index.class_mask[x.cls] & (1 << index.index[y])
