"""Property-based tests: random programs must produce identical results on
the IR interpreter and on every compiled/simulated configuration."""

from hypothesis import given, settings, strategies as st

from repro.compiler import CompileOptions, OptOptions, compile_module
from repro.ir import FnBuilder, Module, run_module
from repro.isa import RClass
from repro.rc import RCModel
from repro.sim import paper_machine, simulate, unlimited_machine

N_VARS = 6

_BINOPS = ["add", "sub", "mul", "and_", "or_", "xor", "cmplt", "cmpeq",
           "cmpgt"]


@st.composite
def program_spec(draw):
    """A random straight-line+loop integer program description."""
    init = draw(st.lists(st.integers(-50, 50), min_size=N_VARS,
                         max_size=N_VARS))
    pre_ops = draw(st.lists(
        st.tuples(st.integers(0, N_VARS - 1),
                  st.sampled_from(_BINOPS),
                  st.integers(0, N_VARS - 1),
                  st.integers(0, N_VARS - 1)),
        min_size=0, max_size=8))
    loop_ops = draw(st.lists(
        st.tuples(st.integers(0, N_VARS - 1),
                  st.sampled_from(_BINOPS),
                  st.integers(0, N_VARS - 1),
                  st.integers(0, N_VARS - 1)),
        min_size=1, max_size=10))
    trip = draw(st.integers(1, 9))
    use_call = draw(st.booleans())
    return init, pre_ops, loop_ops, trip, use_call


def build_program(spec) -> Module:
    init, pre_ops, loop_ops, trip, use_call = spec
    m = Module()
    m.add_global("out", 1)
    m.add_global("data", N_VARS, list(init))
    if use_call:
        b = FnBuilder(m, "mix", params=[("i", "x"), ("i", "y")], ret="i")
        x, y = b.params
        b.ret(b.xor(b.add(x, y), 13))
        b.done()
    b = FnBuilder(m, "main")
    base = b.la("data")
    vals = [b.load(base, j, name=f"v{j}") for j in range(N_VARS)]

    def emit(op_tuple):
        d, op, a, c = op_tuple
        getattr(b, op)(vals[a], vals[c], dest=vals[d])

    for t in pre_ops:
        emit(t)
    i = b.li(0, name="i")
    b.block("loop")
    for t in loop_ops:
        emit(t)
    if use_call:
        r = b.call("mix", [vals[0], vals[1]], ret="i")
        b.and_(r, 0xFF, dest=vals[0])
    b.add(i, 1, dest=i)
    b.br("blt", i, trip, "loop")
    b.block("exit")
    total = b.li(0, name="total")
    for v in vals:
        b.add(total, v, dest=total)
    b.store(total, b.la("out"), 0)
    b.halt()
    b.done()
    return m


CONFIGS = [
    unlimited_machine(4),
    paper_machine(issue_width=4, int_core=8, fp_core=16),
    paper_machine(issue_width=4, int_core=8, fp_core=16,
                  rc_class=RClass.INT),
    paper_machine(issue_width=8, int_core=8, fp_core=16,
                  rc_class=RClass.INT, connect_latency=1,
                  rc_model=RCModel.NO_RESET),
]


@settings(max_examples=25, deadline=None)
@given(program_spec())
def test_random_program_equivalence(spec):
    m = build_program(spec)
    golden = run_module(m).load_word(m.global_addr("out"))
    for cfg in CONFIGS:
        out = compile_module(m, cfg)
        got = simulate(out.program, cfg).load_word(m.global_addr("out"))
        assert got == golden, f"mismatch on {cfg.describe()}"


@settings(max_examples=10, deadline=None)
@given(program_spec(), st.sampled_from(list(RCModel)),
       st.integers(2, 6))
def test_random_program_equivalence_models_and_windows(spec, model, windows):
    from repro.compiler.regalloc.allocator import AllocationOptions

    m = build_program(spec)
    golden = run_module(m).load_word(m.global_addr("out"))
    cfg = paper_machine(issue_width=4, int_core=8, fp_core=16,
                        rc_class=RClass.INT, rc_model=model)
    opts = CompileOptions(alloc=AllocationOptions(num_windows=windows))
    out = compile_module(m, cfg, opts)
    got = simulate(out.program, cfg).load_word(m.global_addr("out"))
    assert got == golden


@settings(max_examples=10, deadline=None)
@given(program_spec(), st.integers(2, 6))
def test_random_program_equivalence_unrolled(spec, factor):
    m = build_program(spec)
    golden = run_module(m).load_word(m.global_addr("out"))
    cfg = paper_machine(issue_width=8, int_core=16, fp_core=16,
                        rc_class=RClass.INT)
    opts = CompileOptions(opt=OptOptions(level="ilp", unroll_factor=factor))
    out = compile_module(m, cfg, opts)
    got = simulate(out.program, cfg).load_word(m.global_addr("out"))
    assert got == golden


@settings(max_examples=20, deadline=None)
@given(program_spec(), st.integers(10, 24))
def test_coloring_respects_interference(spec, core):
    """Property: after allocation, interfering virtual registers never share
    a physical register, and reserved registers are never handed out."""
    from repro.compiler import (
        allocate_function,
        build_interference,
        lower_calls,
    )
    from repro.isa import NUM_RESERVED_INT, core_spec

    m = build_program(spec)
    fn = m.functions["main"]
    lower_calls(fn)
    int_spec = core_spec(RClass.INT, core)
    fp_spec = core_spec(RClass.FP, 16)
    graph = build_interference(fn)
    result = allocate_function(fn, None, int_spec, fp_spec)
    for v, reg in result.assignment.items():
        assert reg.num >= NUM_RESERVED_INT or reg.cls is RClass.FP
        assert reg.num < core or reg.cls is RClass.FP
        for n in graph.neighbors(v):
            if n in result.assignment:
                assert result.assignment[n] != reg, (v, n, reg)
    # every virtual register has exactly one location
    for v in fn.vregs():
        assert (v in result.assignment) != (v in result.spilled)
