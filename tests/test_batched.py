"""Gang-simulator tests: the batched lockstep engine vs fast vs reference.

The batched engine (:mod:`repro.sim.batched`) simulates N configs in one
pass — decode and specialization shared, per-config state in flat arrays,
followers replaying the leader's trace timing-only.  Every slot must be
bit-exact with a single-config fast run (itself parity-gated against the
reference): full :class:`~repro.sim.stats.SimStats`, memory, both register
files, and fault types/messages.  Slots that fault or exhaust their cycle
budget retire without disturbing the rest of the gang.
"""

import dataclasses

import pytest

from repro.compiler import compile_module
from repro.errors import ConfigError, CycleBudgetError, SimulationError
from repro.isa import Instr, Opcode, PhysReg, RClass
from repro.rc import RCModel
from repro.sim import (
    BACKEND_ENV,
    BatchedSimulator,
    FastSimulator,
    Simulator,
    assemble,
    numpy_available,
    paper_machine,
    resolve_backend,
    simulate,
    simulate_gang,
)
from repro.sim.config import VALID_ENGINES
from repro.workloads import ALL_BENCHMARKS, build_workload, workload

GANG_MODELS = (RCModel.NO_RESET, RCModel.WRITE_RESET_READ_UPDATE,
               RCModel.READ_RESET)
GANG_WIDTHS = (1, 2, 4)

#: One compilation per benchmark shared by all assertions.
_compiled: dict = {}


def _rc_class(name: str) -> RClass:
    return RClass.INT if workload(name).kind == "int" else RClass.FP


def _program(name: str):
    if name not in _compiled:
        cfg = paper_machine(issue_width=1, rc_class=_rc_class(name))
        out = compile_module(build_workload(name, scale=1), cfg)
        _compiled[name] = out.program
    return _compiled[name]


def _gang_configs(name: str):
    rc_class = _rc_class(name)
    return [paper_machine(issue_width=w, rc_class=rc_class, rc_model=m)
            for m in GANG_MODELS for w in GANG_WIDTHS]


def _assert_slot_equals(outcome, single, label: str):
    assert outcome.error is None, f"{label}: gang slot errored {outcome.error}"
    got, want = outcome.result, single
    assert got.stats == want.stats, (
        f"{label}: stats diverge\ngang {got.stats}\nfast {want.stats}")
    assert got.halted == want.halted, label
    assert got.state.memory == want.state.memory, f"{label}: memory diverges"
    assert got.state.int_regs == want.state.int_regs, label
    assert got.state.fp_regs == want.state.fp_regs, label


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_gang_parity_models_and_widths(name):
    """A gang over models × widths matches per-config fast runs bit-exactly."""
    program = _program(name)
    configs = _gang_configs(name)
    outcomes = BatchedSimulator(program, configs).run()
    for cfg, outcome in zip(configs, outcomes):
        single = FastSimulator(program, cfg).run()
        label = f"{name} w{cfg.issue_width} {cfg.rc_model.name}"
        _assert_slot_equals(outcome, single, label)


def test_gang_of_one_equals_fast():
    """A gang of 1 is exactly one fast run — and actually runs batched."""
    name = ALL_BENCHMARKS[0]
    program = _program(name)
    cfg = paper_machine(issue_width=4, rc_class=_rc_class(name))
    sim = BatchedSimulator(program, [cfg])
    outcomes = sim.run()
    assert len(outcomes) == 1 and sim.ran_batched
    single = FastSimulator(program, cfg).run()
    _assert_slot_equals(outcomes[0], single, "gang-of-1")


def test_gang_against_reference_engine():
    """Spot-check one gang directly against the reference simulator."""
    name = ALL_BENCHMARKS[1]
    program = _program(name)
    configs = _gang_configs(name)[:4]
    for cfg, outcome in zip(configs, simulate_gang(program, configs)):
        ref = Simulator(program, cfg).run()
        _assert_slot_equals(outcome, ref, f"vs-reference w{cfg.issue_width}")


class TestRetirement:
    def test_mid_gang_budget_retires_only_that_slot(self):
        name = ALL_BENCHMARKS[0]
        program = _program(name)
        configs = _gang_configs(name)
        # Slot 4 gets a budget far below the program's runtime; it must
        # retire with the engines' exact CycleBudgetError while every other
        # slot completes untouched.
        tiny = dataclasses.replace(configs[4], max_cycles=50)
        configs = configs[:4] + [tiny] + configs[5:]
        outcomes = BatchedSimulator(program, configs).run()
        assert isinstance(outcomes[4].error, CycleBudgetError)
        with pytest.raises(CycleBudgetError) as fast_exc:
            FastSimulator(program, tiny).run()
        assert str(outcomes[4].error) == str(fast_exc.value)
        for i, (cfg, outcome) in enumerate(zip(configs, outcomes)):
            if i == 4:
                continue
            single = FastSimulator(program, cfg).run()
            _assert_slot_equals(outcome, single, f"slot{i}")

    def test_budget_slot_rerun_refuses_like_both_engines(self):
        name = ALL_BENCHMARKS[0]
        program = _program(name)
        cfgs = _gang_configs(name)[:3]
        cfgs[1] = dataclasses.replace(cfgs[1], max_cycles=50)
        sim = BatchedSimulator(program, cfgs)
        first = sim.run()
        assert isinstance(first[1].error, CycleBudgetError)
        again = sim.run()
        # Healthy slots return their results; the failed slot refuses with
        # the same poisoned-state diagnostic both engines use.
        _assert_slot_equals(again[0], first[0].result, "rerun slot0")
        _assert_slot_equals(again[2], first[2].result, "rerun slot2")
        assert isinstance(again[1].error, SimulationError)

        def rerun_message(cls):
            single = cls(program, cfgs[1])
            with pytest.raises(CycleBudgetError):
                single.run()
            with pytest.raises(SimulationError) as exc:
                single.run()
            return str(exc.value)

        assert str(again[1].error) == rerun_message(FastSimulator)
        assert str(again[1].error) == rerun_message(Simulator)

    def test_faulting_program_poisons_and_refuses_identically(self):
        prog = assemble([
            Instr(Opcode.LI, dest=PhysReg(RClass.INT, 5), imm=4),
            Instr(Opcode.LI, dest=PhysReg(RClass.INT, 6), imm=0),
            Instr(Opcode.DIV, dest=PhysReg(RClass.INT, 7),
                  srcs=(PhysReg(RClass.INT, 5), PhysReg(RClass.INT, 6))),
            Instr(Opcode.HALT),
        ])
        cfgs = [paper_machine(issue_width=w, rc_class=RClass.INT)
                for w in GANG_WIDTHS]
        sim = BatchedSimulator(prog, cfgs)
        outcomes = sim.run()
        for cfg, outcome in zip(cfgs, outcomes):
            with pytest.raises(SimulationError) as ref_exc:
                Simulator(prog, cfg).run()
            assert type(outcome.error) is type(ref_exc.value)
            assert str(outcome.error) == str(ref_exc.value)
        again = sim.run()
        for outcome in again:
            assert isinstance(outcome.error, SimulationError)
            assert "cannot resume" in str(outcome.error)


def test_until_cycle_segmented_gang_parity():
    """Segmenting a whole gang with until_cycle converges to the full run."""
    name = ALL_BENCHMARKS[2]
    program = _program(name)
    configs = _gang_configs(name)[:4]
    full = BatchedSimulator(program, configs).run()
    seg_sim = BatchedSimulator(program, configs)
    horizon = 500
    outcomes = seg_sim.run(until_cycle=horizon)
    guard = 10_000
    while not all(o.result is not None and o.result.halted
                  for o in outcomes):
        horizon += 500
        guard -= 1
        assert guard > 0, "segmented gang failed to make progress"
        outcomes = seg_sim.run(until_cycle=horizon)
    for a, b in zip(outcomes, full):
        _assert_slot_equals(a, b.result, f"segmented slot{a.slot}")


def test_rerun_returns_same_results():
    name = ALL_BENCHMARKS[0]
    program = _program(name)
    configs = _gang_configs(name)[:3]
    sim = BatchedSimulator(program, configs)
    first = sim.run()
    second = sim.run()
    for a, b in zip(first, second):
        _assert_slot_equals(b, a.result, f"rerun slot{b.slot}")


class TestBackends:
    def test_resolve_backend_defaults(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "python"
        assert resolve_backend("auto") == "python"
        with pytest.raises(ConfigError, match="unknown batched backend"):
            resolve_backend("turbo")

    def test_resolve_backend_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "python")
        assert resolve_backend() == "python"
        # an explicit argument beats the environment
        if numpy_available():
            assert resolve_backend("numpy") == "numpy"

    @pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")
    def test_numpy_backend_parity(self):
        name = ALL_BENCHMARKS[0]
        program = _program(name)
        configs = _gang_configs(name)
        py = BatchedSimulator(program, configs, backend="python").run()
        np_ = BatchedSimulator(program, configs, backend="numpy").run()
        for a, b in zip(py, np_):
            assert a.error is None and b.error is None
            assert a.result.stats == b.result.stats
            assert a.result.state.memory == b.result.state.memory
            assert a.result.state.int_regs == b.result.state.int_regs
            assert a.result.state.fp_regs == b.result.state.fp_regs


class TestDispatch:
    def test_valid_engines_includes_batched(self):
        assert "batched" in VALID_ENGINES

    def test_simulate_engine_batched(self):
        name = ALL_BENCHMARKS[0]
        program = _program(name)
        cfg = paper_machine(issue_width=2, rc_class=_rc_class(name))
        batched = simulate(program, cfg, engine="batched")
        fast = simulate(program, cfg, engine="fast")
        assert batched.stats == fast.stats
        assert batched.state.memory == fast.state.memory

    def test_simulate_engine_batched_raises_slot_error(self):
        name = ALL_BENCHMARKS[0]
        cfg = dataclasses.replace(
            paper_machine(issue_width=1, rc_class=_rc_class(name)),
            max_cycles=50)
        with pytest.raises(CycleBudgetError):
            simulate(_program(name), cfg, engine="batched")

    def test_empty_gang_rejected(self):
        name = ALL_BENCHMARKS[0]
        with pytest.raises(ConfigError, match="at least one config"):
            BatchedSimulator(_program(name), [])


def test_run_gang_matches_run(tmp_path):
    """ExperimentRunner.run_gang stores records identical to run()."""
    from repro.experiments import ExperimentRunner

    name = ALL_BENCHMARKS[0]
    configs = [paper_machine(issue_width=4, rc_class=_rc_class(name),
                             extra_decode_stage=e) for e in (False, True)]
    gang_runner = ExperimentRunner(cache_dir=tmp_path / "gang",
                                   engine="batched")
    outcomes = gang_runner.run_gang(name, configs)
    ref_runner = ExperimentRunner(cache_dir=tmp_path / "ref", engine="fast")
    for cfg, (record, error) in zip(configs, outcomes):
        assert error is None
        assert record == ref_runner.run(name, cfg)
    # the gang populated the cache: a follow-up run() is a pure hit
    before = gang_runner.cache_hits
    gang_runner.run(name, configs[0])
    assert gang_runner.cache_hits == before + 1


def test_run_gang_rejects_mixed_compile_keys():
    from repro.experiments import ExperimentRunner

    name = ALL_BENCHMARKS[0]
    runner = ExperimentRunner(engine="batched")
    configs = [paper_machine(issue_width=w, rc_class=_rc_class(name))
               for w in (1, 2)]
    with pytest.raises(ValueError, match="compile keys"):
        runner.run_gang(name, configs)
