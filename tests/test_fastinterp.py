"""Differential tests: the specializing IR interpreter vs the reference.

The fast engine (:mod:`repro.ir.fastinterp`) must be bit-identical with the
reference loop on every observable — step count, final memory, block /
branch / call counts, and branch-prediction hints — or fall back to it
transparently.
"""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.ir import FnBuilder, Module
from repro.ir.interp import IR_ENGINE_ENV, Interpreter, resolve_ir_engine
from repro.workloads import ALL_BENCHMARKS, build_workload

from helpers import call_module, diamond_module, fp_module, sum_to_n_module


def _both(module, entry="main", **kwargs):
    ref_interp = Interpreter(module, engine="reference", **kwargs)
    fast_interp = Interpreter(module, engine="fast", **kwargs)
    ref = ref_interp.run(entry)
    fast = fast_interp.run(entry)
    assert not ref_interp.ran_fastpath
    return ref, fast, fast_interp.ran_fastpath


def _assert_identical(ref, fast):
    assert fast.steps == ref.steps
    assert fast.memory == ref.memory
    assert fast.profile.block_counts == ref.profile.block_counts
    assert fast.profile.branch_counts == ref.profile.branch_counts
    assert fast.profile.call_counts == ref.profile.call_counts
    for fn_name, block_name in ref.profile.branch_counts:
        assert (fast.profile.predict_taken(fn_name, block_name)
                == ref.profile.predict_taken(fn_name, block_name))


class TestBenchmarkParity:
    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_benchmark_bit_identical(self, name):
        module = build_workload(name)
        ref, fast, ran_fast = _both(module)
        assert ran_fast, f"{name} unexpectedly fell back to the reference"
        _assert_identical(ref, fast)


class TestSmallModuleParity:
    @pytest.mark.parametrize("make", [sum_to_n_module, call_module,
                                      fp_module, diamond_module])
    def test_helper_modules(self, make):
        ref, fast, ran_fast = _both(make())
        assert ran_fast
        _assert_identical(ref, fast)

    def test_loop_with_taken_exit_edge(self):
        # Loop whose *taken* edge exits and whose back edge is an explicit
        # jmp: exercises the not-taken fall-through and jmp dispatch paths.
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        i = b.li(0, name="i")
        limit = b.li(10, name="limit")
        b.block("loop")
        b.add(i, 1, dest=i)
        b.br("bge", i, limit, "exit")
        b.block("back")
        b.jmp("loop")
        b.block("exit")
        b.store(i, b.la("out"), 0)
        b.halt()
        b.done()
        ref, fast, ran_fast = _both(m)
        assert ran_fast
        _assert_identical(ref, fast)
        assert ref.load_word(m.global_addr("out")) == 10


class TestFallback:
    def test_step_limit_error_matches_reference(self):
        m = sum_to_n_module(1000)
        with pytest.raises(SimulationError) as ref_err:
            Interpreter(m, step_limit=100, engine="reference").run()
        interp = Interpreter(m, step_limit=100, engine="fast")
        with pytest.raises(SimulationError) as fast_err:
            interp.run()
        assert str(fast_err.value) == str(ref_err.value)
        assert not interp.ran_fastpath

    def test_division_fault_matches_reference(self):
        m = Module()
        b = FnBuilder(m, "main")
        b.div(b.li(1), b.li(0))
        b.halt()
        b.done()
        with pytest.raises(SimulationError) as ref_err:
            Interpreter(m, engine="reference").run()
        with pytest.raises(SimulationError) as fast_err:
            Interpreter(m, engine="fast").run()
        assert str(fast_err.value) == str(ref_err.value)


class TestStrictLoads:
    def _loader(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        v = b.load(b.li(99999), 0)
        b.store(b.add(v, 5), b.la("out"), 0)
        b.halt()
        b.done()
        return m

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_default_reads_zero(self, engine):
        m = self._loader()
        result = Interpreter(m, engine=engine).run()
        assert result.load_word(m.global_addr("out")) == 5

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_strict_raises(self, engine):
        m = self._loader()
        with pytest.raises(SimulationError, match="never-written address"):
            Interpreter(m, engine=engine, strict_loads=True).run()

    def test_strict_error_messages_match(self):
        m = self._loader()
        with pytest.raises(SimulationError) as ref_err:
            Interpreter(m, engine="reference", strict_loads=True).run()
        with pytest.raises(SimulationError) as fast_err:
            Interpreter(m, engine="fast", strict_loads=True).run()
        assert str(fast_err.value) == str(ref_err.value)

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_strict_allows_written_addresses(self, engine):
        m = sum_to_n_module(10)
        result = Interpreter(m, engine=engine, strict_loads=True).run()
        assert result.load_word(m.global_addr("out")) == 55


class TestEngineDispatch:
    def test_resolve_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(IR_ENGINE_ENV, raising=False)
        assert resolve_ir_engine() == "fast"
        assert resolve_ir_engine("auto") == "fast"

    def test_resolve_env_override(self, monkeypatch):
        monkeypatch.setenv(IR_ENGINE_ENV, "reference")
        assert resolve_ir_engine() == "reference"
        # An explicit argument wins over the environment.
        assert resolve_ir_engine("fast") == "fast"

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ConfigError, match="unknown IR engine"):
            resolve_ir_engine("turbo")

    def test_env_selects_engine_for_interpreter(self, monkeypatch):
        monkeypatch.setenv(IR_ENGINE_ENV, "reference")
        interp = Interpreter(sum_to_n_module(5))
        interp.run()
        assert interp.engine == "reference"
        assert not interp.ran_fastpath

    def test_fast_flag_set_only_on_fast_runs(self):
        interp = Interpreter(sum_to_n_module(5), engine="fast")
        interp.run()
        assert interp.ran_fastpath
