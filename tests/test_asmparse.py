"""Tests for the textual assembler: parsing, directives, round-trips."""

import pytest

from repro.isa import Imm, Instr, Opcode, PhysReg, RClass, core_spec, rc_spec
from repro.isa.asmfmt import format_instr
from repro.isa.asmparse import AsmError, parse_instr, parse_program
from repro.sim import MachineConfig, simulate


def cfg(**kwargs):
    defaults = dict(issue_width=2,
                    int_spec=core_spec(RClass.INT, 16),
                    fp_spec=core_spec(RClass.FP, 16))
    defaults.update(kwargs)
    return MachineConfig(**defaults)


class TestParseInstr:
    def test_alu(self):
        i = parse_instr("add r5, r6, 3")
        assert i.op is Opcode.ADD
        assert i.dest == PhysReg(RClass.INT, 5)
        assert i.srcs == (PhysReg(RClass.INT, 6), Imm(3))

    def test_li_and_lif(self):
        assert parse_instr("li r5, -7").imm == -7
        i = parse_instr("lif f4, 2.5")
        assert i.imm == 2.5
        assert isinstance(parse_instr("lif f4, 2").imm, float)

    def test_memory_forms(self):
        ld = parse_instr("load r5, 4(r0)")
        assert ld.srcs == (PhysReg(RClass.INT, 0),)
        assert ld.imm == 4
        st = parse_instr("fstore f4, -2(r1)")
        assert st.srcs[0] == PhysReg(RClass.FP, 4)
        assert st.imm == -2

    def test_branch_with_hint(self):
        i = parse_instr("blt r5, 10 -> loop [taken]")
        assert i.op is Opcode.BLT
        assert i.label == "loop"
        assert i.hint_taken is True

    def test_branch_without_hint(self):
        assert parse_instr("beqz r5 -> done").hint_taken is None

    def test_call_and_jmp(self):
        assert parse_instr("call helper").label == "helper"
        assert parse_instr("jmp loop").label == "loop"

    def test_connects(self):
        cu = parse_instr("connect_use ri3, rp200")
        assert cu.connect_updates() == [(RClass.INT, "read", 3, 200)]
        cd = parse_instr("connect_def fi4, fp100")
        assert cd.connect_updates() == [(RClass.FP, "write", 4, 100)]
        cdu = parse_instr("connect_def_use ri1, rp30, ri2, rp31")
        assert cdu.op is Opcode.CDU

    def test_trap(self):
        assert parse_instr("trap 3").imm == 3

    def test_errors(self):
        with pytest.raises(AsmError):
            parse_instr("frobnicate r1")
        with pytest.raises(AsmError):
            parse_instr("add r5, r6")  # missing a source
        with pytest.raises(AsmError):
            parse_instr("load r5, r6")  # not off(base)
        with pytest.raises(AsmError):
            parse_instr("connect_use ri3, ri4")  # second must be 'p'
        with pytest.raises(AsmError):
            parse_instr("connect_use ri3, fp4")  # mixed class

    def test_roundtrip_format_parse(self):
        cases = [
            Instr(Opcode.ADD, dest=PhysReg(RClass.INT, 5),
                  srcs=(PhysReg(RClass.INT, 6), Imm(3))),
            Instr(Opcode.LOAD, dest=PhysReg(RClass.INT, 5),
                  srcs=(PhysReg(RClass.INT, 0),), imm=-4),
            Instr(Opcode.FMUL, dest=PhysReg(RClass.FP, 4),
                  srcs=(PhysReg(RClass.FP, 6), PhysReg(RClass.FP, 8))),
            Instr(Opcode.BGE, srcs=(PhysReg(RClass.INT, 5), Imm(0)),
                  label="x", hint_taken=False),
            Instr(Opcode.CUU, imm=(RClass.INT, 1, 30, 2, 31)),
            Instr(Opcode.NOP),
            Instr(Opcode.HALT),
        ]
        for instr in cases:
            parsed = parse_instr(format_instr(instr))
            assert parsed.op is instr.op
            assert parsed.dest == instr.dest
            assert parsed.srcs == instr.srcs
            assert parsed.imm == instr.imm


class TestParseProgram:
    SOURCE = """
    ; sum 1..10 into memory[100]
    .entry start
    .word 100 = 0
    start:
        li r5, 0        ; total
        li r6, 1        ; i
    loop:
        add r5, r5, r6
        add r6, r6, 1
        ble r6, 10 -> loop [taken]
        store r5, 100(r0)   # r0 is SP; absolute via offset trick
        halt
    """

    def test_assembles_and_runs(self):
        # write to absolute address via immediate base instead:
        src = self.SOURCE.replace("store r5, 100(r0)", "store r5, 0(100)")
        program = parse_program(src)
        result = simulate(program, cfg())
        assert result.load_word(100) == 55

    def test_entry_directive(self):
        program = parse_program("""
        dead:
            halt
        .entry main
        main:
            li r5, 9
            halt
        """)
        result = simulate(program, cfg())
        assert result.state.int_regs[5] == 9

    def test_word_directive(self):
        program = parse_program("""
        .word 500 = 77
            load r5, 0(500)
            halt
        """)
        assert simulate(program, cfg()).state.int_regs[5] == 77

    def test_handler_directive(self):
        program = parse_program("""
        .handler 2 = isr
            li r5, 1
            trap 2
            halt
        isr:
            li r6, 42
            rte
        """)
        result = simulate(program, cfg())
        assert result.state.int_regs[6] == 42

    def test_rc_program(self):
        program = parse_program("""
            li r5, 13
            connect_def ri5, rp30
            li r5, 99
            connect_use ri6, rp30
            store r6, 0(700)
            halt
        """)
        result = simulate(program, cfg(int_spec=rc_spec(RClass.INT, 16)))
        assert result.load_word(700) == 99
        assert result.state.int_regs[5] == 13

    def test_duplicate_label_rejected(self):
        with pytest.raises(AsmError):
            parse_program("x:\n halt\nx:\n halt\n")

    def test_unknown_entry_rejected(self):
        with pytest.raises(AsmError):
            parse_program(".entry ghost\nhalt\n")

    def test_unknown_branch_target_rejected(self):
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            parse_program("jmp nowhere\n")
