"""Unit tests for connect insertion: windows, stealing, restores, combining."""

import pytest

from repro.compiler import check_encodable, insert_connects
from repro.compiler.regalloc.rc_rewrite import (
    ConnectionAllocator,
    _reads_after,
)
from repro.errors import AllocationError
from repro.ir import FnBuilder, Module
from repro.isa import Imm, Instr, Opcode, PhysReg, RClass
from repro.rc import RCModel


def r(n):
    return PhysReg(RClass.INT, n)


def build_fn(instrs, fallthrough=None):
    m = Module()
    b = FnBuilder(m, "main")
    block = b.fn.new_block("entry")
    block.instrs = list(instrs)
    if fallthrough:
        block.fallthrough = fallthrough
    m.add_function(b.fn)
    return b.fn


CORE = 16
WINDOWS = [14, 15]
STEALS = [5, 6, 7, 8, 9, 10, 11, 12, 13]


def rewrite(instrs, model=RCModel.WRITE_RESET_READ_UPDATE, steals=STEALS,
            combine=False):
    fn = build_fn(instrs)
    n = insert_connects(fn, RClass.INT, CORE, WINDOWS, model,
                        combine=combine, steal_pool=steals)
    check_encodable(fn, RClass.INT, CORE)
    return fn.entry.instrs, n


class TestBasicRewrite:
    def test_extended_read_gets_connect_use(self):
        out, n = rewrite([
            Instr(Opcode.ADD, dest=r(5), srcs=(r(30), Imm(1))),
            Instr(Opcode.HALT),
        ])
        assert n == 1
        assert out[0].op is Opcode.CUSE
        _, which, idx, phys = out[0].connect_updates()[0] + tuple()
        assert (which, phys) == ("read", 30)
        assert out[1].srcs[0].num == idx

    def test_extended_write_gets_connect_def(self):
        out, n = rewrite([
            Instr(Opcode.LI, dest=r(40), imm=7),
            Instr(Opcode.HALT),
        ])
        assert out[0].op is Opcode.CDEF
        assert out[1].dest.num < CORE

    def test_connection_reused_for_repeated_reads(self):
        out, n = rewrite([
            Instr(Opcode.ADD, dest=r(5), srcs=(r(30), Imm(1))),
            Instr(Opcode.ADD, dest=r(6), srcs=(r(30), Imm(2))),
            Instr(Opcode.HALT),
        ])
        assert n == 1  # one connect serves both reads

    def test_two_extended_sources_use_distinct_indices(self):
        out, _ = rewrite([
            Instr(Opcode.ADD, dest=r(5), srcs=(r(30), r(31))),
            Instr(Opcode.HALT),
        ])
        add = next(i for i in out if i.op is Opcode.ADD)
        assert add.srcs[0] != add.srcs[1]

    def test_model3_read_after_write_needs_no_connect_use(self):
        out, n = rewrite([
            Instr(Opcode.LI, dest=r(40), imm=7),
            Instr(Opcode.ADD, dest=r(5), srcs=(r(40), Imm(1))),
            Instr(Opcode.HALT),
        ])
        # one connect-def; the read reuses the auto-updated read map
        assert n == 1

    def test_model1_read_after_write_needs_connect_use(self):
        out, n = rewrite([
            Instr(Opcode.LI, dest=r(40), imm=7),
            Instr(Opcode.ADD, dest=r(5), srcs=(r(40), Imm(1))),
            Instr(Opcode.HALT),
        ], model=RCModel.NO_RESET)
        assert n == 2

    def test_model1_write_map_persists_for_rewrites(self):
        out, n = rewrite([
            Instr(Opcode.LI, dest=r(40), imm=7),
            Instr(Opcode.LI, dest=r(40), imm=9),
            Instr(Opcode.HALT),
        ], model=RCModel.NO_RESET)
        assert n == 1  # the second write reuses the persistent write map


class TestStealing:
    def test_steals_dead_index(self):
        # r5's core value is never read below: its index may be stolen.
        out, _ = rewrite([
            Instr(Opcode.ADD, dest=r(6), srcs=(r(30), Imm(1))),
            Instr(Opcode.HALT),
        ], steals=[5])
        cuse = out[0]
        assert cuse.connect_updates()[0][2] in (5, 14, 15)

    def test_never_steals_index_read_later(self):
        # r5 is read by the later add: only windows may be redirected.
        out, _ = rewrite([
            Instr(Opcode.ADD, dest=r(6), srcs=(r(30), Imm(1))),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(5), Imm(1))),
            Instr(Opcode.HALT),
        ], steals=[5])
        used = {u[2] for i in out if i.is_connect
                for u in i.connect_updates()}
        assert 5 not in used

    def test_stolen_index_restored_before_branch(self):
        fn = build_fn([
            Instr(Opcode.ADD, dest=r(6), srcs=(r(30), Imm(1))),
            Instr(Opcode.BEQ, srcs=(r(6), Imm(0)), label="entry"),
        ], fallthrough="exit")
        exit_block = fn.new_block("exit")
        exit_block.instrs = [Instr(Opcode.HALT)]
        insert_connects(fn, RClass.INT, CORE, WINDOWS,
                        RCModel.WRITE_RESET_READ_UPDATE, combine=False,
                        steal_pool=[5])
        entry = fn.block("entry").instrs
        # if index 5 was stolen, a restore connect_use r5,r5 must precede
        # the terminator
        stolen = any(i.is_connect and i.connect_updates()[0][2] == 5
                     and i.connect_updates()[0][3] == 30 for i in entry)
        if stolen:
            restores = [i for i in entry if i.is_connect
                        and i.connect_updates()[0][2:] == (5, 5)]
            assert restores, "stolen index not re-homed at block exit"
            assert entry[-1].is_cond_branch

    def test_windows_never_restored(self):
        out, _ = rewrite([
            Instr(Opcode.ADD, dest=r(6), srcs=(r(30), Imm(1))),
            Instr(Opcode.HALT),
        ], steals=[])
        for i in out:
            if i.is_connect:
                _, _, idx, phys = i.connect_updates()[0]
                assert not (idx == phys)  # no self-restores emitted

    def test_call_resets_connection_state(self):
        out, n = rewrite([
            Instr(Opcode.ADD, dest=r(6), srcs=(r(30), Imm(1))),
            Instr(Opcode.CALL, label="main"),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(30), Imm(1))),
            Instr(Opcode.HALT),
        ])
        assert n == 2  # reconnect needed after jsr reset


class TestCombining:
    def test_adjacent_connects_combined(self):
        out, _ = rewrite([
            Instr(Opcode.ADD, dest=r(40), srcs=(r(30), r(31))),
            Instr(Opcode.HALT),
        ], combine=True)
        combined = [i for i in out
                    if i.op in (Opcode.CUU, Opcode.CDU, Opcode.CDD)]
        assert combined, "three connects should combine into multi-connects"


class TestConnectionAllocator:
    def test_needs_two_windows(self):
        with pytest.raises(AllocationError):
            ConnectionAllocator([14], [], RCModel.NO_RESET)

    def test_pick_exhaustion_raises(self):
        alloc = ConnectionAllocator([14, 15], [], RCModel.NO_RESET)
        with pytest.raises(AllocationError):
            alloc._pick((), excluded={14, 15})

    def test_reads_after_suffix_sets(self):
        instrs = [
            Instr(Opcode.ADD, dest=r(6), srcs=(r(5), Imm(1))),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), Imm(1))),
            Instr(Opcode.HALT),
        ]
        ra = _reads_after(instrs, RClass.INT, CORE)
        assert ra[0] == {5, 6}
        assert ra[1] == {6}
        assert ra[2] == set()


class TestPaperSection3Example:
    def test_exactly_two_connects_for_the_papers_sequence(self):
        """Paper section 3, verbatim: with R9 and R10 in the extended
        section and core R1-R8,

            1) R2 <- R2 + R9        needs a connect-use for R9
            2) R10 <- R3 + 1        needs a connect-def for R10
            3) R4 <- R10 + R5       needs NO connect: model 3's automatic
                                    reset redirected the read map when
                                    instruction 2 wrote through its index.

        "the code sequence requires two connect instructions."
        """
        core = 9  # paper core R1..R8 (we include an index 0 for SP)
        out, n = [None, None]
        fn = build_fn([
            Instr(Opcode.ADD, dest=r(2), srcs=(r(2), r(9))),
            Instr(Opcode.ADD, dest=r(10), srcs=(r(3), Imm(1))),
            Instr(Opcode.ADD, dest=r(4), srcs=(r(10), r(5))),
            Instr(Opcode.HALT),
        ])
        n = insert_connects(fn, RClass.INT, core,
                            windows=[6, 7], model=RCModel.WRITE_RESET_READ_UPDATE,
                            combine=False, steal_pool=[])
        assert n == 2
        ops = [i.op for i in fn.entry.instrs]
        assert ops.count(Opcode.CUSE) == 1
        assert ops.count(Opcode.CDEF) == 1
        check_encodable(fn, RClass.INT, core)

    def test_model_one_would_need_a_third_connect(self):
        """Under the no-reset model the read of R10 in instruction 3 needs
        its own connect-use — the cost model 3 eliminates."""
        core = 9
        fn = build_fn([
            Instr(Opcode.ADD, dest=r(2), srcs=(r(2), r(9))),
            Instr(Opcode.ADD, dest=r(10), srcs=(r(3), Imm(1))),
            Instr(Opcode.ADD, dest=r(4), srcs=(r(10), r(5))),
            Instr(Opcode.HALT),
        ])
        n = insert_connects(fn, RClass.INT, core,
                            windows=[6, 7], model=RCModel.NO_RESET,
                            combine=False, steal_pool=[])
        assert n == 3
