"""Tests for the golden-model interpreter and its profiler."""

import pytest

from repro.errors import IRError, SimulationError
from repro.ir import FnBuilder, Module, run_module
from repro.ir.interp import Interpreter

from helpers import call_module, diamond_module, fp_module, sum_to_n_module


class TestBasicExecution:
    def test_sum_to_n(self):
        m = sum_to_n_module(10)
        result = run_module(m)
        assert result.load_word(m.global_addr("out")) == 55

    def test_call_and_return_value(self):
        m = call_module()
        result = run_module(m)
        assert result.load_word(m.global_addr("out")) == 50

    def test_fp_arithmetic(self):
        m = fp_module()
        result = run_module(m)
        assert result.load_word(m.global_addr("fout")) == pytest.approx(3.25)

    def test_diamond_takes_then_side(self):
        m = diamond_module()
        result = run_module(m)
        assert result.load_word(m.global_addr("out")) == 1

    def test_uninitialized_memory_reads_zero(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        v = b.load(b.li(99999), 0)
        b.store(b.add(v, 5), b.la("out"), 0)
        b.halt()
        b.done()
        assert run_module(m).load_word(m.global_addr("out")) == 5

    def test_nested_calls(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "inc", params=[("i", "x")], ret="i")
        b.ret(b.add(b.params[0], 1))
        b.done()
        b = FnBuilder(m, "twice", params=[("i", "x")], ret="i")
        once = b.call("inc", [b.params[0]], ret="i")
        b.ret(b.call("inc", [once], ret="i"))
        b.done()
        b = FnBuilder(m, "main")
        b.store(b.call("twice", [40], ret="i"), b.la("out"), 0)
        b.halt()
        b.done()
        assert run_module(m).load_word(m.global_addr("out")) == 42

    def test_fp_argument_passing(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "axpy", params=[("f", "a"), ("f", "x")], ret="f")
        a, x = b.params
        b.ret(b.fadd(b.fmul(a, x), b.fli(1.0)))
        b.done()
        b = FnBuilder(m, "main")
        r = b.call("axpy", [b.fli(2.0), b.fli(3.0)], ret="f")
        b.fstore(r, b.la("out"), 0)
        b.halt()
        b.done()
        assert run_module(m).load_word(m.global_addr("out")) == pytest.approx(7.0)


class TestErrors:
    def test_read_undefined_vreg(self):
        m = Module()
        b = FnBuilder(m, "main")
        ghost = b.vreg("i", "ghost")
        b.add(ghost, 1)
        b.halt()
        b.done()
        with pytest.raises(IRError, match="undefined"):
            run_module(m)

    def test_step_limit_catches_infinite_loops(self):
        m = Module()
        b = FnBuilder(m, "main")
        b.block("spin")
        b.li(0)
        b.jmp("spin")
        b.done()
        with pytest.raises(SimulationError, match="steps"):
            Interpreter(m, step_limit=1000).run()

    def test_wrong_arg_count(self):
        m = call_module()
        with pytest.raises(IRError):
            Interpreter(m).run("square")


class TestProfile:
    def test_block_counts(self):
        m = sum_to_n_module(10)
        profile = run_module(m).profile
        assert profile.block_weight("main", "loop") == 10
        assert profile.block_weight("main", "entry") == 1
        assert profile.block_weight("main", "exit") == 1

    def test_branch_counts_and_prediction(self):
        m = sum_to_n_module(10)
        profile = run_module(m).profile
        taken, not_taken = profile.branch_counts[("main", "loop")]
        assert (taken, not_taken) == (9, 1)
        assert profile.predict_taken("main", "loop") is True

    def test_prediction_none_when_balanced(self):
        m = diamond_module()
        profile = run_module(m).profile
        # branch executes once: 1 taken, 0 not-taken -> predict taken
        assert profile.predict_taken("main", "entry") is True
        # unknown block has no prediction
        assert profile.predict_taken("main", "nope") is None

    def test_call_counts(self):
        m = call_module()
        profile = run_module(m).profile
        assert profile.call_counts["square"] == 1

    def test_steps_counted(self):
        m = sum_to_n_module(3)
        result = run_module(m)
        # entry: 4 instrs + implicit jmp; loop runs 3 x 3 instrs; exit: 2
        assert result.steps == 5 + 9 + 2


class TestMachineLevelOps:
    def test_trap_rejected_with_clear_error(self):
        from repro.isa import Instr, Opcode

        m = Module()
        b = FnBuilder(m, "main")
        block = b.fn.new_block("entry")
        block.instrs = [Instr(Opcode.TRAP, imm=1), Instr(Opcode.HALT)]
        m.add_function(b.fn)
        with pytest.raises(IRError, match="machine-level"):
            run_module(m)

    def test_connect_rejected_with_clear_error(self):
        from repro.isa import Instr, Opcode, RClass, connect_use

        m = Module()
        b = FnBuilder(m, "main")
        block = b.fn.new_block("entry")
        block.instrs = [connect_use(RClass.INT, 1, 30), Instr(Opcode.HALT)]
        m.add_function(b.fn)
        with pytest.raises(IRError, match="machine-level"):
            run_module(m)
