"""Property-based tests for RC state machines and the assembly round-trip."""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    Imm,
    Instr,
    Opcode,
    PhysReg,
    RClass,
    combine_connects,
    connect_def,
    connect_use,
)
from repro.isa.asmfmt import format_instr
from repro.isa.asmparse import parse_instr
from repro.rc import MappingTable, RCModel

ENTRIES, PHYSICAL = 8, 32

model_st = st.sampled_from(list(RCModel))
index_st = st.integers(0, ENTRIES - 1)
phys_st = st.integers(0, PHYSICAL - 1)

op_st = st.one_of(
    st.tuples(st.just("use"), index_st, phys_st),
    st.tuples(st.just("def"), index_st, phys_st),
    st.tuples(st.just("write"), index_st, st.just(0)),
    st.tuples(st.just("reset"), st.just(0), st.just(0)),
)


def apply_op(table: MappingTable, op) -> None:
    kind, a, b = op
    if kind == "use":
        table.connect_use(a, b)
    elif kind == "def":
        table.connect_def(a, b)
    elif kind == "write":
        table.after_write(a)
    else:
        table.reset_home()


@settings(max_examples=200)
@given(model_st, st.lists(op_st, max_size=40))
def test_mapping_table_targets_always_in_range(model, ops):
    table = MappingTable(ENTRIES, PHYSICAL, model)
    for op in ops:
        apply_op(table, op)
    for i in range(ENTRIES):
        assert 0 <= table.read_target(i) < PHYSICAL
        assert 0 <= table.write_target(i) < PHYSICAL


@settings(max_examples=100)
@given(model_st, st.lists(op_st, max_size=30), st.lists(op_st, max_size=10))
def test_snapshot_restore_is_a_true_checkpoint(model, ops, later_ops):
    table = MappingTable(ENTRIES, PHYSICAL, model)
    for op in ops:
        apply_op(table, op)
    snap = table.snapshot()
    reads = list(table.read_map)
    writes = list(table.write_map)
    for op in later_ops:
        apply_op(table, op)
    table.restore(snap)
    assert table.read_map == reads
    assert table.write_map == writes


@settings(max_examples=100)
@given(model_st, st.lists(op_st, max_size=30))
def test_reset_home_always_restores_identity(model, ops):
    table = MappingTable(ENTRIES, PHYSICAL, model)
    for op in ops:
        apply_op(table, op)
    table.reset_home()
    assert all(table.at_home(i) for i in range(ENTRIES))


@settings(max_examples=100)
@given(model_st, index_st, phys_st, phys_st)
def test_model_reset_semantics_match_figure3(model, idx, rp_read, rp_write):
    """Cross-check after_write against the paper's Figure 3 definitions."""
    table = MappingTable(ENTRIES, PHYSICAL, model)
    table.connect_use(idx, rp_read)
    table.connect_def(idx, rp_write)
    table.after_write(idx)
    if model is RCModel.NO_RESET:
        assert table.read_target(idx) == rp_read
        assert table.write_target(idx) == rp_write
    elif model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
        assert table.read_target(idx) == rp_read
        assert table.write_target(idx) == idx
    elif model is RCModel.WRITE_RESET_READ_UPDATE:
        assert table.read_target(idx) == rp_write
        assert table.write_target(idx) == idx
    else:
        assert table.read_target(idx) == idx
        assert table.write_target(idx) == idx
    # Model 5 additionally consumes read connections on use.
    table.connect_use(idx, rp_read)
    table.after_read(idx)
    if model is RCModel.READ_RESET:
        assert table.read_target(idx) == idx
    else:
        assert table.read_target(idx) == rp_read


connect_st = st.builds(
    lambda kind, i, p: (connect_use if kind else connect_def)(RClass.INT, i, p),
    st.booleans(), index_st, phys_st,
)


@settings(max_examples=150)
@given(connect_st, connect_st, model_st)
def test_combined_connects_equivalent_to_pair(a, b, model):
    combined = combine_connects(a, b)
    if combined is None:
        return
    t1 = MappingTable(ENTRIES, PHYSICAL, model)
    t2 = MappingTable(ENTRIES, PHYSICAL, model)
    for _rclass, which, idx, phys in a.connect_updates() + b.connect_updates():
        t1.apply(which, idx, phys)
    for _rclass, which, idx, phys in combined.connect_updates():
        t2.apply(which, idx, phys)
    assert t1.read_map == t2.read_map
    assert t1.write_map == t2.write_map


# -- assembly round-trip -------------------------------------------------------

_int_reg = st.integers(0, 31).map(lambda n: PhysReg(RClass.INT, n))
_fp_reg = st.integers(0, 15).map(lambda n: PhysReg(RClass.FP, 2 * n))
_imm = st.integers(-1000, 1000).map(Imm)

_alu_instr = st.builds(
    lambda op, d, a, b: Instr(op, dest=d, srcs=(a, b)),
    st.sampled_from([Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND,
                     Opcode.XOR, Opcode.CMPLT]),
    _int_reg, _int_reg, st.one_of(_int_reg, _imm),
)
_fp_instr = st.builds(
    lambda op, d, a, b: Instr(op, dest=d, srcs=(a, b)),
    st.sampled_from([Opcode.FADD, Opcode.FMUL, Opcode.FSUB]),
    _fp_reg, _fp_reg, _fp_reg,
)
_mem_instr = st.one_of(
    st.builds(lambda d, b, off: Instr(Opcode.LOAD, dest=d, srcs=(b,),
                                      imm=off),
              _int_reg, _int_reg, st.integers(-64, 64)),
    st.builds(lambda v, b, off: Instr(Opcode.STORE, srcs=(v, b), imm=off),
              _int_reg, _int_reg, st.integers(-64, 64)),
)
_branch_instr = st.builds(
    lambda op, a, b, hint: Instr(op, srcs=(a, b), label="target",
                                 hint_taken=hint),
    st.sampled_from([Opcode.BEQ, Opcode.BLT, Opcode.BGE]),
    _int_reg, st.one_of(_int_reg, _imm),
    st.sampled_from([None, True, False]),
)
_connect_instr = st.builds(
    lambda use, i, p: (connect_use if use else connect_def)(RClass.INT, i, p),
    st.booleans(), st.integers(0, 31), st.integers(0, 255),
)


@settings(max_examples=200)
@given(st.one_of(_alu_instr, _fp_instr, _mem_instr, _branch_instr,
                 _connect_instr))
def test_assembly_round_trip(instr):
    parsed = parse_instr(format_instr(instr))
    assert parsed.op is instr.op
    assert parsed.dest == instr.dest
    assert parsed.srcs == instr.srcs
    assert parsed.imm == instr.imm
    assert parsed.label == instr.label
    assert parsed.hint_taken == instr.hint_taken
