"""Tests for the static analyzer: CFG recovery, dataflow, checks, rules."""

import pytest

from repro.analyze import (
    RULES,
    BackwardAnalysis,
    ForwardAnalysis,
    Severity,
    annotate_listing,
    build_cfg,
    check_program,
    solve_backward,
    solve_forward,
)
from repro.compiler.pipeline import CompileOptions, compile_module
from repro.isa import Instr, Opcode, RClass
from repro.isa.asmparse import parse_program
from repro.rc import RCModel
from repro.sim.config import paper_machine
from repro.workloads import workload

from helpers import sum_to_n_module

ALL_MODELS = [1, 2, 3, 4, 5]


def machine(model=3, rc=True, cls=RClass.INT):
    return paper_machine(int_core=16, fp_core=32,
                         rc_class=cls if rc else None,
                         rc_model=RCModel(model))


def check_asm(text, model=3, rc=True):
    program = parse_program(text)
    return program, check_program(program, machine(model, rc))


# ---------------------------------------------------------------------------
# CFG recovery


DIAMOND = """
start:
    li r5, 1
    blt r5, 10 -> left
    li r6, 2
    li r8, 8
    jmp merge
left:
    li r7, 3
    li r8, 9
merge:
    add r9, r8, 1
    halt
"""

LOOP = """
start:
    li r5, 0
    li r6, 1
loop:
    add r5, r5, r6
    add r6, r6, 1
    blt r6, 11 -> loop
    halt
"""

DEAD_BLOCK = """
start:
    li r5, 1
    jmp end
    li r6, 2
end:
    halt
"""


class TestCFG:
    def test_diamond_shape(self):
        cfg = build_cfg(parse_program(DIAMOND))
        assert len(cfg.functions) == 1
        fn = cfg.functions[0]
        assert fn.is_entry
        blocks = fn.blocks
        assert len(blocks) == 4
        entry = blocks[fn.entry]
        assert len(entry.succs) == 2  # taken + fall-through
        merge = max(blocks.values(), key=lambda b: b.start)
        starts = {b.start for b in blocks.values()}
        preds_of_merge = [s for s in starts
                          if merge.start in blocks[s].succs]
        assert len(preds_of_merge) == 2

    def test_loop_backedge(self):
        cfg = build_cfg(parse_program(LOOP))
        fn = cfg.functions[0]
        loop = fn.blocks[2]  # after the two li instructions
        assert loop.start in loop.succs  # self loop

    def test_unreachable_block_partitioned_but_not_reachable(self):
        cfg = build_cfg(parse_program(DEAD_BLOCK))
        fn = cfg.functions[0]
        assert 2 in cfg.block_at  # the dead li starts a block...
        assert 2 not in fn.reachable()  # ...that no path enters

    def test_function_partition_from_calls(self):
        program = parse_program("""
start:
    call f
    halt
f:
    li r5, 1
    ret
""")
        cfg = build_cfg(program)
        assert len(cfg.functions) == 2
        entries = [fn for fn in cfg.functions if fn.is_entry]
        assert len(entries) == 1
        assert cfg.block_of(2) is not None


# ---------------------------------------------------------------------------
# Dataflow framework on hand-built analyses


class MayDefined(ForwardAnalysis):
    """Union lattice: registers written on *some* path."""

    def boundary(self, fn):
        return frozenset()

    def join(self, a, b):
        return a | b

    def copy(self, state):
        return state

    def transfer(self, state, index, instr):
        if instr.dest is not None:
            state = state | {instr.dest.num}
        return state


class MustDefined(MayDefined):
    """Intersection lattice: registers written on *every* path."""

    def join(self, a, b):
        return a & b


class LiveRegs(BackwardAnalysis):
    """Classic liveness over plain register numbers (backward may-union)."""

    def boundary(self, fn):
        return frozenset()

    def bottom(self, fn):
        return frozenset()

    def join(self, a, b):
        return a | b

    def copy(self, state):
        return state

    def transfer(self, state, index, instr):
        if instr.dest is not None:
            state = state - {instr.dest.num}
        for src in instr.reg_srcs():
            state = state | {src.num}
        return state


class TestDataflow:
    def _solve(self, text, analysis):
        program = parse_program(text)
        fn = build_cfg(program).functions[0]
        return fn, solve_forward(fn, analysis, program.instrs)

    def test_diamond_may_union(self):
        fn, result = self._solve(DIAMOND, MayDefined())
        merge = max(fn.blocks)
        assert result.block_in[merge] == {5, 6, 7, 8}

    def test_diamond_must_intersection(self):
        fn, result = self._solve(DIAMOND, MustDefined())
        merge = max(fn.blocks)
        # r6 and r7 are each written on only one arm; r5 and r8 on both.
        assert result.block_in[merge] == {5, 8}

    def test_loop_reaches_fixpoint(self):
        fn, result = self._solve(LOOP, MayDefined())
        assert result.block_in[2] == {5, 6}  # loop header
        exit_block = max(fn.blocks)
        assert result.block_in[exit_block] == {5, 6}

    def test_unreachable_block_left_at_bottom(self):
        fn, result = self._solve(DEAD_BLOCK, MayDefined())
        assert 2 not in result.block_in

    def test_walk_replays_block(self):
        fn, result = self._solve(LOOP, MayDefined())
        seen = []
        result.walk(fn.blocks[fn.entry],
                    lambda state, i, instr: seen.append((i, state)))
        assert seen[0] == (0, frozenset())
        assert seen[1] == (1, frozenset({5}))

    def test_out_state(self):
        fn, result = self._solve(LOOP, MayDefined())
        assert result.out_state(fn.blocks[fn.entry]) == {5, 6}


BWD_DIAMOND = """
start:
    li r5, 1
    li r6, 2
    li r7, 3
    blt r5, 10 -> left
    add r8, r6, 1
    jmp merge
left:
    add r8, r7, 1
merge:
    add r9, r8, 1
    halt
"""

# Two-entry loop between blocks ``a`` and ``b``: no single header
# dominates the cycle, so only a genuine fixpoint solves it.
IRREDUCIBLE = """
start:
    li r5, 0
    li r6, 1
    blt r5, 10 -> b
a:
    add r5, r5, 1
    blt r5, 20 -> b
    jmp out
b:
    add r6, r6, 1
    blt r6, 30 -> a
out:
    halt
"""


class TestBackwardDataflow:
    def _solve(self, text, analysis):
        program = parse_program(text)
        fn = build_cfg(program).functions[0]
        return fn, solve_backward(fn, analysis, program.instrs)

    def test_diamond_join_unions_both_arms(self):
        fn, result = self._solve(BWD_DIAMOND, LiveRegs())
        merge = max(fn.blocks)
        assert result.block_in[merge] == {8}
        # The two arms read r6 / r7 respectively; the branch block's
        # out-state is the union of their in-states.
        assert result.block_out[fn.entry] == {6, 7}
        assert result.block_in[fn.entry] == frozenset()

    def test_loop_reaches_fixpoint(self):
        fn, result = self._solve(LOOP, LiveRegs())
        # The loop body reads r5 and r6 before redefining them, so both
        # are live around the back edge and into the header.
        assert result.block_in[2] == {5, 6}
        assert result.block_in[fn.entry] == frozenset()

    def test_irreducible_cycle_converges(self):
        fn, result = self._solve(IRREDUCIBLE, LiveRegs())
        # Both cycle entries see both counters live: each half reads one
        # counter and the cross edges carry the other around.
        assert result.block_in[3] == {5, 6}
        assert result.block_in[6] == {5, 6}
        assert result.block_in[fn.entry] == frozenset()

    def test_unreachable_block_left_at_bottom(self):
        fn, result = self._solve(DEAD_BLOCK, LiveRegs())
        assert 2 not in result.block_in

    def test_walk_replays_block_backward(self):
        fn, result = self._solve(LOOP, LiveRegs())
        seen = []
        result.walk(fn.blocks[fn.entry],
                    lambda state, i, instr: seen.append((i, state)))
        assert seen[0] == (1, {5, 6})  # after ``li r6, 1``: loop needs both
        assert seen[1] == (0, {5})     # after ``li r5, 0``: r6 not yet set


# ---------------------------------------------------------------------------
# Adversarial fixtures: one rule each


class TestRules:
    def assert_only(self, report, rule):
        assert report.counts() == {rule: 1}, report.render()

    def test_cfg001_falls_off_end(self):
        _, report = check_asm("start:\n    li r5, 1\n")
        self.assert_only(report, "CFG001")
        assert not report.clean()

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_rc001_read_of_never_written_phys(self, model):
        _, report = check_asm("""
start:
    connect_use ri5, rp20
    add r6, r5, 1
    halt
""", model=model)
        self.assert_only(report, "RC001")
        assert report.findings[0].severity is Severity.ERROR

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_rc002_path_dependent_read(self, model):
        _, report = check_asm("""
start:
    li r20, 7
    li r21, 9
    li r5, 1
    blt r5, 10 -> left
    connect_use ri6, rp20
    jmp merge
left:
    connect_use ri6, rp21
merge:
    add r7, r6, 1
    halt
""", model=model)
        self.assert_only(report, "RC002")

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_rc003_dead_connect(self, model):
        _, report = check_asm("""
start:
    li r5, 1
    connect_use ri6, rp20
    halt
""", model=model)
        self.assert_only(report, "RC003")

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_rc003_connect_dead_across_join(self, model):
        # The connect of index 6 to physical 20 is remapped on *both* arms
        # before the only read of r6: dead on every path, which only the
        # backward slot-liveness pass can prove (the slot is still observed
        # inside the same block by nothing, and the forward map state alone
        # cannot distinguish "overwritten everywhere" from "used on one arm").
        _, report = check_asm("""
start:
    li r20, 7
    li r21, 9
    li r5, 1
    connect_use ri6, rp20
    connect_use ri7, rp20
    add r8, r7, 1
    blt r5, 10 -> left
    connect_use ri6, rp21
    jmp merge
left:
    connect_use ri6, rp21
merge:
    add r9, r6, 1
    halt
""", model=model)
        self.assert_only(report, "RC003")

    def test_rc004_unreadable_ext_write(self):
        _, report = check_asm("""
start:
    li r20, 7
    halt
""")
        # Unreadable implies never-read: the same write is also flagged as
        # dead by the backward extended-register liveness (RC006).
        assert report.counts() == {"RC004": 1, "RC006": 1}, report.render()

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_rc005_redundant_connect(self, model):
        _, report = check_asm("""
start:
    li r20, 7
    connect_use ri6, rp20
    add r7, r6, 1
    connect_use ri6, rp20
    add r8, r6, 1
    halt
""", model=model)
        if model == 5:
            # READ_RESET: the first read resets the slot back to home, so
            # the second connect re-establishes the mapping — not redundant.
            assert report.counts() == {}, report.render()
        else:
            self.assert_only(report, "RC005")

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_rc006_dead_ext_write(self, model):
        # The first write into physical 20 is definitely overwritten before
        # any read resolves to it; the register itself *is* readable, so
        # RC004 stays silent and only the liveness-based rule fires.
        _, report = check_asm("""
start:
    li r20, 7
    li r20, 9
    connect_use ri6, rp20
    add r7, r6, 1
    halt
""", model=model)
        self.assert_only(report, "RC006")
        assert report.findings[0].index == 0

    def test_ubd001_direct_read_before_def(self):
        _, report = check_asm("""
start:
    add r6, r5, 1
    halt
""", rc=False)
        self.assert_only(report, "UBD001")

    def test_cc001_unbalanced_sp(self):
        _, report = check_asm("""
start:
    call f
    halt
f:
    sub r0, r0, 8
    ret
""", rc=False)
        self.assert_only(report, "CC001")

    def test_cc002_clobbered_callee_saved(self):
        _, report = check_asm("""
start:
    call f
    halt
f:
    li r5, 1
    ret
""", rc=False)
        self.assert_only(report, "CC002")

    def test_cc002_save_restore_is_clean(self):
        _, report = check_asm("""
start:
    call f
    halt
f:
    sub r0, r0, 1
    store r5, 0(r0)
    li r5, 1
    load r5, 0(r0)
    add r0, r0, 1
    ret
""", rc=False)
        assert report.counts() == {}, report.render()

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_cc003_ext_read_across_call(self, model):
        # The callee rewrites physical 20, so the caller's read after the
        # call sees a value a call may have clobbered.  (The callee reads
        # its own write back so no dead-write rule fires alongside.)
        _, report = check_asm("""
start:
    connect_def ri6, rp20
    li r6, 7
    call f
    connect_use ri6, rp20
    add r7, r6, 1
    halt
f:
    li r20, 9
    connect_use ri6, rp20
    store r6, 0(r0)
    ret
""", model=model)
        self.assert_only(report, "CC003")

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_cc003_silent_when_callee_cannot_clobber(self, model):
        # With the call graph available, a CALL only invalidates the
        # callee's transitive extended-write footprint: an empty callee
        # leaves the extended register provably intact.
        _, report = check_asm("""
start:
    connect_def ri6, rp20
    li r6, 7
    call f
    connect_use ri6, rp20
    add r7, r6, 1
    halt
f:
    ret
""", model=model)
        assert report.counts() == {}, report.render()

    def test_lat001_dependent_pair_below_latency(self):
        _, report = check_asm("""
start:
    li r5, 2048
    store r5, 0(r5)
    load r6, 0(r5)
    add r7, r6, 1
    halt
""", rc=False)
        self.assert_only(report, "LAT001")
        assert report.findings[0].severity is Severity.INFO

    def test_every_registered_rule_is_covered(self):
        # The fixtures above exercise the whole registry.
        assert set(RULES) == {"CFG001", "RC001", "RC002", "RC003", "RC004",
                              "RC005", "RC006", "UBD001", "CC001", "CC002",
                              "CC003", "LAT001"}


# ---------------------------------------------------------------------------
# Suppressions, strict mode, report plumbing


LAT_TEXT = """
start:
    li r5, 2048
    store r5, 0(r5)
    load r6, 0(r5)
    add r7, r6, 1{suffix}
    halt
"""


class TestSuppressionsAndStrict:
    def test_inline_suppression(self):
        text = LAT_TEXT.format(suffix="    ; check: ignore=LAT001")
        _, report = check_asm(text, rc=False)
        assert report.counts() == {}
        assert report.suppressed == 1

    def test_file_wide_suppression(self):
        text = "; check: ignore=LAT001\n" + LAT_TEXT.format(suffix="")
        _, report = check_asm(text, rc=False)
        assert report.counts() == {}
        assert report.suppressed == 1

    def test_suppression_is_rule_specific(self):
        text = LAT_TEXT.format(suffix="    ; check: ignore=RC001")
        _, report = check_asm(text, rc=False)
        assert report.counts() == {"LAT001": 1}
        assert report.suppressed == 0

    def test_strict_fails_on_info(self):
        _, report = check_asm(LAT_TEXT.format(suffix=""), rc=False)
        assert report.clean() and not report.clean(strict=True)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_errors_fail_even_without_strict(self):
        _, report = check_asm("start:\n    li r5, 1\n")
        assert not report.clean()
        assert report.exit_code() == 1

    def test_report_serialization(self):
        _, report = check_asm(LAT_TEXT.format(suffix=""), rc=False)
        d = report.to_dict()
        assert d["counts"] == {"LAT001": 1}
        assert d["findings"][0]["severity"] == "info"
        assert "LAT001" in report.render()


# ---------------------------------------------------------------------------
# Annotated listings


class TestAnnotate:
    def test_listing_interleaves_blocks_and_findings(self):
        program, report = check_asm("""
start:
    li r9, 1
    connect_use ri5, rp20
    blt r9, 10 -> next
next:
    add r6, r5, 1
    halt
""", model=1)
        listing = annotate_listing(program, machine(1), report)
        assert "; -- block @0" in listing
        assert "RC001" in listing
        assert "r5->p20" in listing  # abstract map state at block entry

    def test_unreachable_block_is_labelled(self):
        program, report = check_asm(DEAD_BLOCK, rc=False)
        listing = annotate_listing(program, machine(rc=False), report)
        assert "(unreachable)" in listing


# ---------------------------------------------------------------------------
# Whole-benchmark checks and mutation sensitivity


def compile_bench(name, model, *, int_core=16, fp_core=32):
    w = workload(name)
    config = paper_machine(
        int_core=int_core, fp_core=fp_core,
        rc_class=RClass.INT if w.kind == "int" else RClass.FP,
        rc_model=RCModel(model),
    )
    out = compile_module(w.module(1), config)
    return out, config


class TestBenchmarks:
    @pytest.mark.parametrize("name,model", [("cmp", 3), ("grep", 1),
                                            ("eqntott", 4)])
    def test_compiled_benchmark_is_clean(self, name, model):
        out, config = compile_bench(name, model)
        report = check_program(out.program, config)
        assert not report.errors and not report.warnings, report.render()

    def test_nopped_connect_is_caught(self):
        # Deleting one connect from a compiled program must surface as an
        # RC-map finding: the read that depended on it now resolves to a
        # window home the function never wrote (RC001) or to a
        # path-dependent entry (RC002).
        out, config = compile_bench("eqntott", 4)
        program = out.program
        sites = [i for i, instr in enumerate(program.instrs)
                 if instr.op in (Opcode.CUSE, Opcode.CUU)]
        assert sites
        caught = 0
        for i in sites:
            saved = program.instrs[i]
            program.instrs[i] = Instr(Opcode.NOP)
            report = check_program(program, config)
            program.instrs[i] = saved
            if {"RC001", "RC002"} & set(report.counts()):
                caught += 1
        assert caught > 0

    def test_compile_with_check_option(self):
        config = paper_machine()
        out = compile_module(sum_to_n_module(), config,
                             CompileOptions(check=True))
        assert len(out.program) > 0

    def test_check_failure_aborts_compilation(self, monkeypatch):
        import repro.analyze as analyze
        from repro.analyze.findings import AnalysisReport, Finding
        from repro.errors import CompileError

        def fake_check(program, config):
            report = AnalysisReport(program_name="x", model=0)
            report.findings.append(Finding(rule="CFG001", index=0,
                                           function="main",
                                           message="injected"))
            return report

        monkeypatch.setattr(analyze, "check_program", fake_check)
        with pytest.raises(CompileError, match="static check failed"):
            compile_module(sum_to_n_module(), paper_machine(),
                           CompileOptions(check=True))
