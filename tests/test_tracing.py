"""Tests for pipeline trace capture and rendering."""

from repro.isa import Instr, Opcode, PhysReg, RClass, connect_use, rc_spec
from repro.isa.registers import core_spec
from repro.sim import MachineConfig, assemble, capture_trace


def r(n):
    return PhysReg(RClass.INT, n)


def config(issue=4, **kw):
    defaults = dict(issue_width=issue, mem_channels=2,
                    int_spec=core_spec(RClass.INT, 16),
                    fp_spec=core_spec(RClass.FP, 16))
    defaults.update(kw)
    return MachineConfig(**defaults)


def small_program():
    return assemble([
        Instr(Opcode.LI, dest=r(5), imm=1),
        Instr(Opcode.LI, dest=r(6), imm=2),
        Instr(Opcode.ADD, dest=r(7), srcs=(r(5), r(6))),
        Instr(Opcode.MUL, dest=r(8), srcs=(r(7), r(7))),
        Instr(Opcode.HALT),
    ])


class TestCapture:
    def test_event_count_matches_instruction_count(self):
        trace = capture_trace(small_program(), config())
        assert len(trace.events) == 5
        assert not trace.truncated

    def test_cycles_monotone_and_pcs_valid(self):
        trace = capture_trace(small_program(), config())
        cycles = [c for c, _ in trace.events]
        assert cycles == sorted(cycles)
        assert all(0 <= pc < 5 for _, pc in trace.events)

    def test_truncation(self):
        trace = capture_trace(small_program(), config(), limit=2)
        assert trace.truncated
        assert len(trace.events) == 2

    def test_independent_lis_share_a_cycle(self):
        trace = capture_trace(small_program(), config(issue=4))
        assert trace.dual_issue_pairs(0, 1) == 1

    def test_zero_cycle_connect_shares_cycle_with_consumer(self):
        program = assemble([
            Instr(Opcode.LI, dest=r(5), imm=42),
            Instr(Opcode.LI, dest=r(1), imm=0),
            Instr(Opcode.LI, dest=r(2), imm=0),
            Instr(Opcode.LI, dest=r(3), imm=0),
            connect_use(RClass.INT, 6, 5),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), r(6))),
            Instr(Opcode.HALT),
        ])
        cfg = config(int_spec=rc_spec(RClass.INT, 16))
        trace = capture_trace(program, cfg)
        assert trace.dual_issue_pairs(4, 5) == 1


class TestMetrics:
    def test_utilization_bounds(self):
        trace = capture_trace(small_program(), config())
        assert 0.0 < trace.utilization() <= 1.0

    def test_single_issue_utilization_is_full(self):
        trace = capture_trace(small_program(), config(issue=1))
        # one instruction per non-empty cycle
        assert trace.utilization() == 1.0
        assert trace.issue_group_sizes() == {1: 5}

    def test_empty_trace(self):
        from repro.sim.tracing import PipelineTrace
        t = PipelineTrace(small_program(), config())
        assert t.utilization() == 0.0
        assert t.render() == "(empty trace window)"


class TestRendering:
    def test_render_marks_issue_groups(self):
        trace = capture_trace(small_program(), config(issue=4))
        text = trace.render()
        lines = text.splitlines()
        assert lines[0].startswith("|")
        assert sum(1 for ln in lines if ln.startswith("|")) == \
            len({c for c, _ in trace.events})

    def test_render_window(self):
        trace = capture_trace(small_program(), config())
        text = trace.render(start=2, count=2)
        assert len(text.splitlines()) == 2

    def test_summary_mentions_utilization(self):
        trace = capture_trace(small_program(), config())
        assert "slot utilization" in trace.summary()


class TestStatsAttachment:
    def test_capture_attaches_run_stats(self):
        trace = capture_trace(small_program(), config())
        assert trace.stats is not None
        assert trace.stats.instructions == len(trace.events) == 5
        assert trace.elapsed_cycles() == trace.stats.cycles

    def test_truncated_trace_falls_back_to_event_span(self):
        trace = capture_trace(small_program(), config(issue=1), limit=2)
        assert trace.truncated
        assert trace.elapsed_cycles() == \
            trace.events[-1][0] - trace.events[0][0] + 1

    def test_stall_cycles_count_against_slot_utilization(self):
        # MUL (3-cycle) feeding an ADD at single issue: two zero-issue
        # stall cycles elapse, so true slot utilization must dip below
        # the issued-cycles-only view.
        program = assemble([
            Instr(Opcode.LI, dest=r(5), imm=3),
            Instr(Opcode.MUL, dest=r(6), srcs=(r(5), r(5))),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), r(6))),
            Instr(Opcode.HALT),
        ])
        trace = capture_trace(program, config(issue=1))
        assert trace.stats.zero_issue_cycles == 2
        assert trace.issue_cycle_utilization() == 1.0
        assert trace.utilization() == \
            len(trace.events) / trace.stats.cycles
        assert trace.utilization() < trace.issue_cycle_utilization()
