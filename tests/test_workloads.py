"""Tests for the twelve benchmark kernels: reference checksums, determinism,
and compile+simulate equivalence across machine configurations."""

import pytest

from repro.errors import ConfigError
from repro.ir import run_module, verify_module
from repro.isa import RClass
from repro.workloads import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INTEGER_BENCHMARKS,
    build_workload,
    workload,
)


class TestRegistry:
    def test_paper_benchmark_lineup(self):
        assert INTEGER_BENCHMARKS == (
            "cccp", "cmp", "compress", "eqn", "eqntott", "espresso",
            "grep", "lex", "yacc",
        )
        assert FP_BENCHMARKS == ("matrix300", "nasa7", "tomcatv")
        assert len(ALL_BENCHMARKS) == 12

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            workload("doom")

    def test_kinds(self):
        assert workload("grep").kind == "int"
        assert workload("tomcatv").kind == "fp"


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestKernels:
    def test_verifies(self, name):
        verify_module(build_workload(name))

    def test_matches_python_reference(self, name):
        w = workload(name)
        m = w.module()
        got = run_module(m).load_word(m.global_addr("checksum"))
        ref = w.reference_checksum(1)
        if isinstance(ref, float):
            assert got == pytest.approx(ref, rel=1e-12)
        else:
            assert got == ref

    def test_deterministic(self, name):
        w = workload(name)
        r1 = run_module(w.module()).load_word(
            w.module().global_addr("checksum"))
        r2 = run_module(w.module()).load_word(
            w.module().global_addr("checksum"))
        assert r1 == r2

    def test_nontrivial_dynamic_size(self, name):
        result = run_module(build_workload(name))
        assert result.steps > 3000, "kernel too small to be meaningful"

    def test_uses_matching_register_class(self, name):
        w = workload(name)
        m = w.module()
        kinds = {v.cls for fn in m.functions.values() for v in fn.vregs()}
        if w.kind == "fp":
            assert RClass.FP in kinds
        else:
            assert RClass.FP not in kinds


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_scale_two_changes_work(name):
    small = run_module(build_workload(name, 1))
    big = run_module(build_workload(name, 2))
    assert big.steps > small.steps


class TestGoldenPins:
    """Checksum pinning: any change to a kernel, its inputs, or the
    interpreter semantics must be deliberate (update golden_checksums.json
    alongside the change)."""

    def test_checksums_match_pinned_values(self):
        import json
        from pathlib import Path

        pins = json.loads(
            (Path(__file__).parent / "golden_checksums.json").read_text())
        assert set(pins) == set(ALL_BENCHMARKS)
        for name, pinned in pins.items():
            m = workload(name).module()
            got = run_module(m).load_word(m.global_addr("checksum"))
            want = eval(pinned)  # repr of int or float
            if isinstance(want, float):
                assert got == pytest.approx(want, rel=1e-15), name
            else:
                assert got == want, name
