"""Tests for the differential fuzzing harness (and its regressions).

Three layers:

* generator/corpus mechanics — round-trips, mutation validity, shrinker
  minimization (the ISSUE's acceptance criterion: a known-bad mutant fed
  through :mod:`repro.fuzz.shrink` still trips the oracle and is smaller);
* property tests (Hypothesis over generator seeds, small budgets) — every
  generated program must satisfy the parity oracles;
* regressions — the committed ``corpus/`` reproducers replayed as named
  tests, including the resume-after-failure engine divergence and the
  parser crash corpus.
"""

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analyze import check_program
from repro.errors import SimulationError
from repro.fuzz import (
    AsmGenOptions,
    FuzzOptions,
    IRGenOptions,
    gen_machine_program,
    gen_module,
    module_from_json,
    module_to_json,
    mutate_program,
    program_to_text,
    run_fuzz,
)
from repro.fuzz.oracles import (
    FUZZ_MODELS,
    checker_soundness,
    compile_determinism,
    fuzz_configs,
    interp_parity,
    opt_parity,
    resume_parity,
    sim_parity,
)
from repro.fuzz.shrink import delete_range, shrink_machine, shrink_module
from repro.ir.interp import Interpreter
from repro.isa.asmparse import AsmError, parse_program
from repro.sim import FastSimulator, Simulator

CORPUS = Path(__file__).resolve().parent.parent / "corpus"

#: One mid-matrix machine for single-config tests.
CONFIG = fuzz_configs(widths=(2,), models=(FUZZ_MODELS[1],))[0]


# -- generator / corpus mechanics ---------------------------------------------

class TestRoundTrips:
    def test_asm_text_round_trip(self):
        for seed in range(8):
            gen = gen_machine_program(seed)
            back = parse_program(program_to_text(gen.program))
            assert back.targets == gen.program.targets
            assert back.entry == gen.program.entry
            assert back.initial_memory == gen.program.initial_memory
            assert back.trap_handlers == gen.program.trap_handlers
            for a, b in zip(back.instrs, gen.program.instrs):
                assert (a.op, a.dest, a.srcs, a.imm, a.hint_taken) == \
                       (b.op, b.dest, b.srcs, b.imm, b.hint_taken)

    def test_ir_json_round_trip(self):
        for seed in range(8):
            module = gen_module(seed)
            text = module_to_json(module)
            assert module_to_json(module_from_json(text)) == text

    def test_ir_round_trip_preserves_execution(self):
        module = gen_module(3)
        twin = module_from_json(module_to_json(module))
        a = Interpreter(module, engine="reference").run()
        b = Interpreter(twin, engine="reference").run()
        assert a.steps == b.steps
        assert a.memory == b.memory


class TestMutations:
    def test_mutants_are_valid_programs(self):
        rng = random.Random(42)
        gen = gen_machine_program(5)
        for _ in range(20):
            result = mutate_program(rng, gen.program,
                                    load_bearing=gen.load_bearing_connects)
            assert result is not None
            assert len(result.program.instrs) == len(gen.program.instrs)
            assert result.kind in ("nop_connect", "swap_operands",
                                   "flip_hint", "perturb_imm")
            # The original must never be edited in place.
            assert result.program is not gen.program
            assert result.program.instrs[result.index] is not \
                gen.program.instrs[result.index]

    def test_targeted_nop_connect_surfaces_finding(self):
        """NOP-ing a load-bearing connect_use redirects a read to an
        unwritten home register; the checker must flag the mutant."""
        found = 0
        for seed in range(40):
            gen = gen_machine_program(seed)
            if not gen.load_bearing_connects:
                continue
            rng = random.Random(seed)
            result = mutate_program(rng, gen.program,
                                    load_bearing=gen.load_bearing_connects,
                                    kind="nop_connect")
            if result is None or not result.targeted:
                continue
            report = check_program(result.program, CONFIG)
            assert any(f.rule in ("RC001", "RC002", "UBD001")
                       for f in report.findings), seed
            found += 1
            if found >= 5:
                break
        assert found >= 3, "generator produced too few load-bearing connects"


class TestShrink:
    def test_delete_range_retargets_branches(self):
        gen = gen_machine_program(1)
        program = gen.program
        cut = delete_range(program, 2, 5)
        assert cut is not None
        assert len(cut.instrs) == len(program.instrs) - 3
        for target in cut.targets:
            assert target is None or 0 <= target < len(cut.instrs)

    def test_shrink_machine_minimizes_known_bad_mutant(self):
        """Acceptance criterion: a known-bad mutated program fed through
        the shrinker still trips the oracle and is strictly smaller."""
        chosen = None
        for seed in range(60):
            gen = gen_machine_program(seed)
            if not gen.load_bearing_connects:
                continue
            result = mutate_program(random.Random(seed), gen.program,
                                    load_bearing=gen.load_bearing_connects,
                                    kind="nop_connect")
            if result is None or not result.targeted:
                continue
            report = check_program(result.program, CONFIG)
            if any(f.rule in ("RC001", "UBD001") for f in report.findings):
                chosen = result.program
                break
        assert chosen is not None

        def trips(program):
            report = check_program(program, CONFIG)
            return any(f.rule in ("RC001", "UBD001")
                       for f in report.findings)

        assert trips(chosen)
        small = shrink_machine(chosen, trips)
        assert trips(small), "minimized reproducer no longer trips oracle"
        assert len(small.instrs) < len(chosen.instrs)

    def test_shrink_module_preserves_predicate(self):
        module = gen_module(7)
        baseline = Interpreter(module, engine="reference").run()
        addr = module.global_addr("checksum")
        want = baseline.memory.get(addr)

        def same_checksum(candidate):
            got = Interpreter(candidate, engine="reference").run()
            return got.memory.get(addr) == want

        small = shrink_module(module, same_checksum, max_rounds=3)
        assert same_checksum(small)
        count = sum(len(b.instrs) for fn in small.functions.values()
                    for b in fn.blocks)
        original = sum(len(b.instrs) for fn in module.functions.values()
                       for b in fn.blocks)
        assert count <= original


# -- property tests over generator seeds --------------------------------------

class TestProperties:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 50_000))
    def test_asm_engine_parity(self, seed):
        gen = gen_machine_program(seed, AsmGenOptions(max_segments=4))
        problem, _ = sim_parity(gen.program, CONFIG)
        assert problem is None, problem

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 50_000))
    def test_ir_interp_parity(self, seed):
        module = gen_module(seed, IRGenOptions(max_segments=3, max_accs=12))
        problem, _ = interp_parity(module)
        assert problem is None, problem

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 50_000))
    def test_asm_checker_soundness(self, seed):
        gen = gen_machine_program(seed, AsmGenOptions(max_segments=4))
        problem = checker_soundness(gen.program, CONFIG)
        assert problem is None, problem

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 50_000))
    def test_asm_resume_parity(self, seed):
        gen = gen_machine_program(seed, AsmGenOptions(max_segments=3))
        problem = resume_parity(gen.program, CONFIG)
        assert problem is None, problem

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 50_000))
    def test_asm_opt_parity(self, seed):
        gen = gen_machine_program(seed, AsmGenOptions(max_segments=3))
        problem = opt_parity(gen.program)
        assert problem is None, problem

    @settings(max_examples=4, deadline=None)
    @given(st.integers(0, 50_000))
    def test_ir_compile_determinism(self, seed):
        module = gen_module(seed, IRGenOptions(max_segments=3, max_accs=10))
        problem = compile_determinism(module, CONFIG)
        assert problem is None, problem


# -- regressions: resume-after-failure (fastpath.py run() fallback) -----------

class TestResumeRegression:
    CASE = CORPUS / "regressions" / "resume-after-failure.s"

    def test_corpus_case_passes_resume_oracle(self):
        program = parse_program(self.CASE.read_text())
        for config in fuzz_configs():
            problem = resume_parity(program, config)
            assert problem is None, problem

    def test_rerun_after_failure_raises_on_both_engines(self):
        program = parse_program(self.CASE.read_text())
        outcomes = []
        for cls in (Simulator, FastSimulator):
            sim = cls(program, CONFIG)
            with pytest.raises(SimulationError):
                sim.run()
            with pytest.raises(SimulationError) as exc:
                sim.run()
            outcomes.append(str(exc.value))
        assert outcomes[0] == outcomes[1]
        assert "cannot resume" in outcomes[0]

    def test_interleaved_until_cycle_segments_match_full_run(self):
        gen = gen_machine_program(11)
        full = Simulator(gen.program, CONFIG).run()
        for cls in (Simulator, FastSimulator):
            sim = cls(gen.program, CONFIG)
            result = sim.run(until_cycle=5)
            segments = 1
            while not result.halted:
                result = sim.run(until_cycle=result.stats.cycles + 5)
                segments += 1
            assert segments > 1, "program too short to segment"
            assert result.stats == full.stats
            assert sim.state.memory == full.state.memory
            assert sim.state.int_regs == full.state.int_regs

    def test_rerun_after_success_is_idempotent(self):
        gen = gen_machine_program(2)
        for cls in (Simulator, FastSimulator):
            sim = cls(gen.program, CONFIG)
            first = sim.run()
            again = sim.run()
            assert again.halted
            assert again.stats == first.stats


# -- regressions: parser crash corpus -----------------------------------------

def _crash_cases():
    return sorted((CORPUS / "crashes").glob("*.s"))


@pytest.mark.parametrize("path", _crash_cases(),
                         ids=lambda p: p.stem)
def test_crash_corpus_raises_diagnostic_asm_error(path):
    with pytest.raises(AsmError) as exc:
        parse_program(path.read_text())
    assert "line " in str(exc.value), \
        f"{path.name}: AsmError lacks a line number: {exc.value}"


def test_crash_corpus_is_nonempty():
    assert len(_crash_cases()) >= 10


# -- the harness itself --------------------------------------------------------

class TestRunner:
    def test_small_run_is_clean_and_reports(self):
        report = run_fuzz(FuzzOptions(seed=3, budget=4, level="all",
                                      replay_corpus=False))
        assert report.clean, [d.to_dict() for d in report.divergences]
        assert report.counters["asm_programs"] == 2
        assert report.counters["ir_modules"] == 2
        payload = json.loads(report.to_json())
        assert payload["clean"] is True
        assert payload["counters"]["iterations"] == 4

    def test_corpus_replay_is_clean(self):
        report = run_fuzz(FuzzOptions(budget=0, corpus=CORPUS))
        assert report.counters["corpus_cases"] >= 20
        assert report.clean, [d.to_dict() for d in report.divergences]

    def test_divergence_detection_end_to_end(self):
        """Plant a fake oracle failure and confirm the runner reports and
        shrinks it: a program whose checker findings include RC001 is
        'divergent' for this test's predicate."""
        from repro.fuzz.runner import _Session

        session = _Session(FuzzOptions(shrink=True))
        gen = None
        for seed in range(60):
            candidate = gen_machine_program(seed)
            if candidate.load_bearing_connects:
                mutated = mutate_program(random.Random(seed),
                                         candidate.program,
                                         load_bearing=candidate
                                         .load_bearing_connects,
                                         kind="nop_connect")
                if mutated is not None and mutated.targeted:
                    gen = mutated.program
                    break
        assert gen is not None
        # The checker-soundness oracle holds for this program (zero errors
        # never happens: the mutant has an RC001 error), so the session
        # records nothing — exactly the soundness contract.
        session._check_soundness(gen, CONFIG, seed=0)
        assert session.report.divergences == []

    @pytest.mark.slow
    def test_cli_sweep(self, capsys):
        from repro.cli import main

        code = main(["fuzz", "--seed", "5", "--budget", "30",
                     "--level", "all", "--jobs", "2", "--no-replay"])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["clean"] is True
        assert payload["counters"]["iterations"] == 30
