"""Tests for the serve subsystem: wire format, artifact store, rate
limiter, scheduler behaviour over real HTTP, the 64-client load shape
from the acceptance criteria, and the concurrent cache-write stress."""

import dataclasses
import json
import multiprocessing
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.fuzz.oracles import fuzz_configs
from repro.serve import (
    ArtifactStore,
    BadRequest,
    JobFailed,
    RateLimiter,
    ServeClient,
    ServeError,
    TokenBucket,
    job_fingerprint,
    machine_from_payload,
    machine_to_payload,
    start_in_thread,
    validate_payload,
)
from repro.sim import paper_machine, unlimited_machine

SUM_LOOP = """
    li r1, 0
    li r2, 0
loop:
    add r1, r1, r2
    add r2, r2, 1
    blt r2, 10 -> loop [taken]
    li r9, 2048
    store r1, 0(r9)
    halt
"""


# -- wire format ---------------------------------------------------------------

class TestWire:
    def test_machine_round_trip(self):
        for config in [paper_machine(), unlimited_machine(issue_width=1),
                       *fuzz_configs(True)]:
            assert machine_from_payload(machine_to_payload(config)) == config

    def test_empty_payload_is_default_machine(self):
        assert machine_from_payload(None) == paper_machine(
            issue_width=4, int_core=64, fp_core=64)

    def test_bad_machine_fields_rejected(self):
        with pytest.raises(BadRequest):
            machine_from_payload({"bogus": 1})
        with pytest.raises(BadRequest):
            machine_from_payload({"latency": {"bogus": 1}})
        with pytest.raises(BadRequest):
            machine_from_payload({"model": 99})
        with pytest.raises(BadRequest):
            machine_from_payload({"int": {"core": 0}})

    def test_validate_rejects_bad_shapes(self):
        with pytest.raises(BadRequest):
            validate_payload("bogus", {})
        with pytest.raises(BadRequest):
            validate_payload("simulate", {})  # neither asm nor benchmark
        with pytest.raises(BadRequest):
            validate_payload("simulate", {"asm": "halt", "benchmark": "cmp"})
        with pytest.raises(BadRequest):
            validate_payload("simulate", {"benchmark": "nope"})
        with pytest.raises(BadRequest):
            validate_payload("simulate", {"benchmark": "cmp",
                                          "engine": "turbo"})
        with pytest.raises(BadRequest):
            validate_payload("sweep", {"figure": "nope"})
        with pytest.raises(BadRequest):
            validate_payload("simulate", {"benchmark": "cmp",
                                          "max_cycles": 0})

    def test_fingerprint_sensitivity(self):
        base = validate_payload("simulate", {"benchmark": "cmp"})
        key = job_fingerprint("simulate", base)
        assert key == job_fingerprint("simulate", dict(base))
        # Every knob that changes the computation changes the key.
        for variant in [
            {**base, "max_cycles": 100},
            {**base, "engine": "reference"},
            {**base, "scale": 2},
            {**base, "benchmark": "grep"},
            {**base, "machine": {"issue": 1}},
            {**base, "options": {"opt": "scalar"}},
        ]:
            assert job_fingerprint("simulate", variant) != key
        assert job_fingerprint("compile", base) != key


# -- artifact store ------------------------------------------------------------

class TestArtifactStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("ab" * 16) is None
        store.put("ab" * 16, {"cycles": 1})
        assert store.get("ab" * 16) == {"cycles": 1}
        assert store.counters() == {"hits": 1, "misses": 1, "puts": 1}

    def test_corrupt_artifact_evicted(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("cd" * 16, {"ok": True})
        path = store._path("cd" * 16)
        path.write_text("{truncated")
        assert store.get("cd" * 16) is None
        assert not path.exists()

    def test_concurrent_writers_never_tear(self, tmp_path):
        """Satellite: two processes storing the same fingerprint must not
        corrupt the store — readers always see one complete document."""
        key = "ef" * 16
        procs = [multiprocessing.Process(target=_hammer_store,
                                         args=(str(tmp_path), key, pid))
                 for pid in range(2)]
        for p in procs:
            p.start()
        store = ArtifactStore(tmp_path)
        deadline = time.monotonic() + 30
        reads = 0
        while any(p.is_alive() for p in procs):
            assert time.monotonic() < deadline, "writers stuck"
            artifact = store.get(key)
            if artifact is not None:
                # Complete document from one writer or the other.
                assert artifact["payload"] == "x" * 4096
                assert artifact["writer"] in (0, 1)
                reads += 1
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert reads > 0
        final = store.get(key)
        assert final["payload"] == "x" * 4096

    def test_concurrent_runner_caches_share_one_dir(self, tmp_path):
        """Two processes compiling the same fingerprint into one record
        cache (the same tmp+rename discipline the artifact store reuses)
        both succeed and agree."""
        queue = multiprocessing.Queue()
        procs = [multiprocessing.Process(target=_runner_job,
                                         args=(str(tmp_path), queue))
                 for _ in range(2)]
        for p in procs:
            p.start()
        cycles = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert cycles[0] == cycles[1]
        # The shared record is loadable afterwards (not torn).
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(scale=1, cache_dir=tmp_path)
        record = runner.cached("cmp", paper_machine())
        assert record is not None and record.cycles == cycles[0]


def _hammer_store(root: str, key: str, writer: int) -> None:
    store = ArtifactStore(root)
    for _ in range(200):
        store.put(key, {"writer": writer, "payload": "x" * 4096})


def _runner_job(cache_dir: str, queue) -> None:
    from repro.experiments import ExperimentRunner

    runner = ExperimentRunner(scale=1, cache_dir=cache_dir)
    record = runner.run("cmp", paper_machine())
    queue.put(record.cycles)


# -- rate limiter --------------------------------------------------------------

class TestRateLimiter:
    def test_bucket_refills(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.take(0.0) and bucket.take(0.0)
        assert not bucket.take(0.0)
        assert bucket.take(1.0)  # one second -> one token back

    def test_per_client_buckets(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")  # independent bucket
        clock[0] = 2.0
        assert limiter.allow("a")
        assert limiter.rejected == 1

    def test_disabled_by_default(self):
        limiter = RateLimiter()
        assert all(limiter.allow("a") for _ in range(1000))


# -- the service over real HTTP ------------------------------------------------

@pytest.fixture(scope="module")
def server(tmp_path_factory):
    handle = start_in_thread(
        jobs=2, artifact_dir=str(tmp_path_factory.mktemp("artifacts")),
        max_cycles_cap=5_000_000)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, client_id="pytest")


class TestService:
    def test_health_and_stats(self, client):
        assert client.healthy()
        stats = client.stats()
        assert stats["workers"] == 2 and not stats["draining"]

    def test_submit_each_kind(self, client):
        result = client.run("simulate", {"asm": SUM_LOOP, "dump": [2048]})
        assert result["memory"]["2048"] == 45
        result = client.run("simulate", {"benchmark": "cmp"})
        assert result["record"]["cycles"] > 0
        assert result["record"]["checksum_ok"]
        result = client.run("compile", {"benchmark": "cmp"})
        assert result["static"]["total"] > 0
        result = client.run("check", {"asm": SUM_LOOP})
        assert result["clean"]
        result = client.run("trace", {"benchmark": "cmp",
                                      "format": "jsonl", "limit": 100})
        assert len(result["content"].splitlines()) == 100
        result = client.run("sweep", {"figure": "figure10",
                                      "benchmarks": ["cmp"]})
        assert result["figure"] == "Figure 10" and result["rows"]

    def test_artifact_hit_on_resubmission(self, client):
        payload = {"asm": SUM_LOOP, "machine": {"issue": 2}}
        first = client.wait(client.submit("simulate", payload))
        again = client.submit("simulate", payload)
        assert again["status"] == "done" and again["from_cache"]
        assert again["artifact"] == first["artifact"]
        assert client.artifact(first["artifact"])["cycles"] \
            == first["result"]["cycles"]

    def test_bad_requests_are_400(self, client):
        for kind, payload in [("bogus", {}), ("simulate", {}),
                              ("simulate", {"benchmark": "nope"}),
                              ("sweep", {"figure": "nope"})]:
            with pytest.raises(ServeError) as err:
                client.submit(kind, payload)
            assert err.value.status == 400

    def test_unknown_routes_and_ids(self, client):
        with pytest.raises(ServeError) as err:
            client.get("doesnotexist")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client.artifact("doesnotexist")
        assert err.value.status == 404

    def test_asm_parse_error_is_structured(self, client):
        with pytest.raises(JobFailed) as err:
            client.run("simulate", {"asm": "frobnicate r1, r2\nhalt\n"})
        assert err.value.error_type == "compile-error"

    def test_budget_exceeded_while_others_finish(self, client):
        """Acceptance: a budget-exceeded job comes back as a structured
        error while other in-flight jobs run to completion."""
        jobs = [client.submit("simulate", {"benchmark": "compress"}),
                client.submit("simulate", {"benchmark": "cmp",
                                           "max_cycles": 50}),
                client.submit("simulate", {"asm": SUM_LOOP})]
        done = [client.wait(j) for j in jobs]
        assert done[0]["status"] == "done"
        assert done[2]["status"] == "done"
        assert done[1]["status"] == "error"
        assert done[1]["error"]["type"] == "budget-exceeded"
        assert "exceeded 50 cycles" in done[1]["error"]["message"]

    def test_budget_cap_clamps_requests(self, client):
        """A request above the server's --max-cycles-cap is clamped, so
        a run needing more cycles than the cap fails structurally."""
        with pytest.raises(JobFailed) as err:
            client.run("simulate",
                       {"asm": "loop:\n    jmp -> loop [taken]\n    halt\n",
                        "max_cycles": 10_000_000_000})
        assert err.value.error_type == "budget-exceeded"
        assert "exceeded 5000000 cycles" in str(err.value)

    def test_coalescing_identical_inflight(self, client):
        payload = {"benchmark": "eqn",
                   "machine": {"issue": 2, "max_cycles": 4_999_999}}
        first = client.submit("simulate", payload)
        second = client.submit("simulate", payload)
        d1, d2 = client.wait(first), client.wait(second)
        assert d1["status"] == d2["status"] == "done"
        if not first["from_cache"]:
            assert d2.get("coalesced_with") == first["id"] \
                or d2["from_cache"]
        assert d1["result"]["record"]["cycles"] \
            == d2["result"]["record"]["cycles"]

    def test_event_stream_ndjson(self, client):
        job = client.submit("simulate", {"benchmark": "grep",
                                         "observe": True})
        events = list(client.events(job["id"]))
        types = [e.get("type") for e in events]
        assert "started" in types and "finished" in types
        assert any(e.get("stream") == "observe" for e in events)
        assert events[-1]["type"] == "job"
        assert events[-1]["status"] == "done"

    def test_sweep_progress_events(self, client):
        job = client.submit("sweep", {"figure": "figure7",
                                      "benchmarks": ["cmp"]})
        events = list(client.events(job["id"]))
        progress = [e for e in events if e.get("stream") == "sweep"]
        assert progress and progress[-1]["done"] == len(progress)

    def test_long_poll_wait(self, client):
        job = client.submit("simulate", {"benchmark": "lex"})
        done = client.get(job["id"], wait=120)
        assert done["status"] in ("done", "error")
        assert done["status"] == "done"

    def test_mixed_load_64_clients_zero_failures(self, client, server):
        """Acceptance: 64 concurrent clients submitting a mixed workload
        complete with zero failed jobs."""
        benchmarks = ("cmp", "grep", "compress", "lex")

        def one_client(index: int) -> list:
            c = ServeClient(server.url, client_id=f"load-{index}")
            jobs = []
            jobs.append(c.submit("simulate",
                                 {"benchmark": benchmarks[index % 4]}))
            jobs.append(c.submit("simulate",
                                 {"asm": SUM_LOOP,
                                  "machine": {"issue": 1 << (index % 3)}}))
            jobs.append(c.submit("check", {"asm": SUM_LOOP}))
            return [c.wait(j, timeout=300) for j in jobs]

        with ThreadPoolExecutor(max_workers=64) as pool:
            outcomes = [job for jobs in pool.map(one_client, range(64))
                        for job in jobs]
        assert len(outcomes) == 64 * 3
        failed = [j for j in outcomes if j["status"] != "done"]
        assert failed == []
        stats = client.stats()
        # The mixed load must exercise the sharing machinery: identical
        # submissions either hit the artifact store or coalesce.
        assert stats["jobs"]["artifact_hits"] \
            + stats["jobs"]["coalesced"] > 100

    def test_stats_aggregate_worker_counters(self, client):
        stats = client.stats()
        cache = stats["runner_cache"]
        assert cache.get("cache_misses", 0) > 0
        assert cache.get("compile_misses", 0) > 0


class TestServiceLifecycle:
    def test_rate_limited_submission(self, tmp_path):
        handle = start_in_thread(jobs=1, artifact_dir=str(tmp_path),
                                 rate=0.001, burst=1.0)
        try:
            c = ServeClient(handle.url, client_id="throttled")
            c.submit("simulate", {"asm": SUM_LOOP})
            with pytest.raises(ServeError) as err:
                c.submit("simulate", {"asm": SUM_LOOP,
                                      "machine": {"issue": 1}})
            assert err.value.status == 429
            # An independent client is not throttled.
            other = ServeClient(handle.url, client_id="fresh")
            other.submit("check", {"asm": SUM_LOOP})
        finally:
            handle.stop()

    def test_graceful_stop_finishes_inflight(self, tmp_path):
        handle = start_in_thread(jobs=1, artifact_dir=str(tmp_path))
        c = ServeClient(handle.url)
        job = c.submit("simulate", {"benchmark": "cmp"})
        done = {}

        def finish():
            # One long-poll connection, established before the stop:
            # drain must complete the job and flush this response.
            done.update(c.get(job["id"], wait=120))

        waiter = threading.Thread(target=finish)
        waiter.start()
        time.sleep(0.3)  # let the long-poll connection establish
        handle.stop()
        waiter.join(timeout=120)
        assert done.get("status") == "done"
        assert not c.healthy()


class TestServeReplay:
    def test_fuzz_replay_smoke(self, server):
        """Satellite: the fuzz --serve path, at the CI smoke budget."""
        from repro.fuzz.serve_replay import run_serve_replay

        report = run_serve_replay(server.url, budget=2, seed=0)
        assert report.clean, [d.to_dict() for d in report.divergences]
        assert report.seeds == 2
        assert report.jobs > 0
        payload = report.to_dict()
        json.dumps(payload)  # report must be JSON-serializable
        assert payload["clean"]


class TestCycleBudgetPlumbing:
    def test_machine_config_budget_flows_to_both_engines(self):
        from repro.errors import CycleBudgetError
        from repro.isa.asmparse import parse_program
        from repro.sim import simulate

        program = parse_program("loop:\n    jmp -> loop [taken]\n"
                                "    halt\n")
        config = dataclasses.replace(paper_machine(), max_cycles=75)
        messages = set()
        for engine in ("fast", "reference"):
            with pytest.raises(CycleBudgetError) as err:
                simulate(program, config, engine=engine)
            messages.add(str(err.value))
        assert len(messages) == 1  # identical message from both engines
        assert "exceeded 75 cycles" in messages.pop()
