"""Tests for the resumable simulator and the time-sharing OS model."""

import pytest

from repro.compiler import compile_module
from repro.errors import SimulationError
from repro.ir import run_module
from repro.isa import RClass
from repro.sim import Simulator, paper_machine
from repro.sim.os_model import TimeSharingSystem
from repro.workloads import workload

from helpers import sum_to_n_module


RC_CONFIG = paper_machine(issue_width=4, int_core=16, fp_core=32,
                          rc_class=RClass.INT)
PLAIN_CONFIG = paper_machine(issue_width=4, int_core=16, fp_core=32)


def compiled(name_or_module, config):
    if isinstance(name_or_module, str):
        module = workload(name_or_module).module()
    else:
        module = name_or_module
    return module, compile_module(module, config)


class TestResumableSimulator:
    def test_segmented_run_matches_single_run(self):
        m = sum_to_n_module(200)
        _, out = compiled(m, PLAIN_CONFIG)
        whole = Simulator(out.program, PLAIN_CONFIG).run()

        sim = Simulator(out.program, PLAIN_CONFIG)
        segments = 0
        while True:
            result = sim.run(until_cycle=sim._cycle + 50 if segments else 50)
            segments += 1
            if result.halted:
                break
        assert segments > 3
        assert result.stats.cycles == whole.stats.cycles
        assert result.stats.instructions == whole.stats.instructions
        addr = m.global_addr("out")
        assert result.load_word(addr) == whole.load_word(addr)

    def test_run_after_halt_is_stable(self):
        m = sum_to_n_module(5)
        _, out = compiled(m, PLAIN_CONFIG)
        sim = Simulator(out.program, PLAIN_CONFIG)
        first = sim.run()
        again = sim.run()
        assert again.halted
        assert again.stats.cycles == first.stats.cycles


class TestTimeSharing:
    def test_two_rc_processes_complete_correctly(self):
        system = TimeSharingSystem(RC_CONFIG, quantum=300)
        expected = {}
        for name in ("cmp", "grep"):
            module, out = compiled(name, RC_CONFIG)
            system.add_process(out.program, name=name)
            expected[name] = (module.global_addr("checksum"),
                              run_module(module).load_word(
                                  module.global_addr("checksum")))
        outcome = system.run()
        assert outcome.total_switches > 2
        for name, (addr, want) in expected.items():
            proc = outcome.process(name)
            assert proc.finished
            got = proc.simulator.state.memory.get(addr, 0)
            assert got == want, f"{name} corrupted by context switching"

    def test_context_survives_scrambled_registers_and_maps(self):
        """The scramble between quanta would corrupt results if the context
        format forgot any architecturally visible state."""
        module, out = compiled("eqntott", RC_CONFIG)
        golden = run_module(module).load_word(module.global_addr("checksum"))
        system = TimeSharingSystem(RC_CONFIG, quantum=97)  # many switches
        proc = system.add_process(out.program, name="eqntott")
        system.run()
        assert proc.switches > 50
        got = proc.simulator.state.memory.get(
            module.global_addr("checksum"), 0)
        assert got == golden

    def test_legacy_process_uses_smaller_context(self):
        module_rc, out_rc = compiled("cmp", RC_CONFIG)
        module_legacy, out_legacy = compiled(
            sum_to_n_module(4000), PLAIN_CONFIG)
        # The legacy binary was compiled for the base architecture but runs
        # on the RC machine: build its simulator against the RC config.
        system = TimeSharingSystem(RC_CONFIG, quantum=200)
        rc_proc = system.add_process(out_rc.program, name="rcproc")
        legacy_proc = system.add_process(
            out_legacy.program, name="legacy", rc_process=False)
        system.run()
        assert rc_proc.switches > 0 and legacy_proc.switches > 0
        # Per-switch context cost: legacy saves core only.
        rc_cost = rc_proc.context_words / rc_proc.switches
        legacy_cost = legacy_proc.context_words / legacy_proc.switches
        assert legacy_cost < rc_cost
        # And both still computed the right answers.
        addr = module_legacy.global_addr("out")
        assert legacy_proc.simulator.state.memory.get(addr, 0) == \
            run_module(module_legacy).load_word(addr)
        addr = module_rc.global_addr("checksum")
        assert rc_proc.simulator.state.memory.get(addr, 0) == \
            run_module(module_rc).load_word(addr)

    def test_bad_quantum_rejected(self):
        with pytest.raises(SimulationError):
            TimeSharingSystem(RC_CONFIG, quantum=0)
