"""Tests for optimizer passes, including golden-equivalence after unrolling."""

import pytest

from repro.compiler.opt import (
    OptOptions,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    optimize_module,
    propagate_copies,
    unroll_loops,
)
from repro.ir import FnBuilder, Module, run_module, verify_module
from repro.isa import Imm, Opcode

from helpers import call_module, sum_to_n_module


def ops_of(fn):
    return [i.op for _, i in fn.iter_instrs()]


class TestConstFold:
    def test_folds_immediate_add(self):
        m = Module()
        b = FnBuilder(m, "f")
        v = b.add(2, 3)
        b.store(v, 100, 0)
        b.halt()
        fn = b.done()
        assert fold_constants(fn) == 1
        assert fn.entry.instrs[0].op is Opcode.LI
        assert fn.entry.instrs[0].imm == 5

    def test_leaves_div_by_zero(self):
        m = Module()
        b = FnBuilder(m, "f")
        v = b.div(1, 0)
        b.store(v, 100, 0)
        b.halt()
        fn = b.done()
        assert fold_constants(fn) == 0

    def test_preserves_semantics(self):
        m = sum_to_n_module(7)
        before = run_module(m).load_word(m.global_addr("out"))
        for fn in m.functions.values():
            fold_constants(fn)
        assert run_module(m).load_word(m.global_addr("out")) == before


class TestCopyProp:
    def test_constant_propagates_into_int_slot(self):
        m = Module()
        b = FnBuilder(m, "f")
        c = b.li(5)
        v = b.add(c, c)
        b.store(v, 100, 0)
        b.halt()
        fn = b.done()
        propagate_copies(fn)
        add = fn.entry.instrs[1]
        assert add.srcs == (Imm(5), Imm(5))

    def test_copy_chain_collapses_with_fold(self):
        m = Module()
        b = FnBuilder(m, "f")
        a = b.li(2)
        c = b.move(a)
        d = b.move(c)
        v = b.add(d, 1)
        b.store(v, 100, 0)
        b.halt()
        fn = b.done()
        propagate_copies(fn)
        fold_constants(fn)
        eliminate_dead_code(fn)
        # the adds/moves collapse to li 3 + store + halt
        assert [i.op for i in fn.entry.instrs] == [
            Opcode.LI, Opcode.STORE, Opcode.HALT]

    def test_binding_killed_on_redefinition(self):
        m = Module()
        b = FnBuilder(m, "main")
        a = b.li(1, name="a")
        c = b.move(a, name="c")
        b.li(9, dest=a)       # redefine a: c must NOT become 9
        v = b.add(c, 0)
        b.store(v, 100, 0)
        b.halt()
        fn = b.done()
        propagate_copies(fn)
        out_addr = 100
        from repro.ir import run_module as run
        assert run(m).load_word(out_addr) == 1


class TestCSE:
    def test_duplicate_expression_becomes_move(self):
        m = Module()
        b = FnBuilder(m, "f")
        x = b.li(3, name="x")
        a = b.mul(x, x)
        c = b.mul(x, x)
        s = b.add(a, c)
        b.store(s, 100, 0)
        b.halt()
        fn = b.done()
        assert eliminate_common_subexpressions(fn) == 1
        assert fn.entry.instrs[2].op is Opcode.MOVE

    def test_commutative_match(self):
        m = Module()
        b = FnBuilder(m, "f")
        x = b.li(3, name="x")
        y = b.li(4, name="y")
        a = b.add(x, y)
        c = b.add(y, x)
        s = b.add(a, c)
        b.store(s, 100, 0)
        b.halt()
        fn = b.done()
        assert eliminate_common_subexpressions(fn) == 1

    def test_recurrence_not_recorded(self):
        # Regression (found by hypothesis): v0 = add(v0, v2) computes with
        # the OLD v0; a later add(v2, v0) uses the NEW v0 and must not be
        # CSE'd into a copy of the recurrence result.
        m = Module()
        b = FnBuilder(m, "main")
        v0 = b.li(0, name="v0")
        v2 = b.li(1, name="v2")
        b.add(v0, v2, dest=v0)        # v0 = 1
        v1 = b.add(v2, v0, name="v1")  # v1 = 2
        b.store(b.add(v0, v1), 100, 0)
        b.halt()
        b.done()
        assert eliminate_common_subexpressions(m.function("main")) == 0
        assert run_module(m).load_word(100) == 3

    def test_redefined_operand_blocks_reuse(self):
        m = Module()
        b = FnBuilder(m, "main")
        x = b.li(3, name="x")
        a = b.mul(x, x)
        b.li(5, dest=x)
        c = b.mul(x, x)   # not the same value anymore
        s = b.add(a, c)
        b.store(s, 100, 0)
        b.halt()
        fn = b.done()
        assert eliminate_common_subexpressions(fn) == 0
        assert run_module(m).load_word(100) == 9 + 25


class TestDCE:
    def test_removes_unused_chain(self):
        m = Module()
        b = FnBuilder(m, "f")
        a = b.li(1)
        c = b.add(a, 1)   # feeds only another dead instr
        b.add(c, 1)
        b.halt()
        fn = b.done()
        assert eliminate_dead_code(fn) == 3
        assert [i.op for i in fn.entry.instrs] == [Opcode.HALT]

    def test_keeps_stores_and_control(self):
        m = sum_to_n_module(3)
        fn = m.function("main")
        before = fn.instruction_count()
        eliminate_dead_code(fn)
        assert fn.instruction_count() == before


class TestUnroll:
    def test_unrolls_simple_counted_loop(self):
        m = sum_to_n_module(10)
        fn = m.function("main")
        assert unroll_loops(fn, factor=4) == 1
        verify_module(m)
        result = run_module(m)
        assert result.load_word(m.global_addr("out")) == 55

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    def test_equivalence_across_trip_counts(self, n, factor):
        # NB: sum_to_n is do-while so n=0 still runs once; golden = original.
        ref = run_module(sum_to_n_module(n))
        m = sum_to_n_module(n)
        unroll_loops(m.function("main"), factor=factor)
        verify_module(m)
        out = run_module(m)
        addr = m.global_addr("out")
        assert out.load_word(addr) == ref.load_word(addr)

    def test_unrolled_loop_runs_fewer_dynamic_blocks(self):
        m = sum_to_n_module(40)
        unroll_loops(m.function("main"), factor=4)
        profile = run_module(m).profile
        assert profile.block_weight("main", "loop.u4") >= 9
        # the remainder loop runs < factor times
        assert profile.block_weight("main", "loop") < 4

    def test_unrolling_renames_temporaries(self):
        # Renaming is what lets the scheduler overlap iterations (which is
        # where register pressure actually rises); here we check each copy
        # got fresh virtual registers.
        def vreg_count(factor):
            m = Module()
            m.add_global("out", 1)
            b = FnBuilder(m, "main")
            i = b.li(0, name="i")
            acc = b.li(0, name="acc")
            base = b.la("out")
            b.block("loop")
            t1 = b.mul(i, i)
            t2 = b.add(t1, 3)
            b.add(acc, t2, dest=acc)
            b.add(i, 1, dest=i)
            b.br("blt", i, 64, "loop")
            b.block("exit")
            b.store(acc, base, 0)
            b.halt()
            fn = b.done()
            if factor > 1:
                unroll_loops(fn, factor)
            return len(fn.vregs())

        assert vreg_count(4) >= vreg_count(1) + 3 * 4  # 4 defs renamed x3


    def test_skips_non_counted_loops(self):
        m = Module()
        m.add_global("g", 1, [5])
        b = FnBuilder(m, "main")
        x = b.load(b.la("g"), 0)
        b.block("loop")
        b.sub(x, 1, dest=x)
        b.br("bnez", x, target="loop")   # not a counted compare form
        b.block("exit")
        b.halt()
        fn = b.done()
        assert unroll_loops(fn, factor=4) == 0

    def test_skips_loops_with_calls(self):
        m = Module()
        b = FnBuilder(m, "leaf")
        b.ret()
        b.done()
        b = FnBuilder(m, "main")
        i = b.li(0, name="i")
        b.block("loop")
        b.call("leaf")
        b.add(i, 1, dest=i)
        b.br("blt", i, 10, "loop")
        b.block("exit")
        b.halt()
        fn = b.done()
        assert unroll_loops(fn, factor=4) == 0

    def test_downward_counting_loop(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        i = b.li(20, name="i")
        acc = b.li(0, name="acc")
        b.block("loop")
        b.add(acc, i, dest=acc)
        b.sub(i, 1, dest=i)
        b.br("bgt", i, 0, "loop")
        b.block("exit")
        b.store(acc, b.la("out"), 0)
        b.halt()
        fn = b.done()
        assert unroll_loops(fn, factor=4) == 1
        assert run_module(m).load_word(m.global_addr("out")) == 210


class TestPipeline:
    def test_optimize_module_scalar_preserves_semantics(self):
        m = call_module()
        ref = run_module(m).load_word(m.global_addr("out"))
        optimize_module(m, OptOptions(level="scalar"))
        assert run_module(m).load_word(m.global_addr("out")) == ref

    def test_optimize_module_ilp_preserves_semantics(self):
        m = sum_to_n_module(37)
        ref = run_module(m).load_word(m.global_addr("out"))
        optimize_module(m, OptOptions(level="ilp", unroll_factor=4))
        assert run_module(m).load_word(m.global_addr("out")) == ref

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            OptOptions(level="turbo")


class TestReassociation:
    def _acc_loop(self, op="add", trip=40):
        m = Module()
        m.add_global("out", 1)
        m.add_global("data", 64, [(7 * i) % 23 for i in range(64)])
        b = FnBuilder(m, "main")
        base = b.la("data")
        acc = b.li(0, name="acc")
        i = b.li(0, name="i")
        b.block("loop")
        x = b.load(b.add(base, i), 0, name="x")
        getattr(b, op)(acc, x, dest=acc)
        b.add(i, 1, dest=i)
        b.br("blt", i, trip, "loop")
        b.block("exit")
        b.store(acc, b.la("out"), 0)
        b.halt()
        b.done()
        return m

    def _partials(self, fn):
        return [v for v in fn.vregs() if v.name.startswith("acc.p")]

    @pytest.mark.parametrize("op", ["add", "or_", "xor"])
    def test_integer_reduction_split_exactly(self, op):
        m = self._acc_loop(op)
        ref = run_module(m).load_word(m.global_addr("out"))
        fn = m.function("main")
        assert unroll_loops(fn, factor=4) == 1
        assert len(self._partials(fn)) == 3  # copies 2..4
        assert run_module(m).load_word(m.global_addr("out")) == ref

    def test_partials_initialized_in_preheader(self):
        m = self._acc_loop()
        fn = m.function("main")
        unroll_loops(fn, factor=3)
        pre = fn.block("loop.pre")
        lis = [i for i in pre.instrs if i.op is Opcode.LI and i.imm == 0]
        assert len(lis) == 2  # identity for copies 2 and 3

    def test_reduction_happens_in_check_block(self):
        m = self._acc_loop()
        fn = m.function("main")
        unroll_loops(fn, factor=4)
        chk = fn.block("loop.chk")
        adds = [i for i in chk.instrs if i.op is Opcode.ADD]
        assert len(adds) == 3

    def test_value_read_elsewhere_not_reassociated(self):
        # acc feeds another computation inside the loop: must stay serial.
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        acc = b.li(0, name="acc")
        shadow = b.li(0, name="shadow")
        i = b.li(0, name="i")
        b.block("loop")
        b.add(acc, i, dest=acc)
        b.add(shadow, acc, dest=shadow)   # reads acc: disqualifies it
        b.add(i, 1, dest=i)
        b.br("blt", i, 20, "loop")
        b.block("exit")
        b.store(b.add(acc, shadow), b.la("out"), 0)
        b.halt()
        fn = b.done()
        ref = run_module(m).load_word(m.global_addr("out"))
        unroll_loops(fn, factor=4)
        assert not [v for v in fn.vregs() if v.name.startswith("acc.p")]
        assert run_module(m).load_word(m.global_addr("out")) == ref

    def test_fp_reassociation_gated_by_option(self):
        m = Module()
        m.add_global("out", 1)
        m.add_global("data", 32, [0.5 * i for i in range(32)])
        b = FnBuilder(m, "main")
        base = b.la("data")
        acc = b.fli(0.0, name="facc")
        i = b.li(0, name="i")
        b.block("loop")
        b.fadd(acc, b.fload(b.add(base, i), 0), dest=acc)
        b.add(i, 1, dest=i)
        b.br("blt", i, 32, "loop")
        b.block("exit")
        b.fstore(acc, b.la("out"), 0)
        b.halt()
        b.done()

        import copy
        ref = run_module(m).load_word(m.global_addr("out"))
        on = copy.deepcopy(m)
        unroll_loops(on.function("main"), factor=4, reassociate_fp=True)
        off = copy.deepcopy(m)
        unroll_loops(off.function("main"), factor=4, reassociate_fp=False)
        got_on = run_module(on).load_word(on.global_addr("out"))
        got_off = run_module(off).load_word(off.global_addr("out"))
        assert got_off == ref                       # exact when disabled
        assert got_on == pytest.approx(ref, rel=1e-12)  # rounding only
        assert [v for v in on.function("main").vregs()
                if v.name.startswith("facc.p")]
        assert not [v for v in off.function("main").vregs()
                    if v.name.startswith("facc.p")]
