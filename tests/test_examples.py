"""Smoke tests: every example script runs to completion and says what it
promises.  (The slowest sweep-based examples run with reduced arguments.)"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "golden result" in out
    assert "connect instructions" in out


def test_upward_compatibility():
    out = run_example("upward_compatibility.py")
    assert "Legacy binary on RC hardware" in out
    assert "jsr/rts map reset" in out
    assert "Traps bypass the map" in out
    assert "Context switch formats" in out


def test_compiler_tour():
    out = run_example("compiler_tour.py")
    assert "prepass scheduling" in out
    assert "connect insertion" in out
    assert "simulated result" in out


def test_rc_models():
    out = run_example("rc_models.py", "cmp")
    assert "WRITE_RESET_READ_UPDATE" in out
    assert "model 5" in out or "READ_RESET" in out


@pytest.mark.slow
def test_register_pressure():
    out = run_example("register_pressure.py", "grep", "2")
    assert "unlimited-register speedup" in out
    assert "core regs" in out
