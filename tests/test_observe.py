"""Tests for the observability subsystem: the event bus the simulator core
emits into, CPI-stack cycle attribution, the trace exporters, and compiler
pass metrics.

The acceptance property lives in :class:`TestObserverEffectAndReconcile`:
for every benchmark x {no-RC, RC model 3} x issue {2, 4, 8}, the attributed
cycle buckets sum exactly to ``SimStats.cycles`` and attaching an observer
changes nothing (cycles, instructions, checksums).
"""

import json

import pytest

from repro.compiler import compile_module
from repro.isa import (
    Imm,
    Instr,
    LatencyModel,
    Opcode,
    PhysReg,
    RClass,
    connect_use,
)
from repro.isa.registers import core_spec, rc_spec
from repro.observe import (
    ConnectEvent,
    CPIStack,
    IssueEvent,
    MapResetEvent,
    MemStallEvent,
    Observer,
    PassMetrics,
    ReconcileError,
    RedirectEvent,
    STALL_MAP,
    StallEvent,
    chrome_trace,
    chrome_trace_json,
    count_zero_cycle_forwards,
    events_jsonl,
    konata_log,
    merge_cpi,
    observe_run,
    stall_mix_summary,
)
from repro.observe.passes import maybe_measure
from repro.rc import RCModel
from repro.sim import MachineConfig, Simulator, assemble, paper_machine, simulate
from repro.workloads import ALL_BENCHMARKS, workload

from helpers import sum_to_n_module


def r(n):
    return PhysReg(RClass.INT, n)


def li(dest, value):
    return Instr(Opcode.LI, dest=r(dest), imm=value)


def config(issue=4, **kw):
    defaults = dict(issue_width=issue, mem_channels=2,
                    int_spec=core_spec(RClass.INT, 16),
                    fp_spec=core_spec(RClass.FP, 16))
    defaults.update(kw)
    return MachineConfig(**defaults)


def observed(instrs, cfg=None, labels=None, **obs_kw):
    program = assemble(instrs, labels=labels or {})
    cfg = cfg if cfg is not None else config()
    obs = Observer(**obs_kw)
    result = Simulator(program, cfg, observer=obs).run()
    return program, cfg, obs, result


class TestObserverEvents:
    def test_issue_events_cover_every_instruction(self):
        _p, _c, obs, result = observed([
            li(5, 1), li(6, 2),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(5), r(6))),
            Instr(Opcode.HALT),
        ])
        issues = [ev for ev in obs.events if isinstance(ev, IssueEvent)]
        assert len(issues) == result.stats.instructions == 4
        assert obs.instructions == 4
        assert obs.issue_cycles == result.stats.issue_cycles

    def test_raw_interlock_stall_names_blocking_register(self):
        # MUL r7 takes 3 cycles; the dependent ADD stalls on r7.
        _p, _c, obs, _res = observed([
            li(5, 3), li(6, 4),
            Instr(Opcode.MUL, dest=r(7), srcs=(r(5), r(6))),
            Instr(Opcode.ADD, dest=r(8), srcs=(r(7), r(7))),
            Instr(Opcode.HALT),
        ], cfg=config(issue=1))
        stalls = [ev for ev in obs.events if isinstance(ev, StallEvent)]
        assert len(stalls) == 1
        stall = stalls[0]
        assert stall.cause == "raw"
        assert (stall.rclass, stall.index) == (RClass.INT, 7)
        assert stall.pc == 3  # the blocked ADD
        assert stall.duration == 2  # MUL latency 3, back-to-back issue
        assert obs.stall_by_reg[(RClass.INT, 7)] == 2
        assert obs.stall_by_cause["raw"] == 2

    def test_one_cycle_connect_is_slot_level_not_zero_issue(self):
        # A 1-cycle connect delays its same-group consumer by one slot
        # cycle, but the map is always ready by the next issue cycle, so
        # no *zero-issue* map stall is ever recorded (map_busy == 0 in the
        # CPI stack for connect latency <= 1 — asserted here, documented
        # in EXPERIMENTS.md Ablation D).
        instrs = [
            li(1, 0), li(2, 0), li(3, 0), li(5, 42),
            connect_use(RClass.INT, 6, 5),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), r(6))),
            Instr(Opcode.HALT),
        ]
        runs = {}
        for lat in (0, 1):
            cfg = config(issue=4, int_spec=rc_spec(RClass.INT, 16),
                         latency=LatencyModel(connect=lat))
            _p, _c, obs, result = observed(instrs, cfg=cfg)
            runs[lat] = result.cycles
            assert obs.stall_by_cause[STALL_MAP] == 0
        assert runs[1] == runs[0] + 1

    def test_map_stall_counters_on_the_bus(self):
        # The core's map-busy hook path, exercised at the bus level: the
        # cause/origin/category/register counters all advance by duration.
        obs = Observer()
        obs.on_stall(7, 3, 12, STALL_MAP, RClass.INT, 6, "program",
                     "int_alu")
        stall = obs.events[0]
        assert isinstance(stall, StallEvent) and stall.cause == STALL_MAP
        assert obs.stall_by_cause[STALL_MAP] == 3
        assert obs.stall_by_origin["program"] == 3
        assert obs.stall_by_category["int_alu"] == 3
        assert obs.stall_by_reg[(RClass.INT, 6)] == 3
        assert obs.stall_cycles == 3

    def test_zero_cycle_connect_event_and_forward_count(self):
        cfg = config(int_spec=rc_spec(RClass.INT, 16))
        program, _c, obs, _res = observed([
            li(5, 42), li(1, 0), li(2, 0), li(3, 0),
            connect_use(RClass.INT, 6, 5),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), r(6))),
            Instr(Opcode.HALT),
        ], cfg=cfg)
        connects = [ev for ev in obs.events if isinstance(ev, ConnectEvent)]
        assert len(connects) == 1
        assert connects[0].zero_cycle
        assert connects[0].updates == ((RClass.INT, "read", 6, 5),)
        assert obs.connects == 1 and obs.zero_cycle_connects == 1
        assert count_zero_cycle_forwards(obs.events, program) == 1

    def test_mispredict_redirect_event(self):
        # Backward branch hinted not-taken: both taken iterations mispredict.
        _p, _c, obs, result = observed([
            li(5, 3), li(6, 0),
            Instr(Opcode.ADD, dest=r(6), srcs=(r(6), r(5))),
            Instr(Opcode.SUB, dest=r(5), srcs=(r(5), Imm(1))),
            Instr(Opcode.BNEZ, srcs=(r(5),), label="loop", hint_taken=False),
            Instr(Opcode.HALT),
        ], cfg=config(issue=1), labels={"loop": 2})
        redirects = [ev for ev in obs.events if isinstance(ev, RedirectEvent)]
        assert len(redirects) == result.stats.mispredicts == 2
        assert all(ev.cause == "mispredict" for ev in redirects)
        assert obs.redirect_by_cause["mispredict"] == \
            result.stats.redirect_cycles

    def test_mem_channel_slot_stall_event(self):
        loads = [Instr(Opcode.LOAD, dest=r(5 + i), srcs=(Imm(100),), imm=i)
                 for i in range(3)]
        _p, _c, obs, result = observed(
            loads + [Instr(Opcode.HALT)],
            cfg=config(issue=8, mem_channels=2))
        assert obs.mem_slot_stalls == result.stats.mem_channel_stalls > 0
        assert any(isinstance(ev, MemStallEvent) for ev in obs.events)

    def test_call_and_return_reset_the_map(self):
        cfg = config(int_spec=rc_spec(RClass.INT, 16))
        _p, _c, obs, _res = observed([
            li(5, 7),
            Instr(Opcode.CALL, label="sub"),
            Instr(Opcode.HALT),
            Instr(Opcode.RET),
        ], cfg=cfg, labels={"sub": 3})
        resets = [ev for ev in obs.events if isinstance(ev, MapResetEvent)]
        assert [ev.cause for ev in resets] == ["call", "ret"]
        assert obs.map_resets == 2

    def test_event_limit_truncates_but_counters_stay_exact(self):
        instrs = [li(5, 1), li(6, 2),
                  Instr(Opcode.ADD, dest=r(7), srcs=(r(5), r(6))),
                  Instr(Opcode.HALT)]
        _p, _c, obs, result = observed(instrs, limit=2)
        assert obs.truncated
        assert len(obs.events) == 2
        assert obs.instructions == result.stats.instructions  # not truncated

    def test_aggregate_mode_allocates_no_events(self):
        _p, _c, obs, result = observed(
            [li(5, 1), Instr(Opcode.HALT)], keep_events=False)
        assert obs.events == []
        assert not obs.truncated
        assert obs.instructions == result.stats.instructions

    def test_subscribe_receives_events_in_aggregate_mode(self):
        seen = []
        program = assemble([li(5, 1), Instr(Opcode.HALT)])
        obs = Observer(keep_events=False)
        obs.subscribe(seen.append)
        Simulator(program, config(), observer=obs).run()
        assert [type(ev) for ev in seen] == [IssueEvent, IssueEvent]
        assert obs.events == []  # listener does not force retention


class TestSimStatsSummary:
    def test_summary_reports_interrupts_and_class_mix(self):
        cfg = paper_machine(issue_width=4, int_core=16)
        module = sum_to_n_module(50)
        out = compile_module(module, cfg)
        stats = simulate(out.program, cfg).stats
        text = stats.summary()
        assert "interrupts" in text
        assert "instructions by class:" in text
        assert "INT ALU" in text

    def test_reconcile_returns_self_on_consistent_stats(self):
        cfg = paper_machine(issue_width=4, int_core=16)
        out = compile_module(sum_to_n_module(10), cfg)
        stats = simulate(out.program, cfg).stats
        assert stats.reconcile() is stats

    def test_reconcile_raises_on_tampered_counters(self):
        cfg = paper_machine(issue_width=4, int_core=16)
        out = compile_module(sum_to_n_module(10), cfg)
        stats = simulate(out.program, cfg).stats
        stats.instructions += 1
        with pytest.raises(ReconcileError):
            stats.reconcile()


class TestCPIStack:
    def _run(self, **obs_kw):
        cfg = paper_machine(issue_width=4, int_core=16,
                            rc_class=RClass.INT)
        out = compile_module(sum_to_n_module(200), cfg)
        return observe_run(out.program, cfg, **obs_kw)

    def test_components_sum_to_cycles(self):
        run = self._run()
        stack = run.stack
        assert sum(stack.components().values()) == stack.cycles
        assert stack.total() == run.result.stats.cycles

    def test_validate_rejects_mismatched_stats(self):
        run = self._run()
        stats = run.result.stats
        stats.zero_issue_cycles += 1
        with pytest.raises(ReconcileError):
            run.stack.validate(stats)

    def test_cpi_decomposition(self):
        stack = self._run().stack
        assert stack.cpi() == pytest.approx(
            sum(stack.cpi_of(name) for name in stack.components()))

    def test_to_dict_round_trips_through_json(self):
        d = self._run().stack.to_dict()
        restored = json.loads(json.dumps(d))
        assert restored["cycles"] == d["cycles"]
        assert restored["issue"] + restored["raw_interlock"] \
            + restored["map_busy"] + sum(restored["redirect"].values()) \
            == restored["cycles"]

    def test_render_lists_every_nonzero_bucket(self):
        stack = self._run().stack
        text = stack.render()
        assert "cycle attribution" in text
        assert "issue" in text and "raw_interlock" in text

    def test_merge_and_mix_summary(self):
        d = self._run().stack.to_dict()
        merged = merge_cpi([d, d, None])
        assert merged["cycles"] == 2 * d["cycles"]
        assert merged["instructions"] == 2 * d["instructions"]
        text = stall_mix_summary(merged)
        assert text.startswith("cpi mix:")
        assert "issue" in text and "redirect" in text

    def test_mix_summary_without_data(self):
        assert stall_mix_summary(None) == "cpi: no data"
        assert stall_mix_summary(merge_cpi([])) == "cpi: no data"


class TestExports:
    def _run(self):
        cfg = paper_machine(issue_width=4, int_core=16,
                            rc_class=RClass.INT)
        out = compile_module(sum_to_n_module(50), cfg)
        return observe_run(out.program, cfg)

    def test_chrome_trace_structure(self):
        run = self._run()
        doc = chrome_trace(run)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert {"issue slot 0", "interlock stalls", "redirects",
                "map events"} <= names
        issues = [e for e in events if e["ph"] == "X" and e["tid"] == 0]
        assert issues and all(e["dur"] >= 1 for e in issues)
        assert doc["otherData"]["cycles"] == run.result.stats.cycles

    def test_chrome_trace_json_parses(self):
        run = self._run()
        doc = json.loads(chrome_trace_json(run))
        assert len(doc["traceEvents"]) == len(json.loads(
            chrome_trace_json(run, indent=2))["traceEvents"])

    def test_konata_log_structure(self):
        run = self._run()
        text = konata_log(run)
        lines = text.splitlines()
        assert lines[0] == "Kanata\t0004"
        assert lines[1].startswith("C=\t")
        n_issues = sum(1 for ev in run.observer.events
                       if isinstance(ev, IssueEvent))
        assert sum(1 for ln in lines if ln.startswith("I\t")) == n_issues
        assert sum(1 for ln in lines if ln.startswith("R\t")) == n_issues

    def test_jsonl_one_valid_object_per_event(self):
        run = self._run()
        lines = events_jsonl(run).splitlines()
        assert len(lines) == len(run.observer.events)
        payloads = [json.loads(ln) for ln in lines]
        assert all("type" in p and "cycle" in p for p in payloads)
        kinds = {p["type"] for p in payloads}
        assert "issue" in kinds

    def test_jsonl_covers_every_event_type(self):
        cfg = config(int_spec=rc_spec(RClass.INT, 16))
        program = assemble([
            li(5, 42),
            connect_use(RClass.INT, 6, 5),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), r(6))),
            Instr(Opcode.HALT),
        ])
        run = observe_run(program, cfg)
        kinds = {json.loads(ln)["type"]
                 for ln in events_jsonl(run).splitlines()}
        assert {"issue", "connect"} <= kinds


class TestPassMetrics:
    def test_compile_records_every_stage_in_order(self):
        cfg = paper_machine(issue_width=4, int_core=16,
                            rc_class=RClass.INT)
        metrics = PassMetrics()
        out = compile_module(sum_to_n_module(20), cfg, metrics=metrics)
        assert out.metrics is metrics
        names = [rec.name for rec in metrics.records]
        assert names == ["optimize", "profile", "alias", "schedule-pre",
                         "lower-calls", "allocate", "spill+frame",
                         "connect-insert", "schedule", "layout",
                         "connect-opt"]
        assert metrics.total_seconds > 0
        assert all(rec.seconds >= 0 for rec in metrics.records)

    def test_connect_insert_delta_counts_connect_code(self):
        cfg = paper_machine(issue_width=4, int_core=8,
                            rc_class=RClass.INT)
        metrics = PassMetrics()
        out = compile_module(sum_to_n_module(20), cfg, metrics=metrics)
        by_name = {rec.name: rec for rec in metrics.records}
        if out.stats.connect_instructions:
            assert by_name["connect-insert"].instr_delta > 0

    def test_metrics_collection_does_not_change_output(self):
        cfg = paper_machine(issue_width=4, int_core=16,
                            rc_class=RClass.INT)
        module = sum_to_n_module(20)
        plain = compile_module(module, cfg)
        measured = compile_module(module, cfg, metrics=PassMetrics())
        assert len(plain.program) == len(measured.program)
        assert [i.op for i in plain.program.instrs] == \
            [i.op for i in measured.program.instrs]

    def test_render_and_rows(self):
        metrics = PassMetrics()
        compile_module(sum_to_n_module(10),
                       paper_machine(issue_width=2, int_core=16),
                       metrics=metrics)
        rows = metrics.to_rows()
        assert all({"pass", "seconds", "instr_delta"} <= set(row)
                   for row in rows)
        text = metrics.render()
        assert "optimize" in text and "total" in text

    def test_maybe_measure_none_is_noop(self):
        with maybe_measure(None, "anything", object()):
            pass  # must not raise or require a module


class TestObserverEffectAndReconcile:
    """Acceptance property: observation is effect-free and the CPI stack
    reconciles bit-exactly, for every benchmark x RC x issue rate."""

    @pytest.mark.parametrize("name", ALL_BENCHMARKS)
    def test_buckets_sum_exactly_and_observer_effect_is_zero(self, name):
        w = workload(name)
        module = w.module(1)
        addr = module.global_addr("checksum")
        rc_class = RClass.INT if w.kind == "int" else RClass.FP
        for issue in (2, 4, 8):
            for rc in (False, True):
                cfg = paper_machine(
                    issue_width=issue, int_core=16, fp_core=32,
                    rc_class=rc_class if rc else None,
                    rc_model=RCModel(3),
                )
                out = compile_module(module, cfg)
                plain = simulate(out.program, cfg)
                obs = Observer(keep_events=False)
                watched = Simulator(out.program, cfg, observer=obs).run()

                # Zero observer effect: same cycles, instructions, results.
                label = f"{name} issue={issue} rc={rc}"
                assert watched.cycles == plain.cycles, label
                assert watched.stats.instructions == \
                    plain.stats.instructions, label
                assert watched.load_word(addr) == plain.load_word(addr), label

                # Exact attribution: every cycle in exactly one bucket.
                # (from_observer() validates issue/stall/redirect splits
                # against SimStats and raises ReconcileError on any drift.)
                stack = CPIStack.from_observer(obs, watched.stats)
                assert stack.total() == watched.stats.cycles, label
