"""Tests for interference, priorities, coloring, spilling, and windows."""

import pytest

from repro.compiler import (
    AllocationOptions,
    allocate_function,
    apply_allocation,
    build_interference,
    lower_calls,
    priority_order,
    reference_weights,
)
from repro.compiler.regalloc.allocator import _SharedCounters
from repro.errors import AllocationError
from repro.ir import FnBuilder, Module, run_module
from repro.isa import (
    NUM_RESERVED_INT,
    RClass,
    core_spec,
    rc_spec,
    unlimited_spec,
)


def pressure_module(n_live: int = 10):
    """main defines n_live values, keeps them all live, then sums them."""
    m = Module()
    m.add_global("out", 1)
    b = FnBuilder(m, "main")
    vals = [b.li(i + 1, name=f"v{i}") for i in range(n_live)]
    acc = b.li(0, name="acc")
    for v in vals:
        b.add(acc, v, dest=acc)
    b.store(acc, b.la("out"), 0)
    b.halt()
    b.done()
    return m


INT64 = core_spec(RClass.INT, 64)
FP64 = core_spec(RClass.FP, 64)


class TestInterference:
    def test_simultaneously_live_values_interfere(self):
        m = pressure_module(4)
        fn = m.function("main")
        g = build_interference(fn)
        vregs = {v.name: v for v in fn.vregs()}
        assert g.interferes(vregs["v0"], vregs["v3"])

    def test_sequential_values_do_not_interfere(self):
        m = Module()
        b = FnBuilder(m, "main")
        a = b.li(1, name="a")
        b.store(a, 100, 0)
        c = b.li(2, name="c")   # a is dead here
        b.store(c, 100, 0)
        b.halt()
        fn = b.done()
        g = build_interference(fn)
        assert not g.interferes(a, c)

    def test_copy_source_exempt(self):
        m = Module()
        b = FnBuilder(m, "main")
        a = b.li(1, name="a")
        c = b.move(a, name="c")
        b.store(c, 100, 0)
        b.halt()
        fn = b.done()
        g = build_interference(fn)
        assert not g.interferes(a, c)

    def test_params_interfere_with_each_other(self):
        m = Module()
        b = FnBuilder(m, "f", params=[("i", "x"), ("i", "y")], ret="i")
        x, y = b.params
        b.ret(b.add(x, y))
        fn = b.done()
        g = build_interference(fn)
        assert g.interferes(x, y)


class TestPriorities:
    def test_loop_values_outweigh_straightline(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        cold = b.li(7, name="cold")
        i = b.li(0, name="i")
        acc = b.li(0, name="acc")
        b.block("loop")
        b.add(acc, i, dest=acc)
        b.add(i, 1, dest=i)
        b.br("blt", i, 100, "loop")
        b.block("exit")
        b.add(acc, cold, dest=acc)
        b.store(acc, b.la("out"), 0)
        b.halt()
        fn = b.done()
        profile = run_module(m).profile
        w = reference_weights(fn, profile)
        assert w[i] > w[cold]
        order = priority_order(fn, profile)
        assert order.index(i) < order.index(cold)

    def test_static_fallback_uses_loop_depth(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        cold = b.li(7, name="cold")
        i = b.li(0, name="i")
        b.block("loop")
        b.add(i, 1, dest=i)
        b.br("blt", i, 100, "loop")
        b.block("exit")
        b.store(cold, b.la("out"), 0)
        b.halt()
        fn = b.done()
        w = reference_weights(fn, None)
        assert w[i] > w[cold]


class TestColoring:
    def test_everything_fits_in_large_file(self):
        m = pressure_module(10)
        fn = m.function("main")
        result = allocate_function(fn, None, INT64, FP64)
        assert not result.spilled
        assert not result.windows

    def test_spills_when_core_exhausted(self):
        m = pressure_module(30)
        fn = m.function("main")
        spec = core_spec(RClass.INT, 16)  # 11 allocatable
        result = allocate_function(fn, None, spec, FP64)
        assert result.spilled
        assert all(r.num < 16 for r in result.assignment.values())

    def test_rc_overflows_to_extended_instead_of_memory(self):
        m = pressure_module(30)
        fn = m.function("main")
        spec = rc_spec(RClass.INT, 16)
        result = allocate_function(fn, None, spec, FP64)
        assert not result.spilled
        assert result.windows[RClass.INT]
        assert result.used_extended[RClass.INT]
        # windows are excluded from coloring
        for reg in result.assignment.values():
            assert reg.num not in result.windows[RClass.INT]

    def test_rc_windows_not_reserved_when_core_suffices(self):
        m = pressure_module(5)
        fn = m.function("main")
        spec = rc_spec(RClass.INT, 16)
        result = allocate_function(fn, None, spec, FP64)
        assert not result.windows
        assert not result.used_extended[RClass.INT]

    def test_interfering_values_get_distinct_registers(self):
        m = pressure_module(8)
        fn = m.function("main")
        result = allocate_function(fn, None, INT64, FP64)
        g = build_interference(fn)
        for v, reg in result.assignment.items():
            for n in g.neighbors(v):
                if n in result.assignment:
                    assert result.assignment[n] != reg

    def test_reserved_registers_never_assigned(self):
        m = pressure_module(30)
        fn = m.function("main")
        result = allocate_function(fn, None, core_spec(RClass.INT, 16), FP64)
        for reg in result.assignment.values():
            assert reg.num >= NUM_RESERVED_INT

    def test_unlimited_assigns_globally_unique(self):
        m = pressure_module(6)
        fn = m.function("main")
        shared = _SharedCounters()
        r1 = allocate_function(fn, None, unlimited_spec(RClass.INT),
                               unlimited_spec(RClass.FP),
                               shared_counters=shared)
        m2 = pressure_module(6)
        fn2 = m2.function("main")
        r2 = allocate_function(fn2, None, unlimited_spec(RClass.INT),
                               unlimited_spec(RClass.FP),
                               shared_counters=shared)
        used1 = set(r1.assignment.values())
        used2 = set(r2.assignment.values())
        assert not (used1 & used2)
        assert not r1.callee_saves and not r2.callee_saves

    def test_window_minimum_enforced(self):
        with pytest.raises(AllocationError):
            AllocationOptions(num_windows=1)

    def test_fp_assignment_uses_even_pairs(self):
        m = Module()
        m.add_global("out", 1)
        b = FnBuilder(m, "main")
        vals = [b.fli(float(i)) for i in range(6)]
        acc = b.fli(0.0)
        for v in vals:
            b.fadd(acc, v, dest=acc)
        b.fstore(acc, b.la("out"), 0)
        b.halt()
        fn = b.done()
        result = allocate_function(fn, None, INT64, core_spec(RClass.FP, 32))
        fp_regs = [r for r in result.assignment.values()
                   if r.cls is RClass.FP]
        assert fp_regs and all(r.num % 2 == 0 for r in fp_regs)


class TestApplyAllocation:
    def test_spill_code_counts(self):
        m = pressure_module(30)
        fn = m.function("main")
        lower_calls(fn)
        spec = core_spec(RClass.INT, 16)
        result = allocate_function(fn, None, spec, FP64)
        stats = apply_allocation(fn, result,
                                 {RClass.INT: 16, RClass.FP: 64})
        assert stats["spill_loads"] > 0
        assert stats["spill_stores"] > 0

    def test_no_vregs_survive(self):
        from repro.isa import VReg
        m = pressure_module(30)
        fn = m.function("main")
        lower_calls(fn)
        spec = core_spec(RClass.INT, 16)
        result = allocate_function(fn, None, spec, FP64)
        apply_allocation(fn, result, {RClass.INT: 16, RClass.FP: 64})
        for _, instr in fn.iter_instrs():
            for reg in instr.regs():
                assert not isinstance(reg, VReg)
