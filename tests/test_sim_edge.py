"""Edge-case simulator tests: limits, masking, interlocks, stats."""

import pytest

from repro.errors import SimulationError
from repro.isa import (
    Imm,
    Instr,
    Opcode,
    PhysReg,
    RClass,
    RegFileSpec,
    connect_use,
)
from repro.sim import MachineConfig, Simulator, assemble, simulate


def r(n):
    return PhysReg(RClass.INT, n)


def f(n):
    return PhysReg(RClass.FP, n)


def config(issue=1, **kwargs):
    defaults = dict(
        issue_width=issue,
        mem_channels=2,
        int_spec=RegFileSpec(RClass.INT, 16, 16),
        fp_spec=RegFileSpec(RClass.FP, 16, 16),
    )
    defaults.update(kwargs)
    return MachineConfig(**defaults)


class TestLimits:
    def test_max_cycles_guard(self):
        prog = assemble([
            Instr(Opcode.JMP, label="spin"),
        ], labels={"spin": 0})
        cfg = config(max_cycles=500)
        with pytest.raises(SimulationError, match="exceeded"):
            simulate(prog, cfg)

    def test_unhandled_interrupt_faults(self):
        prog = assemble([Instr(Opcode.LI, dest=r(5), imm=1),
                         Instr(Opcode.HALT)])
        sim = Simulator(prog, config())
        sim.schedule_interrupt(0, 7)
        with pytest.raises(SimulationError, match="no handler"):
            sim.run()


class TestInterruptMasking:
    def test_interrupt_masked_during_trap_handler(self):
        """An external interrupt must wait until the trap handler returns."""
        prog = assemble([
            Instr(Opcode.TRAP, imm=1),          # 0: enter handler
            Instr(Opcode.LI, dest=r(7), imm=3),  # 1: after rte
            Instr(Opcode.HALT),                  # 2
            # handler 1 at 3: long busy work, then rte
            Instr(Opcode.LI, dest=r(5), imm=0),          # 3
            Instr(Opcode.DIV, dest=r(6), srcs=(Imm(100), Imm(10))),  # 4
            Instr(Opcode.ADD, dest=r(6), srcs=(r(6), r(6))),          # 5
            Instr(Opcode.RTE),                   # 6
            # handler 2 at 7: record the cycle order via memory
            Instr(Opcode.STORE, srcs=(r(7), Imm(0)), imm=800),  # 7
            Instr(Opcode.RTE),                   # 8
        ], trap_handlers={1: 3, 2: 7})
        sim = Simulator(prog, config())
        sim.schedule_interrupt(2, 2)  # fires while handler 1 is running
        result = sim.run()
        assert result.stats.interrupts == 1
        # handler 2 ran after rte of handler 1 but before/around li r7:
        # the store captured r7's value at that moment (0 or 3); the key
        # property is completion without nesting errors:
        assert result.state.int_regs[7] == 3
        assert not result.state.trap_stack


class TestInterlocks:
    def test_fp_waw_blocks(self):
        prog = assemble([
            Instr(Opcode.LIF, dest=f(4), imm=2.0),
            Instr(Opcode.FDIV, dest=f(6), srcs=(f(4), f(4))),  # latency 10
            Instr(Opcode.LIF, dest=f(6), imm=9.0),             # WAW
            Instr(Opcode.HALT),
        ])
        result = simulate(prog, config())
        assert result.cycles >= 12
        assert result.state.fp_regs[6] == 9.0

    def test_fp_raw_latency(self):
        prog = assemble([
            Instr(Opcode.LIF, dest=f(4), imm=2.0),
            Instr(Opcode.FADD, dest=f(6), srcs=(f(4), f(4))),
            Instr(Opcode.FMUL, dest=f(8), srcs=(f(6), f(6))),
            Instr(Opcode.HALT),
        ])
        result = simulate(prog, config())
        # lif@0 (ready 1), fadd@1 (ready 4), fmul@4, halt@5 -> 6 cycles
        assert result.cycles == 6

    def test_two_stores_same_cycle_keep_program_order(self):
        prog = assemble([
            Instr(Opcode.LI, dest=r(5), imm=1),
            Instr(Opcode.LI, dest=r(6), imm=2),
            Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=900),
            Instr(Opcode.STORE, srcs=(r(6), Imm(0)), imm=900),
            Instr(Opcode.HALT),
        ])
        result = simulate(prog, config(issue=8))
        assert result.load_word(900) == 2

    def test_zero_issue_cycles_counted(self):
        prog = assemble([
            Instr(Opcode.LI, dest=r(5), imm=4),
            Instr(Opcode.DIV, dest=r(6), srcs=(r(5), r(5))),
            Instr(Opcode.ADD, dest=r(7), srcs=(r(6), Imm(1))),
            Instr(Opcode.HALT),
        ])
        result = simulate(prog, config())
        assert result.stats.zero_issue_cycles >= 9  # divide shadow


class TestStats:
    def test_summary_text(self):
        prog = assemble([
            Instr(Opcode.LI, dest=r(5), imm=1),
            Instr(Opcode.LOAD, dest=r(6), srcs=(Imm(100),), imm=0,
                  origin="spill"),
            Instr(Opcode.HALT),
        ])
        result = simulate(prog, config())
        text = result.stats.summary()
        assert "cycles" in text and "IPC" in text
        assert "spill" in text  # overhead breakdown present

    def test_category_counts(self):
        from repro.isa import Category
        prog = assemble([
            Instr(Opcode.LI, dest=r(5), imm=3),
            Instr(Opcode.MUL, dest=r(6), srcs=(r(5), r(5))),
            Instr(Opcode.HALT),
        ])
        result = simulate(prog, config())
        assert result.stats.by_category[Category.INT_MUL] == 1
        assert result.stats.by_category[Category.INT_ALU] == 1

    def test_by_origin_dynamic_attribution(self):
        prog = assemble([
            connect_use(RClass.INT, 5, 20),
            Instr(Opcode.HALT),
        ])
        cfg = config(int_spec=RegFileSpec(RClass.INT, 16, 32))
        result = simulate(prog, cfg)
        assert result.stats.by_origin["connect"] == 1

    def _mispredict_prog(self):
        # forward taken branch: mispredicted under the not-taken default
        return assemble([
            Instr(Opcode.LI, dest=r(5), imm=0),
            Instr(Opcode.BEQZ, srcs=(r(5),), label="skip"),
            Instr(Opcode.LI, dest=r(6), imm=1),
            Instr(Opcode.HALT),
        ], labels={"skip": 3})

    def test_redirect_cycles_counted(self):
        result = simulate(self._mispredict_prog(), config())
        stats = result.stats
        assert stats.mispredicts == 1
        assert stats.redirect_cycles == 1  # one-cycle redirect penalty

    def test_redirect_cycles_with_extra_stage(self):
        result = simulate(self._mispredict_prog(),
                          config(extra_decode_stage=True))
        assert result.stats.redirect_cycles == 2

    def test_cycle_accounting_reconciles(self):
        # issue + zero-issue + redirect cycles must cover every cycle.
        prog = assemble([
            Instr(Opcode.LI, dest=r(5), imm=4),
            Instr(Opcode.DIV, dest=r(6), srcs=(r(5), r(5))),
            Instr(Opcode.BEQZ, srcs=(r(5),), label="skip"),  # fwd, not taken
            Instr(Opcode.LI, dest=r(7), imm=0),
            Instr(Opcode.BEQZ, srcs=(r(7),), label="skip"),  # mispredicted
            Instr(Opcode.ADD, dest=r(8), srcs=(r(6), Imm(1))),
            Instr(Opcode.HALT),
        ], labels={"skip": 5})
        stats = simulate(prog, config()).stats
        assert stats.redirect_cycles == 1
        assert stats.issue_cycles > 0 and stats.zero_issue_cycles > 0
        assert (stats.issue_cycles + stats.zero_issue_cycles
                + stats.redirect_cycles == stats.cycles)
        assert "redirect cycles" in stats.summary()


class TestDecodeValidation:
    def test_branch_hint_defaults_backward_taken(self):
        prog = assemble([
            Instr(Opcode.LI, dest=r(5), imm=2),
            Instr(Opcode.SUB, dest=r(5), srcs=(r(5), Imm(1))),
            Instr(Opcode.BNEZ, srcs=(r(5),), label="loop"),
            Instr(Opcode.HALT),
        ], labels={"loop": 1})
        result = simulate(prog, config())
        # backward branch predicted taken: one mispredict on exit only
        assert result.stats.mispredicts == 1

    def test_forward_branch_defaults_not_taken(self):
        prog = assemble([
            Instr(Opcode.LI, dest=r(5), imm=0),
            Instr(Opcode.BEQZ, srcs=(r(5),), label="skip"),  # taken, fwd
            Instr(Opcode.LI, dest=r(6), imm=1),
            Instr(Opcode.HALT),
        ], labels={"skip": 3})
        result = simulate(prog, config())
        assert result.stats.mispredicts == 1
