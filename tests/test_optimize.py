"""Connect-optimizer tests: deletion, redundancy, hoisting, parity.

Each rewrite kind gets a firing fixture and a must-not-fire negative; the
whole pass is then gated on bit-exact architectural parity (final register
files and memory) against the unoptimized program, mirroring the CI job.
"""

import pytest

from repro.analyze import check_program, optimize_connects
from repro.compiler.pipeline import CompileOptions, compile_module
from repro.isa import RClass
from repro.isa.asmparse import parse_program
from repro.rc import RCModel
from repro.sim import FastSimulator
from repro.sim.config import paper_machine
from repro.workloads import workload

ALL_MODELS = [1, 2, 3, 4, 5]


def machine(model=3, rc=True, cls=RClass.INT):
    return paper_machine(int_core=16, fp_core=32,
                         rc_class=cls if rc else None,
                         rc_model=RCModel(model))


def run_state(program, config):
    result = FastSimulator(program, config).run()
    return (list(result.state.int_regs), list(result.state.fp_regs),
            dict(result.state.memory))


def optimize_asm(text, model=3):
    program = parse_program(text)
    config = machine(model)
    result = optimize_connects(program, config)
    return program, result, config


def assert_parity(original, optimized, config):
    assert run_state(original, config) == run_state(optimized, config)


# ---------------------------------------------------------------------------
# Dead-connect deletion


DEAD = """
start:
    li r5, 1
    connect_use ri6, rp20
    halt
"""

LIVE = """
start:
    li r20, 7
    connect_use ri6, rp20
    add r7, r6, 1
    halt
"""


class TestDeadDeletion:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_unused_connect_is_deleted(self, model):
        original, result, config = optimize_asm(DEAD, model)
        report = result.report
        assert report.removed_dead == 1
        assert (report.connects_before, report.connects_after) == (1, 0)
        assert not any(i.is_connect for i in result.program.instrs)
        assert_parity(original, result.program, config)

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_used_connect_survives(self, model):
        _, result, _ = optimize_asm(LIVE, model)
        assert not result.report.changed
        assert result.report.removed == 0
        assert sum(i.is_connect for i in result.program.instrs) == 1


# ---------------------------------------------------------------------------
# Redundant-connect elimination


REDUNDANT = """
start:
    connect_def ri6, rp20
    li r6, 7
    connect_use ri6, rp20
    add r7, r6, 1
    connect_use ri6, rp20
    add r8, r6, 1
    halt
"""


class TestRedundantElimination:
    @pytest.mark.parametrize("model,removed", [(1, 1), (2, 1), (3, 2),
                                               (4, 1)])
    def test_reestablishing_connect_is_removed(self, model, removed):
        # The second connect-use re-establishes a slot the first one set.
        # Under WRITE_RESET_READ_UPDATE the write itself already made the
        # value readable, so the first connect-use is redundant too.
        original, result, config = optimize_asm(REDUNDANT, model)
        report = result.report
        assert report.removed_redundant == removed
        assert report.connects_after == 3 - removed
        assert_parity(original, result.program, config)

    def test_read_reset_model_keeps_all_connects(self):
        # Under READ_RESET the first read resets the slot to home: the
        # second connect is load-bearing and must not be removed.
        _, result, _ = optimize_asm(REDUNDANT, model=5)
        assert not result.report.changed
        assert sum(i.is_connect for i in result.program.instrs) == 3


# ---------------------------------------------------------------------------
# Loop-invariant hoisting


HOISTABLE = """
start:
    connect_def ri6, rp20
    li r6, 7
    li r5, 0
loop:
    connect_use ri6, rp20
    add r5, r5, r6
    blt r5, 100 -> loop
    halt
"""

ALTERNATING = """
start:
    connect_def ri6, rp20
    li r6, 7
    connect_def ri6, rp21
    li r6, 9
    li r5, 0
loop:
    connect_use ri6, rp20
    add r5, r5, r6
    connect_use ri6, rp21
    add r5, r5, r6
    blt r5, 100 -> loop
    halt
"""


class TestHoisting:
    @pytest.mark.parametrize("model", [1, 2, 4])
    def test_invariant_connect_moves_to_preheader(self, model):
        original, result, config = optimize_asm(HOISTABLE, model)
        report = result.report
        assert report.hoisted == 1
        # Static count unchanged: the loop connect now sits ahead of the
        # loop, so the dynamic count drops to once per loop entry.
        assert (report.connects_before, report.connects_after) == (2, 2)
        flags = [i.is_connect for i in result.program.instrs]
        assert flags == [True, False, False, True, False, False, False]
        # The loop back edge targets the add, past the hoisted connect.
        assert result.program.targets[5] == 4
        assert_parity(original, result.program, config)

    def test_write_update_model_deletes_instead(self):
        # Under WRITE_RESET_READ_UPDATE the preheader write already made
        # the value readable through index 6, so the loop connect is
        # outright redundant — deleted, not hoisted.
        original, result, config = optimize_asm(HOISTABLE, model=3)
        report = result.report
        assert report.hoisted == 0
        assert report.removed_redundant == 1
        assert (report.connects_before, report.connects_after) == (2, 1)
        assert_parity(original, result.program, config)

    def test_read_reset_model_must_not_hoist(self):
        # Under READ_RESET every iteration's read resets the slot: the
        # in-loop connect is load-bearing on the back edge.
        original, result, config = optimize_asm(HOISTABLE, model=5)
        assert not result.report.changed
        assert_parity(original, result.program, config)

    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_alternating_connects_do_not_hoist(self, model):
        # Both loop connects have slots dead at the header, but neither
        # copy can make its original provably redundant (the back edge
        # carries the other target), so every trial is abandoned.
        original, result, config = optimize_asm(ALTERNATING, model)
        assert result.report.hoisted == 0
        assert not result.report.changed
        assert_parity(original, result.program, config)


# ---------------------------------------------------------------------------
# Bail-outs


class TestBail:
    def test_no_rc_configuration_bails(self):
        program = parse_program(DEAD)
        result = optimize_connects(program, machine(rc=False))
        assert result.report.bail_reason is not None
        assert result.program is program
        assert not result.report.changed

    def test_report_lines_mention_skip(self):
        program = parse_program(DEAD)
        result = optimize_connects(program, machine(rc=False))
        assert result.report.lines()[0].startswith("connect-opt: skipped")


# ---------------------------------------------------------------------------
# Pipeline integration and whole-benchmark parity


class TestPipeline:
    def test_opt_connects_on_by_default(self):
        w = workload("cmp")
        config = machine(3)
        plain = compile_module(w.module(1), config,
                               CompileOptions(opt_connects=False))
        opt = compile_module(w.module(1), config)
        assert opt.connect_opt is not None
        assert plain.connect_opt is None
        n_plain = sum(i.is_connect for i in plain.program.instrs)
        n_opt = sum(i.is_connect for i in opt.program.instrs)
        assert n_opt <= n_plain
        assert opt.stats.connects_removed == n_plain - n_opt

    def test_benchmark_parity_and_idempotence(self):
        w = workload("cmp")
        config = machine(3)
        out = compile_module(w.module(1), config,
                             CompileOptions(opt_connects=False))
        result = optimize_connects(out.program, config)
        assert_parity(out.program, result.program, config)
        again = optimize_connects(result.program, config)
        assert not again.report.changed

    def test_optimized_output_checks_clean_of_own_rules(self):
        # The checker's RC003/RC005/RC006 are exactly what the optimizer
        # removes: its output must not retrigger them.
        w = workload("cmp")
        config = machine(3)
        out = compile_module(w.module(1), config)
        report = check_program(out.program, config)
        counts = report.counts()
        assert not {"RC003", "RC005", "RC006"} & set(counts), report.render()
