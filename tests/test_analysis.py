"""Tests for workload characterization."""

import pytest

from repro.workloads import ALL_BENCHMARKS, profile_workload
from repro.workloads.analysis import profile_module

from helpers import call_module, fp_module, sum_to_n_module


class TestProfileModule:
    def test_mix_fractions_sum_to_one(self):
        p = profile_module(sum_to_n_module(20))
        assert sum(p.mix.values()) == pytest.approx(1.0)

    def test_loop_dominates_dynamic_count(self):
        p = profile_module(sum_to_n_module(100))
        assert p.dynamic_instructions > 250
        assert p.branch_fraction > 0.2

    def test_taken_fraction_of_backward_loop(self):
        p = profile_module(sum_to_n_module(100))
        assert p.taken_fraction > 0.9

    def test_calls_counted(self):
        p = profile_module(call_module())
        assert p.calls == 1

    def test_fp_fraction(self):
        p = profile_module(fp_module())
        assert p.fp_fraction > 0.3
        assert profile_module(sum_to_n_module(5)).fp_fraction == 0.0


class TestBenchmarkCharacter:
    def test_fp_benchmarks_are_fp_heavy(self):
        for name in ("matrix300", "tomcatv", "nasa7"):
            assert profile_workload(name).fp_fraction > 0.25, name

    def test_int_benchmarks_have_no_fp(self):
        for name in ("cmp", "grep", "yacc"):
            assert profile_workload(name).fp_fraction == 0.0, name

    def test_call_heavy_kernels(self):
        assert profile_workload("cccp").calls > 100
        assert profile_workload("yacc").calls > 100

    def test_render_is_readable(self):
        text = profile_workload("grep").render()
        assert "grep" in text and "branches" in text and "top ops" in text

    def test_suite_has_behavioral_diversity(self):
        """The twelve kernels should span branchy to straight-line and
        memory-light to memory-heavy, like the paper's suite."""
        profiles = [profile_workload(n) for n in ALL_BENCHMARKS]
        branchy = [p.branch_fraction for p in profiles]
        memory = [p.memory_fraction for p in profiles]
        assert max(branchy) > 3 * min(branchy)
        assert max(memory) > 2 * min(memory)
