; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
.handler 3 = nope
    halt
