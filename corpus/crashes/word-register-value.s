; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
.word 4096 = r5
    halt
