; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
    blt r1, 5 -> nowhere
    halt
