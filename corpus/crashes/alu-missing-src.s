; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
    add r1, r2
    halt
