; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
    load 5, 4(r0)
    halt
