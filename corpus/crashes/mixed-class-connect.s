; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
    connect_use ri3, fp200
    halt
