; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
top:
    halt
top:
    halt
