; fuzz-case: oracle=parser-crash kind=crash
; must raise a line-numbered AsmError, never a bare
; ValueError/IndexError/KeyError
    add r1, rx, 5
    halt
