; fuzz-case: oracle=resume-parity kind=asm
; run() after a failed run must raise the same diagnostic on both
; engines; the reference used to resume with accumulated stats while
; the fast engine restarted from entry on dirty state
    add r1, r1, 1
    beq r1, 1 -> L3
    halt
L3:
    sub r1, r1, 1
