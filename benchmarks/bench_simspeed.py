"""Simulation-speed benchmark: reference engine vs the specializing fast
engine (:mod:`repro.sim.fastpath`).

Measures instructions/second for both engines over

* the **fig07 set**: every benchmark at scale ``REPRO_SCALE`` (default 1)
  on the unlimited-register machine at issue rates 1/2/4/8 — the exact
  sweep behind Figure 7; and
* a **microbenchmark**: a tight straight-line arithmetic loop that stays
  on the fast engine's bundle-replay path.

Methodology: each (benchmark, config) point is compiled once; both engines
then get one warmup run — whose results are compared field-by-field, the
hard parity gate — followed by ``--repeat`` timed runs each, best-of taken.
The fast engine's warmup also populates its per-program code cache, so the
timed runs measure steady-state engine throughput; the cold first-run time
(including code generation) is recorded separately for transparency.

Usage::

    PYTHONPATH=src python benchmarks/bench_simspeed.py [-o BENCH_simspeed.json]

Exits non-zero on any engine mismatch.  Speedup numbers are informational
(CI uploads them as an artifact); parity is the gate.
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import compile_module  # noqa: E402
from repro.isa import Imm, Instr, Opcode, PhysReg, RClass  # noqa: E402
from repro.rc import RCModel  # noqa: E402
from repro.sim import (  # noqa: E402
    BatchedSimulator,
    FastSimulator,
    Simulator,
    assemble,
    numpy_available,
    paper_machine,
    unlimited_machine,
)
from repro.workloads import ALL_BENCHMARKS, build_workload, workload  # noqa: E402

ISSUE_RATES = (1, 2, 4, 8)

#: The batched-sweep matrix per benchmark: every RC reset model × issue
#: width × extra-decode toggle — 40 configs, one compiled program, the
#: shape of a figure sweep.
SWEEP_WIDTHS = (1, 2, 4, 8)


def _check_parity(ref, fast, label: str) -> list[str]:
    problems = []
    if ref.stats != fast.stats:
        problems.append(f"{label}: SimStats diverge")
    if ref.state.memory != fast.state.memory:
        problems.append(f"{label}: memory diverges")
    if (ref.state.int_regs != fast.state.int_regs
            or ref.state.fp_regs != fast.state.fp_regs):
        problems.append(f"{label}: register state diverges")
    return problems


def _time_engine(make_sim, repeat: int) -> float:
    best = float("inf")
    for _ in range(repeat):
        sim = make_sim()
        t0 = time.perf_counter()
        sim.run()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_point(program, config, label: str, repeat: int) -> tuple[dict, list]:
    # Warmup + parity gate.  The fast warmup is timed: it pays the one-time
    # specialization (codegen + compile) cost, reported as "cold".
    t0 = time.perf_counter()
    ref_res = Simulator(program, config).run()
    ref_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast_sim = FastSimulator(program, config)
    fast_res = fast_sim.run()
    fast_cold = time.perf_counter() - t0
    problems = _check_parity(ref_res, fast_res, label)
    if not fast_sim.ran_fastpath:
        problems.append(f"{label}: fast engine unexpectedly fell back")

    insns = ref_res.stats.instructions
    ref_s = _time_engine(lambda: Simulator(program, config), repeat)
    fast_s = _time_engine(lambda: FastSimulator(program, config), repeat)
    point = {
        "label": label,
        "instructions": insns,
        "cycles": ref_res.stats.cycles,
        "ref_seconds": ref_s,
        "fast_seconds": fast_s,
        "ref_cold_seconds": ref_cold,
        "fast_cold_seconds": fast_cold,
        "ref_insns_per_sec": insns / ref_s,
        "fast_insns_per_sec": insns / fast_s,
        "speedup": ref_s / fast_s,
    }
    return point, problems


def bench_fig07_set(scale: int, repeat: int) -> tuple[dict, list]:
    points, problems = [], []
    for issue in ISSUE_RATES:
        cfg = unlimited_machine(issue_width=issue)
        for name in ALL_BENCHMARKS:
            module = build_workload(name, scale=scale)
            out = compile_module(module, cfg)
            point, probs = bench_point(out.program, cfg,
                                       f"{name}@{issue}-issue", repeat)
            points.append(point)
            problems.extend(probs)
    ref_s = sum(p["ref_seconds"] for p in points)
    fast_s = sum(p["fast_seconds"] for p in points)
    cold_s = sum(p["fast_cold_seconds"] for p in points)
    insns = sum(p["instructions"] for p in points)
    summary = {
        "points": points,
        "instructions": insns,
        "ref_seconds": ref_s,
        "fast_seconds": fast_s,
        "fast_cold_seconds": cold_s,
        "ref_insns_per_sec": insns / ref_s,
        "fast_insns_per_sec": insns / fast_s,
        "speedup": ref_s / fast_s,
        "cold_speedup": ref_s / cold_s,
    }
    return summary, problems


def _micro_program(iterations: int):
    """A tight arithmetic loop: the bundle-replay steady state."""
    r = lambda n: PhysReg(RClass.INT, n)  # noqa: E731
    body = [
        Instr(Opcode.LI, dest=r(5), imm=0),          # acc
        Instr(Opcode.LI, dest=r(6), imm=0),          # i
        # loop:
        Instr(Opcode.ADD, dest=r(7), srcs=(r(6), Imm(3))),
        Instr(Opcode.MUL, dest=r(8), srcs=(r(7), r(7))),
        Instr(Opcode.XOR, dest=r(9), srcs=(r(8), Imm(0x55))),
        Instr(Opcode.ADD, dest=r(5), srcs=(r(5), r(9))),
        Instr(Opcode.ADD, dest=r(10), srcs=(r(6), Imm(1))),
        Instr(Opcode.SUB, dest=r(11), srcs=(r(10), r(7))),
        Instr(Opcode.ADD, dest=r(5), srcs=(r(5), r(11))),
        Instr(Opcode.ADD, dest=r(6), srcs=(r(6), Imm(1))),
        Instr(Opcode.BLT, srcs=(r(6), Imm(iterations)), label="loop"),
        Instr(Opcode.STORE, srcs=(r(5), Imm(0)), imm=100),
        Instr(Opcode.HALT),
    ]
    return assemble(body, labels={"loop": 2})


def bench_micro(repeat: int) -> tuple[dict, list]:
    program = _micro_program(50_000)
    cfg = unlimited_machine(issue_width=4)
    return bench_point(program, cfg, "microbench", repeat)


def _sweep_configs(rc_class):
    return [paper_machine(issue_width=width, rc_class=rc_class,
                          rc_model=model, extra_decode_stage=extra)
            for model in RCModel for width in SWEEP_WIDTHS
            for extra in (False, True)]


def bench_sweep_batched(scale: int, repeat: int) -> tuple[dict, list]:
    """Sweep throughput: per-config fast runs vs one lockstep gang.

    Per benchmark, one compiled program sweeps the full model × width ×
    extra-decode matrix (40 configs).  The baseline is the current fast
    path, one run per config; the gang simulates all 40 in one pass.  Both
    follower-state backends are timed when available.  Every gang slot is
    compared field-by-field against its single-config fast run — the
    parity gate.
    """
    backends = ["python"] + (["numpy"] if numpy_available() else [])
    points, problems = [], []
    for name in ALL_BENCHMARKS:
        kind = workload(name).kind
        rc_class = RClass.INT if kind == "int" else RClass.FP
        module = build_workload(name, scale=scale)
        program = compile_module(
            module, paper_machine(issue_width=1, rc_class=rc_class)).program
        configs = _sweep_configs(rc_class)

        # Warmup + parity gate: per-slot comparison of one gang against
        # single fast runs.
        singles = [FastSimulator(program, cfg).run() for cfg in configs]
        gang = BatchedSimulator(program, configs).run()
        for cfg, single, slot in zip(configs, singles, gang):
            label = (f"{name} w{cfg.issue_width} m{cfg.rc_model.value}"
                     f" x{int(cfg.extra_decode_stage)}")
            if slot.error is not None:
                problems.append(f"{label}: gang slot errored: {slot.error}")
            else:
                problems.extend(_check_parity(single, slot.result, label))

        # Timed passes run against a fresh deepcopy of the program so each
        # pass pays exactly what a cache-miss sweep pays: the fast engine's
        # codegen cache is keyed on program identity, so reusing the warmed
        # object would measure steady-state re-simulation of identical
        # points — a workload the sweep executor never issues.
        def fast_pass():
            prog = copy.deepcopy(program)
            t0 = time.perf_counter()
            for cfg in configs:
                FastSimulator(prog, cfg).run()
            return time.perf_counter() - t0

        fast_s = min(fast_pass() for _ in range(repeat))

        def gang_pass(backend):
            prog = copy.deepcopy(program)
            t0 = time.perf_counter()
            BatchedSimulator(prog, configs, backend=backend).run()
            return time.perf_counter() - t0

        gang_s = {b: min(gang_pass(b) for _ in range(repeat))
                  for b in backends}
        best = min(gang_s, key=gang_s.get)
        insns = sum(s.stats.instructions for s in singles)
        points.append({
            "benchmark": name,
            "configs": len(configs),
            "instructions": insns,
            "fast_seconds": fast_s,
            **{f"batched_{b}_seconds": s for b, s in gang_s.items()},
            "backend_winner": best,
            "speedup": fast_s / gang_s[best],
        })

    fast_s = sum(p["fast_seconds"] for p in points)
    totals = {b: sum(p[f"batched_{b}_seconds"] for p in points)
              for b in backends}
    best = min(totals, key=totals.get)
    insns = sum(p["instructions"] for p in points)
    summary = {
        "points": points,
        "configs_per_benchmark": len(_sweep_configs(RClass.INT)),
        "instructions": insns,
        "fast_seconds": fast_s,
        **{f"batched_{b}_seconds": s for b, s in totals.items()},
        "backends_measured": backends,
        "backend_winner": best,
        "fast_points_per_sec": len(points) * 40 / fast_s,
        "batched_points_per_sec": len(points) * 40 / totals[best],
        "speedup": fast_s / totals[best],
        "parity_failures": len(problems),
    }
    return summary, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here "
                             "(default: stdout only)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per engine (best-of)")
    parser.add_argument("--scale", type=int,
                        default=int(os.environ.get("REPRO_SCALE", "1")))
    parser.add_argument("--min-sweep-speedup", type=float, default=0.0,
                        help="fail unless the batched sweep speedup reaches "
                             "this factor (0 = informational)")
    args = parser.parse_args(argv)

    fig07, problems = bench_fig07_set(args.scale, args.repeat)
    micro, micro_problems = bench_micro(args.repeat)
    problems.extend(micro_problems)
    sweep, sweep_problems = bench_sweep_batched(args.scale, args.repeat)
    problems.extend(sweep_problems)

    report = {
        "scale": args.scale,
        "repeat": args.repeat,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "parity_failures": problems,
        "fig07_set": fig07,
        "microbench": micro,
        "sweep_batched": sweep,
    }
    text = json.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")
    print(f"fig07 set  ({len(fig07['points'])} points, "
          f"{fig07['instructions']} insns): "
          f"ref {fig07['ref_insns_per_sec']:.0f} insns/s, "
          f"fast {fig07['fast_insns_per_sec']:.0f} insns/s "
          f"-> {fig07['speedup']:.2f}x warm, "
          f"{fig07['cold_speedup']:.2f}x cold")
    print(f"microbench ({micro['instructions']} insns): "
          f"ref {micro['ref_insns_per_sec']:.0f} insns/s, "
          f"fast {micro['fast_insns_per_sec']:.0f} insns/s "
          f"-> {micro['speedup']:.2f}x")
    print(f"batched sweep ({len(sweep['points'])} benchmarks x "
          f"{sweep['configs_per_benchmark']} configs): "
          f"fast {sweep['fast_points_per_sec']:.1f} points/s, "
          f"batched {sweep['batched_points_per_sec']:.1f} points/s "
          f"-> {sweep['speedup']:.2f}x "
          f"(backend winner: {sweep['backend_winner']}, "
          f"measured: {', '.join(sweep['backends_measured'])})")
    if problems:
        print(f"PARITY FAILURES ({len(problems)}):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("parity: OK (every point compared on stats, memory, registers)")
    if args.min_sweep_speedup and sweep["speedup"] < args.min_sweep_speedup:
        print(f"FAIL: batched sweep speedup {sweep['speedup']:.2f}x below "
              f"the {args.min_sweep_speedup:.1f}x gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
