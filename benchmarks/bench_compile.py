"""Compile-pipeline speed benchmark: reference profiling interpreter vs the
specializing fast interpreter (:mod:`repro.ir.fastinterp`), plus the
parallel per-function backend.

Measures end-to-end :func:`~repro.compiler.compile_module` wall time for
every benchmark at scale ``REPRO_SCALE`` (default 1) on the default paper
machine, under two engine settings:

* **reference** — ``CompileOptions(ir_engine="reference")``: the original
  tree-walking profiling interpreter;
* **fast** — ``CompileOptions(ir_engine="fast")``: the specializing
  interpreter (the default).

Methodology: each (benchmark, engine) point is compiled once cold, then
``--repeat`` more times with best-of taken as the warm number.  A separate
metrics compile per engine collects the per-pass breakdown (reusing
:class:`~repro.observe.passes.PassMetrics`); it is never the timed run,
since metrics compiles snapshot IR around every stage.

Three hard parity gates, checked on every benchmark:

* the fast engine's :class:`~repro.ir.interp.Profile` equals the
  reference engine's (block, branch, and call counts);
* the emitted assembly (``format_listing``) is byte-identical between the
  two engines;
* the emitted assembly is byte-identical between a serial backend
  (``jobs=1``) and a parallel one (``jobs=N``).

Usage::

    PYTHONPATH=src python benchmarks/bench_compile.py [-o BENCH_compile.json]

Exits non-zero on any parity mismatch.  Speedup numbers are informational
(CI uploads them as an artifact); parity is the gate.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.compiler import CompileOptions, compile_module  # noqa: E402
from repro.isa.asmfmt import format_listing  # noqa: E402
from repro.observe import PassMetrics  # noqa: E402
from repro.sim import MachineConfig  # noqa: E402
from repro.workloads import ALL_BENCHMARKS, build_workload  # noqa: E402

PARALLEL_JOBS = 4


def _options(engine: str, jobs: int = 1) -> CompileOptions:
    return CompileOptions(ir_engine=engine, jobs=jobs)


def _time_compile(module, config, engine: str, repeat: int) -> tuple[float, float]:
    """(cold_seconds, warm_seconds) for one benchmark under one engine."""
    t0 = time.perf_counter()
    compile_module(module, config, _options(engine))
    cold = time.perf_counter() - t0
    warm = cold
    for _ in range(repeat):
        t0 = time.perf_counter()
        compile_module(module, config, _options(engine))
        warm = min(warm, time.perf_counter() - t0)
    return cold, warm


def _pass_rows(module, config, engine: str) -> list[dict]:
    metrics = PassMetrics()
    compile_module(module, config, _options(engine), metrics=metrics)
    return metrics.to_rows()


def bench_benchmark(name: str, scale: int, repeat: int) -> tuple[dict, list]:
    module = build_workload(name, scale=scale)
    config = MachineConfig()
    problems: list[str] = []

    # Parity gates: engine and job-count invariance of the emitted program.
    ref_out = compile_module(module, config, _options("reference"))
    fast_out = compile_module(module, config, _options("fast"))
    par_out = compile_module(module, config,
                             _options("fast", jobs=PARALLEL_JOBS))
    ref_asm = format_listing(ref_out.program.instrs)
    fast_asm = format_listing(fast_out.program.instrs)
    par_asm = format_listing(par_out.program.instrs)
    if ref_out.profile != fast_out.profile:
        problems.append(f"{name}: fast-engine profile diverges from reference")
    if ref_asm != fast_asm:
        problems.append(f"{name}: assembly differs between IR engines")
    if fast_asm != par_asm:
        problems.append(f"{name}: assembly differs between jobs=1 and "
                        f"jobs={PARALLEL_JOBS}")

    ref_cold, ref_warm = _time_compile(module, config, "reference", repeat)
    fast_cold, fast_warm = _time_compile(module, config, "fast", repeat)

    point = {
        "benchmark": name,
        "functions": len(module.functions),
        "instructions": len(ref_out.program),
        "ref_cold_seconds": ref_cold,
        "ref_warm_seconds": ref_warm,
        "fast_cold_seconds": fast_cold,
        "fast_warm_seconds": fast_warm,
        "speedup_cold": ref_cold / fast_cold,
        "speedup_warm": ref_warm / fast_warm,
        "passes_reference": _pass_rows(module, config, "reference"),
        "passes_fast": _pass_rows(module, config, "fast"),
    }
    return point, problems


def _aggregate_passes(points: list[dict], key: str) -> dict[str, float]:
    """Summed per-pass seconds across all benchmarks for one engine."""
    totals: dict[str, float] = {}
    for point in points:
        for row in point[key]:
            totals[row["pass"]] = totals.get(row["pass"], 0.0) + row["seconds"]
    return totals


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here "
                             "(default: stdout only)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="timed repetitions per engine (best-of)")
    parser.add_argument("--scale", type=int,
                        default=int(os.environ.get("REPRO_SCALE", "1")))
    args = parser.parse_args(argv)

    points, problems = [], []
    for name in ALL_BENCHMARKS:
        point, probs = bench_benchmark(name, args.scale, args.repeat)
        points.append(point)
        problems.extend(probs)

    ref_cold = sum(p["ref_cold_seconds"] for p in points)
    ref_warm = sum(p["ref_warm_seconds"] for p in points)
    fast_cold = sum(p["fast_cold_seconds"] for p in points)
    fast_warm = sum(p["fast_warm_seconds"] for p in points)
    report = {
        "scale": args.scale,
        "repeat": args.repeat,
        "parallel_jobs": PARALLEL_JOBS,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "parity_failures": problems,
        "ref_cold_seconds": ref_cold,
        "ref_warm_seconds": ref_warm,
        "fast_cold_seconds": fast_cold,
        "fast_warm_seconds": fast_warm,
        "speedup_cold": ref_cold / fast_cold,
        "speedup_warm": ref_warm / fast_warm,
        "pass_seconds_reference": _aggregate_passes(points,
                                                    "passes_reference"),
        "pass_seconds_fast": _aggregate_passes(points, "passes_fast"),
        "points": points,
    }
    text = json.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")

    print(f"compile set ({len(points)} benchmarks, scale {args.scale}): "
          f"ref {ref_warm:.3f}s warm / {ref_cold:.3f}s cold, "
          f"fast {fast_warm:.3f}s warm / {fast_cold:.3f}s cold "
          f"-> {report['speedup_warm']:.2f}x warm, "
          f"{report['speedup_cold']:.2f}x cold")
    slowest = max(points, key=lambda p: p["ref_warm_seconds"])
    print(f"slowest     {slowest['benchmark']}: "
          f"ref {slowest['ref_warm_seconds']:.3f}s, "
          f"fast {slowest['fast_warm_seconds']:.3f}s "
          f"({slowest['speedup_warm']:.2f}x)")
    for engine in ("reference", "fast"):
        rows = report[f"pass_seconds_{engine}"]
        top = sorted(rows.items(), key=lambda kv: -kv[1])[:4]
        shown = ", ".join(f"{name} {secs * 1e3:.0f}ms" for name, secs in top)
        print(f"passes ({engine}): {shown}")
    if problems:
        print(f"PARITY FAILURES ({len(problems)}):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("parity: OK (profiles equal, assembly byte-identical across "
          "engines and job counts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
