"""Figure 10: Speedup vs issue rate at 2-cycle load latency."""

from repro.experiments import figure10

from _common import run_figure


def test_figure10(benchmark):
    run_figure(benchmark, figure10)
