"""Figure 13: Memory channels 2 vs 4 against the RC method."""

from repro.experiments import figure13

from _common import run_figure


def test_figure13(benchmark):
    run_figure(benchmark, figure13)
