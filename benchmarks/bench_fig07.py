"""Figure 7: Speedup with unlimited registers at issue rates 1/2/4/8."""

from repro.experiments import figure7

from _common import run_figure


def test_figure7(benchmark):
    run_figure(benchmark, figure7)
