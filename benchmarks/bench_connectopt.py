"""Connect-optimizer benchmark: static/dynamic connect deltas under parity.

For every benchmark x RC model (1-5) x issue width (1/2/4/8) on a 16-core
register file (the paper's most connect-hungry configuration), compiles the
workload with the post-regalloc connect optimizer disabled, applies
:func:`repro.analyze.optimize_connects` to the emitted program, and runs
both versions through :class:`repro.sim.FastSimulator`.

Two hard gates, checked on every point:

* **parity** — final memory and register files are bit-exact between the
  optimized and unoptimized program;
* **effectiveness** — under model 3 (the paper's write-reset/read-update
  machine) the optimizer removes at least one static connect at some
  width in at least half of the benchmarks.

Usage::

    PYTHONPATH=src python benchmarks/bench_connectopt.py [-o BENCH_connectopt.json]

Exits non-zero on any parity mismatch or if the effectiveness floor is
missed.  Connect/cycle deltas are recorded per point in the JSON report.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analyze import optimize_connects  # noqa: E402
from repro.compiler import CompileOptions, compile_module  # noqa: E402
from repro.isa import Category, RClass  # noqa: E402
from repro.rc import RCModel  # noqa: E402
from repro.sim import FastSimulator, paper_machine  # noqa: E402
from repro.workloads import ALL_BENCHMARKS, workload  # noqa: E402

MODELS = (1, 2, 3, 4, 5)
WIDTHS = (1, 2, 4, 8)
CORE = 16

#: Effectiveness gate: fraction of benchmarks where model 3 must remove at
#: least one static connect at some width.
WIN_FLOOR = 0.5


def _config(kind: str, model: int, width: int):
    rc_class = RClass.FP if kind == "fp" else RClass.INT
    return paper_machine(issue_width=width, int_core=CORE, fp_core=CORE,
                         rc_class=rc_class, rc_model=RCModel(model))


def _run(program, config):
    result = FastSimulator(program, config).run()
    state = (result.halted, dict(result.state.memory),
             list(result.state.int_regs), list(result.state.fp_regs))
    return state, result.stats


def bench_point(payload) -> tuple[dict, list[str]]:
    name, model, width, scale = payload
    w = workload(name)
    config = _config(w.kind, model, width)
    out = compile_module(w.module(scale), config,
                         CompileOptions(opt_connects=False))
    opt = optimize_connects(out.program, config)
    report = opt.report
    problems: list[str] = []

    base_state, base_stats = _run(out.program, config)
    opt_state, opt_stats = _run(opt.program, config)
    if base_state != opt_state:
        problems.append(f"{name} model {model} w{width}: optimized program "
                        f"diverges from baseline")

    base_dyn = base_stats.by_category.get(Category.CONNECT, 0)
    opt_dyn = opt_stats.by_category.get(Category.CONNECT, 0)
    point = {
        "benchmark": name,
        "kind": w.kind,
        "model": model,
        "width": width,
        "static_before": report.connects_before,
        "static_after": report.connects_after,
        "removed_dead": report.removed_dead,
        "removed_redundant": report.removed_redundant,
        "hoisted": report.hoisted,
        "dynamic_before": base_dyn,
        "dynamic_after": opt_dyn,
        "cycles_before": base_stats.cycles,
        "cycles_after": opt_stats.cycles,
    }
    return point, problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="write the JSON report here "
                             "(default: stdout only)")
    parser.add_argument("--scale", type=int,
                        default=int(os.environ.get("REPRO_SCALE", "1")))
    parser.add_argument("--jobs", type=int,
                        default=int(os.environ.get("REPRO_JOBS", "0")) or
                        (os.cpu_count() or 1))
    args = parser.parse_args(argv)

    payloads = [(name, model, width, args.scale)
                for name in ALL_BENCHMARKS
                for model in MODELS
                for width in WIDTHS]
    points, problems = [], []
    if args.jobs <= 1:
        results = map(bench_point, payloads)
        for point, probs in results:
            points.append(point)
            problems.extend(probs)
    else:
        with ProcessPoolExecutor(max_workers=args.jobs) as pool:
            for point, probs in pool.map(bench_point, payloads,
                                         chunksize=4):
                points.append(point)
                problems.extend(probs)

    # Effectiveness gate: model 3, any width, per benchmark.
    winners = sorted({p["benchmark"] for p in points
                      if p["model"] == 3
                      and p["static_after"] < p["static_before"]})
    need = int(len(ALL_BENCHMARKS) * WIN_FLOOR)
    if len(winners) < need:
        problems.append(
            f"model 3 removed connects in only {len(winners)}/"
            f"{len(ALL_BENCHMARKS)} benchmarks (floor {need}): {winners}")

    static_removed = sum(p["static_before"] - p["static_after"]
                         for p in points)
    dynamic_removed = sum(p["dynamic_before"] - p["dynamic_after"]
                          for p in points)
    cycles_saved = sum(p["cycles_before"] - p["cycles_after"]
                       for p in points)
    report = {
        "scale": args.scale,
        "core": CORE,
        "models": list(MODELS),
        "widths": list(WIDTHS),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "parity_failures": problems,
        "model3_winners": winners,
        "static_connects_removed": static_removed,
        "dynamic_connects_removed": dynamic_removed,
        "cycles_saved": cycles_saved,
        "points": points,
    }
    text = json.dumps(report, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")

    m3 = [p for p in points if p["model"] == 3]
    m3_static = sum(p["static_before"] - p["static_after"] for p in m3)
    m3_dynamic = sum(p["dynamic_before"] - p["dynamic_after"] for p in m3)
    print(f"connect-opt ({len(points)} points, {len(ALL_BENCHMARKS)} "
          f"benchmarks x {len(MODELS)} models x {len(WIDTHS)} widths, "
          f"core {CORE}, scale {args.scale}):")
    print(f"  static connects removed  {static_removed} total, "
          f"{m3_static} under model 3")
    print(f"  dynamic connects removed {dynamic_removed} total, "
          f"{m3_dynamic} under model 3")
    print(f"  cycles saved             {cycles_saved} total")
    print(f"  model 3 benchmarks won   {len(winners)}/"
          f"{len(ALL_BENCHMARKS)}: {', '.join(winners)}")
    if problems:
        print(f"FAILURES ({len(problems)}):", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("parity: OK (memory and register files bit-exact on every point)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
