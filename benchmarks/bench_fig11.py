"""Figure 11: Speedup vs issue rate at 4-cycle load latency."""

from repro.experiments import figure11

from _common import run_figure


def test_figure11(benchmark):
    run_figure(benchmark, figure11)
