"""Ablation C (ours): the paper's closing claim — deeper parallelization
makes the RC method beneficial at 32 or more registers."""

from repro.experiments import ablation_unroll

from _common import run_figure


def test_ablation_unroll(benchmark):
    run_figure(benchmark, ablation_unroll)
