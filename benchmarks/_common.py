"""Shared infrastructure for the figure-regeneration benches.

Each bench regenerates one table or figure of the paper through the
sweep executor (compile + simulate sweeps, parallel workers, disk-cached
under ``.repro_cache``), prints the result table, and writes it to
``results/<figure>.txt`` so EXPERIMENTS.md can reference the latest run.

Environment knobs:

* ``REPRO_SCALE``  — input-size multiplier for every benchmark (default 1).
* ``REPRO_BENCHMARKS`` — comma-separated benchmark subset (default: all 12).
* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache``).
* ``REPRO_JOBS`` — sweep worker processes (default: CPU count).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments import ExperimentRunner, SweepExecutor
from repro.experiments.report import FigureResult
from repro.workloads import ALL_BENCHMARKS

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_runners: dict[tuple[str, str], ExperimentRunner] = {}


def shared_runner() -> ExperimentRunner:
    """One runner per (scale, cache-dir) environment, re-read per call so a
    test changing ``REPRO_SCALE``/``REPRO_CACHE_DIR`` mid-session is not
    pinned to the first value seen."""
    key = (os.environ.get("REPRO_SCALE", "1"),
           os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    runner = _runners.get(key)
    if runner is None:
        runner = _runners[key] = ExperimentRunner()
    return runner


def selected_benchmarks() -> tuple[str, ...]:
    raw = os.environ.get("REPRO_BENCHMARKS", "")
    if not raw.strip():
        return ALL_BENCHMARKS
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def emit(result: FigureResult) -> FigureResult:
    """Print and persist a regenerated figure."""
    text = result.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    slug = result.fid.lower().replace(" ", "")
    (RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    return result


def run_figure(benchmark_fixture, figure_fn, **executor_kwargs) -> FigureResult:
    """Run one figure regeneration under pytest-benchmark (single round)."""
    executor = SweepExecutor(runner=shared_runner(), **executor_kwargs)
    names = selected_benchmarks()
    result = benchmark_fixture.pedantic(
        lambda: executor.run_figure(figure_fn, benchmarks=names),
        rounds=1, iterations=1,
    )
    return emit(result)
