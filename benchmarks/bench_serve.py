"""Load benchmark for the serve subsystem.

Starts one in-process server (fresh artifact store), then drives a mixed
workload — benchmark simulations, assembly simulations at varying issue
widths, static checks — from 1, 8, and 64 concurrent clients.  Each
concurrency level runs the *same* job set twice:

* **cold** — nothing in the artifact store; jobs compute in the worker
  pool (identical concurrent submissions coalesce onto one computation);
* **warm** — every job is a content-addressed artifact hit.

Per phase it records wall-clock jobs/sec and per-job latency p50/p99.
The acceptance gates from the issue: the 64-client mixed workload must
complete with **zero failed jobs**, and warm throughput must be at least
**2x** cold throughput (the artifact cache earning its keep).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [-o BENCH_serve.json]
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # CI-sized

``--smoke`` shrinks the concurrency levels and job counts for CI; the
zero-failures gate still applies, the 2x gate becomes informational
(tiny workloads under-amortize the HTTP overhead).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.executor import default_jobs  # noqa: E402
from repro.serve import ServeClient, start_in_thread  # noqa: E402

BENCHMARKS = ("cmp", "grep", "compress", "lex")

ASM_TEMPLATE = """\
; bench_serve level={level} client={client} slot={slot}
    li r1, 0
    li r2, 0
loop:
    add r1, r1, r2
    add r2, r2, 1
    blt r2, {bound} -> loop [taken]
    li r9, 2048
    store r1, 0(r9)
    halt
"""


def client_jobs(level: int, client: int, asm_slots: int) -> list[tuple]:
    """The deterministic (kind, payload) mix for one client.

    The level is baked into every payload (the asm header comment, the
    benchmark machine's cycle budget) so each concurrency level starts
    genuinely cold, while identical submissions *within* a level
    coalesce or hit the store — the sharing the service is built for.
    """
    jobs: list[tuple] = [
        ("simulate", {"benchmark": BENCHMARKS[client % len(BENCHMARKS)],
                      "max_cycles": 100_000_000 + level}),
    ]
    for slot in range(asm_slots):
        asm = ASM_TEMPLATE.format(level=level, client=client, slot=slot,
                                  bound=10 + slot)
        jobs.append(("simulate", {"asm": asm,
                                  "machine": {"issue": 1 << (client % 3)}}))
    jobs.append(("check", {"asm": ASM_TEMPLATE.format(
        level=level, client=client, slot="check", bound=10)}))
    return jobs


def run_phase(url: str, level: int, clients: int,
              asm_slots: int) -> dict:
    """One pass of the mixed workload; returns throughput + latency."""
    latencies: list[float] = []
    failures: list[dict] = []

    def one_client(index: int) -> None:
        c = ServeClient(url, client_id=f"bench-{level}-{index}")
        for kind, payload in client_jobs(level, index, asm_slots):
            started = time.perf_counter()
            job = c.wait(c.submit(kind, payload), timeout=600)
            latencies.append(time.perf_counter() - started)
            if job["status"] != "done":
                failures.append(job)

    wall = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        list(pool.map(one_client, range(clients)))
    wall = time.perf_counter() - wall

    latencies.sort()
    return {
        "jobs": len(latencies),
        "failed": len(failures),
        "failures": [j.get("error") for j in failures][:5],
        "wall_seconds": round(wall, 4),
        "jobs_per_sec": round(len(latencies) / wall, 2),
        "p50_ms": round(1e3 * statistics.quantiles(
            latencies, n=100)[49], 3),
        "p99_ms": round(1e3 * statistics.quantiles(
            latencies, n=100)[98], 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_serve.json")
    parser.add_argument("--jobs", type=int, default=None,
                        help="server worker processes "
                             "(default REPRO_JOBS or CPU count)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer clients and jobs; the "
                             "2x warm gate becomes informational")
    args = parser.parse_args(argv)

    levels = (1, 4) if args.smoke else (1, 8, 64)
    asm_slots = 1 if args.smoke else 2
    workers = args.jobs if args.jobs is not None else default_jobs()

    with tempfile.TemporaryDirectory(prefix="bench_serve_") as artifacts:
        handle = start_in_thread(jobs=workers, artifact_dir=artifacts)
        try:
            results = []
            for level in levels:
                cold = run_phase(handle.url, level, level, asm_slots)
                warm = run_phase(handle.url, level, level, asm_slots)
                speedup = (warm["jobs_per_sec"] / cold["jobs_per_sec"]
                           if cold["jobs_per_sec"] else 0.0)
                results.append({"clients": level, "cold": cold,
                                "warm": warm,
                                "warm_speedup": round(speedup, 2)})
                print(f"{level:3d} clients: cold "
                      f"{cold['jobs_per_sec']:8.1f} jobs/s "
                      f"(p50 {cold['p50_ms']:.1f}ms, "
                      f"p99 {cold['p99_ms']:.1f}ms)  warm "
                      f"{warm['jobs_per_sec']:8.1f} jobs/s "
                      f"(p50 {warm['p50_ms']:.1f}ms, "
                      f"p99 {warm['p99_ms']:.1f}ms)  "
                      f"speedup {speedup:.1f}x", file=sys.stderr)
            stats = ServeClient(handle.url).stats()
        finally:
            handle.stop()

    failed = sum(r["cold"]["failed"] + r["warm"]["failed"] for r in results)
    top = results[-1]
    gates = {
        "zero_failed_jobs": failed == 0,
        "warm_speedup_2x": top["warm_speedup"] >= 2.0,
    }
    ok = gates["zero_failed_jobs"] and (args.smoke
                                        or gates["warm_speedup_2x"])
    payload = {
        "smoke": args.smoke,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workers": workers,
        "levels": results,
        "server_stats": {"jobs": stats["jobs"],
                         "artifacts": stats["artifacts"],
                         "runner_cache": stats["runner_cache"]},
        "gates": gates,
        "ok": ok,
    }
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}: "
          f"{'ok' if ok else 'FAIL'} ({failed} failed jobs, "
          f"top-level warm speedup {top['warm_speedup']}x)",
          file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
