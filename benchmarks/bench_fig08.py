"""Figure 8: Speedup vs core register count, with and without RC."""

from repro.experiments import figure8

from _common import run_figure


def test_figure8(benchmark):
    run_figure(benchmark, figure8)
