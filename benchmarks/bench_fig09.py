"""Figure 9: Code size increase due to spill/connect code."""

from repro.experiments import figure9

from _common import run_figure


def test_figure9(benchmark):
    run_figure(benchmark, figure9)
