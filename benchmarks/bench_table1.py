"""Table 1: instruction latencies (configuration check, not a simulation)."""

from repro.experiments import table1

from _common import emit


def test_table1(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    emit(result)
