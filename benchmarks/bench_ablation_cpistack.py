"""Ablation D (ours): CPI-stack cycle attribution with and without RC."""

from repro.experiments import ablation_cpistack

from _common import run_figure


def test_ablation_cpistack(benchmark):
    run_figure(benchmark, ablation_cpistack, collect_cpi=True)
