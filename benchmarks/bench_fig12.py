"""Figure 12: RC implementation scenarios (connect latency, extra stage)."""

from repro.experiments import figure12

from _common import run_figure


def test_figure12(benchmark):
    run_figure(benchmark, figure12)
