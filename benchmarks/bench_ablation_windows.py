"""Ablation B (ours): sensitivity to the reserved connection-window count."""

from repro.experiments import ablation_windows

from _common import run_figure


def test_ablation_windows(benchmark):
    run_figure(benchmark, ablation_windows)
