"""Ablation A (ours): the four automatic reset models of paper section 2.3."""

from repro.experiments import ablation_models

from _common import run_figure


def test_ablation_models(benchmark):
    run_figure(benchmark, ablation_models)
