#!/usr/bin/env python3
"""Generate docs/API.md: a one-line-per-symbol summary of the public API.

Run from the repository root:  python scripts/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
from pathlib import Path

PACKAGES = [
    "repro.isa", "repro.ir", "repro.compiler", "repro.rc", "repro.sim",
    "repro.analyze", "repro.workloads", "repro.experiments", "repro.serve",
]
EXTRA_MODULES = [
    "repro.isa.asmparse", "repro.isa.encoding", "repro.sim.tracing",
    "repro.sim.os_model", "repro.workloads.analysis", "repro.cli",
]


def first_line(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.splitlines()[0] if doc else ""


def describe(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    lines = [f"## `{module_name}`", ""]
    intro = first_line(module)
    if intro:
        lines += [intro, ""]
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    rows = []
    for name in sorted(names):
        obj = getattr(module, name, None)
        if obj is None:
            continue
        if inspect.ismodule(obj):
            continue
        kind = ("class" if inspect.isclass(obj)
                else "function" if callable(obj) else "value")
        rows.append(f"| `{name}` | {kind} | {first_line(obj)} |")
    if rows:
        lines += ["| symbol | kind | summary |", "|---|---|---|"] + rows
    lines.append("")
    return lines


def main() -> None:
    out = [
        "# API reference (generated)",
        "",
        "Regenerate with `python scripts/gen_api_docs.py`.",
        "",
    ]
    for name in PACKAGES + EXTRA_MODULES:
        out += describe(name)
    Path("docs/API.md").write_text("\n".join(out) + "\n")
    print(f"wrote docs/API.md ({len(out)} lines)")


if __name__ == "__main__":
    main()
