"""Reproduction of "Register Connection: A New Approach to Adding Registers
into Instruction Set Architectures" (Kiyohara et al., ISCA 1993).

Subpackages:

* :mod:`repro.isa` — the instruction set (registers, opcodes, latencies,
  instructions, semantics, textual assembly).
* :mod:`repro.ir` — compiler IR, builder DSL, analyses, interpreter.
* :mod:`repro.compiler` — optimizer, register allocator, connect insertion,
  scheduler, lowering.
* :mod:`repro.rc` — Register Connection architectural state: the mapping
  table, PSW, context-switch formats.
* :mod:`repro.sim` — the cycle-level superscalar simulator.
* :mod:`repro.workloads` — the twelve benchmark kernels.
* :mod:`repro.experiments` — regeneration of the paper's tables and figures.
"""

__version__ = "1.0.0"
