"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the available benchmarks.
* ``run <benchmark>`` — compile and simulate one benchmark on a configurable
  machine; prints cycle counts, IPC, code-size accounting, verification.
* ``disasm <benchmark>`` — print the compiled machine code.
* ``asm <file.s>`` — assemble a textual program and simulate it.
* ``trace <benchmark>`` — cycle-by-cycle issue trace; ``--format`` selects
  text, Chrome trace-event JSON (Perfetto), Konata pipeline logs, or JSONL.
* ``profile <benchmark>`` — per-pass compiler metrics plus the run's
  CPI-stack cycle attribution.
* ``figures [name ...]`` — regenerate paper figures (default: all).
* ``sweep [name ...]`` — regenerate figures through the parallel sweep
  executor (``--jobs``/``REPRO_JOBS`` workers) with cache counters and
  progress reporting; ``--cpi`` adds aggregate cycle attribution.
* ``fuzz`` — differential fuzzing harness: random programs at the IR and
  machine levels driven through the engine-parity, checker-soundness and
  compile-determinism oracles, with corpus replay and auto-shrinking.
"""

from __future__ import annotations

import argparse
import copy
import dataclasses
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor

from repro.analyze import Baseline, annotate_listing, check_program
from repro.errors import CycleBudgetError
from repro.compiler import CompileOptions, OptOptions, compile_module
from repro.compiler.regalloc.allocator import AllocationOptions
from repro.experiments import ALL_FIGURES, ExperimentRunner, SweepExecutor
from repro.experiments.executor import default_jobs
from repro.isa import RClass
from repro.observe import (
    PassMetrics,
    chrome_trace_json,
    events_jsonl,
    konata_log,
    observe_run,
)
from repro.isa.asmfmt import format_listing
from repro.isa.asmparse import parse_program
from repro.rc import RCModel
from repro.sim import paper_machine, simulate, unlimited_machine
from repro.sim.tracing import capture_trace
from repro.workloads import ALL_BENCHMARKS, workload


def _engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", default=None,
                        choices=("fast", "reference", "batched"),
                        help="execution engine (default: REPRO_ENGINE env "
                             "var, else the specializing fast engine; all "
                             "are bit-exact; batched gangs sweep points)")


def _machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--issue", type=int, default=4,
                        choices=(1, 2, 4, 8), help="issue width")
    parser.add_argument("--int-core", type=int, default=16,
                        help="core integer registers")
    parser.add_argument("--fp-core", type=int, default=32,
                        help="core FP registers")
    parser.add_argument("--load", type=int, default=2, choices=(2, 4),
                        help="load latency")
    parser.add_argument("--rc", action="store_true",
                        help="enable the RC extension (256 total registers)")
    parser.add_argument("--connect", type=int, default=0, choices=(0, 1),
                        help="connect instruction latency")
    parser.add_argument("--extra-stage", action="store_true",
                        help="extra decode stage for the mapping table")
    parser.add_argument("--model", type=int, default=3, choices=(1, 2, 3, 4, 5),
                        help="automatic reset model (paper section 2.3; "
                             "5 = our read-reset extension)")
    parser.add_argument("--channels", type=int, default=None,
                        help="memory channels (default per issue width)")
    parser.add_argument("--unlimited", action="store_true",
                        help="use the unlimited-register machine")
    parser.add_argument("--max-cycles", type=int, default=None,
                        help="abort the simulation past this cycle budget "
                             "(exit with a budget-exceeded error)")


def _compile_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--opt", default="ilp", choices=("scalar", "ilp"))
    parser.add_argument("--unroll", type=int, default=4)
    parser.add_argument("--windows", type=int, default=4)
    parser.add_argument("--no-schedule", action="store_true")
    parser.add_argument("--scale", type=int, default=1,
                        help="benchmark input scale")


def _build_machine(args, kind: str):
    if args.unlimited:
        config = unlimited_machine(issue_width=args.issue,
                                   load_latency=args.load,
                                   mem_channels=args.channels)
    else:
        rc_class = None
        if args.rc:
            rc_class = RClass.INT if kind == "int" else RClass.FP
        config = paper_machine(
            issue_width=args.issue,
            load_latency=args.load,
            int_core=args.int_core,
            fp_core=args.fp_core,
            rc_class=rc_class,
            connect_latency=args.connect,
            extra_decode_stage=args.extra_stage,
            rc_model=RCModel(args.model),
            mem_channels=args.channels,
        )
    budget = getattr(args, "max_cycles", None)
    if budget is not None:
        config = dataclasses.replace(config, max_cycles=budget)
    return config


def _build_options(args) -> CompileOptions:
    return CompileOptions(
        opt=OptOptions(level=args.opt, unroll_factor=args.unroll),
        alloc=AllocationOptions(num_windows=args.windows),
        schedule=not args.no_schedule,
    )


def _compile_benchmark(args):
    w = workload(args.benchmark)
    module = w.module(args.scale)
    config = _build_machine(args, w.kind)
    out = compile_module(module, config, _build_options(args))
    return w, module, config, out


def cmd_list(_args) -> int:
    for name in ALL_BENCHMARKS:
        w = workload(name)
        print(f"{name:10s} {w.kind}")
    return 0


def cmd_run(args) -> int:
    w, module, config, out = _compile_benchmark(args)
    try:
        result = simulate(out.program, config, engine=args.engine)
    except CycleBudgetError as exc:
        print(f"budget-exceeded: {exc}", file=sys.stderr)
        return 3
    addr = module.global_addr("checksum")
    got = result.load_word(addr)
    want = out.interp.load_word(addr)
    print(f"benchmark     {w.name} ({w.kind}), scale {args.scale}")
    print(f"machine       {config.describe()}")
    print(f"cycles        {result.cycles}")
    print(f"instructions  {result.stats.instructions}"
          f"  (IPC {result.stats.ipc:.2f})")
    print(f"branches      {result.stats.branches}"
          f"  ({result.stats.mispredicts} mispredicted)")
    print(f"static code   {out.stats.total_instructions} instrs"
          f"  (+{100 * out.stats.code_size_increase:.1f}% overhead: "
          f"{out.stats.spill_instructions} spill, "
          f"{out.stats.connect_instructions} connect, "
          f"{out.stats.callsave_instructions} call-save)")
    print(f"allocation    {out.stats.spilled_vregs} spilled, "
          f"{out.stats.extended_vregs} extended")
    status = "OK" if got == want else "MISMATCH"
    print(f"verification  checksum {got!r} vs interpreter {want!r}: {status}")
    return 0 if got == want else 1


def cmd_disasm(args) -> int:
    _w, _module, config, out = _compile_benchmark(args)
    if args.annotate:
        report = check_program(out.program, config)
        listing = annotate_listing(out.program, config, report)
        if out.connect_opt is not None:
            footer = "\n".join(f"; {ln}" for ln in out.connect_opt.lines())
            listing = f"{listing}\n{footer}"
    else:
        listing = format_listing(out.program.instrs)
    if args.head:
        listing = "\n".join(listing.splitlines()[: args.head])
    print(listing)
    return 0


def _check_job(args, name: str, model: int, matrix: bool):
    """Compile one benchmark under one reset model and statically check it.

    Runs in a worker process for ``check all`` / ``--models`` fan-outs, so
    everything returned (and *args* itself) must pickle.  Baseline
    bookkeeping happens in the parent, which is why the report itself is
    shipped back.
    """
    ns = copy.copy(args)
    ns.model = model
    if matrix:
        # Matrix mode: the reset model only matters with RC, so apply the
        # extension to the benchmark's register class.
        ns.rc = True
    w = workload(name)
    module = w.module(ns.scale)
    config = _build_machine(ns, w.kind)
    out = compile_module(module, config, _build_options(ns))
    report = check_program(out.program, config)
    return f"{name} model {model}", config.describe(), report


def _load_baseline(args) -> Baseline | None:
    if not args.baseline:
        if args.update_baseline:
            print("--update-baseline requires --baseline FILE",
                  file=sys.stderr)
            raise SystemExit(2)
        return None
    try:
        return Baseline.load(args.baseline)
    except FileNotFoundError:
        if args.update_baseline:
            return Baseline()  # first capture starts empty
        raise


def cmd_check(args) -> int:
    started = time.perf_counter()
    models = ([int(m) for m in args.models.split(",")]
              if args.models else None)
    baseline = _load_baseline(args)
    runs: list[dict] = []
    status = 0
    workers = 1

    if args.target.endswith(".s"):
        with open(args.target) as fh:
            program = parse_program(fh.read())
        outputs = []
        for model in models or [args.model]:
            args.model = model
            config = _build_machine(args, "int")
            outputs.append((f"{args.target} model {model}",
                            config.describe(),
                            check_program(program, config)))
    else:
        names = (list(ALL_BENCHMARKS) if args.target == "all"
                 else [args.target])
        for name in names:
            if name not in ALL_BENCHMARKS:
                print(f"unknown benchmark {name!r}", file=sys.stderr)
                return 2
        tasks = [(name, model) for name in names
                 for model in (models or [args.model])]
        jobs = args.jobs if args.jobs is not None else default_jobs()
        workers = max(1, min(jobs, len(tasks)))
        if workers > 1:
            # Same fan-out discipline as the sweep executor: ship the jobs
            # to a pool, print results in input order.
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_check_job, args, name, model,
                                       bool(models))
                           for name, model in tasks]
                outputs = [f.result() for f in futures]
        else:
            outputs = [_check_job(args, name, model, bool(models))
                       for name, model in tasks]

    for label, machine, report in outputs:
        if baseline is not None:
            if args.update_baseline:
                baseline.record(label, report)
            else:
                baseline.apply(label, report)
        runs.append({"target": label, "machine": machine,
                     **report.to_dict()})
        status |= report.exit_code(args.strict)
        if not args.json:
            state = "clean" if report.clean(args.strict) else "FAIL"
            print(f"== {label} [{machine}]: {state}")
            for f in report.findings:
                print(f"   {f.format()}")

    if baseline is not None and args.update_baseline:
        baseline.save(args.baseline)
        print(f"updated baseline {args.baseline} "
              f"({len(baseline.targets)} target(s) with findings)",
              file=sys.stderr)

    elapsed = time.perf_counter() - started
    payload = {"strict": args.strict, "clean": status == 0, "runs": runs}
    if args.json:
        text = json.dumps(payload, indent=2)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {len(runs)} check report(s) to {args.output}",
                  file=sys.stderr)
        else:
            print(text)
    else:
        total = sum(len(r["findings"]) for r in runs)
        print(f"{len(runs)} run(s), {total} finding(s) in {elapsed:.2f}s "
              f"({workers} worker{'s' if workers != 1 else ''}): "
              f"{'clean' if status == 0 else 'FAIL'}")
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(json.dumps(payload, indent=2) + "\n")
    return status


def cmd_asm(args) -> int:
    with open(args.file) as fh:
        program = parse_program(fh.read())
    config = _build_machine(args, "int")
    try:
        result = simulate(program, config, engine=args.engine)
    except CycleBudgetError as exc:
        print(f"budget-exceeded: {exc}", file=sys.stderr)
        return 3
    print(f"machine  {config.describe()}")
    print(f"cycles   {result.cycles}")
    print(f"instrs   {result.stats.instructions}"
          f"  (IPC {result.stats.ipc:.2f})")
    if args.dump:
        for addr in args.dump:
            value = result.load_word(addr, default=None)
            shown = repr(value) if value is not None else "(never written)"
            print(f"mem[{addr}] = {shown}")
    return 0


def cmd_trace(args) -> int:
    _w, _module, config, out = _compile_benchmark(args)
    if args.format == "text":
        trace = capture_trace(out.program, config, limit=args.limit)
        print(trace.summary())
        print()
        print(trace.render(start=args.skip, count=args.count))
        return 0
    run = observe_run(out.program, config, limit=args.limit)
    if args.format == "chrome":
        text = chrome_trace_json(run)
    elif args.format == "konata":
        text = konata_log(run)
    else:
        text = events_jsonl(run)
    if not text.endswith("\n"):
        text += "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.format} trace to {args.output} "
              f"({run.result.stats.cycles} cycles, "
              f"{len(run.observer.events)} events)", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def cmd_profile(args) -> int:
    w = workload(args.benchmark)
    module = w.module(args.scale)
    config = _build_machine(args, w.kind)
    metrics = PassMetrics()
    out = compile_module(module, config, _build_options(args),
                         metrics=metrics)
    if args.compile_only:
        if args.json:
            print(json.dumps({
                "benchmark": w.name,
                "machine": config.describe(),
                "passes": metrics.to_rows(),
            }, indent=2))
            return 0
        print(f"benchmark  {w.name} ({w.kind}), scale {args.scale}")
        print(f"machine    {config.describe()}")
        print()
        print("compiler passes:")
        print(metrics.render())
        return 0
    run = observe_run(out.program, config, keep_events=args.forwards)
    if args.json:
        print(json.dumps({
            "benchmark": w.name,
            "machine": config.describe(),
            "passes": metrics.to_rows(),
            "cpi": run.stack.to_dict(),
        }, indent=2))
        return 0
    print(f"benchmark  {w.name} ({w.kind}), scale {args.scale}")
    print(f"machine    {config.describe()}")
    print()
    print("compiler passes:")
    print(metrics.render())
    print()
    print(run.result.stats.summary())
    print()
    print(run.stack.render())
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import serve

    jobs = args.jobs if args.jobs is not None else default_jobs()
    try:
        asyncio.run(serve(host=args.host, port=args.port, jobs=jobs,
                          artifact_dir=args.artifact_dir,
                          max_cycles_cap=args.max_cycles_cap,
                          rate=args.rate, quiet=args.quiet))
    except KeyboardInterrupt:
        pass
    return 0


def _fuzz_serve(args) -> int:
    from repro.fuzz.serve_replay import run_serve_replay

    def progress(done, total):
        print(f"  [{done}/{total}] seeds replayed", file=sys.stderr)

    report = run_serve_replay(args.serve, budget=args.budget,
                              seed=args.seed, progress=progress)
    text = json.dumps(report.to_dict(), indent=2) + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote serve replay report to {args.output}",
              file=sys.stderr)
    else:
        sys.stdout.write(text)
    print(f"fuzz --serve: {report.seeds} seeds, {report.jobs} remote jobs "
          f"({report.artifact_hits} artifact hits), "
          f"{len(report.divergences)} divergence(s) in "
          f"{report.elapsed_sec:.1f}s: "
          f"{'clean' if report.clean else 'FAIL'}", file=sys.stderr)
    for div in report.divergences:
        print(f"  [{div.oracle}] {div.detail}", file=sys.stderr)
    return 0 if report.clean else 1


def cmd_fuzz(args) -> int:
    from pathlib import Path

    from repro.fuzz import FuzzOptions, run_fuzz

    if args.serve:
        return _fuzz_serve(args)
    opts = FuzzOptions(
        seed=args.seed,
        budget=args.budget,
        level=args.level,
        jobs=args.jobs if args.jobs is not None else 1,
        corpus=Path(args.corpus) if args.corpus else None,
        replay_corpus=not args.no_replay,
        shrink=not args.no_shrink,
    )
    report = run_fuzz(opts)
    text = report.to_json()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote fuzz report to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    counters = report.counters
    print(
        f"fuzz: {counters.get('iterations', 0)} iterations "
        f"({counters.get('asm_programs', 0)} asm, "
        f"{counters.get('ir_modules', 0)} ir, "
        f"{counters.get('mutants', 0)} mutants, "
        f"{counters.get('corpus_cases', 0)} corpus), "
        f"{len(report.divergences)} divergence(s) in "
        f"{report.elapsed_sec:.1f}s: "
        f"{'clean' if report.clean else 'FAIL'}", file=sys.stderr)
    for div in report.divergences:
        print(f"  [{div.oracle}] {div.detail}", file=sys.stderr)
    return 0 if report.clean else 1


def cmd_figures(args) -> int:
    runner = ExperimentRunner(scale=args.scale, engine=args.engine)
    names = args.names or list(ALL_FIGURES)
    benchmarks = (tuple(args.benchmarks.split(","))
                  if args.benchmarks else ALL_BENCHMARKS)
    for name in names:
        fig_fn = ALL_FIGURES.get(name)
        if fig_fn is None:
            print(f"unknown figure {name!r}; available: "
                  f"{', '.join(ALL_FIGURES)}", file=sys.stderr)
            return 2
        fig = fig_fn(runner, benchmarks=benchmarks)
        if args.format == "csv":
            print(fig.to_csv())
        elif args.format == "json":
            print(fig.to_json())
        else:
            print(fig.render())
            print()
    return 0


def cmd_sweep(args) -> int:
    runner = ExperimentRunner(scale=args.scale, engine=args.engine)
    names = args.names or list(ALL_FIGURES)
    for name in names:
        if name not in ALL_FIGURES:
            print(f"unknown figure {name!r}; available: "
                  f"{', '.join(ALL_FIGURES)}", file=sys.stderr)
            return 2
    benchmarks = (tuple(args.benchmarks.split(","))
                  if args.benchmarks else ALL_BENCHMARKS)

    def progress(done, total, result):
        if not args.quiet:
            state = ("hit" if result.from_cache
                     else "error" if result.error else
                     f"{result.elapsed:.2f}s")
            print(f"  [{done}/{total}] {result.job.benchmark} "
                  f"({state})", file=sys.stderr)

    executor = SweepExecutor(runner=runner, jobs=args.jobs,
                             progress=progress, collect_cpi=args.cpi)
    for name in names:
        try:
            fig = executor.run_figure(ALL_FIGURES[name],
                                      benchmarks=benchmarks)
        except RuntimeError as exc:
            print(f"sweep {name} failed: {exc}", file=sys.stderr)
            return 1
        if args.format == "csv":
            print(fig.to_csv())
        elif args.format == "json":
            print(fig.to_json())
        else:
            print(fig.render())
            print()
    print(executor.stats.summary(), file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Register Connection (ISCA 1993) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks").set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="compile and simulate a benchmark")
    p.add_argument("benchmark", choices=ALL_BENCHMARKS)
    _engine_arg(p)
    _machine_args(p)
    _compile_args(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("disasm", help="print compiled machine code")
    p.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p.add_argument("--head", type=int, default=0,
                   help="print only the first N instructions")
    p.add_argument("--annotate", action="store_true",
                   help="interleave static-check findings and abstract "
                        "map state at block entries")
    _machine_args(p)
    _compile_args(p)
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser(
        "check",
        help="statically check compiled or assembled machine code")
    p.add_argument("target",
                   help="benchmark name, 'all', or a .s assembly file")
    p.add_argument("--models", default="",
                   help="comma-separated reset models to sweep (e.g. "
                        "1,2,3,4); enables RC for each benchmark's class")
    p.add_argument("--strict", action="store_true",
                   help="fail on warnings and schedule diagnostics "
                        "(LAT001), not just errors")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help="suppress exactly the findings recorded in FILE "
                        "(JSON baseline), so --strict gates on new ones")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite --baseline FILE from this run's findings "
                        "instead of applying it")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON reports")
    p.add_argument("-o", "--output", default=None,
                   help="also write the JSON report to this file")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for 'all'/--models fan-out "
                        "(default REPRO_JOBS or CPU count)")
    _machine_args(p)
    _compile_args(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("asm", help="assemble and simulate a .s file")
    p.add_argument("file")
    p.add_argument("--dump", type=int, action="append",
                   help="print this memory word after the run")
    _engine_arg(p)
    _machine_args(p)
    p.set_defaults(fn=cmd_asm)

    p = sub.add_parser("trace", help="show a cycle-by-cycle issue trace")
    p.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p.add_argument("--skip", type=int, default=0,
                   help="skip this many issue events first")
    p.add_argument("--count", type=int, default=40,
                   help="number of issue events to display")
    p.add_argument("--limit", type=int, default=200_000)
    p.add_argument("--format", default="text",
                   choices=("text", "chrome", "konata", "jsonl"),
                   help="text listing, Chrome trace-event JSON (Perfetto), "
                        "Konata pipeline log, or JSONL events")
    p.add_argument("-o", "--output", default=None,
                   help="write the exported trace to this file")
    _machine_args(p)
    _compile_args(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="per-pass compiler metrics and CPI-stack cycle attribution")
    p.add_argument("benchmark", choices=ALL_BENCHMARKS)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of tables")
    p.add_argument("--compile", dest="compile_only", action="store_true",
                   help="print only the per-pass compile-time breakdown "
                        "(skips simulation)")
    p.add_argument("--forwards", action="store_true",
                   help="keep the full event stream to count zero-cycle "
                        "connect forwards (slower on large runs)")
    _machine_args(p)
    _compile_args(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("names", nargs="*", metavar="figure")
    _engine_arg(p)
    p.add_argument("--scale", type=int, default=None)
    p.add_argument("--benchmarks", default="",
                   help="comma-separated benchmark subset")
    p.add_argument("--format", default="text",
                   choices=("text", "csv", "json"))
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser(
        "sweep",
        help="regenerate figures through the parallel sweep executor")
    p.add_argument("names", nargs="*", metavar="figure")
    _engine_arg(p)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default REPRO_JOBS or CPU count)")
    p.add_argument("--scale", type=int, default=None)
    p.add_argument("--benchmarks", default="",
                   help="comma-separated benchmark subset")
    p.add_argument("--format", default="text",
                   choices=("text", "csv", "json"))
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-job progress lines")
    p.add_argument("--cpi", action="store_true",
                   help="collect CPI stacks per job and append the "
                        "aggregate cycle attribution to figure footers")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random programs vs the parity, "
             "checker-soundness and determinism oracles")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed for the generators (default 0)")
    p.add_argument("--budget", type=int, default=200,
                   help="number of fresh generated programs (default 200)")
    p.add_argument("--level", default="all", choices=("ir", "asm", "all"),
                   help="which generator level(s) to run")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default 1)")
    p.add_argument("--corpus", default="",
                   help="corpus directory to replay "
                        "(default: the repo's corpus/)")
    p.add_argument("--no-replay", action="store_true",
                   help="skip replaying the committed corpus")
    p.add_argument("--no-shrink", action="store_true",
                   help="report raw reproducers without minimizing them")
    p.add_argument("--serve", default="",
                   help="replay parity oracles as remote jobs against a "
                        "running 'repro serve' at this URL")
    p.add_argument("-o", "--output", default=None,
                   help="write the JSON report to this file")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "serve",
        help="run the compile-and-simulate HTTP/JSON job service")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321)
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default REPRO_JOBS or CPU count)")
    p.add_argument("--artifact-dir", default=".repro_artifacts",
                   help="content-addressed artifact store root")
    p.add_argument("--max-cycles-cap", type=int, default=None,
                   help="server-side cap on per-job cycle budgets")
    p.add_argument("--rate", type=float, default=0.0,
                   help="per-client submissions/sec token-bucket rate "
                        "(0 disables limiting)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress the startup banner")
    p.set_defaults(fn=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
