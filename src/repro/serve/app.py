"""The asyncio HTTP/JSON front end of the serve subsystem.

Dependency-free by construction: requests are framed by hand on top of
``asyncio.start_server`` streams (request line, headers, Content-Length
body), one request per connection (``Connection: close``), responses are
JSON documents — except the job event stream, which is newline-delimited
JSON terminated by connection close.

Routes:

* ``POST /v1/jobs`` — submit ``{"kind": ..., "payload": {...}}``;
  responds with the job document (which may already be terminal on an
  artifact hit).  400 on a malformed payload, 429 when rate limited,
  503 while draining.
* ``GET /v1/jobs/<id>`` — job status.  ``?wait=<seconds>`` long-polls
  until the job is terminal; ``?events=1`` streams the job's progress
  events as NDJSON and finishes with the job document itself.
* ``GET /v1/artifacts/<key>`` — fetch a stored result by fingerprint.
* ``GET /v1/stats`` — scheduler, artifact-store, and worker-cache
  counters.
* ``GET /healthz`` — liveness probe.

``SIGTERM``/``SIGINT`` trigger a graceful drain: the listener closes,
in-flight jobs finish, then the pool shuts down.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from urllib.parse import parse_qs, unquote, urlsplit

from repro.serve.scheduler import RateLimited, Scheduler, ServerDraining
from repro.serve.wire import BadRequest

#: Request body size cap; the largest legitimate payloads are fuzz
#: assembly programs, which are well under this.
MAX_BODY = 4 * 1024 * 1024
MAX_HEADERS = 100
#: Cap on ``?wait=`` long-polls so an abandoned connection cannot pin
#: the handler forever.
MAX_WAIT = 600.0


class ServeApp:
    """One server instance: scheduler + asyncio listener."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: int = 2, artifact_dir: str = ".repro_artifacts",
                 max_cycles_cap: int | None = None,
                 rate: float = 0.0, burst: float | None = None) -> None:
        self.host = host
        self.port = port
        self.scheduler = Scheduler(jobs=jobs, artifact_dir=artifact_dir,
                                   max_cycles_cap=max_cycles_cap,
                                   rate=rate, burst=burst)
        self._stop = None
        self._server = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def run(self, ready: threading.Event | None = None) -> None:
        """Serve until stopped, then drain gracefully."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # not the main thread (test/bench embedding)
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            await self.scheduler.drain()
            # Let in-flight handlers (long-polls on now-terminal jobs,
            # event streams) flush their responses before the loop dies.
            if self._connections:
                await asyncio.wait(self._connections, timeout=15)

    def stop(self) -> None:
        """Request shutdown; safe to call from any thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    # -- HTTP framing ----------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(writer, *request)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                await self._respond(writer, 500,
                                    {"error": "internal",
                                     "message": str(exc)})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADERS):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY:
            return method, target, headers, None  # dispatched as 413
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: dict) -> None:
        body = (json.dumps(payload) + "\n").encode()
        writer.write(
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode())
        writer.write(body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, writer, method: str, target: str,
                        headers: dict, body: bytes | None) -> None:
        if body is None:
            await self._respond(writer, 413, {"error": "payload-too-large"})
            return
        url = urlsplit(target)
        parts = [unquote(p) for p in url.path.strip("/").split("/")]
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}

        if method == "POST" and parts == ["v1", "jobs"]:
            await self._post_job(writer, headers, body)
        elif method == "GET" and len(parts) == 3 \
                and parts[:2] == ["v1", "jobs"]:
            await self._get_job(writer, parts[2], query)
        elif method == "GET" and len(parts) == 3 \
                and parts[:2] == ["v1", "artifacts"]:
            artifact = self.scheduler.store.get(parts[2])
            if artifact is None:
                await self._respond(writer, 404,
                                    {"error": "unknown-artifact"})
            else:
                await self._respond(writer, 200, artifact)
        elif method == "GET" and parts == ["v1", "stats"]:
            await self._respond(writer, 200, self.scheduler.stats())
        elif method == "GET" and parts == ["healthz"]:
            await self._respond(writer, 200, {"ok": True})
        else:
            await self._respond(writer, 404, {"error": "unknown-route"})

    async def _post_job(self, writer, headers: dict, body: bytes) -> None:
        try:
            doc = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            await self._respond(writer, 400, {"error": "bad-json",
                                              "message": str(exc)})
            return
        if not isinstance(doc, dict):
            await self._respond(writer, 400,
                                {"error": "bad-json",
                                 "message": "body must be an object"})
            return
        client = headers.get("x-repro-client", "-")
        try:
            job = self.scheduler.submit(doc.get("kind", ""),
                                        doc.get("payload", {}),
                                        client=client)
        except BadRequest as exc:
            await self._respond(writer, 400, {"error": "bad-request",
                                              "message": str(exc)})
            return
        except RateLimited as exc:
            await self._respond(writer, 429, {"error": "rate-limited",
                                              "message": str(exc)})
            return
        except ServerDraining as exc:
            await self._respond(writer, 503, {"error": "draining",
                                              "message": str(exc)})
            return
        await self._respond(writer, 202 if not job.terminal else 200,
                            job.to_dict())

    async def _get_job(self, writer, job_id: str, query: dict) -> None:
        job = self.scheduler.get(job_id)
        if job is None:
            await self._respond(writer, 404, {"error": "unknown-job"})
            return
        if query.get("events"):
            await self._stream_events(writer, job)
            return
        wait = query.get("wait")
        if wait and not job.terminal:
            try:
                timeout = min(float(wait), MAX_WAIT)
            except ValueError:
                timeout = MAX_WAIT
            await self.scheduler.wait(job, timeout=timeout)
        await self._respond(writer, 200, job.to_dict())

    async def _stream_events(self, writer, job) -> None:
        """NDJSON event stream: replay, then follow until terminal.

        The body is EOF-delimited (``Connection: close``); the final
        line is the job document itself, so a consumer that reads to
        EOF always ends holding the result.
        """
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(job.events[sent]) + "\n"
                writer.write(line.encode())
                sent += 1
            await writer.drain()
            if job.terminal:
                break
            if sent < len(job.events):
                continue  # events arrived while draining the socket
            await job.changed.wait()
        writer.write((json.dumps({"type": "job", **job.to_dict()})
                      + "\n").encode())
        await writer.drain()


_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable"}


class ServerHandle:
    """A server running on a background thread (tests and benches)."""

    def __init__(self, app: ServeApp, thread: threading.Thread) -> None:
        self.app = app
        self.thread = thread

    @property
    def url(self) -> str:
        return f"http://{self.app.host}:{self.app.port}"

    def stop(self) -> None:
        self.app.stop()
        self.thread.join(timeout=30)


def start_in_thread(**kwargs) -> ServerHandle:
    """Run a :class:`ServeApp` on a daemon thread; returns once the
    listener is bound (so ``handle.url`` is immediately usable)."""
    app = ServeApp(**kwargs)
    ready = threading.Event()
    thread = threading.Thread(target=lambda: asyncio.run(app.run(ready)),
                              name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("serve app failed to start")
    return ServerHandle(app, thread)


async def serve(host: str, port: int, jobs: int, artifact_dir: str,
                max_cycles_cap: int | None = None, rate: float = 0.0,
                quiet: bool = False) -> None:
    """CLI entry: run one server in the foreground until signalled."""
    app = ServeApp(host=host, port=port, jobs=jobs,
                   artifact_dir=artifact_dir,
                   max_cycles_cap=max_cycles_cap, rate=rate)
    ready = threading.Event()
    task = asyncio.ensure_future(app.run(ready))
    while not ready.is_set():
        await asyncio.sleep(0.01)
    if not quiet:
        import sys

        print(f"repro serve listening on http://{app.host}:{app.port} "
              f"({app.scheduler.workers} workers, artifacts in "
              f"{artifact_dir})", file=sys.stderr)
    await task
