"""Token-bucket rate limiting for job submissions.

One bucket per client key (the value of the ``X-Repro-Client`` header, or
the peer address when absent).  Buckets refill continuously at *rate*
tokens per second up to *burst*; a submission spends one token or is
rejected with HTTP 429.  The clock is injectable so tests exercise
refill behaviour without sleeping.
"""

from __future__ import annotations

import threading
import time


class TokenBucket:
    """A single continuously-refilling token bucket."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = now

    def take(self, now: float, amount: float = 1.0) -> bool:
        """Spend *amount* tokens if available; refills first."""
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens < amount:
            return False
        self.tokens -= amount
        return True


class RateLimiter:
    """Per-client token buckets; thread-safe.

    ``rate <= 0`` disables limiting entirely (the default for local
    benchmarking, where 64 concurrent clients are the whole point).
    """

    def __init__(self, rate: float = 0.0, burst: float | None = None,
                 clock=time.monotonic) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else max(rate * 2, 1.0)
        self.clock = clock
        self.rejected = 0
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def allow(self, client: str) -> bool:
        if self.rate <= 0:
            return True
        now = self.clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, now)
            ok = bucket.take(now)
            if not ok:
                self.rejected += 1
            return ok
