"""Async job scheduler for the serve subsystem.

The scheduler owns the worker pool and everything around it:

* **admission** — payload validation, per-client token-bucket rate
  limiting, and the server-side cycle-budget cap (a submission may ask
  for any ``max_cycles`` up to the cap; the effective budget is clamped
  before the job is queued, and a run that exceeds it comes back as a
  structured ``budget-exceeded`` error without disturbing other jobs);
* **the artifact fast path** — a submission whose
  :func:`~repro.serve.wire.job_fingerprint` is already in the store
  completes instantly, without touching the pool;
* **in-flight coalescing** — concurrent identical submissions attach to
  the one running computation and all complete when it does;
* **progress fan-in** — a drain thread moves worker events (lifecycle
  markers, sampled simulator events, sweep progress) from the manager
  queue onto the event loop, appending them to per-job event logs that
  the HTTP layer streams as NDJSON;
* **graceful drain** — stop admitting, let in-flight jobs finish,
  shut the pool down.

Everything here runs on the event-loop thread except the drain thread,
which only ever hands events over via ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.serve.ratelimit import RateLimiter
from repro.serve.store import ArtifactStore
from repro.serve.wire import job_fingerprint, validate_payload
from repro.serve.workers import execute_job, init_worker

#: Finished jobs kept for status queries before eviction.
JOB_HISTORY_CAP = 4096
#: Per-job event log cap (the worker-side EventForwarder limit is lower;
#: this is a second line of defence for lifecycle/sweep streams).
EVENT_LOG_CAP = 16_384

_QUEUE_SENTINEL = None


class RateLimited(ReproError):
    """The client's token bucket is empty (HTTP 429)."""


class ServerDraining(ReproError):
    """The server is shutting down and admits no new jobs (HTTP 503)."""


@dataclass
class Job:
    """One submitted job and its full lifecycle."""

    id: str
    kind: str
    payload: dict
    key: str
    client: str
    status: str = "queued"          # queued | running | done | error
    result: dict | None = None
    error: dict | None = None
    from_cache: bool = False
    coalesced_with: str | None = None
    created: float = 0.0
    finished: float | None = None
    meta: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    followers: list = field(default_factory=list)
    changed: asyncio.Event = field(default_factory=asyncio.Event)
    #: Set when the worker's terminal lifecycle event has drained through
    #: the progress queue — finalization waits for it so event streams
    #: always carry the complete log before the job turns terminal.
    worker_done: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "error")

    def to_dict(self, with_result: bool = True) -> dict:
        out = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "artifact": self.key,
            "from_cache": self.from_cache,
            "created": self.created,
            "finished": self.finished,
            "events": len(self.events),
        }
        if self.coalesced_with:
            out["coalesced_with"] = self.coalesced_with
        if self.meta:
            out["meta"] = {k: v for k, v in self.meta.items()
                           if k != "counters"}
        if self.error is not None:
            out["error"] = self.error
        if with_result and self.result is not None:
            out["result"] = self.result
        return out

    def _touch(self) -> None:
        self.changed.set()
        self.changed = asyncio.Event()


class Scheduler:
    """Owns the worker pool, artifact store, and job registry."""

    def __init__(self, jobs: int, artifact_dir: str,
                 max_cycles_cap: int | None = None,
                 rate: float = 0.0, burst: float | None = None) -> None:
        self.workers = max(1, jobs)
        self.artifact_dir = artifact_dir
        self.max_cycles_cap = max_cycles_cap
        self.store = ArtifactStore(artifact_dir)
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.jobs: dict[str, Job] = {}
        self.counters = {"submitted": 0, "completed": 0, "failed": 0,
                         "coalesced": 0, "artifact_hits": 0}
        self.runner_counters: dict[str, int] = {}
        self.draining = False
        self.started_at = time.time()
        self._inflight: dict[str, Job] = {}
        self._tasks: set[asyncio.Task] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._manager = None
        self._queue = None
        self._drain_thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Bring up the manager queue, worker pool, and drain thread.

        Must be called from within the event loop that will own the
        scheduler (the HTTP server's loop).
        """
        self._loop = asyncio.get_running_loop()
        self._manager = multiprocessing.Manager()
        self._queue = self._manager.Queue()
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, initializer=init_worker,
            initargs=(self._queue, self.artifact_dir))
        self._drain_thread = threading.Thread(
            target=self._drain_events, name="serve-event-drain", daemon=True)
        self._drain_thread.start()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight jobs, tear everything down."""
        self.draining = True
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._queue is not None:
            try:
                self._queue.put(_QUEUE_SENTINEL)
            except Exception:  # noqa: BLE001 - manager already gone
                pass
        if self._drain_thread is not None:
            self._drain_thread.join(timeout=5)
        if self._manager is not None:
            self._manager.shutdown()

    # -- event fan-in ----------------------------------------------------------

    def _drain_events(self) -> None:
        """Drain-thread body: manager queue -> event loop."""
        while True:
            try:
                event = self._queue.get()
            except (EOFError, OSError):
                return
            if event is _QUEUE_SENTINEL:
                return
            loop = self._loop
            if loop is None or loop.is_closed():
                return
            try:
                loop.call_soon_threadsafe(self._record_event, event)
            except RuntimeError:
                return  # loop shut down between the check and the call

    def _record_event(self, event: dict) -> None:
        job = self.jobs.get(event.get("job", ""))
        if job is None:
            return
        if event.get("stream") == "lifecycle":
            if event.get("type") == "started" and job.status == "queued":
                job.status = "running"
            elif event.get("type") == "finished":
                job.worker_done.set()
        if len(job.events) < EVENT_LOG_CAP:
            job.events.append(event)
        job._touch()
        for follower in job.followers:
            if len(follower.events) < EVENT_LOG_CAP:
                follower.events.append(event)
            follower._touch()

    # -- admission -------------------------------------------------------------

    def submit(self, kind: str, payload: dict, client: str = "-") -> Job:
        """Admit one job; returns it (possibly already terminal).

        Raises :class:`~repro.serve.wire.BadRequest`,
        :class:`RateLimited`, or :class:`ServerDraining`.
        """
        if self.draining:
            raise ServerDraining("server is draining; no new jobs")
        payload = validate_payload(kind, payload)
        if not self.limiter.allow(client):
            raise RateLimited(f"client {client!r} exceeded the "
                              "submission rate limit")
        if self.max_cycles_cap is not None:
            requested = payload.get("max_cycles")
            payload["max_cycles"] = (min(requested, self.max_cycles_cap)
                                     if requested else self.max_cycles_cap)
        key = job_fingerprint(kind, payload)
        job = Job(id=uuid.uuid4().hex[:16], kind=kind, payload=payload,
                  key=key, client=client, created=time.time())
        self.counters["submitted"] += 1
        self._register(job)

        artifact = self.store.get(key)
        if artifact is not None:
            job.status = "done"
            job.result = artifact
            job.from_cache = True
            job.finished = time.time()
            self.counters["completed"] += 1
            self.counters["artifact_hits"] += 1
            return job

        primary = self._inflight.get(key)
        if primary is not None and not primary.terminal:
            job.coalesced_with = primary.id
            primary.followers.append(job)
            self.counters["coalesced"] += 1
            return job

        self._inflight[key] = job
        future = self._pool.submit(execute_job, job.id, kind, payload)
        task = asyncio.ensure_future(self._await_job(job, future))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return job

    def _register(self, job: Job) -> None:
        self.jobs[job.id] = job
        while len(self.jobs) > JOB_HISTORY_CAP:
            for jid, old in list(self.jobs.items()):
                if old.terminal:
                    del self.jobs[jid]
                    break
            else:
                break  # everything in flight; let the registry grow

    async def _await_job(self, job: Job, future) -> None:
        try:
            status, body, meta = await asyncio.wrap_future(future)
            # The pool future can complete before the worker's queued
            # events have drained; wait for the terminal lifecycle
            # marker so the event log is complete at finalization.
            try:
                await asyncio.wait_for(job.worker_done.wait(), timeout=5)
            except asyncio.TimeoutError:
                pass  # queue lost during shutdown; finalize anyway
        except Exception as exc:  # noqa: BLE001 - pool broke underneath us
            status, body, meta = "error", {"type": "worker-lost",
                                           "message": str(exc)}, {}
        self._finalize(job, status, body, meta)

    def _finalize(self, job: Job, status: str, body: dict,
                  meta: dict) -> None:
        for name, value in meta.get("counters", {}).items():
            self.runner_counters[name] = \
                self.runner_counters.get(name, 0) + value
        if status == "ok":
            job.status = "done"
            job.result = body
            self.store.put(job.key, body)
            self.counters["completed"] += 1
        else:
            job.status = "error"
            job.error = body
            self.counters["failed"] += 1
        job.meta = meta
        job.finished = time.time()
        self._inflight.pop(job.key, None)
        job._touch()
        for follower in job.followers:
            follower.status = job.status
            follower.result = job.result
            follower.error = job.error
            follower.meta = meta
            follower.finished = job.finished
            if status == "ok":
                self.counters["completed"] += 1
            else:
                self.counters["failed"] += 1
            follower._touch()
        job.followers = []

    # -- queries ---------------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    async def wait(self, job: Job, timeout: float | None = None) -> bool:
        """Block until *job* is terminal; False on timeout."""
        deadline = (time.monotonic() + timeout) if timeout else None
        while not job.terminal:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
            try:
                await asyncio.wait_for(job.changed.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    def stats(self) -> dict:
        by_status: dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "uptime": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "draining": self.draining,
            "max_cycles_cap": self.max_cycles_cap,
            "jobs": dict(self.counters),
            "jobs_by_status": by_status,
            "inflight": len(self._inflight),
            "artifacts": self.store.counters(),
            "runner_cache": dict(self.runner_counters),
            "rate_limited": self.limiter.rejected,
        }
