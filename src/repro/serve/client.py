"""Blocking HTTP client for the serve subsystem.

Built on :mod:`http.client` (stdlib), one connection per request to
match the server's ``Connection: close`` framing.  Used by the test
suite, ``benchmarks/bench_serve.py``, and the ``repro fuzz --serve``
replay path; it is also the reference for anyone scripting the service
from outside this repository.
"""

from __future__ import annotations

import http.client
import json
import time
from urllib.parse import urlsplit

from repro.errors import ReproError


class ServeError(ReproError):
    """The server refused a request (4xx/5xx) or broke protocol."""

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        super().__init__(f"HTTP {status}: {payload.get('error', '?')}"
                         f" - {payload.get('message', '')}")


class JobFailed(ReproError):
    """A job completed with a structured error."""

    def __init__(self, job: dict) -> None:
        self.job = job
        error = job.get("error") or {}
        super().__init__(f"job {job.get('id')} failed: "
                         f"[{error.get('type', '?')}] "
                         f"{error.get('message', '')}")

    @property
    def error_type(self) -> str:
        return (self.job.get("error") or {}).get("type", "?")


class ServeClient:
    """A client bound to one server base URL."""

    def __init__(self, base_url: str, client_id: str = "-",
                 timeout: float = 300.0) -> None:
        split = urlsplit(base_url if "//" in base_url
                         else f"http://{base_url}")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.client_id = client_id
        self.timeout = timeout

    # -- low-level -------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None else None
            conn.request(method, path, body=payload,
                         headers={"Content-Type": "application/json",
                                  "X-Repro-Client": self.client_id})
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        try:
            doc = json.loads(data.decode() or "{}")
        except json.JSONDecodeError as exc:
            raise ServeError(response.status,
                             {"error": "bad-response",
                              "message": str(exc)}) from None
        if response.status >= 400:
            raise ServeError(response.status, doc)
        return doc

    # -- API -------------------------------------------------------------------

    def submit(self, kind: str, payload: dict) -> dict:
        """Submit one job; returns the job document (maybe terminal)."""
        return self._request("POST", "/v1/jobs",
                             {"kind": kind, "payload": payload})

    def get(self, job_id: str, wait: float | None = None) -> dict:
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait}"
        return self._request("GET", path)

    def wait(self, job: dict, timeout: float | None = None) -> dict:
        """Poll (long-poll, really) until *job* is terminal."""
        timeout = timeout if timeout is not None else self.timeout
        deadline = time.monotonic() + timeout
        while job["status"] not in ("done", "error"):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job['id']} still "
                                   f"{job['status']} after {timeout}s")
            job = self.get(job["id"], wait=min(remaining, 30.0))
        return job

    def run(self, kind: str, payload: dict,
            timeout: float | None = None) -> dict:
        """Submit + wait; returns the result dict or raises JobFailed."""
        job = self.wait(self.submit(kind, payload), timeout=timeout)
        if job["status"] != "done":
            raise JobFailed(job)
        return job["result"]

    def events(self, job_id: str):
        """Yield the job's NDJSON progress events; the last yielded dict
        has ``type == "job"`` and is the terminal job document."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}?events=1",
                         headers={"X-Repro-Client": self.client_id})
            response = conn.getresponse()
            if response.status >= 400:
                raise ServeError(response.status,
                                 json.loads(response.read().decode()
                                            or "{}"))
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def artifact(self, key: str) -> dict:
        return self._request("GET", f"/v1/artifacts/{key}")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (OSError, ReproError):
            return False
