"""Sharded compile-and-simulate service with warm worker caches.

``repro serve`` exposes the whole toolkit — compile, static check,
simulate, figure sweeps, pipeline traces — as an HTTP/JSON job service
built entirely on the standard library:

* :mod:`repro.serve.app` — asyncio HTTP/1.1 front end with NDJSON
  progress streaming;
* :mod:`repro.serve.scheduler` — admission control (validation, rate
  limiting, cycle-budget caps), the artifact fast path, in-flight
  coalescing, and graceful drain;
* :mod:`repro.serve.workers` — the process pool, whose workers keep
  warm compiled-program caches between jobs;
* :mod:`repro.serve.store` — content-addressed on-disk artifacts keyed
  by the experiment cache's config + code fingerprints;
* :mod:`repro.serve.wire` — payload validation and fingerprinting;
* :mod:`repro.serve.client` — the blocking client used by tests,
  ``benchmarks/bench_serve.py``, and ``repro fuzz --serve``.

See ``docs/SERVE.md`` for the protocol walk-through.
"""

from repro.serve.app import ServeApp, ServerHandle, serve, start_in_thread
from repro.serve.client import JobFailed, ServeClient, ServeError
from repro.serve.ratelimit import RateLimiter, TokenBucket
from repro.serve.scheduler import Job, RateLimited, Scheduler, ServerDraining
from repro.serve.store import ArtifactStore
from repro.serve.wire import (
    JOB_KINDS,
    BadRequest,
    job_fingerprint,
    machine_from_payload,
    machine_to_payload,
    validate_payload,
)

__all__ = [
    "ArtifactStore",
    "BadRequest",
    "JOB_KINDS",
    "Job",
    "JobFailed",
    "RateLimited",
    "RateLimiter",
    "Scheduler",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServerDraining",
    "ServerHandle",
    "TokenBucket",
    "job_fingerprint",
    "machine_from_payload",
    "machine_to_payload",
    "serve",
    "start_in_thread",
    "validate_payload",
]
