"""Content-addressed on-disk artifact store for the serve subsystem.

Artifacts are finished job results, stored as JSON under
``root/<key[:2]>/<key>.json`` where *key* is the
:func:`repro.serve.wire.job_fingerprint` of the submission.  Because the
key embeds the code fingerprint and every cycle-affecting configuration
field, a lookup can never return a stale result — a source edit simply
makes old artifacts unreachable.

Writes use the same tmp-file + :func:`os.replace` discipline as the
experiment cache, so any number of workers (or whole server processes
sharing one artifact directory) may store the same key concurrently and
readers always observe either nothing or one complete JSON document.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
from pathlib import Path

log = logging.getLogger(__name__)


class ArtifactStore:
    """Sharded JSON artifact store with atomic writes.

    Thread-safe: the HTTP handler, scheduler, and drain thread all touch
    the store; counters are guarded by a lock and the filesystem
    operations are atomic on their own.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._lock = threading.Lock()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored artifact for *key*, or None.

        Unreadable files (torn by a crash mid-rename on exotic
        filesystems, or hand-edited) are evicted so they miss exactly
        once, mirroring the experiment cache's corrupt-pickle policy.
        """
        path = self._path(key)
        try:
            with path.open() as fh:
                artifact = json.load(fh)
            if not isinstance(artifact, dict):
                raise ValueError("artifact root must be an object")
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, ValueError):
            log.warning("evicting unreadable artifact %s", path)
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return artifact

    def put(self, key: str, artifact: dict) -> None:
        """Store *artifact* under *key*; last concurrent writer wins.

        Best-effort like the experiment cache: a full disk degrades the
        service to compute-always, it does not fail jobs.
        """
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(artifact, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        with self._lock:
            self.puts += 1

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "puts": self.puts}
