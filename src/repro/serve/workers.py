"""Worker-process side of the serve subsystem.

Each pool worker keeps module-level *warm state* that survives across
jobs for the life of the process:

* an :class:`~repro.experiments.runner.ExperimentRunner` per (scale,
  engine) — which carries the in-memory compiled-program cache, the
  record memo, and the on-disk record cache under
  ``<artifact_dir>/records`` shared by all workers;
* a small FIFO cache of parsed assembly programs, so repeated
  submissions of the same ``.s`` text (the fuzz replay path) skip the
  parser.

Workers never raise across the pool boundary: :func:`execute_job`
classifies every failure into a structured ``(type, message)`` error so
the scheduler can report it without unpickling foreign exceptions.
Progress flows the other way through a ``multiprocessing`` manager
queue — lifecycle markers from this module, simulator events via
:class:`repro.observe.EventForwarder`.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback

from repro.errors import (
    CompileError,
    CycleBudgetError,
    ReproError,
    SimulationError,
)
from repro.serve.wire import effective_config, options_from_payload

#: Parsed-assembly cache size (FIFO eviction).
PARSE_CACHE_CAP = 128

_QUEUE = None
_RECORDS_DIR: str | None = None
_RUNNERS: dict = {}
_PARSED: dict = {}


def init_worker(queue, artifact_dir: str) -> None:
    """Pool initializer: wire up the progress queue and cache root."""
    global _QUEUE, _RECORDS_DIR
    _QUEUE = queue
    _RECORDS_DIR = os.path.join(artifact_dir, "records")


def _put(event: dict) -> None:
    if _QUEUE is not None:
        try:
            _QUEUE.put(event)
        except Exception:  # noqa: BLE001 - queue gone during shutdown
            pass


def _runner(scale: int, engine: str | None):
    """The warm per-process experiment runner for (scale, engine)."""
    from repro.experiments import ExperimentRunner

    key = (scale, engine)
    runner = _RUNNERS.get(key)
    if runner is None:
        runner = _RUNNERS[key] = ExperimentRunner(
            scale=scale, cache_dir=_RECORDS_DIR, engine=engine)
    return runner


def _parse_asm(text: str):
    from repro.isa.asmparse import parse_program

    program = _PARSED.get(text)
    if program is None:
        program = parse_program(text)
        if len(_PARSED) >= PARSE_CACHE_CAP:
            _PARSED.pop(next(iter(_PARSED)))
        _PARSED[text] = program
    return program


def _config_for(payload: dict):
    """The job's machine config with its cycle budget applied."""
    return effective_config(payload)


def _compile_benchmark(runner, payload: dict, config):
    opts = options_from_payload(payload.get("options"))
    return runner._compiled_program(
        payload["benchmark"], config, opts["opt_level"],
        opts["unroll_factor"], opts["num_windows"])


# -- job kinds -----------------------------------------------------------------

def _job_compile(job_id: str, payload: dict) -> dict:
    config = _config_for(payload)
    if "asm" in payload:
        program = _parse_asm(payload["asm"])
        return {"machine": config.describe(),
                "instructions": len(program.instrs)}
    runner = _runner(payload["scale"], payload.get("engine"))
    _module, out = _compile_benchmark(runner, payload, config)
    stats = out.stats
    return {
        "machine": config.describe(),
        "benchmark": payload["benchmark"],
        "static": {
            "total": stats.total_instructions,
            "program": stats.program_instructions,
            "spill": stats.spill_instructions,
            "connect": stats.connect_instructions,
            "callsave": stats.callsave_instructions,
            "spilled_vregs": stats.spilled_vregs,
            "extended_vregs": stats.extended_vregs,
            "code_size_increase": stats.code_size_increase,
        },
    }


def _job_check(job_id: str, payload: dict) -> dict:
    from repro.analyze import check_program

    config = _config_for(payload)
    if "asm" in payload:
        program = _parse_asm(payload["asm"])
    else:
        runner = _runner(payload["scale"], payload.get("engine"))
        _module, out = _compile_benchmark(runner, payload, config)
        program = out.program
    report = check_program(program, config)
    strict = bool(payload.get("strict"))
    return {"machine": config.describe(),
            "clean": report.clean(strict),
            "report": report.to_dict()}


def _observing_simulate(job_id: str, program, config):
    """Reference-engine run with the observe event bus forwarding
    sampled events to the parent through the progress queue."""
    from repro.observe import EventForwarder, Observer
    from repro.sim import Simulator

    observer = Observer(keep_events=False)
    forwarder = EventForwarder(
        lambda ev: _put({"job": job_id, "stream": "observe", **ev}))
    observer.subscribe(forwarder)
    result = Simulator(program, config, observer=observer).run()
    _put({"job": job_id, "stream": "observe", "type": "summary",
          "forwarded": forwarder.forwarded, "dropped": forwarder.dropped})
    return result


def _job_simulate(job_id: str, payload: dict) -> dict:
    from repro.sim import simulate

    config = _config_for(payload)
    observe = bool(payload.get("observe"))
    if "asm" in payload:
        program = _parse_asm(payload["asm"])
        if observe:
            result = _observing_simulate(job_id, program, config)
        else:
            result = simulate(program, config,
                              engine=payload.get("engine"))
        out = {"machine": config.describe(),
               "cycles": result.cycles,
               "instructions": result.stats.instructions,
               "ipc": result.stats.ipc}
        if payload.get("dump"):
            out["memory"] = {
                str(addr): result.load_word(int(addr), default=None)
                for addr in payload["dump"]}
        return out
    runner = _runner(payload["scale"], payload.get("engine"))
    if observe:
        _module, cout = _compile_benchmark(runner, payload, config)
        result = _observing_simulate(job_id, cout.program, config)
        return {"machine": config.describe(),
                "benchmark": payload["benchmark"],
                "cycles": result.cycles,
                "instructions": result.stats.instructions,
                "ipc": result.stats.ipc}
    opts = options_from_payload(payload.get("options"))
    record = runner.run(payload["benchmark"], config, **opts)
    return {"machine": config.describe(),
            "record": dataclasses.asdict(record)}


def _job_sweep(job_id: str, payload: dict) -> dict:
    from repro.experiments import ALL_FIGURES, SweepExecutor

    runner = _runner(payload["scale"], payload.get("engine"))
    benchmarks = tuple(payload["benchmarks"])
    fig_fn = ALL_FIGURES[payload["figure"]]

    # Prewarm the figure's experiments through the sweep executor (serial
    # inside this worker process; under engine=batched each compile group
    # simulates as one lockstep gang), emitting one progress event per
    # experiment — gang slots included, each reports as it lands.
    def report(done: int, total: int, result) -> None:
        _put({"job": job_id, "stream": "sweep", "type": "progress",
              "benchmark": result.job.benchmark, "done": done,
              "total": total})

    executor = SweepExecutor(runner=runner, jobs=1, progress=report)
    fig = executor.run_figure(fig_fn, benchmarks=benchmarks)
    return {"figure": fig.fid, "title": fig.title,
            "rows": fig.to_rows(), "notes": list(fig.notes),
            "experiments": executor.stats.jobs,
            "sweep": executor.stats.summary()}


def _job_trace(job_id: str, payload: dict) -> dict:
    config = _config_for(payload)
    runner = _runner(payload["scale"], payload.get("engine"))
    _module, out = _compile_benchmark(runner, payload, config)
    fmt = payload["format"]
    limit = int(payload.get("limit") or 200_000)
    if fmt == "text":
        from repro.sim.tracing import capture_trace

        trace = capture_trace(out.program, config, limit=limit)
        content = trace.summary() + "\n\n" + trace.render()
        cycles = len({cycle for cycle, _ in trace.events})
    else:
        from repro.observe import (
            chrome_trace_json,
            events_jsonl,
            konata_log,
            observe_run,
        )

        run = observe_run(out.program, config, limit=limit)
        if fmt == "chrome":
            content = chrome_trace_json(run)
        elif fmt == "konata":
            content = konata_log(run)
        else:
            content = events_jsonl(run)
        cycles = run.result.cycles
    return {"machine": config.describe(), "format": fmt,
            "cycles": cycles, "content": content}


_KINDS = {
    "compile": _job_compile,
    "check": _job_check,
    "simulate": _job_simulate,
    "sweep": _job_sweep,
    "trace": _job_trace,
}


def _classify(exc: BaseException) -> str:
    if isinstance(exc, CycleBudgetError):
        return "budget-exceeded"
    if isinstance(exc, CompileError):
        return "compile-error"
    if isinstance(exc, SimulationError):
        return "simulation-error"
    if isinstance(exc, ReproError):
        return "bad-request"
    return "internal-error"


def execute_job(job_id: str, kind: str, payload: dict) -> tuple:
    """Run one validated job; never raises.

    Returns ``(status, body, meta)`` where *status* is ``"ok"`` or
    ``"error"``, *body* is the JSON result or a structured
    ``{"type", "message"}`` error, and *meta* carries the worker pid,
    elapsed seconds, and the runner cache-counter delta for the parent's
    stats aggregation (workers are forked copies, so counters must be
    shipped home explicitly — same discipline as the sweep executor).
    """
    started = time.perf_counter()
    _put({"job": job_id, "stream": "lifecycle", "type": "started",
          "pid": os.getpid(), "kind": kind})
    before = {key: runner.counters() for key, runner in _RUNNERS.items()}
    try:
        body = _KINDS[kind](job_id, payload)
        status = "ok"
    except BaseException as exc:  # noqa: BLE001 - classified, not raised
        status = "error"
        body = {"type": _classify(exc), "message": str(exc)}
        if body["type"] == "internal-error":
            body["trace"] = traceback.format_exc(limit=8)
    delta: dict[str, int] = {}
    for key, runner in _RUNNERS.items():
        prior = before.get(key, {})
        for name, value in runner.counters().items():
            delta[name] = delta.get(name, 0) + value - prior.get(name, 0)
    meta = {"pid": os.getpid(),
            "elapsed": time.perf_counter() - started,
            "counters": delta}
    _put({"job": job_id, "stream": "lifecycle", "type": "finished",
          "status": status, "elapsed": round(meta["elapsed"], 6)})
    return status, body, meta
