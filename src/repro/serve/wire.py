"""Wire format shared by the serve scheduler, workers, and clients.

Job payloads are plain JSON dicts.  The pieces that need care are the
machine configuration — which must round-trip with full cycle-accounting
fidelity so a remote job computes exactly what a local run would — and
payload validation, which must happen in the parent *before* a job is
queued so malformed submissions are rejected with a 400 instead of
poisoning a worker.

:func:`job_fingerprint` derives the content-addressed artifact key for a
job from the same compile/simulate fingerprint fields the experiment
cache uses (:func:`repro.experiments.runner._compile_key` /
``_sim_key``) plus the code fingerprint, so identical submissions from
different clients — or from the sweep executor — land on one shared
artifact shard and invalidate automatically on any source change.
"""

from __future__ import annotations

import dataclasses
import hashlib

from repro.errors import ReproError
from repro.experiments.runner import _compile_key, _sim_key, code_fingerprint
from repro.isa.latency import LatencyModel
from repro.isa.registers import RClass, RegFileSpec
from repro.rc import RCModel
from repro.sim import MachineConfig
from repro.workloads import ALL_BENCHMARKS

#: Job kinds the service accepts.
JOB_KINDS = ("compile", "check", "simulate", "sweep", "trace")


class BadRequest(ReproError):
    """A submission the service refuses before queueing (HTTP 400)."""


# -- machine configuration <-> JSON -------------------------------------------

def _spec_to_payload(spec: RegFileSpec) -> dict:
    return {"core": spec.core, "total": spec.total}


def machine_to_payload(config: MachineConfig) -> dict:
    """Serialize a machine configuration with full fidelity.

    Every cycle-affecting field is carried — including the complete
    latency table, so configs the CLI cannot express (fuzz perturbations,
    programmatic sweeps) still round-trip exactly.
    """
    return {
        "issue": config.issue_width,
        "channels": config.mem_channels,
        "latency": {f.name: getattr(config.latency, f.name)
                    for f in dataclasses.fields(LatencyModel)},
        "int": _spec_to_payload(config.int_spec),
        "fp": _spec_to_payload(config.fp_spec),
        "model": config.rc_model.value,
        "extra_stage": config.extra_decode_stage,
        "max_cycles": config.max_cycles,
    }


def machine_from_payload(data: dict | None) -> MachineConfig:
    """Rebuild a machine configuration from its payload form.

    Raises :class:`BadRequest` on anything inconsistent; defaults follow
    :class:`MachineConfig` so ``{}`` (or an absent ``machine`` key) means
    the default paper machine.
    """
    data = dict(data or {})
    try:
        lat_fields = data.pop("latency", {})
        unknown = set(lat_fields) - {f.name
                                     for f in dataclasses.fields(LatencyModel)}
        if unknown:
            raise ValueError(f"unknown latency field(s) {sorted(unknown)}")
        latency = LatencyModel(**{k: int(v) for k, v in lat_fields.items()})
        int_spec = _spec_from_payload(data.pop("int", None), RClass.INT)
        fp_spec = _spec_from_payload(data.pop("fp", None), RClass.FP)
        kwargs = {}
        if "issue" in data:
            kwargs["issue_width"] = int(data.pop("issue"))
        if "channels" in data:
            kwargs["mem_channels"] = int(data.pop("channels"))
        if "model" in data:
            kwargs["rc_model"] = RCModel(int(data.pop("model")))
        if "extra_stage" in data:
            kwargs["extra_decode_stage"] = bool(data.pop("extra_stage"))
        if "max_cycles" in data:
            kwargs["max_cycles"] = int(data.pop("max_cycles"))
        if data:
            raise ValueError(f"unknown machine field(s) {sorted(data)}")
        config = MachineConfig(latency=latency, int_spec=int_spec,
                               fp_spec=fp_spec, **kwargs)
    except BadRequest:
        raise
    except Exception as exc:  # noqa: BLE001 - every malformed shape -> 400
        raise BadRequest(f"bad machine config: {exc}") from None
    return config


def _spec_from_payload(data: dict | None, cls: RClass) -> RegFileSpec:
    if data is None:
        data = {"core": 64, "total": 64}
    core = int(data.get("core", 64))
    total = int(data.get("total", core))
    if not 1 <= core <= total:
        raise BadRequest(f"bad {cls.value} register spec: core={core}, "
                         f"total={total}")
    return RegFileSpec(cls, core, total)


# -- payload validation --------------------------------------------------------

#: Compile-option payload fields and their validators.
_OPT_LEVELS = ("scalar", "ilp")
_TRACE_FORMATS = ("text", "chrome", "konata", "jsonl")


def options_from_payload(data: dict | None) -> dict:
    """Validate the compile-options payload; returns normalized kwargs
    (``opt_level``, ``unroll_factor``, ``num_windows``)."""
    data = dict(data or {})
    opt = data.pop("opt", "ilp")
    if opt not in _OPT_LEVELS:
        raise BadRequest(f"bad opt level {opt!r}; expected {_OPT_LEVELS}")
    try:
        unroll = int(data.pop("unroll", 4))
        windows = int(data.pop("windows", 4))
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad compile options: {exc}") from None
    if data:
        raise BadRequest(f"unknown option field(s) {sorted(data)}")
    if not 1 <= unroll <= 64:
        raise BadRequest(f"unroll factor {unroll} out of range [1, 64]")
    if not 1 <= windows <= 64:
        raise BadRequest(f"window count {windows} out of range [1, 64]")
    return {"opt_level": opt, "unroll_factor": unroll, "num_windows": windows}


def validate_payload(kind: str, payload: dict) -> dict:
    """Check one job submission; returns a normalized copy.

    Everything shape-related is rejected here, in the parent, so workers
    only ever see well-formed jobs; program *content* errors (assembly that
    does not parse, programs that fault) are still discovered in the
    worker and reported as structured job failures.
    """
    if kind not in JOB_KINDS:
        raise BadRequest(f"unknown job kind {kind!r}; expected one "
                         f"of {JOB_KINDS}")
    if not isinstance(payload, dict):
        raise BadRequest("payload must be a JSON object")
    out = dict(payload)
    machine_from_payload(out.get("machine"))  # shape check only
    options_from_payload(out.get("options"))

    has_benchmark = "benchmark" in out
    has_asm = "asm" in out
    if kind == "sweep":
        from repro.experiments import ALL_FIGURES

        figure = out.get("figure")
        if figure not in ALL_FIGURES:
            raise BadRequest(f"unknown figure {figure!r}; expected one of "
                             f"{sorted(ALL_FIGURES)}")
        benchmarks = out.get("benchmarks", list(ALL_BENCHMARKS))
        if (not isinstance(benchmarks, list) or not benchmarks
                or not all(isinstance(b, str) for b in benchmarks)):
            raise BadRequest("benchmarks must be a non-empty list of names")
        bad = [b for b in benchmarks if b not in ALL_BENCHMARKS]
        if bad:
            raise BadRequest(f"unknown benchmark(s) {bad}")
        out["benchmarks"] = benchmarks
    elif kind == "trace":
        if not has_benchmark:
            raise BadRequest("trace jobs need a benchmark")
        fmt = out.get("format", "jsonl")
        if fmt not in _TRACE_FORMATS:
            raise BadRequest(f"bad trace format {fmt!r}; expected "
                             f"{_TRACE_FORMATS}")
        out["format"] = fmt
    else:
        if has_benchmark == has_asm:
            raise BadRequest(f"{kind} jobs need exactly one of "
                             f"'benchmark' or 'asm'")
        if has_asm and not isinstance(out["asm"], str):
            raise BadRequest("asm must be a string of assembly text")
    if has_benchmark:
        if out["benchmark"] not in ALL_BENCHMARKS:
            raise BadRequest(f"unknown benchmark {out['benchmark']!r}")
    engine = out.get("engine")
    if engine not in (None, "fast", "reference", "batched"):
        raise BadRequest(f"bad engine {engine!r}; "
                         f"expected fast|reference|batched")
    scale = out.get("scale", 1)
    if not isinstance(scale, int) or not 1 <= scale <= 64:
        raise BadRequest(f"scale {scale!r} out of range [1, 64]")
    out["scale"] = scale
    if "max_cycles" in out and (not isinstance(out["max_cycles"], int)
                                or out["max_cycles"] < 1):
        raise BadRequest(f"bad max_cycles {out['max_cycles']!r}")
    return out


# -- content-addressed job keys ------------------------------------------------

def effective_config(payload: dict) -> MachineConfig:
    """The machine config a worker will actually simulate with: the
    payload's machine, with the job-level ``max_cycles`` budget applied
    (a budget can only lower the machine's own limit)."""
    config = machine_from_payload(payload.get("machine"))
    budget = payload.get("max_cycles")
    if budget is not None and budget < config.max_cycles:
        config = dataclasses.replace(config, max_cycles=budget)
    return config


def job_fingerprint(kind: str, payload: dict) -> str:
    """The artifact-store key for one validated job submission.

    Built from the experiment cache's compile-affecting and
    simulate-affecting config fingerprints plus the code fingerprint, so:

    * identical submissions — from any client, any time — share one key;
    * any cycle-affecting source change invalidates every stored artifact;
    * sweep points differing only in presentation never collide.
    """
    config = effective_config(payload)
    opts = options_from_payload(payload.get("options"))
    parts = [
        "v1", kind,
        _compile_key(config), _sim_key(config),
        f"o{opts['opt_level']}.u{opts['unroll_factor']}"
        f".w{opts['num_windows']}",
        f"s{payload.get('scale', 1)}",
        f"e{payload.get('engine') or 'fast'}",
        f"f{code_fingerprint()}",
    ]
    if "benchmark" in payload:
        parts.append(f"b:{payload['benchmark']}")
    if "asm" in payload:
        digest = hashlib.sha256(payload["asm"].encode()).hexdigest()[:24]
        parts.append(f"a:{digest}")
    if kind == "sweep":
        parts.append(f"fig:{payload['figure']}")
        parts.append("bm:" + ",".join(payload["benchmarks"]))
        parts.append(f"cpi{int(bool(payload.get('cpi')))}")
    if kind == "trace":
        parts.append(f"fmt:{payload['format']}.lim{payload.get('limit', 0)}")
    if kind == "check":
        parts.append(f"strict{int(bool(payload.get('strict')))}")
    if payload.get("observe"):
        parts.append("obs")
    return hashlib.sha256(".".join(parts).encode()).hexdigest()[:32]
