"""Textual assembly formatting (disassembly) for instructions and programs."""

from __future__ import annotations

from typing import Iterable

from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, RClass


def _operand(o) -> str:
    if isinstance(o, Imm):
        return str(o.value)
    return repr(o)


def _connect_pairs(instr: Instr) -> str:
    imm = instr.imm
    rclass: RClass = imm[0]
    prefix = "r" if rclass is RClass.INT else "f"
    pairs = []
    rest = imm[1:]
    for i in range(0, len(rest), 2):
        pairs.append(f"{prefix}i{rest[i]}, {prefix}p{rest[i + 1]}")
    return ", ".join(pairs)


def format_instr(instr: Instr) -> str:
    """Render one instruction as assembly text."""
    op = instr.op
    if op is Opcode.NOP:
        return "nop"
    if instr.is_connect:
        return f"{op.value} {_connect_pairs(instr)}"
    if op in (Opcode.LI, Opcode.LIF):
        return f"{op.value} {_operand(instr.dest)}, {instr.imm}"
    if op in (Opcode.LOAD, Opcode.FLOAD):
        return (
            f"{op.value} {_operand(instr.dest)}, "
            f"{instr.imm}({_operand(instr.srcs[0])})"
        )
    if op in (Opcode.STORE, Opcode.FSTORE):
        return (
            f"{op.value} {_operand(instr.srcs[0])}, "
            f"{instr.imm}({_operand(instr.srcs[1])})"
        )
    if op is Opcode.CALL:
        args = ", ".join(_operand(s) for s in instr.srcs)
        ret = f"{_operand(instr.dest)} = " if instr.dest is not None else ""
        return f"{ret}call {instr.label}({args})"
    if op is Opcode.TRAP:
        return f"trap {instr.imm}"
    if op is Opcode.MFMAP:
        rclass, index, which = instr.imm
        return f"mfmap {_operand(instr.dest)}, {rclass.value}[{index}].{which}"
    parts = []
    if instr.dest is not None:
        parts.append(_operand(instr.dest))
    parts.extend(_operand(s) for s in instr.srcs)
    text = f"{op.value} " + ", ".join(parts) if parts else op.value
    if instr.label is not None:
        text += f" -> {instr.label}"
        if instr.is_cond_branch and instr.hint_taken is not None:
            text += " [taken]" if instr.hint_taken else " [not-taken]"
    return text.strip()


def format_listing(instrs: Iterable[Instr], start: int = 0) -> str:
    """Render an instruction sequence with addresses, one per line."""
    lines = []
    for i, instr in enumerate(instrs, start=start):
        lines.append(f"{i:6d}: {format_instr(instr)}")
    return "\n".join(lines)
