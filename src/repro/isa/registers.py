"""Register classes, physical/virtual registers, and register file layout.

The base architecture is a MIPS-R2000-like machine with two register
classes: integer and floating point.  Floating-point values are all double
precision and occupy an *even-aligned pair* of FP registers, exactly as the
paper states ("Double precision floating point variables use two floating
point registers").  An FP operand always names the even register of its pair.

Reserved registers follow the paper's convention ("four integer registers are
reserved as spill registers and one integer register is reserved for Stack
Pointer"):

* integer: ``r0`` is the stack pointer, ``r1..r4`` are compiler spill
  temporaries (``r1`` doubles as the integer return-value register),
* floating point: ``f0..f3`` (two pairs) are spill temporaries, the pair
  ``f0:f1`` doubles as the FP return-value register.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError


class RClass(enum.Enum):
    """A register class of the architecture."""

    INT = "int"
    FP = "fp"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RClass.{self.name}"


@dataclass(frozen=True, slots=True)
class PhysReg:
    """A physical register: a class and an index into that class's file."""

    cls: RClass
    num: int

    def __repr__(self) -> str:
        prefix = "r" if self.cls is RClass.INT else "f"
        return f"{prefix}{self.num}"


@dataclass(frozen=True, slots=True)
class VReg:
    """A compiler virtual register (pre register-allocation)."""

    cls: RClass
    vid: int
    name: str = ""

    def __repr__(self) -> str:
        prefix = "vi" if self.cls is RClass.INT else "vf"
        if self.name:
            return f"{prefix}{self.vid}:{self.name}"
        return f"{prefix}{self.vid}"


@dataclass(frozen=True, slots=True)
class Imm:
    """An immediate operand (integer or float constant)."""

    value: int | float

    def __repr__(self) -> str:
        return f"#{self.value}"


# Well-known integer registers.
SP = PhysReg(RClass.INT, 0)
INT_SPILL_TEMPS = (
    PhysReg(RClass.INT, 1),
    PhysReg(RClass.INT, 2),
    PhysReg(RClass.INT, 3),
    PhysReg(RClass.INT, 4),
)
INT_RETVAL = INT_SPILL_TEMPS[0]
NUM_RESERVED_INT = 5  # SP + four spill temporaries

# Well-known FP registers (pairs: f0:f1 and f2:f3).
FP_SPILL_TEMPS = (PhysReg(RClass.FP, 0), PhysReg(RClass.FP, 2))
FP_RETVAL = FP_SPILL_TEMPS[0]
NUM_RESERVED_FP = 4  # two reserved pairs

#: Total register file size (per class) when RC support is present (paper
#: section 5.2: "the register file is assumed to contain a total of 256
#: registers").
RC_TOTAL_REGISTERS = 256


@dataclass(frozen=True, slots=True)
class RegFileSpec:
    """Describes one class's register file for a machine configuration.

    ``core`` is the number of architecturally addressable registers (the
    size of the register mapping table when RC is enabled).  ``total`` is
    the number of physical registers; ``total > core`` only makes sense with
    RC support.
    """

    cls: RClass
    core: int
    total: int

    def __post_init__(self) -> None:
        if self.core < 1:
            raise ConfigError(f"core register count must be >= 1, got {self.core}")
        if self.total < self.core:
            raise ConfigError(
                f"total registers ({self.total}) < core registers ({self.core})"
            )
        reserved = NUM_RESERVED_INT if self.cls is RClass.INT else NUM_RESERVED_FP
        if self.core <= reserved:
            raise ConfigError(
                f"{self.cls.value} core file of {self.core} leaves no allocatable "
                f"registers ({reserved} are reserved)"
            )

    @property
    def extended(self) -> int:
        """Number of extended (non-core) physical registers."""
        return self.total - self.core

    @property
    def has_rc(self) -> bool:
        return self.total > self.core

    def allocatable_core(self) -> list[int]:
        """Core register numbers the allocator may hand out directly.

        For FP these are even pair bases; reserved registers are excluded.
        """
        if self.cls is RClass.INT:
            return list(range(NUM_RESERVED_INT, self.core))
        return list(range(NUM_RESERVED_FP, self.core, 2))

    def extended_registers(self) -> list[int]:
        """Extended physical register numbers (pair bases for FP)."""
        if self.cls is RClass.INT:
            return list(range(self.core, self.total))
        start = self.core if self.core % 2 == 0 else self.core + 1
        return list(range(start, self.total, 2))


def core_spec(cls: RClass, core: int) -> RegFileSpec:
    """A register file with no extended section (the without-RC model)."""
    return RegFileSpec(cls, core, core)


def rc_spec(cls: RClass, core: int, total: int = RC_TOTAL_REGISTERS) -> RegFileSpec:
    """A register file with RC support: *core* addressable, *total* physical."""
    return RegFileSpec(cls, core, total)


#: A practically-unlimited register file, used for the paper's
#: "unlimited number of registers" baseline and speedup reference.
UNLIMITED = 4096


def unlimited_spec(cls: RClass) -> RegFileSpec:
    return RegFileSpec(cls, UNLIMITED, UNLIMITED)
