"""Bit-level instruction encoding for a 32-bit base format.

The paper's premise is that an existing 32-bit instruction format has no
spare operand bits: "For existing architectures, the sizes of the opcodes
and constants are already fixed, leaving no room for indexing into an
enlarged register file."  This module makes that concrete with a
demonstrator encoding:

* register operand fields are 6 bits — a 5-bit number plus a class bit —
  so registers above 31 **cannot be named**; encoding one raises
  :class:`EncodingError`.  That is exactly why connect instructions exist.
* single connect instructions fit comfortably in unused opcode space:
  ``op(6) cls(1) idx(5) phys(8)`` reaches all 256 physical registers of
  the extended file (section 5.2).
* combined connects (``connect-use-use`` etc.) need two pairs.  The paper
  notes they are possible "provided the instruction size is large enough";
  in 32 bits the second pair only fits with 7-bit physical fields, so the
  combined forms reach physical registers 0..127.  ``encode`` enforces
  this — an honest artifact of a real 32-bit budget.
* ``li`` carries a 16-bit inline immediate or a 16-bit constant-pool index;
  ALU immediate forms carry 12 bits inline with a pool fallback; branches
  carry a 14-bit target.

Word layouts (bit 31 is the MSB)::

    R-form    op(6) fmt=00(2) dest(6) src1(6) src2(6) 0(6)
    I-form    op(6) fmt=01(2) dest(6) src1(6) imm12(12)
    P-form    op(6) fmt=10(2) dest(6) src1(6) pool12(12)
    M-form    op(6) fmt=11(2) dest(6) base(6) off12(12)
    LI        op(6) inline(1) dest(6) pad(3) imm16/pool16(16)
    BR        op(6) hint(1) src1(6) src2(6) pad(1) target14(14)... (packed)
    CONNECT   op(6) cls(1) idx(5) phys(8) [idx2(5) phys2(7)]
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, PhysReg, RClass

REG_BITS = 5
REG_MAX = (1 << REG_BITS) - 1
PHYS_BITS = 8
PHYS_MAX = (1 << PHYS_BITS) - 1
PAIR2_PHYS_BITS = 7
PAIR2_PHYS_MAX = (1 << PAIR2_PHYS_BITS) - 1
IMM12_MIN, IMM12_MAX = -2048, 2047
IMM16_MIN, IMM16_MAX = -(1 << 15), (1 << 15) - 1
TARGET_BITS = 14
TARGET_MAX = (1 << TARGET_BITS) - 1

_FMT_R, _FMT_I, _FMT_P, _FMT_M = 0, 1, 2, 3


class EncodingError(ReproError):
    """The instruction cannot be represented in the 32-bit base format."""


_OPCODE_NUMBERS = {op: i for i, op in enumerate(Opcode)}
_OPCODE_BY_NUMBER = {i: op for op, i in _OPCODE_NUMBERS.items()}

_CONNECT_OPS = {Opcode.CUSE, Opcode.CDEF, Opcode.CUU, Opcode.CDU, Opcode.CDD}
_BRANCHY = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT,
            Opcode.BGE, Opcode.BEQZ, Opcode.BNEZ, Opcode.JMP, Opcode.CALL}


def _reg6(reg) -> int:
    if not isinstance(reg, PhysReg):
        raise EncodingError(f"cannot encode virtual operand {reg!r}")
    if reg.num > REG_MAX:
        raise EncodingError(
            f"register {reg!r} does not fit a {REG_BITS}-bit operand field "
            "- the paper's motivating limitation; reach it via a connect"
        )
    return reg.num | ((1 if reg.cls is RClass.FP else 0) << REG_BITS)


def _unreg6(field: int) -> PhysReg:
    cls = RClass.FP if field >> REG_BITS else RClass.INT
    return PhysReg(cls, field & REG_MAX)


class ConstantPool:
    """Out-of-line storage for constants too large for inline fields."""

    def __init__(self) -> None:
        self.values: list[int | float] = []
        self._index: dict[object, int] = {}

    def intern(self, value: int | float) -> int:
        key = (type(value).__name__, value)
        if key not in self._index:
            if len(self.values) > 0xFFFF:
                raise EncodingError("constant pool overflow")
            self._index[key] = len(self.values)
            self.values.append(value)
        return self._index[key]

    def __len__(self) -> int:
        return len(self.values)


def _encode_connect(instr: Instr) -> int:
    imm = instr.imm
    rclass: RClass = imm[0]
    word = _OPCODE_NUMBERS[instr.op] << 26
    word |= (1 if rclass is RClass.FP else 0) << 25
    idx, phys = imm[1], imm[2]
    if idx > REG_MAX:
        raise EncodingError(f"connect index {idx} exceeds {REG_BITS} bits")
    if phys > PHYS_MAX:
        raise EncodingError(f"connect target {phys} exceeds 256 registers")
    word |= idx << 20
    word |= phys << 12
    if len(imm) == 5:
        idx2, phys2 = imm[3], imm[4]
        if idx2 > REG_MAX:
            raise EncodingError(f"connect index {idx2} exceeds "
                                f"{REG_BITS} bits")
        if phys2 > PAIR2_PHYS_MAX:
            raise EncodingError(
                f"combined connect target {phys2} exceeds the "
                f"{PAIR2_PHYS_BITS}-bit second-pair field (32-bit words "
                "only fit two full pairs up to r127)"
            )
        word |= idx2 << 7
        word |= phys2
    return word


def _decode_connect(word: int, op: Opcode) -> Instr:
    rclass = RClass.FP if (word >> 25) & 1 else RClass.INT
    idx = (word >> 20) & REG_MAX
    phys = (word >> 12) & PHYS_MAX
    if op in (Opcode.CUSE, Opcode.CDEF):
        return Instr(op, imm=(rclass, idx, phys))
    idx2 = (word >> 7) & REG_MAX
    phys2 = word & PAIR2_PHYS_MAX
    return Instr(op, imm=(rclass, idx, phys, idx2, phys2))


def encode(instr: Instr, pool: ConstantPool,
           target: int | None = None) -> int:
    """Encode one instruction into a 32-bit word."""
    op = instr.op
    opnum = _OPCODE_NUMBERS[op]
    word = opnum << 26

    if op in _CONNECT_OPS:
        return _encode_connect(instr)

    if op in (Opcode.LI, Opcode.LIF):
        word |= _reg6(instr.dest) << 19
        value = instr.imm
        if op is Opcode.LI and IMM16_MIN <= value <= IMM16_MAX:
            word |= 1 << 25
            word |= value & 0xFFFF
        else:
            word |= pool.intern(value)
        return word

    if op is Opcode.TRAP:
        if not 0 <= instr.imm <= 0xFFFF:
            raise EncodingError("trap vector exceeds 16 bits")
        return word | instr.imm

    if op in _BRANCHY:
        # op(6) hint(1) immflag(1) src1(6) src2|pool(6) target(12)
        if instr.hint_taken:
            word |= 1 << 25
        srcs = list(instr.srcs)
        if srcs and isinstance(srcs[0], Imm):
            raise EncodingError("the first branch operand must be a "
                                "register in the demonstrator format")
        if srcs:
            word |= _reg6(srcs[0]) << 18
        if len(srcs) > 1:
            if isinstance(srcs[1], Imm):
                word |= 1 << 24
                pool_index = pool.intern(srcs[1].value)
                if pool_index > 0x3F:
                    raise EncodingError("branch constant pool exceeds "
                                        "6 bits")
                word |= pool_index << 12
            else:
                word |= _reg6(srcs[1]) << 12
        if target is None:
            raise EncodingError(f"unresolved control target for {instr!r}")
        if not 0 <= target <= 0xFFF:
            raise EncodingError(f"target {target} exceeds the 12-bit "
                                "branch target field")
        word |= target
        return word

    if op in (Opcode.RET, Opcode.HALT, Opcode.NOP, Opcode.RTE):
        return word

    if op in (Opcode.LOAD, Opcode.FLOAD, Opcode.STORE, Opcode.FSTORE):
        # op(6) fmt=11(2) val/dest(6) base(6) vflag(1) bflag(1) off10(10)
        if not -512 <= instr.imm <= 511:
            raise EncodingError(f"memory offset {instr.imm} exceeds the "
                                "10-bit field")
        word |= _FMT_M << 24

        def _field(operand, flag_bit):
            nonlocal word
            if isinstance(operand, Imm):
                # Constant base/value: pool reference (6-bit index).
                index = pool.intern(operand.value)
                if index > 0x3F:
                    raise EncodingError("memory constant pool exceeds "
                                        "6 bits")
                word |= 1 << flag_bit
                return index
            return _reg6(operand)

        if op in (Opcode.LOAD, Opcode.FLOAD):
            word |= _reg6(instr.dest) << 18
            word |= _field(instr.srcs[0], 10) << 12
        else:
            word |= _field(instr.srcs[0], 11) << 18  # stored value
            word |= _field(instr.srcs[1], 10) << 12  # base
        word |= instr.imm & 0x3FF
        return word

    if op in (Opcode.MFPSW, Opcode.MTPSW, Opcode.MFMAP):
        if op is Opcode.MFMAP:
            raise EncodingError("mfmap carries out-of-band operands and is "
                                "not encodable in the demonstrator format")
        operand = instr.dest if op is Opcode.MFPSW else instr.srcs[0]
        return word | (_reg6(operand) << 18)

    # Generic ALU forms.
    srcs = list(instr.srcs)
    imm_src = next((s for s in srcs if isinstance(s, Imm)), None)
    if sum(isinstance(s, Imm) for s in srcs) > 1:
        raise EncodingError("at most one immediate source fits the format")
    word |= _reg6(instr.dest) << 18
    reg_srcs = [s for s in srcs if not isinstance(s, Imm)]
    if reg_srcs:
        word |= _reg6(reg_srcs[0]) << 12
    if imm_src is None:
        word |= _FMT_R << 24
        if len(reg_srcs) > 1:
            word |= _reg6(reg_srcs[1]) << 6
    else:
        if srcs and isinstance(srcs[0], Imm) and len(srcs) == 2:
            raise EncodingError("immediate must be the second source in "
                                "the demonstrator format")
        value = imm_src.value
        if IMM12_MIN <= value <= IMM12_MAX:
            word |= _FMT_I << 24
            word |= value & 0xFFF
        else:
            word |= _FMT_P << 24
            pool_index = pool.intern(value)
            if pool_index > 0xFFF:
                raise EncodingError("constant pool index exceeds 12 bits")
            word |= pool_index
    return word


def decode_opcode(word: int) -> Opcode:
    number = word >> 26
    if number not in _OPCODE_BY_NUMBER:
        raise EncodingError(f"illegal opcode field {number}")
    return _OPCODE_BY_NUMBER[number]


def decode_connect(word: int) -> Instr:
    """Fully decode a connect word back to an instruction."""
    op = decode_opcode(word)
    if op not in _CONNECT_OPS:
        raise EncodingError(f"{op} is not a connect instruction")
    return _decode_connect(word, op)


def encode_program(instrs, targets) -> tuple[list[int], ConstantPool]:
    """Encode an instruction sequence; returns (words, constant pool)."""
    pool = ConstantPool()
    words = [encode(instr, pool, target)
             for instr, target in zip(instrs, targets)]
    return words, pool


def encodable_core_size() -> int:
    """The largest core register file nameable by the operand fields."""
    return REG_MAX + 1
