"""Instruction latency model (Table 1 of the paper).

| Instruction  | Latency  | Instruction   | Latency |
|--------------|----------|---------------|---------|
| INT ALU      | 1        | FP ALU        | 3       |
| INT multiply | 3        | FP conversion | 3       |
| INT divide   | 10       | FP multiply   | 3       |
| branch       | 1/1-slot | FP divide     | 10      |
| memory load  | 2 or 4   | memory store  | 1       |

Connect instructions have a configurable latency of 0 or 1 cycle
(paper sections 2.4 and 5.3, Figure 12).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa.opcodes import Category, Opcode, spec

#: Fixed latencies per category; LOAD and CONNECT are configuration-dependent.
FIXED_LATENCIES: dict[Category, int] = {
    Category.INT_ALU: 1,
    Category.INT_MUL: 3,
    Category.INT_DIV: 10,
    Category.BRANCH: 1,
    Category.STORE: 1,
    Category.FP_ALU: 3,
    Category.FP_CVT: 3,
    Category.FP_MUL: 3,
    Category.FP_DIV: 10,
    Category.SYSTEM: 1,
    Category.MISC: 1,
}

VALID_LOAD_LATENCIES = (2, 4)
VALID_CONNECT_LATENCIES = (0, 1)


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Maps opcodes to deterministic execution latencies.

    ``load`` is 2 or 4 cycles (the two configurations evaluated in the
    paper); ``connect`` is 0 or 1 (section 2.4 / Figure 12).
    """

    load: int = 2
    connect: int = 0

    def __post_init__(self) -> None:
        if self.load not in VALID_LOAD_LATENCIES:
            raise ConfigError(f"load latency must be one of {VALID_LOAD_LATENCIES}")
        if self.connect not in VALID_CONNECT_LATENCIES:
            raise ConfigError(
                f"connect latency must be one of {VALID_CONNECT_LATENCIES}"
            )

    def of_category(self, category: Category) -> int:
        if category is Category.LOAD:
            return self.load
        if category is Category.CONNECT:
            return self.connect
        return FIXED_LATENCIES[category]

    def of(self, op: Opcode) -> int:
        """Latency of *op* in cycles."""
        return self.of_category(spec(op).category)


def table1_rows(model: LatencyModel | None = None) -> list[tuple[str, str]]:
    """Render Table 1 as (instruction-class, latency) rows."""
    model = model or LatencyModel()
    rows = [
        ("INT ALU", "1"),
        ("INT multiply", "3"),
        ("INT divide", "10"),
        ("branch", "1/1-slot"),
        ("memory load", "2 or 4"),
        ("memory store", "1"),
        ("FP ALU", "3"),
        ("FP conversion", "3"),
        ("FP multiply", "3"),
        ("FP divide", "10"),
        ("connect (RC)", f"{model.connect} (configurable 0 or 1)"),
    ]
    return rows
