"""Instruction latency model (Table 1 of the paper).

| Instruction  | Latency  | Instruction   | Latency |
|--------------|----------|---------------|---------|
| INT ALU      | 1        | FP ALU        | 3       |
| INT multiply | 3        | FP conversion | 3       |
| INT divide   | 10       | FP multiply   | 3       |
| branch       | 1/1-slot | FP divide     | 10      |
| memory load  | 2 or 4   | memory store  | 1       |

Connect instructions have a configurable latency of 0 or 1 cycle
(paper sections 2.4 and 5.3, Figure 12).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.isa.opcodes import Category, Opcode, spec

#: Default latencies per category (Table 1); LOAD and CONNECT are the two
#: the paper varies, but every class is an independently configurable
#: :class:`LatencyModel` field so design-space sweeps can key on all of them.
FIXED_LATENCIES: dict[Category, int] = {
    Category.INT_ALU: 1,
    Category.INT_MUL: 3,
    Category.INT_DIV: 10,
    Category.BRANCH: 1,
    Category.STORE: 1,
    Category.FP_ALU: 3,
    Category.FP_CVT: 3,
    Category.FP_MUL: 3,
    Category.FP_DIV: 10,
    Category.SYSTEM: 1,
    Category.MISC: 1,
}

VALID_LOAD_LATENCIES = (2, 4)
VALID_CONNECT_LATENCIES = (0, 1)


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Maps opcodes to deterministic execution latencies.

    ``load`` is 2 or 4 cycles (the two configurations evaluated in the
    paper); ``connect`` is 0 or 1 (section 2.4 / Figure 12).  The remaining
    classes default to Table 1 but may be overridden for ablations; the
    experiment cache keys on the full field tuple, so two models differing
    in *any* latency are distinct configurations.
    """

    load: int = 2
    connect: int = 0
    int_alu: int = 1
    int_mul: int = 3
    int_div: int = 10
    branch: int = 1
    store: int = 1
    fp_alu: int = 3
    fp_cvt: int = 3
    fp_mul: int = 3
    fp_div: int = 10
    system: int = 1
    misc: int = 1

    def __post_init__(self) -> None:
        if self.load not in VALID_LOAD_LATENCIES:
            raise ConfigError(f"load latency must be one of {VALID_LOAD_LATENCIES}")
        if self.connect not in VALID_CONNECT_LATENCIES:
            raise ConfigError(
                f"connect latency must be one of {VALID_CONNECT_LATENCIES}"
            )
        for f in dataclasses.fields(self):
            if f.name in ("load", "connect"):
                continue
            if getattr(self, f.name) < 1:
                raise ConfigError(f"{f.name} latency must be >= 1")

    def of_category(self, category: Category) -> int:
        return getattr(self, category.name.lower())

    def of(self, op: Opcode) -> int:
        """Latency of *op* in cycles."""
        return self.of_category(spec(op).category)

    def field_tuple(self) -> tuple[int, ...]:
        """Every latency, in declared field order (for cache keys)."""
        return tuple(getattr(self, f.name) for f in dataclasses.fields(self))


def table1_rows(model: LatencyModel | None = None) -> list[tuple[str, str]]:
    """Render Table 1 as (instruction-class, latency) rows."""
    model = model or LatencyModel()
    rows = [
        ("INT ALU", "1"),
        ("INT multiply", "3"),
        ("INT divide", "10"),
        ("branch", "1/1-slot"),
        ("memory load", "2 or 4"),
        ("memory store", "1"),
        ("FP ALU", "3"),
        ("FP conversion", "3"),
        ("FP multiply", "3"),
        ("FP divide", "10"),
        ("connect (RC)", f"{model.connect} (configurable 0 or 1)"),
    ]
    return rows
