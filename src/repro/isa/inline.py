"""Python-source emission helpers shared by the specializing engines.

Both fast-path engines — the cycle-level :mod:`repro.sim.fastpath` and the
IR-level :mod:`repro.ir.fastinterp` — generate Python source that must be
bit-exact with :mod:`repro.isa.semantics`.  The inline arithmetic for every
opcode lives here so the two code generators cannot drift apart: the wrap
constants are emitted as literals identical to :func:`~repro.isa.semantics.
wrap64`'s masks, and any opcode this module declines to inline (``None``
return) must be executed by calling the exact semantics function object,
preserving fault behavior (DIV/REM/FDIV raise
:class:`~repro.errors.SimulationFault`).
"""

from __future__ import annotations

__all__ = ["BRANCH_EXPR", "MASK_LIT", "SIGN_LIT", "TWO64_LIT",
           "alu_stmts", "wrap_stmts"]

# 64-bit wrap constants, emitted as literals so the generated arithmetic is
# bit-exact with repro.isa.semantics.wrap64.
MASK_LIT = "18446744073709551615"
SIGN_LIT = "9223372036854775808"
TWO64_LIT = "18446744073709551616"

#: Conditional-branch condition expressions, keyed by opcode name.
BRANCH_EXPR = {
    "BEQ": "{a} == {b}", "BNE": "{a} != {b}", "BLT": "{a} < {b}",
    "BLE": "{a} <= {b}", "BGT": "{a} > {b}", "BGE": "{a} >= {b}",
    "BEQZ": "{a} == 0", "BNEZ": "{a} != 0",
}


def wrap_stmts(expr: str, target: str = "v") -> list[str]:
    """Statements assigning ``wrap64(expr)`` to *target*."""
    return [f"{target} = ({expr}) & {MASK_LIT}",
            f"if {target} & {SIGN_LIT}:",
            f"    {target} -= {TWO64_LIT}"]


def alu_stmts(name: str, args: list[str],
              target: str = "v") -> list[str] | None:
    """Inline statements computing *target* for an ALU opcode, or ``None``
    when the shared semantics function must be called (DIV/REM/FDIV keep
    their fault behavior by calling the exact same function object)."""
    a = args[0]
    b = args[1] if len(args) > 1 else None
    if name in ("MOVE", "FMOV"):
        return [f"{target} = {a}"]
    if name in ("ADD", "SUB", "MUL", "AND", "OR", "XOR"):
        op = {"ADD": "+", "SUB": "-", "MUL": "*",
              "AND": "&", "OR": "|", "XOR": "^"}[name]
        return wrap_stmts(f"{a} {op} {b}", target)
    if name == "SLL":
        return wrap_stmts(f"{a} << ({b} & 63)", target)
    if name == "SRA":
        return wrap_stmts(f"{a} >> ({b} & 63)", target)
    if name == "SRL":
        return [f"{target} = ({a} & {MASK_LIT}) >> ({b} & 63)",
                f"if {target} & {SIGN_LIT}:",
                f"    {target} -= {TWO64_LIT}"]
    if name in ("CMPEQ", "FCMPEQ"):
        return [f"{target} = 1 if {a} == {b} else 0"]
    if name == "CMPNE":
        return [f"{target} = 1 if {a} != {b} else 0"]
    if name in ("CMPLT", "FCMPLT"):
        return [f"{target} = 1 if {a} < {b} else 0"]
    if name in ("CMPLE", "FCMPLE"):
        return [f"{target} = 1 if {a} <= {b} else 0"]
    if name == "CMPGT":
        return [f"{target} = 1 if {a} > {b} else 0"]
    if name == "CMPGE":
        return [f"{target} = 1 if {a} >= {b} else 0"]
    if name == "FNEG":
        return [f"{target} = -{a}"]
    if name in ("FADD", "FSUB", "FMUL"):
        op = {"FADD": "+", "FSUB": "-", "FMUL": "*"}[name]
        return [f"{target} = {a} {op} {b}"]
    if name == "CVTIF":
        return [f"{target} = float({a})"]
    if name == "CVTFI":
        return wrap_stmts(f"int({a})", target)
    return None
