"""A two-pass assembler for the textual assembly format.

Parses the syntax produced by :mod:`repro.isa.asmfmt` (plus labels and
comments) back into an executable :class:`~repro.sim.program.MachineProgram`,
so machine programs can be written, stored, and round-tripped as text.

Syntax::

    ; comment (also #)
    start:                       ; label
        li r5, 20
        load r6, 4(r0)           ; base+offset memory operands
        fadd f4, f6, f8
        blt r5, 10 -> loop       ; branch target after '->'
        blt r5, 10 -> loop [taken]
        connect_use ri3, rp200   ; connect operands: index, physical
        connect_def_use ri1, rp30, ri2, rp31
        call helper
        trap 3
        halt

Directives::

    .entry start                 ; program entry label (default: first instr)
    .word 4096 = 17              ; initial memory word
    .handler 3 = vector_label    ; trap handler table entry
"""

from __future__ import annotations

import re

from repro.errors import CompileError
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode, spec
from repro.isa.registers import Imm, PhysReg, RClass

_OPCODES = {op.value: op for op in Opcode}
#: Static-checker suppression comment: ``; check: ignore=LAT001,RC003``.
#: Inline after an instruction it applies to that instruction; on a line of
#: its own it applies to the whole file.
_SUPPRESS_RE = re.compile(r"[;#]\s*check:\s*ignore=([A-Za-z0-9_, ]+)")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_REG_RE = re.compile(r"^(r|f)(\d+)$")
_MEM_RE = re.compile(r"^(-?\d+)\(([^)]+)\)$")
_CONNECT_RE = re.compile(r"^(r|f)(i|p)(\d+)$")
_HINT_RE = re.compile(r"\[(taken|not-taken)\]\s*$")


class AsmError(CompileError):
    """A syntax or semantic error in assembly text."""


def _strip_comment(line: str) -> str:
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_operand(text: str, lineno: int = 0):
    text = text.strip()
    m = _REG_RE.match(text)
    if m:
        cls = RClass.INT if m.group(1) == "r" else RClass.FP
        return PhysReg(cls, int(m.group(2)))
    try:
        return Imm(int(text, 0))
    except ValueError:
        pass
    try:
        return Imm(float(text))
    except ValueError:
        raise AsmError(f"line {lineno}: bad operand {text!r}") from None


def _parse_reg(text: str, lineno: int, what: str) -> PhysReg:
    operand = _parse_operand(text, lineno)
    if not isinstance(operand, PhysReg):
        raise AsmError(f"line {lineno}: {what} must be a register, "
                       f"got {text.strip()!r}")
    return operand


def _parse_connect_field(text: str, expect: str,
                         lineno: int = 0) -> tuple[RClass, int]:
    m = _CONNECT_RE.match(text.strip())
    if not m or m.group(2) != expect:
        raise AsmError(f"line {lineno}: bad connect operand {text!r} "
                       f"(expected '{expect}'-form like r{expect}3)")
    cls = RClass.INT if m.group(1) == "r" else RClass.FP
    return cls, int(m.group(3))


def _split_operands(text: str) -> list[str]:
    return [part.strip() for part in text.split(",")] if text.strip() else []


def parse_instr(line: str, lineno: int = 0) -> Instr:
    """Parse a single (comment-stripped, label-free) instruction line."""
    hint = None
    hm = _HINT_RE.search(line)
    if hm:
        hint = hm.group(1) == "taken"
        line = line[: hm.start()].strip()

    label = None
    if "->" in line:
        line, label = line.rsplit("->", 1)
        label = label.strip()
        line = line.strip()

    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    op = _OPCODES.get(mnemonic)
    if op is None:
        raise AsmError(f"line {lineno}: unknown opcode {mnemonic!r}")
    s = spec(op)

    if op in (Opcode.CUSE, Opcode.CDEF, Opcode.CUU, Opcode.CDU, Opcode.CDD):
        fields = _split_operands(rest)
        if len(fields) not in (2, 4):
            raise AsmError(f"line {lineno}: connect needs 2 or 4 operands")
        kinds = {
            Opcode.CUSE: ("i",), Opcode.CDEF: ("i",),
            Opcode.CUU: ("i", "i"), Opcode.CDU: ("i", "i"),
            Opcode.CDD: ("i", "i"),
        }[op]
        if len(fields) != 2 * len(kinds):
            raise AsmError(f"line {lineno}: wrong connect arity for "
                           f"{mnemonic}")
        pieces = []
        rclass = None
        for pair in range(len(kinds)):
            cls_i, idx = _parse_connect_field(fields[2 * pair], "i", lineno)
            cls_p, phys = _parse_connect_field(fields[2 * pair + 1], "p",
                                               lineno)
            if cls_i is not cls_p:
                raise AsmError(f"line {lineno}: connect class mismatch")
            if rclass is None:
                rclass = cls_i
            elif rclass is not cls_i:
                raise AsmError(f"line {lineno}: mixed-class connect")
            pieces.extend([idx, phys])
        return Instr(op, imm=(rclass, *pieces))

    if op is Opcode.TRAP:
        vector_text = rest.strip()
        if not vector_text:
            raise AsmError(f"line {lineno}: trap needs a vector number")
        try:
            return Instr(op, imm=int(vector_text, 0))
        except ValueError:
            raise AsmError(f"line {lineno}: bad trap vector "
                           f"{vector_text!r}") from None
    if op in (Opcode.CALL, Opcode.JMP) and label is None:
        # "call helper" / "jmp loop" style (no arrow)
        label = rest.strip() or None
        rest = ""
    if op in (Opcode.CALL, Opcode.JMP) and label is None:
        raise AsmError(f"line {lineno}: {mnemonic} needs a target label")
    fields = _split_operands(rest)

    if op in (Opcode.LOAD, Opcode.FLOAD):
        if len(fields) != 2:
            raise AsmError(f"line {lineno}: load needs dest, off(base)")
        dest = _parse_reg(fields[0], lineno, "load destination")
        m = _MEM_RE.match(fields[1])
        if not m:
            raise AsmError(f"line {lineno}: bad memory operand "
                           f"{fields[1]!r}")
        return Instr(op, dest=dest, srcs=(_parse_operand(m.group(2), lineno),),
                     imm=int(m.group(1)))
    if op in (Opcode.STORE, Opcode.FSTORE):
        if len(fields) != 2:
            raise AsmError(f"line {lineno}: store needs value, off(base)")
        value = _parse_operand(fields[0], lineno)
        m = _MEM_RE.match(fields[1])
        if not m:
            raise AsmError(f"line {lineno}: bad memory operand "
                           f"{fields[1]!r}")
        return Instr(op, srcs=(value, _parse_operand(m.group(2), lineno)),
                     imm=int(m.group(1)))
    if op in (Opcode.LI, Opcode.LIF):
        if len(fields) != 2:
            raise AsmError(f"line {lineno}: {mnemonic} needs dest, imm")
        dest = _parse_reg(fields[0], lineno, f"{mnemonic} destination")
        imm = _parse_operand(fields[1], lineno)
        if not isinstance(imm, Imm):
            raise AsmError(f"line {lineno}: {mnemonic} immediate expected")
        value = imm.value
        if op is Opcode.LIF:
            value = float(value)
        return Instr(op, dest=dest, imm=value)
    if op is Opcode.MFMAP:
        raise AsmError(f"line {lineno}: mfmap is not supported in text form")

    operands = [_parse_operand(f, lineno) for f in fields]
    dest = None
    if s.dest is not None:
        if not operands:
            raise AsmError(f"line {lineno}: {mnemonic} needs a destination")
        dest = operands.pop(0)
        if not isinstance(dest, PhysReg):
            raise AsmError(f"line {lineno}: {mnemonic} destination must be "
                           f"a register")
    instr = Instr(op, dest=dest, srcs=tuple(operands), label=label,
                  hint_taken=hint)
    expected = len(s.srcs)
    if op not in (Opcode.CALL, Opcode.RET) and len(operands) != expected:
        raise AsmError(f"line {lineno}: {mnemonic} expects {expected} "
                       f"source operands, got {len(operands)}")
    return instr


def parse_program(text: str):
    """Assemble *text*; returns a :class:`~repro.sim.program.MachineProgram`.

    Imported lazily to keep :mod:`repro.isa` free of simulator dependencies.
    """
    from repro.sim.program import assemble

    instrs: list[Instr] = []
    instr_lines: list[int] = []
    labels: dict[str, int] = {}
    memory: dict[int, int | float] = {}
    handlers: dict[int, tuple[str, int]] = {}
    entry_label: str | None = None
    entry_line = 0
    suppressions: dict[int, frozenset[str]] = {}

    for lineno, raw in enumerate(text.splitlines(), start=1):
        sm = _SUPPRESS_RE.search(raw)
        ignored = (frozenset(p.strip() for p in sm.group(1).split(",")
                             if p.strip()) if sm else None)
        line = _strip_comment(raw)
        if not line:
            if ignored:  # suppression on its own line: whole file
                suppressions[-1] = suppressions.get(-1, frozenset()) | ignored
            continue
        if line.startswith(".entry"):
            parts = line.split()
            if len(parts) != 2:
                raise AsmError(f"line {lineno}: .entry needs exactly one "
                               f"label")
            entry_label = parts[1]
            entry_line = lineno
            continue
        if line.startswith(".word"):
            m = re.match(r"^\.word\s+(\d+)\s*=\s*(.+)$", line)
            if not m:
                raise AsmError(f"line {lineno}: bad .word directive")
            value = _parse_operand(m.group(2), lineno)
            if not isinstance(value, Imm):
                raise AsmError(f"line {lineno}: .word value must be a "
                               f"number")
            memory[int(m.group(1))] = value.value
            continue
        if line.startswith(".handler"):
            m = re.match(r"^\.handler\s+(\d+)\s*=\s*(\S+)$", line)
            if not m:
                raise AsmError(f"line {lineno}: bad .handler directive")
            handlers[int(m.group(1))] = (m.group(2), lineno)
            continue
        m = _LABEL_RE.match(line)
        if m:
            name = m.group(1)
            if name in labels:
                raise AsmError(f"line {lineno}: duplicate label {name!r}")
            labels[name] = len(instrs)
            continue
        instrs.append(parse_instr(line, lineno))
        instr_lines.append(lineno)
        if ignored:
            index = len(instrs) - 1
            suppressions[index] = suppressions.get(index, frozenset()) | ignored

    for instr, lineno in zip(instrs, instr_lines):
        if (instr.label is not None and instr.op is not Opcode.RET
                and instr.label not in labels):
            raise AsmError(f"line {lineno}: unknown label {instr.label!r}")
    trap_handlers = {}
    for vector, (label, lineno) in handlers.items():
        if label not in labels:
            raise AsmError(f"line {lineno}: unknown handler label {label!r}")
        trap_handlers[vector] = labels[label]
    entry = 0
    if entry_label is not None:
        if entry_label not in labels:
            raise AsmError(f"line {entry_line}: unknown entry label "
                           f"{entry_label!r}")
        entry = labels[entry_label]
    return assemble(instrs, labels=labels, initial_memory=memory,
                    entry=entry, trap_handlers=trap_handlers,
                    suppressions=suppressions)
