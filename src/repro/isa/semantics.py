"""Functional semantics of the instruction set.

These pure functions are the single source of truth for what every opcode
*computes*; both the IR interpreter (the golden model) and the cycle-level
simulator evaluate operations through this module, so any semantic bug shows
up as an equivalence failure rather than silently matching.

Integer arithmetic wraps to signed 64 bits (the simulated machine is a 64-bit
MIPS-like core); floating point is IEEE double, i.e. the host ``float``.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SimulationFault
from repro.isa.opcodes import Opcode

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def wrap64(value: int) -> int:
    """Wrap *value* to a signed 64-bit integer."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def _div_trunc(a: int, b: int) -> int:
    if b == 0:
        raise SimulationFault("integer divide by zero")
    q = abs(a) // abs(b)
    return wrap64(-q if (a < 0) != (b < 0) else q)


def _rem_trunc(a: int, b: int) -> int:
    if b == 0:
        raise SimulationFault("integer remainder by zero")
    return wrap64(a - _div_trunc(a, b) * b)


def _shift_amount(b: int) -> int:
    return b & 63


def _srl(a: int, b: int) -> int:
    return wrap64((a & _MASK) >> _shift_amount(b))


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise SimulationFault("floating-point divide by zero")
    return a / b


#: Opcode -> function of source values producing the destination value.
ALU_FUNCS: dict[Opcode, Callable] = {
    Opcode.MOVE: lambda a: a,
    Opcode.ADD: lambda a, b: wrap64(a + b),
    Opcode.SUB: lambda a, b: wrap64(a - b),
    Opcode.AND: lambda a, b: wrap64(a & b),
    Opcode.OR: lambda a, b: wrap64(a | b),
    Opcode.XOR: lambda a, b: wrap64(a ^ b),
    Opcode.SLL: lambda a, b: wrap64(a << _shift_amount(b)),
    Opcode.SRL: _srl,
    Opcode.SRA: lambda a, b: wrap64(a >> _shift_amount(b)),
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPNE: lambda a, b: int(a != b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.CMPGT: lambda a, b: int(a > b),
    Opcode.CMPGE: lambda a, b: int(a >= b),
    Opcode.MUL: lambda a, b: wrap64(a * b),
    Opcode.DIV: _div_trunc,
    Opcode.REM: _rem_trunc,
    Opcode.FMOV: lambda a: a,
    Opcode.FNEG: lambda a: -a,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: _fdiv,
    Opcode.FCMPEQ: lambda a, b: int(a == b),
    Opcode.FCMPLT: lambda a, b: int(a < b),
    Opcode.FCMPLE: lambda a, b: int(a <= b),
    Opcode.CVTIF: lambda a: float(a),
    Opcode.CVTFI: lambda a: wrap64(int(a)),
}

#: Opcode -> predicate over source values; True means the branch is taken.
BRANCH_FUNCS: dict[Opcode, Callable] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BLE: lambda a, b: a <= b,
    Opcode.BGT: lambda a, b: a > b,
    Opcode.BGE: lambda a, b: a >= b,
    Opcode.BEQZ: lambda a: a == 0,
    Opcode.BNEZ: lambda a: a != 0,
}


def evaluate(op: Opcode, *values):
    """Evaluate a computational opcode over already-fetched source values."""
    return ALU_FUNCS[op](*values)


def branch_taken(op: Opcode, *values) -> bool:
    """Whether conditional branch *op* is taken for the given source values."""
    return BRANCH_FUNCS[op](*values)
