"""The instruction type shared by the compiler IR and machine code.

A single mutable :class:`Instr` class is used at every stage of the pipeline:
the IR builder creates instructions over virtual registers, the register
allocator rewrites operands to physical registers in place, and the lowering
pass resolves labels.  "Machine code" is simply an instruction whose register
operands are all :class:`~repro.isa.registers.PhysReg`.

Operand conventions by opcode family:

* ALU ops: ``dest`` plus one or two ``srcs`` (integer source slots accept
  :class:`~repro.isa.registers.Imm`).
* ``LI``/``LIF``: ``dest`` and ``imm`` (the constant).
* loads: ``dest``, ``srcs = (base,)``, ``imm`` = word offset.
* stores: ``srcs = (value, base)``, ``imm`` = word offset.
* conditional branches: ``srcs`` and ``label``; ``hint_taken`` carries the
  compiler's static branch prediction.
* ``CALL``: ``label`` = callee name, ``srcs`` = argument registers (IR form
  only; lowering turns them into stack stores), ``dest`` = return value or
  ``None``.
* connects: ``imm`` is a tuple ``(rclass, ri, rp)`` for the two-operand forms
  and ``(rclass, ri1, rp1, ri2, rp2)`` for the combined forms (section 2.2).
* ``TRAP``: ``imm`` = vector number.  ``MFMAP``: ``imm = (rclass, index,
  which)`` with ``which`` in ``("read", "write")``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.isa.opcodes import CONNECT_OPS, Category, Opcode, spec
from repro.isa.registers import Imm, PhysReg, RClass, VReg

Operand = PhysReg | VReg | Imm


class Instr:
    """One instruction (IR or machine level)."""

    __slots__ = ("op", "dest", "srcs", "imm", "label", "hint_taken", "origin",
                 "alias")

    def __init__(
        self,
        op: Opcode,
        dest: Operand | None = None,
        srcs: Iterable[Operand] = (),
        imm: object = None,
        label: str | None = None,
        hint_taken: bool | None = None,
        origin: str | None = None,
    ) -> None:
        self.op = op
        self.dest = dest
        self.srcs: tuple[Operand, ...] = tuple(srcs)
        self.imm = imm
        self.label = label
        self.hint_taken = hint_taken
        #: provenance tag used by code-size accounting: ``None`` for original
        #: program instructions, or one of ``"spill"``, ``"connect"``,
        #: ``"callsave"``, ``"frame"`` for compiler-inserted overhead.
        self.origin = origin
        #: memory-region provenance for loads/stores, set by the compiler's
        #: alias analysis: ``("global", name)`` or ``("stack",)``; ``None``
        #: means unknown (assume it may alias anything).
        self.alias = None

    # -- structural queries -------------------------------------------------

    @property
    def category(self) -> Category:
        return spec(self.op).category

    @property
    def is_branch(self) -> bool:
        return spec(self.op).is_branch

    @property
    def is_cond_branch(self) -> bool:
        return spec(self.op).is_cond_branch

    @property
    def is_mem(self) -> bool:
        return spec(self.op).is_mem

    @property
    def is_connect(self) -> bool:
        return self.op in CONNECT_OPS

    @property
    def is_call(self) -> bool:
        return self.op is Opcode.CALL

    def reg_srcs(self) -> Iterator[PhysReg | VReg]:
        """Register (non-immediate) source operands."""
        for s in self.srcs:
            if not isinstance(s, Imm):
                yield s

    def regs(self) -> Iterator[PhysReg | VReg]:
        """All register operands (sources then destination)."""
        yield from self.reg_srcs()
        if self.dest is not None:
            yield self.dest

    def replace_operands(self, mapping: dict) -> None:
        """Rewrite register operands through *mapping* in place.

        Operands not present in *mapping* are left untouched.
        """
        self.srcs = tuple(
            mapping.get(s, s) if not isinstance(s, Imm) else s for s in self.srcs
        )
        if self.dest is not None:
            self.dest = mapping.get(self.dest, self.dest)

    def copy(self) -> "Instr":
        clone = Instr(
            self.op,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            label=self.label,
            hint_taken=self.hint_taken,
            origin=self.origin,
        )
        clone.alias = self.alias
        return clone

    # -- connect helpers ----------------------------------------------------

    def connect_updates(self) -> list[tuple[RClass, str, int, int]]:
        """Decode a connect instruction into map updates.

        Returns a list of ``(rclass, which, index, phys)`` tuples where
        ``which`` is ``"read"`` (connect-use) or ``"write"`` (connect-def).
        """
        if not self.is_connect:
            raise ValueError(f"{self.op} is not a connect instruction")
        imm = self.imm
        rclass: RClass = imm[0]
        if self.op is Opcode.CUSE:
            return [(rclass, "read", imm[1], imm[2])]
        if self.op is Opcode.CDEF:
            return [(rclass, "write", imm[1], imm[2])]
        if self.op is Opcode.CUU:
            return [
                (rclass, "read", imm[1], imm[2]),
                (rclass, "read", imm[3], imm[4]),
            ]
        if self.op is Opcode.CDU:
            return [
                (rclass, "write", imm[1], imm[2]),
                (rclass, "read", imm[3], imm[4]),
            ]
        return [
            (rclass, "write", imm[1], imm[2]),
            (rclass, "write", imm[3], imm[4]),
        ]

    # -- display ------------------------------------------------------------

    def __repr__(self) -> str:
        parts = [self.op.value]
        ops = []
        if self.dest is not None:
            ops.append(repr(self.dest))
        ops.extend(repr(s) for s in self.srcs)
        if self.imm is not None:
            ops.append(f"imm={self.imm!r}")
        if self.label is not None:
            ops.append(f"->{self.label}")
        if ops:
            parts.append(" ".join(ops))
        return f"<{' '.join(parts)}>"


def connect_use(rclass: RClass, ri: int, rp: int, origin: str = "connect") -> Instr:
    """Build a ``connect-use`` instruction: redirect reads of index *ri* to *rp*."""
    return Instr(Opcode.CUSE, imm=(rclass, ri, rp), origin=origin)


def connect_def(rclass: RClass, ri: int, rp: int, origin: str = "connect") -> Instr:
    """Build a ``connect-def`` instruction: redirect writes of index *ri* to *rp*."""
    return Instr(Opcode.CDEF, imm=(rclass, ri, rp), origin=origin)


def combine_connects(first: Instr, second: Instr) -> Instr | None:
    """Combine two adjacent two-operand connects into a multiple-connect.

    Returns the combined instruction, or ``None`` if the pair cannot be
    combined (different register classes).  Mirrors paper section 2.2:
    connect-use-use, connect-def-use and connect-def-def.
    """
    if first.op not in (Opcode.CUSE, Opcode.CDEF):
        return None
    if second.op not in (Opcode.CUSE, Opcode.CDEF):
        return None
    if first.imm[0] is not second.imm[0]:
        return None
    origin = first.origin or second.origin or "connect"
    a_kind, b_kind = first.op, second.op
    a, b = first.imm[1:], second.imm[1:]
    rclass = first.imm[0]
    if a_kind is Opcode.CUSE and b_kind is Opcode.CUSE:
        op = Opcode.CUU
    elif a_kind is Opcode.CDEF and b_kind is Opcode.CDEF:
        op = Opcode.CDD
    else:
        # Normalize to def-use order.
        op = Opcode.CDU
        if a_kind is Opcode.CUSE:
            a, b = b, a
    return Instr(op, imm=(rclass, a[0], a[1], b[0], b[1]), origin=origin)
