"""Opcode definitions and static per-opcode metadata.

The instruction set is the MIPS R2000 set "extended with additional branch
opcodes to allow general operand comparison and to facilitate static branch
prediction" (paper section 5.2), plus the five connect instructions of the RC
extension (section 2.2) and a handful of system instructions used for trap
handling and context switching (section 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.registers import RClass


class Category(enum.Enum):
    """Latency class of an opcode (Table 1 of the paper)."""

    INT_ALU = "INT ALU"
    INT_MUL = "INT multiply"
    INT_DIV = "INT divide"
    BRANCH = "branch"
    LOAD = "memory load"
    STORE = "memory store"
    FP_ALU = "FP ALU"
    FP_CVT = "FP conversion"
    FP_MUL = "FP multiply"
    FP_DIV = "FP divide"
    CONNECT = "connect"
    SYSTEM = "system"
    MISC = "misc"


class Opcode(enum.Enum):
    # Integer ALU.
    LI = "li"
    MOVE = "move"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    # Integer multiply / divide.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Floating point (all double precision, register pairs).
    LIF = "lif"
    FMOV = "fmov"
    FNEG = "fneg"
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FCMPEQ = "fcmpeq"
    FCMPLT = "fcmplt"
    FCMPLE = "fcmple"
    CVTIF = "cvtif"
    CVTFI = "cvtfi"
    # Memory.
    LOAD = "load"
    STORE = "store"
    FLOAD = "fload"
    FSTORE = "fstore"
    # Control transfer.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BLE = "ble"
    BGT = "bgt"
    BGE = "bge"
    BEQZ = "beqz"
    BNEZ = "bnez"
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    HALT = "halt"
    # Register connection (section 2.2).
    CUSE = "connect_use"
    CDEF = "connect_def"
    CUU = "connect_use_use"
    CDU = "connect_def_use"
    CDD = "connect_def_def"
    # System (section 4: traps, interrupts, context switching).
    TRAP = "trap"
    RTE = "rte"
    MFPSW = "mfpsw"
    MTPSW = "mtpsw"
    MFMAP = "mfmap"
    NOP = "nop"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Opcode.{self.name}"


@dataclass(frozen=True, slots=True)
class OpSpec:
    """Static metadata for one opcode.

    ``dest`` / ``srcs`` give the register class expected for the destination
    and each source operand (``None`` destination means the opcode writes no
    register).  Integer source slots also accept immediates.
    """

    opcode: "Opcode"
    category: Category
    dest: RClass | None = None
    srcs: tuple[RClass, ...] = ()
    uses_imm: bool = False
    uses_label: bool = False
    is_cond_branch: bool = False
    commutative: bool = False

    @property
    def is_branch(self) -> bool:
        return self.category is Category.BRANCH

    @property
    def is_mem(self) -> bool:
        return self.category in (Category.LOAD, Category.STORE)

    @property
    def is_connect(self) -> bool:
        return self.category is Category.CONNECT


_I = RClass.INT
_F = RClass.FP


def _int_alu(op: Opcode, nsrc: int = 2, commutative: bool = False) -> OpSpec:
    return OpSpec(op, Category.INT_ALU, dest=_I, srcs=(_I,) * nsrc,
                  commutative=commutative)


def _fp_alu(op: Opcode, nsrc: int = 2, dest: RClass = _F,
            commutative: bool = False) -> OpSpec:
    return OpSpec(op, Category.FP_ALU, dest=dest, srcs=(_F,) * nsrc,
                  commutative=commutative)


def _branch(op: Opcode, nsrc: int) -> OpSpec:
    return OpSpec(op, Category.BRANCH, srcs=(_I,) * nsrc, uses_label=True,
                  is_cond_branch=nsrc > 0)


SPECS: dict[Opcode, OpSpec] = {
    s.opcode: s
    for s in [
        OpSpec(Opcode.LI, Category.INT_ALU, dest=_I, uses_imm=True),
        OpSpec(Opcode.MOVE, Category.INT_ALU, dest=_I, srcs=(_I,)),
        _int_alu(Opcode.ADD, commutative=True),
        _int_alu(Opcode.SUB),
        _int_alu(Opcode.AND, commutative=True),
        _int_alu(Opcode.OR, commutative=True),
        _int_alu(Opcode.XOR, commutative=True),
        _int_alu(Opcode.SLL),
        _int_alu(Opcode.SRL),
        _int_alu(Opcode.SRA),
        _int_alu(Opcode.CMPEQ, commutative=True),
        _int_alu(Opcode.CMPNE, commutative=True),
        _int_alu(Opcode.CMPLT),
        _int_alu(Opcode.CMPLE),
        _int_alu(Opcode.CMPGT),
        _int_alu(Opcode.CMPGE),
        OpSpec(Opcode.MUL, Category.INT_MUL, dest=_I, srcs=(_I, _I),
               commutative=True),
        OpSpec(Opcode.DIV, Category.INT_DIV, dest=_I, srcs=(_I, _I)),
        OpSpec(Opcode.REM, Category.INT_DIV, dest=_I, srcs=(_I, _I)),
        OpSpec(Opcode.LIF, Category.MISC, dest=_F, uses_imm=True),
        _fp_alu(Opcode.FMOV, nsrc=1),
        _fp_alu(Opcode.FNEG, nsrc=1),
        _fp_alu(Opcode.FADD, commutative=True),
        _fp_alu(Opcode.FSUB),
        OpSpec(Opcode.FMUL, Category.FP_MUL, dest=_F, srcs=(_F, _F),
               commutative=True),
        OpSpec(Opcode.FDIV, Category.FP_DIV, dest=_F, srcs=(_F, _F)),
        _fp_alu(Opcode.FCMPEQ, dest=_I, commutative=True),
        _fp_alu(Opcode.FCMPLT, dest=_I),
        _fp_alu(Opcode.FCMPLE, dest=_I),
        OpSpec(Opcode.CVTIF, Category.FP_CVT, dest=_F, srcs=(_I,)),
        OpSpec(Opcode.CVTFI, Category.FP_CVT, dest=_I, srcs=(_F,)),
        OpSpec(Opcode.LOAD, Category.LOAD, dest=_I, srcs=(_I,), uses_imm=True),
        OpSpec(Opcode.STORE, Category.STORE, srcs=(_I, _I), uses_imm=True),
        OpSpec(Opcode.FLOAD, Category.LOAD, dest=_F, srcs=(_I,), uses_imm=True),
        OpSpec(Opcode.FSTORE, Category.STORE, srcs=(_F, _I), uses_imm=True),
        _branch(Opcode.BEQ, 2),
        _branch(Opcode.BNE, 2),
        _branch(Opcode.BLT, 2),
        _branch(Opcode.BLE, 2),
        _branch(Opcode.BGT, 2),
        _branch(Opcode.BGE, 2),
        _branch(Opcode.BEQZ, 1),
        _branch(Opcode.BNEZ, 1),
        _branch(Opcode.JMP, 0),
        OpSpec(Opcode.CALL, Category.BRANCH, uses_label=True),
        OpSpec(Opcode.RET, Category.BRANCH),
        OpSpec(Opcode.HALT, Category.SYSTEM),
        OpSpec(Opcode.CUSE, Category.CONNECT, uses_imm=True),
        OpSpec(Opcode.CDEF, Category.CONNECT, uses_imm=True),
        OpSpec(Opcode.CUU, Category.CONNECT, uses_imm=True),
        OpSpec(Opcode.CDU, Category.CONNECT, uses_imm=True),
        OpSpec(Opcode.CDD, Category.CONNECT, uses_imm=True),
        OpSpec(Opcode.TRAP, Category.SYSTEM, uses_imm=True),
        OpSpec(Opcode.RTE, Category.SYSTEM),
        OpSpec(Opcode.MFPSW, Category.SYSTEM, dest=_I),
        OpSpec(Opcode.MTPSW, Category.SYSTEM, srcs=(_I,)),
        OpSpec(Opcode.MFMAP, Category.SYSTEM, dest=_I, uses_imm=True),
        OpSpec(Opcode.NOP, Category.MISC),
    ]
}

#: Opcodes whose semantics transfer control.
CONTROL_OPS = frozenset(
    op for op, s in SPECS.items()
    if s.category is Category.BRANCH or op in (Opcode.HALT, Opcode.TRAP, Opcode.RTE)
)

#: Conditional branch opcodes, mapped to their negated form (used by the
#: compiler when flipping fall-through direction).
NEGATED_BRANCH: dict[Opcode, Opcode] = {
    Opcode.BEQ: Opcode.BNE,
    Opcode.BNE: Opcode.BEQ,
    Opcode.BLT: Opcode.BGE,
    Opcode.BLE: Opcode.BGT,
    Opcode.BGT: Opcode.BLE,
    Opcode.BGE: Opcode.BLT,
    Opcode.BEQZ: Opcode.BNEZ,
    Opcode.BNEZ: Opcode.BEQZ,
}

CONNECT_OPS = frozenset(
    (Opcode.CUSE, Opcode.CDEF, Opcode.CUU, Opcode.CDU, Opcode.CDD)
)


def spec(op: Opcode) -> OpSpec:
    """Return the :class:`OpSpec` for *op*."""
    return SPECS[op]


def ends_block(op: Opcode) -> bool:
    """Whether *op* terminates a machine basic block.

    Every control transfer ends a block, including CALL and TRAP (whose
    intraprocedural successor is the following instruction).
    """
    return op in CONTROL_OPS


def falls_through(op: Opcode) -> bool:
    """Whether control can continue to the next instruction after *op*.

    Unconditional jumps, returns, and halts never fall through; conditional
    branches, calls, and traps (whose handlers return via ``rte``) do.
    """
    return op not in (Opcode.JMP, Opcode.RET, Opcode.HALT, Opcode.RTE)
