"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class IRError(ReproError):
    """Malformed IR: verifier failures, bad operands, unknown blocks."""


class CompileError(ReproError):
    """The compiler could not produce machine code for a function."""


class AllocationError(CompileError):
    """Register allocation failed (e.g. no colorable solution after spills)."""


class SimulationError(ReproError):
    """The simulator reached an illegal state (bad PC, bad operands)."""


class SimulationFault(SimulationError):
    """A fault raised by the simulated program itself (e.g. divide by zero)."""


class CycleBudgetError(SimulationError):
    """The run exceeded its configured ``max_cycles`` budget.

    Distinguished from other simulation errors so budget-capped callers
    (the serve scheduler, fuzz harness) can classify the rejection without
    string-matching the message.
    """


class ConfigError(ReproError):
    """An experiment or machine configuration is inconsistent."""
