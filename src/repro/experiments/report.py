"""Text rendering of figure/table results."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def geomean(values: list[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class Series:
    """One labeled series of per-benchmark values."""

    label: str
    values: dict[str, float] = field(default_factory=dict)

    def geomean(self) -> float:
        return geomean(list(self.values.values()))


@dataclass
class FigureResult:
    """The regenerated data behind one figure or table of the paper."""

    fid: str
    title: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: one-line provenance footer (e.g. sweep cache counters), rendered
    #: after the notes and carried through the JSON export.
    footer: str | None = None

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def benchmarks(self) -> list[str]:
        names: list[str] = []
        for s in self.series:
            for name in s.values:
                if name not in names:
                    names.append(name)
        return names

    def to_rows(self) -> list[dict]:
        """Tabular form: one dict per benchmark plus a geomean row."""
        rows = []
        for name in self.benchmarks():
            row: dict = {"benchmark": name}
            for s in self.series:
                row[s.label] = s.values.get(name)
            rows.append(row)
        geo: dict = {"benchmark": "geomean"}
        for s in self.series:
            geo[s.label] = s.geomean()
        rows.append(geo)
        return rows

    def to_csv(self) -> str:
        """Render as CSV text (benchmark column first)."""
        import csv
        import io

        buffer = io.StringIO()
        fieldnames = ["benchmark"] + [s.label for s in self.series]
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(self.to_rows())
        return buffer.getvalue()

    def to_json(self) -> str:
        """Render as a JSON document with metadata and rows."""
        import json

        return json.dumps(
            {
                "figure": self.fid,
                "title": self.title,
                "series": [s.label for s in self.series],
                "rows": self.to_rows(),
                "notes": self.notes,
                "footer": self.footer,
            },
            indent=2,
        )

    def render(self, precision: int = 2) -> str:
        names = self.benchmarks()
        label_w = max([len("benchmark")] + [len(n) for n in names])
        col_w = max([10] + [len(s.label) + 1 for s in self.series])
        lines = [f"{self.fid}: {self.title}", ""]
        header = "benchmark".ljust(label_w) + "".join(
            s.label.rjust(col_w) for s in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name in names:
            row = name.ljust(label_w)
            for s in self.series:
                v = s.values.get(name)
                row += (f"{v:.{precision}f}".rjust(col_w)
                        if v is not None else "-".rjust(col_w))
            lines.append(row)
        lines.append("-" * len(header))
        row = "geomean".ljust(label_w)
        for s in self.series:
            row += f"{s.geomean():.{precision}f}".rjust(col_w)
        lines.append(row)
        for note in self.notes:
            lines.append(f"  note: {note}")
        if self.footer:
            lines.append(f"  [{self.footer}]")
        return "\n".join(lines)
