"""Experiment harness: figure/table regeneration for the paper's evaluation."""

from repro.experiments.figures import (
    ALL_FIGURES,
    ablation_cpistack,
    ablation_models,
    ablation_unroll,
    ablation_windows,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    table1,
)
from repro.experiments.executor import (
    JobResult,
    SweepExecutor,
    SweepJob,
    SweepStats,
    sweep_figures,
)
from repro.experiments.report import FigureResult, Series, geomean
from repro.experiments.runner import ExperimentRunner, RunRecord, code_fingerprint

__all__ = [
    "ALL_FIGURES",
    "ExperimentRunner",
    "FigureResult",
    "JobResult",
    "RunRecord",
    "Series",
    "SweepExecutor",
    "SweepJob",
    "SweepStats",
    "sweep_figures",
    "code_fingerprint",
    "ablation_cpistack",
    "ablation_models",
    "ablation_unroll",
    "ablation_windows",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "geomean",
    "table1",
]
