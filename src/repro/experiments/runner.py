"""Compile-and-simulate experiment runner with persistent caching.

One :class:`ExperimentRunner` owns a benchmark scale and a disk cache; every
(benchmark, machine configuration, optimization level) combination is
compiled, simulated, checksum-verified against the IR interpreter, and the
resulting record cached so the figure-regeneration benches are cheap to
re-run.

The speedup baseline follows paper section 5.3: "a single-issue processor
with an unlimited number of registers using conventional compiler scalar
optimizations."
"""

from __future__ import annotations

import dataclasses
import hashlib
import logging
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.compiler import CompileOptions, OptOptions, compile_module
from repro.errors import SimulationError
from repro.ir import run_module
from repro.isa import RClass
from repro.observe import CPIStack, Observer
from repro.sim import (
    MachineConfig,
    Simulator,
    resolve_engine,
    simulate,
    unlimited_machine,
)
from repro.workloads import workload

#: Environment variable scaling every benchmark's input size.
SCALE_ENV = "REPRO_SCALE"
CACHE_ENV = "REPRO_CACHE_DIR"

log = logging.getLogger(__name__)

#: Packages whose source determines cached results: editing any file under
#: them must invalidate every previously cached record.
FINGERPRINT_PACKAGES = ("repro.compiler", "repro.sim", "repro.workloads",
                        "repro.isa", "repro.ir", "repro.rc")

_fingerprint_cache: str | None = None


def code_fingerprint(refresh: bool = False) -> str:
    """A short hash of the cycle-affecting source tree.

    Every cache key embeds this fingerprint, so cached records invalidate
    automatically whenever the compiler, simulator, or workload code
    changes — no manual version bump to forget.
    """
    global _fingerprint_cache
    if _fingerprint_cache is not None and not refresh:
        return _fingerprint_cache
    import importlib

    digest = hashlib.sha256()
    for pkg_name in FINGERPRINT_PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for root in pkg.__path__:
            for path in sorted(Path(root).rglob("*.py")):
                digest.update(str(path.relative_to(root)).encode())
                digest.update(path.read_bytes())
    _fingerprint_cache = digest.hexdigest()[:16]
    return _fingerprint_cache


@dataclass(frozen=True)
class RunRecord:
    """The cached outcome of one compile+simulate experiment."""

    benchmark: str
    cycles: int
    instructions: int
    ipc: float
    checksum_ok: bool
    total_static: int
    program_static: int
    spill_static: int
    connect_static: int
    callsave_static: int
    spilled_vregs: int
    extended_vregs: int
    dyn_connects: int
    dyn_spills: int
    mispredicts: int
    #: CPI-stack attribution (:meth:`repro.observe.CPIStack.to_dict`),
    #: populated when the experiment ran with ``collect_cpi=True``.
    cpi: dict | None = None

    @property
    def code_size_increase(self) -> float:
        base = self.total_static - self.overhead_static
        return self.overhead_static / base if base else 0.0

    @property
    def overhead_static(self) -> int:
        return self.spill_static + self.connect_static + self.callsave_static

    @property
    def callsave_increase(self) -> float:
        base = self.total_static - self.overhead_static
        return self.callsave_static / base if base else 0.0


def _compile_key(config: MachineConfig) -> str:
    """The part of a config that can change *compilation* output.

    The scheduler is machine-aware (issue width, memory channels, the full
    latency table, the RC model's map-dependency ordering) and the register
    allocator sees both file specs, so all of those are compile-affecting.
    ``extra_decode_stage`` and ``max_cycles`` are simulate-only and live in
    :func:`_sim_key` — sweep points differing only in those reuse one
    compilation via the in-memory compiled-program cache.
    """
    lat = "-".join(str(v) for v in config.latency.field_tuple())
    return (
        f"iw{config.issue_width}.mc{config.mem_channels}"
        f".lat{lat}"
        f".int{config.int_spec.core}-{config.int_spec.total}"
        f".fp{config.fp_spec.core}-{config.fp_spec.total}"
        f".m{config.rc_model.value}"
    )


def _sim_key(config: MachineConfig) -> str:
    """The part of a config that only changes *simulation*, not compilation."""
    return f"x{int(config.extra_decode_stage)}.cy{config.max_cycles}"


def _config_key(config: MachineConfig) -> str:
    """A cache key covering *every* cycle-affecting configuration field.

    Composed of the compile-affecting and simulate-affecting parts, so two
    configs differing in any latency or limit can never share a cached
    record.
    """
    return f"{_compile_key(config)}.{_sim_key(config)}"


class ExperimentRunner:
    """Runs and caches benchmark experiments at a fixed input scale."""

    #: In-memory compiled-program cache size (FIFO eviction); sweep points
    #: differing only in simulate-affecting fields share one compilation.
    COMPILE_CACHE_CAP = 64

    def __init__(self, scale: int | None = None,
                 cache_dir: str | Path | None = None,
                 verify_checksums: bool = True,
                 engine: str | None = None) -> None:
        if scale is None:
            scale = int(os.environ.get(SCALE_ENV, "1"))
        self.scale = scale
        self.verify_checksums = verify_checksums
        self.engine = resolve_engine(engine)
        if cache_dir is None:
            cache_dir = os.environ.get(CACHE_ENV, ".repro_cache")
        self.cache_dir = Path(cache_dir)
        self._memory: dict[str, RunRecord] = {}
        self._golden: dict[str, int | float] = {}
        self._compiled: dict[tuple, tuple] = {}
        self._fingerprint = code_fingerprint()
        #: cache traffic counters, surfaced by the sweep executor.
        self.cache_hits = 0
        self.cache_misses = 0
        self.compile_hits = 0
        self.compile_misses = 0

    #: the counter attributes :meth:`counters` snapshots.
    COUNTER_FIELDS = ("cache_hits", "cache_misses",
                      "compile_hits", "compile_misses")

    def counters(self) -> dict[str, int]:
        """A snapshot of the cache traffic counters.

        Pool workers run jobs on *forked copies* of a runner, so counters
        they bump are invisible to the parent; callers that fan out take a
        snapshot around each remote job and ship the delta back (see
        :func:`repro.experiments.executor._run_job` and
        :meth:`absorb_counters`).
        """
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}

    def absorb_counters(self, delta: dict[str, int]) -> None:
        """Add a worker's counter delta into this (parent) runner."""
        for name in self.COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + delta.get(name, 0))

    # -- caching ---------------------------------------------------------------

    def _cache_path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode()).hexdigest()[:24]
        return self.cache_dir / f"{digest}.pkl"

    @staticmethod
    def _valid_record(record: object) -> bool:
        """Reject old-schema pickles that unpickle but lack newer fields."""
        if not isinstance(record, RunRecord):
            return False
        return all(hasattr(record, f.name)
                   for f in dataclasses.fields(RunRecord))

    def _load(self, key: str) -> RunRecord | None:
        record = self._memory.get(key)
        if record is not None:
            return record
        path = self._cache_path(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as fh:
                record = pickle.load(fh)
        except Exception:
            record = None
        if not self._valid_record(record):
            # Corrupt or old-schema: delete so it is not re-parsed on
            # every subsequent miss.
            log.warning("discarding unreadable cache file %s", path)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self._memory[key] = record
        return record

    def _store(self, key: str, record: RunRecord) -> None:
        self._memory[key] = record
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            # Atomic write (tmp + os.replace) so concurrent sweep workers
            # can never observe a torn pickle.
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(record, fh)
                os.replace(tmp, self._cache_path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # caching is best-effort

    # -- golden results ----------------------------------------------------------

    def golden_checksum(self, benchmark: str) -> int | float:
        if benchmark not in self._golden:
            m = workload(benchmark).module(self.scale)
            result = run_module(m)
            self._golden[benchmark] = result.load_word(
                m.global_addr("checksum"))
        return self._golden[benchmark]

    # -- running -------------------------------------------------------------------

    def cache_key(self, benchmark: str, config: MachineConfig,
                  opt_level: str = "ilp", unroll_factor: int = 4,
                  num_windows: int = 4, collect_cpi: bool = False) -> str:
        """The cache key for one experiment, including the code fingerprint.

        ``collect_cpi`` is accepted but deliberately excluded: observation
        has no effect on results (asserted by tests), so a record computed
        with CPI attribution satisfies lookups without it and vice versa —
        except that a CPI-requesting lookup of a CPI-less record recomputes
        (see :meth:`run`).
        """
        del collect_cpi
        return (f"{benchmark}.s{self.scale}.{_config_key(config)}"
                f".o{opt_level}.u{unroll_factor}.w{num_windows}"
                f".f{self._fingerprint}")

    def _compiled_program(self, benchmark: str, config: MachineConfig,
                          opt_level: str, unroll_factor: int,
                          num_windows: int) -> tuple:
        """Compile *benchmark* for *config*, memoized on the
        compile-affecting key.

        Sweep points that differ only in simulate-affecting fields
        (``extra_decode_stage``, ``max_cycles``) hit this cache and reuse
        one compilation — and, because the same ``MachineProgram`` object is
        returned, the fast engine's per-program code cache amortizes its
        specialization cost across those points too.
        """
        ckey = (benchmark, _compile_key(config), opt_level, unroll_factor,
                num_windows)
        hit = self._compiled.get(ckey)
        if hit is not None:
            self.compile_hits += 1
            return hit
        self.compile_misses += 1
        module = workload(benchmark).module(self.scale)
        from repro.compiler.regalloc.allocator import AllocationOptions

        options = CompileOptions(
            opt=OptOptions(level=opt_level, unroll_factor=unroll_factor),
            alloc=AllocationOptions(num_windows=num_windows),
        )
        out = compile_module(module, config, options)
        if len(self._compiled) >= self.COMPILE_CACHE_CAP:
            self._compiled.pop(next(iter(self._compiled)))
        self._compiled[ckey] = (module, out)
        return module, out

    def cached(self, benchmark: str, config: MachineConfig,
               collect_cpi: bool = False, **kwargs) -> RunRecord | None:
        """Return the cached record for one experiment, or None (no compute,
        no counter traffic)."""
        record = self._load(self.cache_key(benchmark, config, **kwargs))
        if record is not None and collect_cpi and record.cpi is None:
            return None
        return record

    def run(self, benchmark: str, config: MachineConfig,
            opt_level: str = "ilp", unroll_factor: int = 4,
            num_windows: int = 4, collect_cpi: bool = False) -> RunRecord:
        """Compile and simulate one benchmark; cached.

        ``collect_cpi=True`` attaches a per-cause cycle attribution
        (:attr:`RunRecord.cpi`) collected by an aggregate-only observer; a
        cached record without one is recomputed (and upgraded in place).
        """
        key = self.cache_key(benchmark, config, opt_level=opt_level,
                             unroll_factor=unroll_factor,
                             num_windows=num_windows)
        record = self._load(key)
        if record is not None and (record.cpi is not None or not collect_cpi):
            self.cache_hits += 1
            return record
        self.cache_misses += 1

        module, out = self._compiled_program(
            benchmark, config, opt_level, unroll_factor, num_windows)
        observer = None
        if collect_cpi:
            observer = Observer(keep_events=False)
            result = Simulator(out.program, config, observer=observer).run()
        else:
            result = simulate(out.program, config, engine=self.engine)
        record = self._make_record(benchmark, config, module, out, result,
                                   observer)
        self._store(key, record)
        return record

    def _verify(self, benchmark: str, config: MachineConfig, module, out,
                result) -> bool:
        """Checksum-verify one simulation result; raises on mismatch."""
        addr = module.global_addr("checksum")
        got = result.load_word(addr)
        # The compiled program must reproduce the optimized module's
        # interpretation exactly...
        want = out.interp.load_word(addr)
        if got != want:
            raise SimulationError(
                f"{benchmark} on {config.describe()}: checksum mismatch "
                f"({got!r} != {want!r})"
            )
        # ...and the optimized module may differ from the original only
        # by FP-reassociation rounding.
        original = self.golden_checksum(benchmark)
        if isinstance(original, float):
            drift = abs(want - original) / max(abs(original), 1e-30)
            if drift > 1e-9:
                raise SimulationError(
                    f"{benchmark}: optimization drifted the FP checksum "
                    f"by {drift:.2e}"
                )
        elif want != original:
            raise SimulationError(
                f"{benchmark}: optimization changed the integer checksum "
                f"({want!r} != {original!r})"
            )
        return True

    def _make_record(self, benchmark: str, config: MachineConfig, module,
                     out, result, observer=None) -> RunRecord:
        checksum_ok = True
        if self.verify_checksums:
            checksum_ok = self._verify(benchmark, config, module, out, result)
        stats = out.stats
        return RunRecord(
            benchmark=benchmark,
            cycles=result.cycles,
            instructions=result.stats.instructions,
            ipc=result.stats.ipc,
            checksum_ok=checksum_ok,
            total_static=stats.total_instructions,
            program_static=stats.program_instructions,
            spill_static=stats.spill_instructions,
            connect_static=stats.connect_instructions,
            callsave_static=stats.callsave_instructions,
            spilled_vregs=stats.spilled_vregs,
            extended_vregs=stats.extended_vregs,
            dyn_connects=result.stats.by_origin.get("connect", 0),
            dyn_spills=result.stats.by_origin.get("spill", 0),
            mispredicts=result.stats.mispredicts,
            cpi=(CPIStack.from_observer(observer, result.stats).to_dict()
                 if observer is not None else None),
        )

    def run_gang(self, benchmark: str, configs: list[MachineConfig],
                 opt_level: str = "ilp", unroll_factor: int = 4,
                 num_windows: int = 4,
                 ) -> list[tuple[RunRecord | None, str | None]]:
        """Compile once and simulate *configs* as one lockstep gang.

        Every config must share the benchmark's :func:`_compile_key` (the
        sweep executor groups points that way), so one compilation serves
        the whole gang and :func:`repro.sim.simulate_gang` steps all points
        in a single pass.  Returns ``(record, error)`` per slot in input
        order: a slot that faults or exhausts its budget carries the error
        string (matching what :meth:`run` would have raised) without
        disturbing the other slots.  Successful slots land in the cache
        exactly as :meth:`run` would store them.
        """
        from repro.sim import simulate_gang

        keys = {_compile_key(c) for c in configs}
        if len(keys) > 1:
            raise ValueError(f"gang configs span {len(keys)} compile keys")
        outcomes: list[tuple[RunRecord | None, str | None]] = []
        try:
            module, out = self._compiled_program(
                benchmark, configs[0], opt_level, unroll_factor, num_windows)
            gang = simulate_gang(out.program, configs)
        except Exception as exc:  # noqa: BLE001 - surfaced per slot
            err = f"{type(exc).__name__}: {exc}"
            return [(None, err) for _ in configs]
        for config, slot in zip(configs, gang):
            self.cache_misses += 1
            if slot.error is not None:
                exc = slot.error
                outcomes.append((None, f"{type(exc).__name__}: {exc}"))
                continue
            try:
                record = self._make_record(benchmark, config, module, out,
                                           slot.result)
            except Exception as exc:  # noqa: BLE001 - surfaced per slot
                outcomes.append((None, f"{type(exc).__name__}: {exc}"))
                continue
            key = self.cache_key(benchmark, config, opt_level=opt_level,
                                 unroll_factor=unroll_factor,
                                 num_windows=num_windows)
            self._store(key, record)
            outcomes.append((record, None))
        return outcomes

    # -- paper-style derived quantities ------------------------------------------

    def baseline_cycles(self, benchmark: str) -> int:
        """Cycles on the paper's speedup-baseline machine."""
        return self.run(benchmark, unlimited_machine(issue_width=1),
                        opt_level="scalar").cycles

    def speedup(self, benchmark: str, config: MachineConfig,
                **kwargs) -> float:
        record = self.run(benchmark, config, **kwargs)
        return self.baseline_cycles(benchmark) / record.cycles

    def rc_class_for(self, benchmark: str) -> RClass:
        """Which register file receives RC for this benchmark (section 5.2)."""
        return RClass.INT if workload(benchmark).kind == "int" else RClass.FP
