"""Regeneration of every table and figure in the paper's evaluation.

Each ``figureN`` function sweeps the same parameter space as the paper's
figure and returns a :class:`~repro.experiments.report.FigureResult` whose
series hold per-benchmark values (speedups over the single-issue
unlimited-register scalar-optimization baseline, or code-size percentages
for Figure 9).  Absolute values differ from the paper's — the benchmarks are
synthetic reimplementations at reduced scale — but the comparisons the paper
draws (who wins, how trends move with registers/issue rate/latency) are the
reproduction targets; see EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.experiments.report import FigureResult, Series
from repro.experiments.runner import ExperimentRunner
from repro.isa import RClass, table1_rows
from repro.rc import RCModel
from repro.sim import paper_machine, unlimited_machine
from repro.workloads import ALL_BENCHMARKS, workload

#: Core-size sweep: integer file sizes paired with FP file sizes (FP doubles
#: occupy register pairs, hence the doubled axis; paper section 5.2).
SIZE_PAIRS = ((8, 16), (16, 32), (24, 48), (32, 64), (64, 128))
ISSUE_RATES = (1, 2, 4, 8)


def _config(benchmark: str, *, rc: bool, int_core: int = 64,
            fp_core: int = 64, issue: int = 4, load: int = 2,
            channels: int | None = None, connect: int = 0,
            extra_stage: bool = False,
            model: RCModel = RCModel.WRITE_RESET_READ_UPDATE):
    """A paper-style config: RC (if any) applies to the benchmark's hot
    register class; the other file is fixed at 64 (section 5.2)."""
    kind = workload(benchmark).kind
    rc_class = None
    if rc:
        rc_class = RClass.INT if kind == "int" else RClass.FP
    return paper_machine(
        issue_width=issue,
        load_latency=load,
        int_core=int_core if kind == "int" else 64,
        fp_core=fp_core if kind == "fp" else 64,
        rc_class=rc_class,
        connect_latency=connect,
        extra_decode_stage=extra_stage,
        mem_channels=channels,
        rc_model=model,
    )


def _core_sizes(benchmark: str, pair: tuple[int, int]) -> dict:
    return {"int_core": pair[0], "fp_core": pair[1]}


def table1() -> FigureResult:
    fig = FigureResult("Table 1", "Instruction latencies")
    s = Series("cycles")
    for name, latency in table1_rows():
        try:
            s.values[name] = float(latency)
        except ValueError:
            s.values[name] = float(latency.split("/")[0].split()[0])
        fig.notes.append(f"{name}: {latency}")
    fig.series.append(s)
    return fig


def figure7(runner: ExperimentRunner,
            benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Speedup with unlimited registers, issue rates 1/2/4/8 (memory
    channels 2/2/2/4)."""
    fig = FigureResult("Figure 7",
                       "Speedup, unlimited registers, varying issue rate")
    for issue in ISSUE_RATES:
        s = Series(f"{issue}-issue")
        cfg = unlimited_machine(issue_width=issue)
        for name in benchmarks:
            s.values[name] = runner.speedup(name, cfg)
        fig.series.append(s)
    return fig


def figure8(runner: ExperimentRunner,
            benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Speedup vs number of core registers, 4-issue, 2-cycle loads,
    with and without RC, plus the unlimited reference."""
    fig = FigureResult(
        "Figure 8",
        "Speedup vs core registers (4-issue, 2-cycle loads); sizes are "
        "int/fp core counts",
    )
    for pair in SIZE_PAIRS:
        for rc in (False, True):
            tag = "RC" if rc else "no"
            s = Series(f"{tag}-{pair[0]}/{pair[1]}")
            for name in benchmarks:
                cfg = _config(name, rc=rc, **_core_sizes(name, pair))
                s.values[name] = runner.speedup(name, cfg)
            fig.series.append(s)
    unl = Series("unlimited")
    for name in benchmarks:
        unl.values[name] = runner.speedup(name, unlimited_machine(4))
    fig.series.append(unl)
    return fig


def figure9(runner: ExperimentRunner,
            benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Percent code-size increase after register allocation, same sweep as
    Figure 8; the with-RC number splits out the save/restore (black bar)
    share at procedure calls."""
    fig = FigureResult(
        "Figure 9",
        "% code size increase due to spill/connect code (4-issue)",
    )
    for pair in SIZE_PAIRS:
        wo = Series(f"no-{pair[0]}/{pair[1]}")
        rc = Series(f"RC-{pair[0]}/{pair[1]}")
        save = Series(f"RCsave-{pair[0]}/{pair[1]}")
        for name in benchmarks:
            rec = runner.run(name, _config(name, rc=False,
                                           **_core_sizes(name, pair)))
            wo.values[name] = 100.0 * rec.code_size_increase
            rec = runner.run(name, _config(name, rc=True,
                                           **_core_sizes(name, pair)))
            rc.values[name] = 100.0 * rec.code_size_increase
            save.values[name] = 100.0 * rec.callsave_increase
        fig.series.extend([wo, rc, save])
    return fig


def _fixed_pressure_config(benchmark: str, *, rc: bool, issue: int,
                           load: int, **kwargs):
    """Figures 10-13 fix 16 core integer registers (integer benchmarks) and
    32 core FP registers (FP benchmarks)."""
    return _config(benchmark, rc=rc, int_core=16, fp_core=32, issue=issue,
                   load=load, **kwargs)


def _issue_rate_figure(runner: ExperimentRunner, load: int, fid: str,
                       benchmarks) -> FigureResult:
    fig = FigureResult(
        fid,
        f"Speedup, {load}-cycle loads, 16 int / 32 fp core registers, "
        "varying issue rate",
    )
    for issue in (2, 4, 8):
        for rc in (False, True):
            tag = "RC" if rc else "no"
            s = Series(f"{tag}-{issue}i")
            for name in benchmarks:
                cfg = _fixed_pressure_config(name, rc=rc, issue=issue,
                                             load=load)
                s.values[name] = runner.speedup(name, cfg)
            fig.series.append(s)
        unl = Series(f"unl-{issue}i")
        for name in benchmarks:
            unl.values[name] = runner.speedup(
                name, unlimited_machine(issue_width=issue,
                                        load_latency=load))
        fig.series.append(unl)
    return fig


def figure10(runner: ExperimentRunner,
             benchmarks=ALL_BENCHMARKS) -> FigureResult:
    return _issue_rate_figure(runner, 2, "Figure 10", benchmarks)


def figure11(runner: ExperimentRunner,
             benchmarks=ALL_BENCHMARKS) -> FigureResult:
    return _issue_rate_figure(runner, 4, "Figure 11", benchmarks)


def figure12(runner: ExperimentRunner,
             benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """RC implementation scenarios: {0,1}-cycle connects x {no extra,
    extra} mapping-table pipeline stage (4-issue, 2-cycle loads)."""
    fig = FigureResult(
        "Figure 12",
        "Speedup by RC implementation scenario (4-issue, 2-cycle loads)",
    )
    scenarios = [
        ("c0", dict(connect=0, extra_stage=False)),
        ("c0+stage", dict(connect=0, extra_stage=True)),
        ("c1", dict(connect=1, extra_stage=False)),
        ("c1+stage", dict(connect=1, extra_stage=True)),
    ]
    for label, kw in scenarios:
        s = Series(label)
        for name in benchmarks:
            cfg = _fixed_pressure_config(name, rc=True, issue=4, load=2, **kw)
            s.values[name] = runner.speedup(name, cfg)
        fig.series.append(s)
    return fig


def figure13(runner: ExperimentRunner,
             benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Memory channels 2 -> 4 vs the RC method (4-issue, 2- and 4-cycle
    loads)."""
    fig = FigureResult(
        "Figure 13",
        "Speedup, varying memory channels and RC (4-issue)",
    )
    for load in (2, 4):
        for rc in (False, True):
            for channels in (2, 4):
                tag = "RC" if rc else "no"
                s = Series(f"{tag}-{channels}ch-ld{load}")
                for name in benchmarks:
                    cfg = _fixed_pressure_config(name, rc=rc, issue=4,
                                                 load=load, channels=channels)
                    s.values[name] = runner.speedup(name, cfg)
                fig.series.append(s)
        unl = Series(f"unl-2ch-ld{load}")
        for name in benchmarks:
            unl.values[name] = runner.speedup(
                name, unlimited_machine(issue_width=4, load_latency=load,
                                        mem_channels=2))
        fig.series.append(unl)
    return fig


def ablation_models(runner: ExperimentRunner,
                    benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Ours: compare the four automatic-reset models of section 2.3."""
    fig = FigureResult(
        "Ablation A",
        "Speedup by RC reset model (4-issue, 2-cycle loads, 16/32 cores)",
    )
    for model in RCModel:
        s = Series(f"model-{model.value}")
        for name in benchmarks:
            cfg = _fixed_pressure_config(name, rc=True, issue=4, load=2,
                                         model=model)
            s.values[name] = runner.speedup(name, cfg)
        fig.series.append(s)
    return fig


def ablation_windows(runner: ExperimentRunner,
                     benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Ours: sensitivity to the number of reserved connection windows."""
    fig = FigureResult(
        "Ablation B",
        "Speedup by connection-window count (4-issue, 2-cycle loads)",
    )
    for windows in (2, 3, 4, 6):
        s = Series(f"win-{windows}")
        for name in benchmarks:
            cfg = _fixed_pressure_config(name, rc=True, issue=4, load=2)
            s.values[name] = runner.speedup(name, cfg, num_windows=windows)
        fig.series.append(s)
    return fig


def ablation_unroll(runner: ExperimentRunner,
                    benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Ours: the paper's closing claim — "as new code parallelization
    methods become available, we expect that the RC method will become
    beneficial for architectures with 32 or more registers."

    Probe: 8-issue, 32 int / 64 fp core registers, unroll factor 2/4/8
    (deeper unrolling stands in for stronger parallelization)."""
    fig = FigureResult(
        "Ablation C",
        "Speedup vs unroll factor at 32/64 core registers (8-issue)",
    )
    for unroll in (2, 4, 8):
        for rc in (False, True):
            tag = "RC" if rc else "no"
            s = Series(f"{tag}-u{unroll}")
            for name in benchmarks:
                cfg = _config(name, rc=rc, int_core=32, fp_core=64, issue=8)
                s.values[name] = runner.speedup(name, cfg,
                                                unroll_factor=unroll)
            fig.series.append(s)
    return fig


def ablation_cpistack(runner: ExperimentRunner,
                      benchmarks=ALL_BENCHMARKS) -> FigureResult:
    """Ours: CPI stack — where each machine's cycles per instruction go.

    For every benchmark, the no-RC and RC machines (4-issue, 2-cycle loads,
    16/32 core registers) are decomposed into issue / RAW-interlock /
    map-busy / redirect CPI contributions; stacking one machine's four
    series reproduces its total CPI exactly (the attribution is reconciled
    bit-exactly against ``SimStats`` by the observer layer)."""
    fig = FigureResult(
        "Ablation D",
        "CPI stack by cycle cause (4-issue, 2-cycle loads, 16/32 cores); "
        "stack one machine's series to recover its CPI",
    )
    components = ("issue", "raw_interlock", "map_busy", "redirect")
    for rc in (False, True):
        tag = "RC" if rc else "no"
        series = {c: Series(f"{tag}-{c}") for c in components}
        for name in benchmarks:
            cfg = _fixed_pressure_config(name, rc=rc, issue=4, load=2)
            cpi = runner.run(name, cfg, collect_cpi=True).cpi
            instrs = cpi["instructions"] or 1
            series["issue"].values[name] = cpi["issue"] / instrs
            series["raw_interlock"].values[name] = (
                cpi["raw_interlock"] / instrs)
            series["map_busy"].values[name] = cpi["map_busy"] / instrs
            series["redirect"].values[name] = (
                sum(cpi["redirect"].values()) / instrs)
        fig.series.extend(series.values())
    return fig


ALL_FIGURES = {
    "table1": lambda runner, benchmarks=ALL_BENCHMARKS: table1(),
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "ablation_cpistack": ablation_cpistack,
    "ablation_models": ablation_models,
    "ablation_windows": ablation_windows,
    "ablation_unroll": ablation_unroll,
}
