"""Parallel, observable execution of compile+simulate sweeps.

Every figure of the reproduction is a sweep of benchmarks × machine
configurations through :class:`~repro.experiments.runner.ExperimentRunner`.
The :class:`SweepExecutor` fans those (benchmark, config, options) jobs out
over a :class:`concurrent.futures.ProcessPoolExecutor` — worker count from
``REPRO_JOBS``, default ``os.cpu_count()`` — with per-job timing, cache
hit/miss/error counters, and an optional progress callback so long sweeps
are observable instead of silent.

Correctness relies on the runner's cache layer: records are keyed on the
code fingerprint plus every cycle-affecting config field, and written
atomically, so concurrent workers sharing one cache directory can never
tear or cross-contaminate records.  A parallel sweep therefore produces
records identical to the serial path.
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass

from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import FigureResult
from repro.experiments.runner import ExperimentRunner, RunRecord, _compile_key
from repro.observe import merge_cpi, stall_mix_summary
from repro.sim import MachineConfig
from repro.workloads import ALL_BENCHMARKS

#: Environment variable selecting the sweep worker count.
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS``, defaulting to the CPU count."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass(frozen=True)
class SweepJob:
    """One (benchmark, machine configuration, compile options) experiment."""

    benchmark: str
    config: MachineConfig
    opt_level: str = "ilp"
    unroll_factor: int = 4
    num_windows: int = 4
    #: also collect the per-cause CPI stack (observer in aggregate mode).
    collect_cpi: bool = False

    def kwargs(self) -> dict:
        return {
            "opt_level": self.opt_level,
            "unroll_factor": self.unroll_factor,
            "num_windows": self.num_windows,
            "collect_cpi": self.collect_cpi,
        }


@dataclass
class JobResult:
    """The outcome of one sweep job."""

    job: SweepJob
    record: RunRecord | None
    from_cache: bool
    elapsed: float
    error: str | None = None


@dataclass
class SweepStats:
    """Aggregate counters for one executor's lifetime."""

    jobs: int = 0
    hits: int = 0
    misses: int = 0
    errors: int = 0
    elapsed: float = 0.0
    #: summed per-job compute seconds (> elapsed when workers overlap).
    job_seconds: float = 0.0
    workers: int = 1
    #: compile-dedup groups with more than one point (each compiled once).
    groups: int = 0
    #: jobs that rode a shared compilation instead of compiling themselves.
    grouped_jobs: int = 0
    #: lockstep gang runs dispatched through the batched engine.
    gangs: int = 0
    gang_points: int = 0
    max_gang: int = 0

    def summary(self) -> str:
        text = (
            f"sweep: {self.jobs} jobs, {self.hits} cache hits, "
            f"{self.misses} misses, {self.errors} errors, "
            f"{self.elapsed:.2f}s wall ({self.job_seconds:.2f}s compute, "
            f"{self.workers} workers)"
        )
        if self.groups:
            text += (f"; {self.groups} compile groups "
                     f"({self.grouped_jobs} grouped jobs)")
        if self.gangs:
            text += (f"; {self.gangs} gangs ({self.gang_points} points, "
                     f"gang_size max {self.max_gang})")
        return text


# -- worker side -----------------------------------------------------------------

#: Per-worker-process runner memo, keyed on (scale, cache_dir, verify): one
#: runner per pool worker reuses golden checksums and the in-memory cache
#: across the jobs that land on it.
_worker_runners: dict[tuple, ExperimentRunner] = {}


def _run_job(scale: int, cache_dir: str, verify: bool, engine: str,
             job: SweepJob) -> tuple[RunRecord, float, dict]:
    """Run one job in a worker; returns the record, the elapsed time, and
    the worker runner's cache-counter *delta* for this job.

    The delta matters because pool workers mutate forked (or freshly
    constructed) runners the parent never sees: the parent aggregates these
    per-job deltas so its hit/miss totals stay truthful under ``jobs>1``.
    """
    key = (scale, cache_dir, verify, engine)
    runner = _worker_runners.get(key)
    if runner is None:
        runner = ExperimentRunner(scale=scale, cache_dir=cache_dir,
                                  verify_checksums=verify, engine=engine)
        _worker_runners[key] = runner
    before = runner.counters()
    start = time.perf_counter()
    record = runner.run(job.benchmark, job.config, **job.kwargs())
    elapsed = time.perf_counter() - start
    after = runner.counters()
    delta = {name: after[name] - before[name] for name in after}
    return record, elapsed, delta


def _gang_eligible(engine: str, group: list[SweepJob]) -> bool:
    """Gang a compile group when the batched engine is selected, the group
    has more than one point, and no point needs a CPI observer (attribution
    requires the reference engine)."""
    return (engine == "batched" and len(group) > 1
            and not any(job.collect_cpi for job in group))


def _run_group(scale: int, cache_dir: str, verify: bool, engine: str,
               group: list[SweepJob]
               ) -> tuple[list[tuple[RunRecord | None, float, str | None]],
                          dict, int]:
    """Run one compile group in a worker: every job shares a `_compile_key`,
    so the group compiles once (warm compile memo) — and under the batched
    engine the whole group simulates as one lockstep gang.

    Returns per-job ``(record, elapsed, error)`` in group order, the
    runner's counter delta, and the gang size used (0 = per-job runs).
    """
    key = (scale, cache_dir, verify, engine)
    runner = _worker_runners.get(key)
    if runner is None:
        runner = ExperimentRunner(scale=scale, cache_dir=cache_dir,
                                  verify_checksums=verify, engine=engine)
        _worker_runners[key] = runner
    before = runner.counters()
    out: list[tuple[RunRecord | None, float, str | None]] = []
    gang_n = 0
    if _gang_eligible(engine, group):
        gang_n = len(group)
        start = time.perf_counter()
        outcomes = runner.run_gang(
            group[0].benchmark, [job.config for job in group],
            opt_level=group[0].opt_level,
            unroll_factor=group[0].unroll_factor,
            num_windows=group[0].num_windows)
        share = (time.perf_counter() - start) / len(group)
        out = [(record, share, error) for record, error in outcomes]
    else:
        for job in group:
            start = time.perf_counter()
            record, error = None, None
            try:
                record = runner.run(job.benchmark, job.config, **job.kwargs())
            except Exception as exc:  # noqa: BLE001 - surfaced per job
                error = f"{type(exc).__name__}: {exc}"
            out.append((record, time.perf_counter() - start, error))
    after = runner.counters()
    delta = {name: after[name] - before[name] for name in after}
    return out, delta, gang_n


# -- job collection (figure prewarm) ----------------------------------------------

_DUMMY = RunRecord(
    benchmark="", cycles=1, instructions=1, ipc=1.0, checksum_ok=True,
    total_static=1, program_static=1, spill_static=0, connect_static=0,
    callsave_static=0, spilled_vregs=0, extended_vregs=0, dyn_connects=0,
    dyn_spills=0, mispredicts=0,
    cpi={"cycles": 1, "instructions": 1, "issue": 1, "raw_interlock": 0,
         "map_busy": 0, "redirect": {}, "stall_by_origin": {},
         "stall_by_category": {}, "stall_by_reg": {}, "mem_slot_stalls": 0,
         "connects": 0, "zero_cycle_connects": 0, "zero_cycle_forwards": 0},
)


class _JobCollector:
    """An :class:`ExperimentRunner` stand-in that records the jobs a figure
    function would run (returning dummy values) instead of computing them."""

    def __init__(self, runner: ExperimentRunner) -> None:
        self._runner = runner
        self.jobs: list[SweepJob] = []
        self._seen: dict[str, int] = {}

    def run(self, benchmark: str, config: MachineConfig,
            opt_level: str = "ilp", unroll_factor: int = 4,
            num_windows: int = 4, collect_cpi: bool = False) -> RunRecord:
        job = SweepJob(benchmark, config, opt_level, unroll_factor,
                       num_windows, collect_cpi)
        key = self._runner.cache_key(benchmark, config, **job.kwargs())
        if key not in self._seen:
            self._seen[key] = len(self.jobs)
            self.jobs.append(job)
        elif collect_cpi:
            # The same experiment was first requested without attribution:
            # upgrade it so the prewarmed record satisfies both lookups.
            index = self._seen[key]
            if not self.jobs[index].collect_cpi:
                self.jobs[index] = dataclasses.replace(self.jobs[index],
                                                       collect_cpi=True)
        return _DUMMY

    def baseline_cycles(self, benchmark: str) -> int:
        from repro.sim import unlimited_machine

        return self.run(benchmark, unlimited_machine(issue_width=1),
                        opt_level="scalar").cycles

    def speedup(self, benchmark: str, config: MachineConfig,
                **kwargs) -> float:
        self.baseline_cycles(benchmark)
        self.run(benchmark, config, **kwargs)
        return 1.0

    def rc_class_for(self, benchmark: str):
        return self._runner.rc_class_for(benchmark)

    @property
    def scale(self) -> int:
        return self._runner.scale


# -- the executor -----------------------------------------------------------------

class SweepExecutor:
    """Runs sweep jobs in parallel, filling the runner's cache.

    ``progress``, when given, is called as ``progress(done, total, result)``
    after every completed job (cache hits included).
    """

    def __init__(self, runner: ExperimentRunner | None = None,
                 jobs: int | None = None, progress=None,
                 collect_cpi: bool = False) -> None:
        self.runner = runner if runner is not None else ExperimentRunner()
        self.jobs = jobs if jobs is not None else default_jobs()
        self.progress = progress
        #: collect per-job CPI stacks and append the aggregate stall-cause
        #: composition to figure footers.
        self.collect_cpi = collect_cpi
        self.stats = SweepStats(workers=max(1, self.jobs))

    # -- core fan-out -------------------------------------------------------------

    def run(self, jobs: list[SweepJob]) -> list[JobResult]:
        """Execute every job; returns results in input order."""
        if self.collect_cpi:
            jobs = [job if job.collect_cpi
                    else dataclasses.replace(job, collect_cpi=True)
                    for job in jobs]
        start = time.perf_counter()
        total = len(jobs)
        self.stats.jobs += total
        results: list[JobResult | None] = [None] * total
        done = 0

        # Resolve cache hits up front, in the parent, so only real work is
        # shipped to the pool.
        pending: list[int] = []
        for i, job in enumerate(jobs):
            record = self.runner.cached(job.benchmark, job.config,
                                        **job.kwargs())
            if record is not None:
                self.runner.cache_hits += 1
                self.stats.hits += 1
                results[i] = JobResult(job, record, True, 0.0)
                done += 1
                self._notify(done, total, results[i])
            else:
                pending.append(i)

        if pending:
            if self.jobs <= 1:
                done = self._run_serial(jobs, pending, results, done, total)
            else:
                done = self._run_pool(jobs, pending, results, done, total)

        self.stats.elapsed += time.perf_counter() - start
        return [r for r in results if r is not None]

    def _finish(self, i: int, job: SweepJob, record: RunRecord | None,
                elapsed: float, error: str | None,
                results: list, done: int, total: int) -> int:
        self.stats.job_seconds += elapsed
        if error is not None:
            self.stats.errors += 1
        else:
            self.stats.misses += 1
        results[i] = JobResult(job, record, False, elapsed, error)
        done += 1
        self._notify(done, total, results[i])
        return done

    def _group_pending(self, jobs, pending) -> list[list[int]]:
        """Group pending job indices by compile-affecting key.

        Points sharing a ``(benchmark, _compile_key, opt options)`` tuple
        compile identically: each group lands on one worker so the compile
        memo serves the whole group, and under the batched engine the group
        simulates as one gang.  Bumps the grouping counters.
        """
        by_key: dict[tuple, list[int]] = {}
        for i in pending:
            job = jobs[i]
            key = (job.benchmark, _compile_key(job.config), job.opt_level,
                   job.unroll_factor, job.num_windows)
            by_key.setdefault(key, []).append(i)
        groups = list(by_key.values())
        for group in groups:
            if len(group) > 1:
                self.stats.groups += 1
                self.stats.grouped_jobs += len(group) - 1
        return groups

    def _count_gang(self, size: int) -> None:
        if size:
            self.stats.gangs += 1
            self.stats.gang_points += size
            self.stats.max_gang = max(self.stats.max_gang, size)

    def _run_serial(self, jobs, pending, results, done, total) -> int:
        runner = self.runner
        for idxs in self._group_pending(jobs, pending):
            group = [jobs[i] for i in idxs]
            if _gang_eligible(runner.engine, group):
                self._count_gang(len(group))
                start = time.perf_counter()
                outcomes = runner.run_gang(
                    group[0].benchmark, [job.config for job in group],
                    opt_level=group[0].opt_level,
                    unroll_factor=group[0].unroll_factor,
                    num_windows=group[0].num_windows)
                share = (time.perf_counter() - start) / len(group)
                for i, (record, error) in zip(idxs, outcomes):
                    done = self._finish(i, jobs[i], record, share, error,
                                        results, done, total)
                continue
            for i in idxs:
                job = jobs[i]
                start = time.perf_counter()
                record, error = None, None
                try:
                    record = runner.run(job.benchmark, job.config,
                                        **job.kwargs())
                except Exception as exc:  # noqa: BLE001 - surfaced per job
                    error = f"{type(exc).__name__}: {exc}"
                done = self._finish(i, job, record,
                                    time.perf_counter() - start,
                                    error, results, done, total)
        return done

    def _run_pool(self, jobs, pending, results, done, total) -> int:
        runner = self.runner
        groups = self._group_pending(jobs, pending)
        workers = min(self.jobs, len(groups))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_group, runner.scale, str(runner.cache_dir),
                            runner.verify_checksums, runner.engine,
                            [jobs[i] for i in idxs]): idxs
                for idxs in groups
            }
            outstanding = set(futures)
            while outstanding:
                finished, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                for fut in finished:
                    idxs = futures[fut]
                    try:
                        outcomes, delta, gang_n = fut.result()
                    except Exception as exc:  # noqa: BLE001
                        error = f"{type(exc).__name__}: {exc}"
                        outcomes = [(None, 0.0, error) for _ in idxs]
                        delta, gang_n = None, 0
                    self._count_gang(gang_n)
                    if delta is not None:
                        # Fold the worker's counter delta into the parent
                        # runner (the forked worker's own counters are
                        # invisible here).
                        runner.absorb_counters(delta)
                    for i, (record, elapsed, error) in zip(idxs, outcomes):
                        if record is not None:
                            # Adopt the worker's record so later
                            # parent-side lookups hit memory, not disk.
                            key = runner.cache_key(jobs[i].benchmark,
                                                   jobs[i].config,
                                                   **jobs[i].kwargs())
                            runner._memory[key] = record
                        done = self._finish(i, jobs[i], record, elapsed,
                                            error, results, done, total)
        return done

    def _notify(self, done: int, total: int, result: JobResult) -> None:
        if self.progress is not None:
            self.progress(done, total, result)

    # -- figure-level driver ------------------------------------------------------

    def collect_jobs(self, figure_fn, benchmarks=ALL_BENCHMARKS
                     ) -> list[SweepJob]:
        """The deduplicated job list a figure function would run."""
        collector = _JobCollector(self.runner)
        figure_fn(collector, benchmarks=benchmarks)
        jobs = collector.jobs
        if self.collect_cpi:
            jobs = [dataclasses.replace(job, collect_cpi=True)
                    for job in jobs]
        return jobs

    def run_figure(self, figure_fn, benchmarks=ALL_BENCHMARKS
                   ) -> FigureResult:
        """Regenerate one figure through the executor.

        Two passes: the figure function is first replayed against a job
        collector to enumerate its sweep, the jobs run in parallel to fill
        the cache, then the figure function runs for real — every lookup a
        cache hit.  The executor's counters land in the figure footer.
        """
        jobs = self.collect_jobs(figure_fn, benchmarks)
        job_results = self.run(jobs)
        failed = [r for r in job_results if r.error is not None]
        if failed:
            first = failed[0]
            raise RuntimeError(
                f"{len(failed)} sweep job(s) failed; first: "
                f"{first.job.benchmark} on {first.job.config.describe()}: "
                f"{first.error}"
            )
        fig = figure_fn(self.runner, benchmarks=benchmarks)
        fig.footer = self.stats.summary()
        if self.collect_cpi:
            merged = merge_cpi(r.record.cpi for r in job_results
                               if r.record is not None)
            fig.footer += "; " + stall_mix_summary(merged)
        return fig


def sweep_figures(names: list[str] | None = None,
                  benchmarks=ALL_BENCHMARKS,
                  runner: ExperimentRunner | None = None,
                  jobs: int | None = None,
                  progress=None) -> dict[str, FigureResult]:
    """Regenerate the named figures (default: all) through one executor."""
    executor = SweepExecutor(runner=runner, jobs=jobs, progress=progress)
    out: dict[str, FigureResult] = {}
    for name in names or list(ALL_FIGURES):
        fig_fn = ALL_FIGURES[name]
        out[name] = executor.run_figure(fig_fn, benchmarks=benchmarks)
    return out
