"""Machine-level call graph and per-function map-state summaries.

The hardware resets every mapping-table entry to its home location on
``jsr``/``rts`` (paper section 4.1), so connect state never survives a
``CALL`` boundary — what *does* cross the boundary is the extended register
file.  This module recovers the call graph from resolved ``CALL`` targets
and computes, per function, the transitive may-read / may-write footprint
over extended registers:

* ``ext_may_write`` — extended physical registers the function (or anything
  it can call) may write: direct extended destinations plus every
  write-map connect target at or above the core size;
* ``ext_may_read`` — extended physical registers it may read: direct
  extended sources plus every read-map connect target at or above the core
  size.

The checker uses these to track connect/extended state across calls per
reset model instead of conservatively clearing it: a ``CALL`` only clobbers
the callee's transitive ``ext_may_write`` set (rule CC003), and backward
extended-register liveness treats a ``CALL`` as reading the callee's
transitive ``ext_may_read`` set (rule RC006).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.cfg import ProgramCFG
from repro.analyze.dataflow import reg_bit
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, RClass
from repro.sim.config import MachineConfig

_CLASSES = (RClass.INT, RClass.FP)


@dataclass
class FuncSummary:
    """Interprocedural facts about one recovered function.

    The mapping tables are home at entry and home again at return (the
    hardware ``jsr``/``rts`` reset), so the summary only carries the
    extended-register footprint; masks use the
    :func:`repro.analyze.dataflow.reg_bit` encoding.
    """

    name: str
    #: Extended registers this function alone may write / read.
    local_ext_write: int = 0
    local_ext_read: int = 0
    #: Transitive closure over everything reachable through calls.
    ext_may_write: int = 0
    ext_may_read: int = 0
    #: Callee function names at CALL sites (unresolvable targets excluded).
    calls: set = field(default_factory=set)
    #: True when some CALL target could not be mapped to a function; the
    #: closure then falls back to the conservative full-clobber answer.
    unknown_calls: bool = False


@dataclass
class CallGraph:
    """Call edges plus per-function extended-register summaries."""

    summaries: dict[str, FuncSummary]
    #: CALL instruction index -> callee function name (resolved sites only).
    site_callee: dict[int, str]
    #: Mask of every extended register in the machine (the "clobber all"
    #: answer used when a call target cannot be resolved).
    all_ext_mask: int

    def callee_of(self, index: int) -> str | None:
        return self.site_callee.get(index)

    def may_write_at(self, index: int) -> int:
        """Transitive extended-write mask of the CALL at *index*.

        Unresolvable targets (and callees with unresolvable calls) return
        the full extended mask.
        """
        name = self.site_callee.get(index)
        if name is None:
            return self.all_ext_mask
        summary = self.summaries.get(name)
        if summary is None or summary.unknown_calls:
            return self.all_ext_mask
        return summary.ext_may_write

    def may_read_at(self, index: int) -> int:
        """Transitive extended-read mask of the CALL at *index*."""
        name = self.site_callee.get(index)
        if name is None:
            return self.all_ext_mask
        summary = self.summaries.get(name)
        if summary is None or summary.unknown_calls:
            return self.all_ext_mask
        return summary.ext_may_read


def _ext_masks(config: MachineConfig) -> tuple[dict[RClass, int], int]:
    """Per-class core sizes and the all-extended-registers mask."""
    cores: dict[RClass, int] = {}
    all_ext = 0
    for cls in _CLASSES:
        spec = config.spec_for(cls)
        cores[cls] = spec.core
        if spec.has_rc:
            for p in range(spec.core, spec.total):
                all_ext |= 1 << reg_bit(cls, p)
    return cores, all_ext


def build_callgraph(cfg: ProgramCFG, config: MachineConfig) -> CallGraph:
    """Recover the call graph of *cfg* and close the summaries to fixpoint."""
    program = cfg.program
    cores, all_ext = _ext_masks(config)
    entry_fn = {fn.entry: fn.name for fn in cfg.functions}
    fn_of_block: dict[int, str] = {}
    summaries = {fn.name: FuncSummary(name=fn.name) for fn in cfg.functions}
    for fn in cfg.functions:
        for start in fn.blocks:
            fn_of_block[start] = fn.name

    site_callee: dict[int, str] = {}
    for fn in cfg.functions:
        summary = summaries[fn.name]
        for block in fn.blocks.values():
            for i in range(block.start, block.end):
                instr = program.instrs[i]
                if instr.op is Opcode.CALL:
                    target = program.targets[i]
                    callee = entry_fn.get(target)
                    if callee is None:
                        summary.unknown_calls = True
                    else:
                        summary.calls.add(callee)
                        site_callee[i] = callee
                    continue
                if instr.is_connect:
                    cls = instr.imm[0]
                    core = cores[cls]
                    for _cls, which, _ri, rp in instr.connect_updates():
                        if rp < core:
                            continue
                        bit = 1 << reg_bit(cls, rp)
                        if which == "read":
                            summary.local_ext_read |= bit
                        else:
                            summary.local_ext_write |= bit
                    continue
                for src in instr.srcs:
                    if (not isinstance(src, Imm)
                            and src.num >= cores[src.cls]):
                        summary.local_ext_read |= 1 << reg_bit(src.cls,
                                                               src.num)
                dest = instr.dest
                if dest is not None and dest.num >= cores[dest.cls]:
                    summary.local_ext_write |= 1 << reg_bit(dest.cls,
                                                            dest.num)

    # Transitive closure (plain fixpoint; recursion forms SCCs that simply
    # iterate until their masks stabilize).
    for summary in summaries.values():
        summary.ext_may_write = summary.local_ext_write
        summary.ext_may_read = summary.local_ext_read
    changed = True
    while changed:
        changed = False
        for summary in summaries.values():
            write = summary.ext_may_write
            read = summary.ext_may_read
            unknown = summary.unknown_calls
            for callee in summary.calls:
                sub = summaries.get(callee)
                if sub is None:
                    unknown = True
                    continue
                write |= sub.ext_may_write
                read |= sub.ext_may_read
                unknown = unknown or sub.unknown_calls
            if (write != summary.ext_may_write
                    or read != summary.ext_may_read
                    or unknown != summary.unknown_calls):
                summary.ext_may_write = write
                summary.ext_may_read = read
                summary.unknown_calls = unknown
                changed = True

    return CallGraph(summaries=summaries, site_callee=site_callee,
                     all_ext_mask=all_ext)
