"""Finding types, the rule registry, and the analysis report.

Every check emits :class:`Finding` objects carrying a stable rule id (see
docs/CHECKS.md), the instruction index, and a one-line explanation.  Findings
can be suppressed per instruction or per file with a ``; check: ignore=ID``
comment in assembly source (see :mod:`repro.isa.asmparse`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Severity.{self.name}"


@dataclass(frozen=True, slots=True)
class Rule:
    """A registered check with a stable id."""

    id: str
    severity: Severity
    title: str


#: All rule ids the analyzer can emit, with default severities.
RULES: dict[str, Rule] = {
    r.id: r
    for r in [
        Rule("CFG001", Severity.ERROR,
             "control can fall off the end of the program"),
        Rule("RC001", Severity.ERROR,
             "read resolves to a physical register no path ever writes"),
        Rule("RC002", Severity.WARNING,
             "read through a path-dependent mapping-table entry"),
        Rule("RC003", Severity.WARNING,
             "connect mapping is dead (reset or overwritten before use)"),
        Rule("RC004", Severity.WARNING,
             "extended register is written but never readable"),
        Rule("RC005", Severity.WARNING,
             "redundant connect (slot already holds the target on every "
             "path in)"),
        Rule("RC006", Severity.WARNING,
             "write lands in an extended register that is dead (never read "
             "before being rewritten or abandoned)"),
        Rule("UBD001", Severity.WARNING,
             "direct read of a register the program never writes"),
        Rule("CC001", Severity.ERROR,
             "stack pointer not balanced at return"),
        Rule("CC002", Severity.ERROR,
             "callee-saved register modified but not restored"),
        Rule("CC003", Severity.WARNING,
             "extended register read across a call without being rewritten"),
        Rule("LAT001", Severity.INFO,
             "dependent pair scheduled below the producer's latency"),
    ]
}


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic: a rule violation at a program point."""

    rule: str
    index: int  # instruction index (-1 for whole-program findings)
    function: str
    message: str

    @property
    def severity(self) -> Severity:
        return RULES[self.rule].severity

    def format(self) -> str:
        where = f"@{self.index}" if self.index >= 0 else ""
        loc = f"{self.function}{where}" if self.function else where or "program"
        return f"{self.severity.value:7s} {self.rule} {loc}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "index": self.index,
            "function": self.function,
            "message": self.message,
        }


@dataclass
class AnalysisReport:
    """The outcome of :func:`repro.analyze.check_program` on one program."""

    program_name: str
    model: int  # RCModel value (0 when the machine has no RC)
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0

    def by_severity(self, severity: Severity) -> list[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Finding]:
        return self.by_severity(Severity.INFO)

    def clean(self, strict: bool = False) -> bool:
        """Whether the report should be treated as passing.

        Errors always fail; with *strict*, warnings and info findings
        (notably LAT001 schedule diagnostics) fail too.
        """
        if self.errors:
            return False
        return not (strict and self.findings)

    def exit_code(self, strict: bool = False) -> int:
        return 0 if self.clean(strict) else 1

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def findings_at(self, index: int) -> list[Finding]:
        return [f for f in self.findings if f.index == index]

    def render(self) -> str:
        lines = [f.format() for f in self.findings]
        summary = (
            f"{self.program_name} (model {self.model}): "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info"
        )
        if self.suppressed:
            summary += f", {self.suppressed} suppressed"
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "program": self.program_name,
            "model": self.model,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "counts": self.counts(),
            "clean": self.clean(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


class Baseline:
    """A committed snapshot of expected findings (``--baseline``).

    The file records, per check target (``"<name> model <n>"``), the exact
    findings present when the baseline was taken.  Applying the baseline
    suppresses precisely those findings — matched on rule, index, function
    and message, with multiplicity — so ``repro check --strict`` can gate on
    *new* findings while historical, reviewed ones (e.g. LAT001 schedule
    infos on benchmark code) stay recorded instead of silenced wholesale.
    """

    VERSION = 1

    def __init__(self, targets: dict[str, list[dict]] | None = None) -> None:
        self.targets: dict[str, list[dict]] = targets or {}

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {cls.VERSION})")
        return cls(targets={label: list(entries)
                            for label, entries in data["targets"].items()})

    def save(self, path: str) -> None:
        data = {"version": self.VERSION,
                "targets": {label: self.targets[label]
                            for label in sorted(self.targets)}}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(data, fh, indent=2, sort_keys=False)
            fh.write("\n")

    # -- matching ------------------------------------------------------------

    @staticmethod
    def _key(entry: dict) -> tuple:
        return (entry.get("rule"), entry.get("index"),
                entry.get("function"), entry.get("message"))

    def record(self, label: str, report: "AnalysisReport") -> None:
        """Store *report*'s current findings as the expectation for *label*."""
        entries = [f.to_dict() for f in report.findings]
        if entries:
            self.targets[label] = entries
        else:
            self.targets.pop(label, None)

    def apply(self, label: str, report: "AnalysisReport") -> int:
        """Suppress *report* findings recorded for *label*; returns count.

        Each baseline entry suppresses at most one identical finding, so a
        regression that *adds* a second identical finding still surfaces.
        """
        budget: dict[tuple, int] = {}
        for entry in self.targets.get(label, []):
            key = self._key(entry)
            budget[key] = budget.get(key, 0) + 1
        kept: list[Finding] = []
        hits = 0
        for f in report.findings:
            key = (f.rule, f.index, f.function, f.message)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                hits += 1
            else:
                kept.append(f)
        report.findings = kept
        report.suppressed += hits
        return hits
