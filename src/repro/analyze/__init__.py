"""Static analysis of compiled machine programs (``repro check``).

The subsystem has three layers:

* :mod:`repro.analyze.cfg` — machine-level control-flow recovery: basic
  blocks, successor/predecessor edges, and function partitioning from
  branch/jump/call targets (plus ``func_ranges`` when the compiler provides
  them).
* :mod:`repro.analyze.dataflow` — a small forward abstract-interpretation
  framework: client analyses define an entry state, a join, and a transfer
  function; the solver iterates a worklist to fixpoint.
* :mod:`repro.analyze.checks` — the analyses built on top: RC map-state
  abstract interpretation (per reset model), machine-level use-before-def,
  a calling-convention audit, and a latency/hazard lint.  Each finding
  carries a stable rule id (see :mod:`repro.analyze.findings` and
  docs/CHECKS.md).

Entry point: :func:`check_program` returns an :class:`AnalysisReport`.
"""

from repro.analyze.annotate import annotate_listing
from repro.analyze.cfg import FuncCFG, MachineBlock, ProgramCFG, build_cfg
from repro.analyze.checks import check_program
from repro.analyze.dataflow import DataflowResult, ForwardAnalysis, solve_forward
from repro.analyze.findings import (
    RULES,
    AnalysisReport,
    Finding,
    Severity,
)

__all__ = [
    "AnalysisReport",
    "DataflowResult",
    "Finding",
    "ForwardAnalysis",
    "FuncCFG",
    "MachineBlock",
    "ProgramCFG",
    "RULES",
    "Severity",
    "annotate_listing",
    "build_cfg",
    "check_program",
    "solve_forward",
]
