"""Static analysis of compiled machine programs (``repro check``).

The subsystem has five layers:

* :mod:`repro.analyze.cfg` — machine-level control-flow recovery: basic
  blocks, successor/predecessor edges, and function partitioning from
  branch/jump/call targets (plus ``func_ranges`` when the compiler provides
  them).
* :mod:`repro.analyze.dataflow` — a small two-direction
  abstract-interpretation framework: client analyses define boundary
  states, a join, and a transfer function; the solvers iterate a worklist
  to fixpoint forward (:func:`solve_forward`) or backward
  (:func:`solve_backward`).
* :mod:`repro.analyze.callgraph` / :mod:`repro.analyze.liveness` — the
  interprocedural layer: call-graph recovery with per-function
  extended-register summaries, and backward liveness over mapping-table
  slots and extended registers.
* :mod:`repro.analyze.checks` — the analyses built on top: RC map-state
  abstract interpretation (per reset model), machine-level use-before-def,
  a calling-convention audit, and a latency/hazard lint.  Each finding
  carries a stable rule id (see :mod:`repro.analyze.findings` and
  docs/CHECKS.md).
* :mod:`repro.analyze.optimize` — the connect optimizer: consumes the same
  analyses to delete dead connects, eliminate redundant ones, and hoist
  loop-invariant connects to preheaders (``CompileOptions.opt_connects``).

Entry points: :func:`check_program` returns an :class:`AnalysisReport`;
:func:`optimize_connects` returns an optimized program plus a
:class:`ConnectOptReport`.
"""

from repro.analyze.annotate import annotate_listing
from repro.analyze.callgraph import CallGraph, FuncSummary, build_callgraph
from repro.analyze.cfg import FuncCFG, MachineBlock, ProgramCFG, build_cfg
from repro.analyze.checks import check_program
from repro.analyze.dataflow import (
    BackwardAnalysis,
    BackwardResult,
    DataflowResult,
    ForwardAnalysis,
    solve_backward,
    solve_forward,
)
from repro.analyze.findings import (
    RULES,
    AnalysisReport,
    Baseline,
    Finding,
    Severity,
)
from repro.analyze.liveness import SlotLiveness, after_states
from repro.analyze.optimize import (
    ConnectOptReport,
    OptimizeResult,
    optimize_connects,
)

__all__ = [
    "AnalysisReport",
    "BackwardAnalysis",
    "BackwardResult",
    "Baseline",
    "CallGraph",
    "ConnectOptReport",
    "DataflowResult",
    "Finding",
    "ForwardAnalysis",
    "FuncCFG",
    "FuncSummary",
    "MachineBlock",
    "OptimizeResult",
    "ProgramCFG",
    "RULES",
    "Severity",
    "SlotLiveness",
    "after_states",
    "annotate_listing",
    "build_callgraph",
    "build_cfg",
    "check_program",
    "optimize_connects",
    "solve_backward",
    "solve_forward",
]
