"""Annotated disassembly: findings + abstract map state interleaved.

Backs ``repro disasm --annotate``: the plain listing with one comment line
per static-check finding, and the abstract mapping-table state (every
non-home read/write entry the fixpoint admits) at each basic-block entry.
"""

from __future__ import annotations

from repro.analyze.checks import _Checker
from repro.analyze.cfg import build_cfg
from repro.analyze.dataflow import solve_forward
from repro.analyze.findings import AnalysisReport
from repro.isa.asmfmt import format_instr
from repro.sim.config import MachineConfig
from repro.sim.program import MachineProgram


def _entry_text(entry) -> str:
    return "|".join(f"p{p}" for p in sorted({p for p, _ in entry}))


def _map_comment(maps) -> str:
    parts = []
    for cls in sorted(maps, key=lambda c: c.value):
        amap = maps[cls]
        shown = []
        for which, table in (("r", amap.read), ("w", amap.write)):
            for index in sorted(table):
                shown.append(f"{which}{index}->{_entry_text(table[index])}")
        if shown:
            parts.append(f"{cls.value}[{' '.join(shown)}]")
    return " ".join(parts) if parts else "home"


def annotate_listing(program: MachineProgram, config: MachineConfig,
                     report: AnalysisReport) -> str:
    """Render *program* with block-entry map states and *report* findings."""
    cfg = build_cfg(program)
    checker = _Checker(program, config)
    block_states: dict[int, str] = {}
    block_fn: dict[int, str] = {}
    for fn in cfg.functions:
        result = solve_forward(fn, checker, program.instrs)
        for start in fn.reachable():
            state = result.block_in[start]
            block_states[start] = _map_comment(state.maps)
            block_fn[start] = fn.name

    by_index: dict[int, list] = {}
    for f in report.findings:
        by_index.setdefault(f.index, []).append(f)

    lines: list[str] = []
    for i, instr in enumerate(program.instrs):
        if i in block_states:
            lines.append(f"        ; -- block @{i} ({block_fn[i]}) "
                         f"map: {block_states[i]}")
        elif i in cfg.block_at:
            lines.append(f"        ; -- block @{i} (unreachable)")
        lines.append(f"{i:6d}: {format_instr(instr)}")
        for f in by_index.get(i, ()):
            lines.append(f"        ; ^ {f.severity.value} {f.rule}: "
                         f"{f.message}")
    return "\n".join(lines)
