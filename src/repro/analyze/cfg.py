"""Machine-level control-flow recovery.

Rebuilds basic blocks and function extents from a flat
:class:`~repro.sim.program.MachineProgram`: block leaders are the program
entry, every branch/jump target, every call target, every trap handler, and
every instruction following a control transfer.  Functions come from the
program's ``func_ranges`` when the compiler recorded them; for hand-assembled
programs they are recovered by reachability from the entry point, the call
targets, and the trap handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Opcode, ends_block
from repro.sim.program import MachineProgram


@dataclass
class MachineBlock:
    """A machine basic block: instruction indices ``[start, end)``."""

    start: int
    end: int
    #: Successor block start indices (intraprocedural: a CALL's successor is
    #: its return point, a RET/HALT/RTE has none).
    succs: tuple[int, ...] = ()
    preds: list[int] = field(default_factory=list)
    #: Name of the function this block belongs to.
    func: str = ""
    #: True when the block's last instruction may fall off the program end.
    falls_off_end: bool = False

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class FuncCFG:
    """The blocks of one recovered function."""

    name: str
    entry: int  # start index of the entry block
    blocks: dict[int, MachineBlock]
    is_entry: bool = False
    is_handler: bool = False

    def rpo(self) -> list[MachineBlock]:
        """Blocks in reverse post-order from the function entry."""
        seen: set[int] = set()
        order: list[int] = []

        def visit(start: int) -> None:
            stack = [(start, iter(self.blocks[start].succs))]
            seen.add(start)
            while stack:
                node, it = stack[-1]
                advanced = False
                for s in it:
                    if s in self.blocks and s not in seen:
                        seen.add(s)
                        stack.append((s, iter(self.blocks[s].succs)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        return [self.blocks[i] for i in reversed(order)]

    def reachable(self) -> set[int]:
        """Start indices of blocks reachable from the function entry."""
        return {b.start for b in self.rpo()}


@dataclass
class ProgramCFG:
    """Whole-program CFG: one :class:`FuncCFG` per recovered function."""

    program: MachineProgram
    functions: list[FuncCFG]
    #: block start index -> block, across all functions.
    block_at: dict[int, MachineBlock]

    def block_of(self, index: int) -> MachineBlock | None:
        """The block containing instruction *index*, if any."""
        for block in self.block_at.values():
            if block.start <= index < block.end:
                return block
        return None


def _block_succs(program: MachineProgram, last: int) -> tuple[tuple[int, ...], bool]:
    """Successor indices of a block whose last instruction is *last*.

    Returns ``(successors, falls_off_end)``.
    """
    instr = program.instrs[last]
    target = program.targets[last]
    op = instr.op
    n = len(program.instrs)
    if op is Opcode.JMP:
        return ((target,) if target is not None else ()), target is None
    if instr.is_cond_branch:
        succs = []
        if target is not None:
            succs.append(target)
        if last + 1 < n:
            succs.append(last + 1)
            return tuple(succs), False
        return tuple(succs), True
    if op in (Opcode.RET, Opcode.HALT, Opcode.RTE):
        return (), False
    if op in (Opcode.CALL, Opcode.TRAP):
        # Intraprocedural view: control returns to the next instruction.
        if last + 1 < n:
            return (last + 1,), False
        return (), True
    # Straight-line block split by a leader at last+1.
    if last + 1 < n:
        return (last + 1,), False
    return (), True


def build_cfg(program: MachineProgram) -> ProgramCFG:
    """Recover basic blocks and function extents from *program*."""
    n = len(program.instrs)
    leaders: set[int] = set()
    if n:
        leaders.add(program.entry)
    call_targets: set[int] = set()
    for i, instr in enumerate(program.instrs):
        target = program.targets[i]
        if target is not None:
            leaders.add(target)
            if instr.op is Opcode.CALL:
                call_targets.add(target)
        if ends_block(instr.op) and i + 1 < n:
            leaders.add(i + 1)
    handler_starts = set(program.trap_handlers.values())
    leaders |= handler_starts

    # Function starts: compiler-recorded ranges take precedence; otherwise
    # the entry, every call target, and every trap handler start a function.
    if program.func_ranges:
        fn_starts = {start: name
                     for name, (start, _end) in program.func_ranges.items()}
    else:
        fn_starts = {program.entry: "main"}
        for t in sorted(call_targets):
            fn_starts.setdefault(t, f"fn@{t}")
        for t in sorted(handler_starts):
            fn_starts.setdefault(t, f"handler@{t}")
    leaders |= set(fn_starts)

    ordered = sorted(x for x in leaders if 0 <= x < n)
    blocks: dict[int, MachineBlock] = {}
    for pos, start in enumerate(ordered):
        end = ordered[pos + 1] if pos + 1 < len(ordered) else n
        last = end - 1
        succs, falls_off = _block_succs(program, last)
        # A block that would "fall through" into the next function is only
        # possible with compiler ranges; keep the edge (the scheduler never
        # produces it, and reachability below partitions by function anyway).
        blocks[start] = MachineBlock(start=start, end=end, succs=succs,
                                     falls_off_end=falls_off)

    # Partition blocks into functions by reachability from each start,
    # following only intraprocedural edges.
    funcs: list[FuncCFG] = []
    claimed: dict[int, str] = {}
    for start in sorted(fn_starts):
        name = fn_starts[start]
        if start not in blocks:
            continue
        member: set[int] = set()
        stack = [start]
        while stack:
            b = stack.pop()
            if b in member or b not in blocks:
                continue
            # With compiler ranges, never walk outside the recorded range.
            if program.func_ranges:
                lo, hi = program.func_ranges[name]
                if not lo <= b < hi:
                    continue
            elif b in fn_starts and b != start:
                continue  # reached another function's entry: stop
            member.add(b)
            stack.extend(blocks[b].succs)
        fn_blocks = {b: blocks[b] for b in member}
        for b in member:
            blocks[b].func = name
            claimed[b] = name
        is_entry = start == program.entry or (
            program.func_ranges
            and program.func_ranges[name][0] <= program.entry
            < program.func_ranges[name][1]
        )
        funcs.append(FuncCFG(name=name, entry=start, blocks=fn_blocks,
                             is_entry=bool(is_entry),
                             is_handler=start in handler_starts))

    # Predecessor edges (within each function).
    for fn in funcs:
        for block in fn.blocks.values():
            for s in block.succs:
                if s in fn.blocks:
                    fn.blocks[s].preds.append(block.start)
    return ProgramCFG(program=program, functions=funcs, block_at=blocks)
