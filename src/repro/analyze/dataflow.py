"""A small two-direction abstract-interpretation framework.

A client analysis subclasses :class:`ForwardAnalysis` and provides:

* ``boundary(fn)`` — the abstract state at the function entry;
* ``join(a, b)`` — the lattice join of two states (paths merging);
* ``copy(state)`` — an independent copy safe to mutate;
* ``transfer(state, index, instr)`` — the effect of one instruction,
  mutating and returning *state*.

:func:`solve_forward` iterates a worklist in reverse post-order until the
block-entry states stop changing; states must define ``__eq__``.  The result
exposes the fixpoint state at every block entry, and :meth:`DataflowResult.walk`
replays a block's transfer functions from its fixed entry state so clients
can observe the per-instruction states without storing them all.

:class:`BackwardAnalysis` / :func:`solve_backward` are the mirror image for
analyses that flow against control (liveness): ``boundary(fn)`` is the state
at function *exits* (blocks with no intraprocedural successor), ``bottom(fn)``
is the join identity used for blocks inside exit-less cycles, and
``transfer(state, index, instr)`` maps the state *after* an instruction to
the state *before* it.  :meth:`BackwardResult.walk` replays a block from its
fixed exit state, visiting instructions last-to-first.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.analyze.cfg import FuncCFG, MachineBlock
from repro.isa.registers import RClass

# -- register-set lattice ------------------------------------------------------
#
# Optional int-bitmask encoding for abstract sets of ``(RClass, num)``
# physical registers: the same dense-bitset trick as :mod:`repro.ir.bitset`,
# offered here so client analyses (checks.py's written/saved/restored/fresh/
# defined components) can join and compare with integer ``&``/``|`` instead
# of frozenset algebra.  Bit layout interleaves the classes: register *num*
# of class *cls* occupies bit ``num * 2 + (cls is FP)``.


def reg_bit(cls: RClass, num: int) -> int:
    """Bit position encoding one ``(cls, num)`` physical register."""
    return (num << 1) | (cls is RClass.FP)


def reg_mask(pairs) -> int:
    """Mask with the bit of every ``(cls, num)`` pair in *pairs* set."""
    m = 0
    for cls, num in pairs:
        m |= 1 << reg_bit(cls, num)
    return m


def reg_items(mask: int) -> Iterator[tuple[RClass, int]]:
    """Decode a register mask back into ``(cls, num)`` pairs."""
    while mask:
        low = mask & -mask
        b = low.bit_length() - 1
        yield (RClass.FP if b & 1 else RClass.INT), b >> 1
        mask ^= low


class ForwardAnalysis:
    """Interface for a forward dataflow analysis (see module docstring)."""

    def boundary(self, fn: FuncCFG) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def copy(self, state: Any) -> Any:
        raise NotImplementedError

    def transfer(self, state: Any, index: int, instr: Any) -> Any:
        raise NotImplementedError


@dataclass
class DataflowResult:
    """Fixpoint of one analysis over one function."""

    fn: FuncCFG
    analysis: ForwardAnalysis
    #: block start -> abstract state at block entry (reachable blocks only).
    block_in: dict[int, Any]
    instrs: list  # the program's instruction list

    def out_state(self, block: MachineBlock) -> Any:
        """The abstract state after the last instruction of *block*."""
        state = self.analysis.copy(self.block_in[block.start])
        for i in range(block.start, block.end):
            state = self.analysis.transfer(state, i, self.instrs[i])
        return state

    def walk(self, block: MachineBlock,
             visit: Callable[[Any, int, Any], None]) -> Any:
        """Replay *block* from its entry state.

        ``visit(state_before, index, instr)`` is called for each instruction
        with the state holding *before* it executes; returns the block's
        out-state.
        """
        state = self.analysis.copy(self.block_in[block.start])
        for i in range(block.start, block.end):
            visit(state, i, self.instrs[i])
            state = self.analysis.transfer(state, i, self.instrs[i])
        return state


def solve_forward(fn: FuncCFG, analysis: ForwardAnalysis,
                  instrs: list, max_iterations: int = 100_000) -> DataflowResult:
    """Run *analysis* over *fn* to fixpoint and return the block-entry states."""
    rpo = fn.rpo()
    position = {b.start: i for i, b in enumerate(rpo)}
    block_in: dict[int, Any] = {fn.entry: analysis.boundary(fn)}
    block_out: dict[int, Any] = {}

    work: deque[MachineBlock] = deque(rpo)
    queued = {b.start for b in rpo}
    iterations = 0
    while work:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety net
            raise RuntimeError(f"dataflow did not converge in {fn.name}")
        block = work.popleft()
        queued.discard(block.start)

        preds = [p for p in block.preds if p in block_out]
        if preds:
            state = analysis.copy(block_out[preds[0]])
            for p in preds[1:]:
                state = analysis.join(state, block_out[p])
            if block.start == fn.entry:
                state = analysis.join(state, analysis.boundary(fn))
        elif block.start == fn.entry:
            state = analysis.boundary(fn)
        else:
            continue  # unreachable (or not yet reached): leave at bottom

        if block.start in block_in and block_in[block.start] == state:
            if block.start in block_out:
                continue
        block_in[block.start] = state

        out = analysis.copy(state)
        for i in range(block.start, block.end):
            out = analysis.transfer(out, i, instrs[i])
        if block.start in block_out and block_out[block.start] == out:
            continue
        block_out[block.start] = out
        for s in block.succs:
            if s in fn.blocks and s not in queued:
                work.append(fn.blocks[s])
                queued.add(s)

    # Order worklist re-insertions by RPO position for fast convergence.
    del position
    return DataflowResult(fn=fn, analysis=analysis, block_in=block_in,
                          instrs=instrs)


class BackwardAnalysis:
    """Interface for a backward dataflow analysis (see module docstring)."""

    def boundary(self, fn: FuncCFG) -> Any:
        """State at function exits (RET/HALT/RTE and fall-off blocks)."""
        raise NotImplementedError

    def bottom(self, fn: FuncCFG) -> Any:
        """The join identity (used for not-yet-computed back-edge inputs)."""
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def copy(self, state: Any) -> Any:
        raise NotImplementedError

    def transfer(self, state: Any, index: int, instr: Any) -> Any:
        """Map the state *after* instruction *index* to the state before it."""
        raise NotImplementedError


@dataclass
class BackwardResult:
    """Fixpoint of one backward analysis over one function."""

    fn: FuncCFG
    analysis: BackwardAnalysis
    #: block start -> abstract state after the block's last instruction.
    block_out: dict[int, Any]
    #: block start -> abstract state before the block's first instruction.
    block_in: dict[int, Any]
    instrs: list  # the program's instruction list

    def walk(self, block: MachineBlock,
             visit: Callable[[Any, int, Any], None]) -> Any:
        """Replay *block* backward from its fixed exit state.

        ``visit(state_after, index, instr)`` is called for each instruction,
        last first, with the state holding *after* it executes; returns the
        block's in-state.
        """
        state = self.analysis.copy(self.block_out[block.start])
        for i in range(block.end - 1, block.start - 1, -1):
            visit(state, i, self.instrs[i])
            state = self.analysis.transfer(state, i, self.instrs[i])
        return state


def solve_backward(fn: FuncCFG, analysis: BackwardAnalysis,
                   instrs: list,
                   max_iterations: int = 100_000) -> BackwardResult:
    """Run *analysis* backward over *fn* to fixpoint.

    A block's out-state is the join of its intraprocedural successors'
    in-states; blocks with no successor inside the function (returns, halts,
    falls-off-end, or edges leaving a compiler-delimited range) use
    ``boundary(fn)``.  Blocks inside exit-less cycles start from
    ``bottom(fn)`` and iterate up, so infinite loops still converge.
    """
    rpo = fn.rpo()
    block_out: dict[int, Any] = {}
    block_in: dict[int, Any] = {}

    work: deque[MachineBlock] = deque(reversed(rpo))  # post-order first
    queued = {b.start for b in rpo}
    iterations = 0
    while work:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety net
            raise RuntimeError(f"backward dataflow did not converge "
                               f"in {fn.name}")
        block = work.popleft()
        queued.discard(block.start)

        succs = [s for s in block.succs if s in fn.blocks]
        if succs:
            state = analysis.bottom(fn)
            for s in succs:
                nxt = block_in.get(s)
                if nxt is not None:
                    state = analysis.join(state, nxt)
        else:
            state = analysis.boundary(fn)

        if block.start in block_out and block_out[block.start] == state:
            if block.start in block_in:
                continue
        block_out[block.start] = state

        in_state = analysis.copy(state)
        for i in range(block.end - 1, block.start - 1, -1):
            in_state = analysis.transfer(in_state, i, instrs[i])
        if (block.start in block_in
                and block_in[block.start] == in_state):
            continue
        block_in[block.start] = in_state
        for p in block.preds:
            if p in fn.blocks and p not in queued:
                work.append(fn.blocks[p])
                queued.add(p)

    return BackwardResult(fn=fn, analysis=analysis, block_out=block_out,
                          block_in=block_in, instrs=instrs)
