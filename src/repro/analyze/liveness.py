"""Backward liveness over mapping-table slots and extended registers.

The analysis runs on the :class:`~repro.analyze.dataflow.BackwardAnalysis`
framework.  States are immutable triples of int bitmasks
``(live_rmap, live_wmap, live_ext)``:

* ``live_rmap`` / ``live_wmap`` — mapping-table slots (read map / write map,
  bit :func:`~repro.analyze.dataflow.reg_bit` ``(cls, index)``) whose current
  target may still be observed before the slot is reconnected or reset;
* ``live_ext`` — extended physical registers whose current value may still
  be read.

Slot gen/kill is purely syntactic (operand indices plus the reset model), so
the slot component is exact with respect to the simulator: a read through a
mapped index uses its read-map slot, a write uses its write-map slot and
then applies the model's automatic reset (section 2.3) — under model 3 the
write-map value flows into the read map, which the backward transfer mirrors
by transferring read-map liveness onto the write map.  ``CALL``/``RET``
reset every entry to home (section 4.1), killing all slots.

Extended-register liveness needs the *forward* map fixpoint to know which
physical registers a mapped access resolves to, so callers pass
per-instruction use/def masks (see ``checks._ext_tables``); when the tables
are omitted the extended component stays empty and only slots are tracked —
the configuration the connect optimizer uses.
"""

from __future__ import annotations

from repro.analyze.cfg import FuncCFG
from repro.analyze.dataflow import BackwardAnalysis, reg_bit
from repro.isa.opcodes import Opcode
from repro.isa.registers import RClass
from repro.rc.models import RCModel
from repro.sim.config import MachineConfig
from repro.sim.program import MachineProgram

_CLASSES = (RClass.INT, RClass.FP)

#: One liveness state: (live read-map slots, live write-map slots, live
#: extended registers).  Immutable, so ``copy`` is the identity.
LiveState = tuple[int, int, int]

EMPTY: LiveState = (0, 0, 0)


class SlotLiveness(BackwardAnalysis):
    """May-liveness of map slots (and optionally extended registers)."""

    def __init__(self, program: MachineProgram, config: MachineConfig,
                 ext_use: dict[int, int] | None = None,
                 ext_def: dict[int, int] | None = None) -> None:
        self.program = program
        self.config = config
        self.model = config.rc_model
        self.entries = {
            cls: (config.spec_for(cls).core
                  if config.spec_for(cls).has_rc else 0)
            for cls in _CLASSES
        }
        self.ext_use = ext_use or {}
        self.ext_def = ext_def or {}
        all_slots = 0
        for cls, n in self.entries.items():
            for index in range(n):
                all_slots |= 1 << reg_bit(cls, index)
        self.all_slots = all_slots

    # -- BackwardAnalysis interface ------------------------------------------

    def boundary(self, fn: FuncCFG) -> LiveState:
        if fn.is_handler:
            # A handler returns into an arbitrary interrupted context (and
            # its connects mutate the live tables even with mapping
            # disabled): keep every slot conservatively live.
            return (self.all_slots, self.all_slots, 0)
        # Extended registers are caller-saved and the maps reset at return:
        # nothing survives a normal exit.
        return EMPTY

    def bottom(self, fn: FuncCFG) -> LiveState:
        return EMPTY

    def join(self, a: LiveState, b: LiveState) -> LiveState:
        return (a[0] | b[0], a[1] | b[1], a[2] | b[2])

    def copy(self, state: LiveState) -> LiveState:
        return state

    def transfer(self, state: LiveState, index: int, instr) -> LiveState:
        rmap, wmap, ext = state
        op = instr.op

        if instr.is_connect:
            cls = instr.imm[0]
            entries = self.entries.get(cls, 0)
            # Updates apply in order at runtime; walking them in reverse
            # makes a same-slot pair behave correctly (the later update
            # kills the slot before the earlier one is considered).
            for _cls, which, ri, _rp in reversed(instr.connect_updates()):
                if ri >= entries:
                    continue
                bit = 1 << reg_bit(cls, ri)
                if which == "read":
                    rmap &= ~bit
                else:
                    wmap &= ~bit
            return (rmap, wmap, ext)

        if op in (Opcode.CALL, Opcode.RET):
            # Both endpoints reset every entry to home: the callee starts
            # from home maps, so no caller slot is observed, and every slot
            # is redefined before the next instruction runs.
            return (0, 0, ext | self.ext_use.get(index, 0))

        if op is Opcode.MFMAP:
            rclass, idx, which = instr.imm
            if idx < self.entries.get(rclass, 0):
                bit = 1 << reg_bit(rclass, idx)
                if which == "read":
                    rmap |= bit
                else:
                    wmap |= bit

        # Generic instruction.  Forward order is: resolve reads through the
        # read map, model-5 after-read resets, execute, write through the
        # write map, model after-write reset.  Undo each in reverse.
        dest = instr.dest
        if dest is not None:
            entries = self.entries.get(dest.cls, 0)
            if dest.num < entries:
                bit = 1 << reg_bit(dest.cls, dest.num)
                model = self.model
                # Undo the automatic after-write reset (a definition of the
                # affected slots), then mark the write's own use of the
                # write-map slot.
                if model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
                    wmap &= ~bit
                elif model is RCModel.WRITE_RESET_READ_UPDATE:
                    wmap &= ~bit
                    if rmap & bit:
                        # read[d] := write[d]: the write-map value flows
                        # into the live read map.
                        wmap |= bit
                        rmap &= ~bit
                elif model is RCModel.READ_WRITE_RESET:
                    rmap &= ~bit
                    wmap &= ~bit
                wmap |= bit

        ext &= ~self.ext_def.get(index, 0)

        if self.model.resets_read_map_on_read:
            for src in instr.reg_srcs():
                if src.num < self.entries.get(src.cls, 0):
                    rmap &= ~(1 << reg_bit(src.cls, src.num))
        for src in instr.reg_srcs():
            if src.num < self.entries.get(src.cls, 0):
                rmap |= 1 << reg_bit(src.cls, src.num)

        ext |= self.ext_use.get(index, 0)
        return (rmap, wmap, ext)


def after_states(result) -> dict[int, LiveState]:
    """Per-instruction liveness *after* each instruction of one function.

    *result* is the :class:`~repro.analyze.dataflow.BackwardResult` of a
    :class:`SlotLiveness` solve; unreachable blocks are absent.
    """
    states: dict[int, LiveState] = {}

    def visit(state: LiveState, i: int, _instr) -> None:
        states[i] = state

    for start, block in result.fn.blocks.items():
        if start in result.block_out:
            result.walk(block, visit)
    return states
