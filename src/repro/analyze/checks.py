"""The analyses built on the CFG + dataflow core (``repro check``).

One combined abstract state is propagated forward through each function:

* per-class abstract mapping tables (:class:`repro.rc.abstract.AbstractMap`)
  under the machine's reset model — rules RC001/RC002/RC003/RC004;
* the stack-pointer delta (exact integer or unknown) — rule CC001;
* callee-save bookkeeping (written / pristine-saved / restored allocatable
  core registers) — rule CC002;
* the set of extended registers written since entry or the last call
  (extended registers are caller-saved) — rule CC003.  With a call graph
  available (and no trap handlers installed), a ``CALL`` only invalidates
  the callee's transitive extended-write footprint instead of everything.

A backward pass (:mod:`repro.analyze.liveness`) then solves mapping-slot
and extended-register liveness per function, feeding rules RC003 (dead
connect — now exact over reachable-but-never-read regions), RC005
(redundant connect) and RC006 (dead extended-register write).

After the fixpoint, a reporting pass replays each reachable block from its
fixed entry state and emits findings; a final whole-program pass flags dead
connects, unreadable extended writes, and structural CFG problems.  All
state joins are may-unions (map entries, written sets) or must-intersections
(saved/restored/fresh sets), chosen so that no rule fires on a path that the
machine cannot take — compiled benchmarks must come out clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analyze.callgraph import CallGraph, build_callgraph
from repro.analyze.cfg import FuncCFG, ProgramCFG, build_cfg
from repro.analyze.dataflow import (
    DataflowResult,
    ForwardAnalysis,
    reg_bit,
    reg_items,
    reg_mask,
    solve_backward,
    solve_forward,
)
from repro.analyze.findings import AnalysisReport, Finding
from repro.analyze.liveness import LiveState, SlotLiveness, after_states
from repro.isa.opcodes import Opcode, falls_through
from repro.isa.registers import FP_RETVAL, INT_RETVAL, Imm, RClass
from repro.rc.abstract import AbstractMap
from repro.sim.config import MachineConfig
from repro.sim.program import MachineProgram

_CLASSES = (RClass.INT, RClass.FP)

_RETVAL_MASK = reg_mask([(RClass.INT, INT_RETVAL.num),
                         (RClass.FP, FP_RETVAL.num)])


class _State:
    """The combined abstract state at one program point.

    The register-set components are int bitmasks over the
    :func:`repro.analyze.dataflow.reg_bit` encoding, so joins and equality
    checks are single integer operations.
    """

    __slots__ = ("maps", "sp", "written", "saved", "restored", "fresh",
                 "defined")

    def __init__(self, maps: dict[RClass, AbstractMap], sp: int | None,
                 written: int, saved: int, restored: int,
                 fresh: int, defined: int | None) -> None:
        self.maps = maps
        self.sp = sp  # allocated stack words; None = unknown
        self.written = written  # mask: allocatable core regs written
        self.saved = saved  # mask: pristine-stored to the frame
        self.restored = restored  # mask: reloaded from the frame
        self.fresh = fresh  # mask: extended regs valid across here
        #: Mask of physical registers holding a deliberately-written value
        #: on every path from the function entry; ``None`` means all of them
        #: (trap handlers run in an arbitrary caller context).
        self.defined = defined

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _State):
            return NotImplemented
        return (self.sp == other.sp and self.written == other.written
                and self.saved == other.saved
                and self.restored == other.restored
                and self.fresh == other.fresh
                and self.defined == other.defined and self.maps == other.maps)


class _Checker(ForwardAnalysis):
    """Transfer functions mirroring the simulator's per-instruction effects."""

    def __init__(self, program: MachineProgram, config: MachineConfig,
                 callgraph: CallGraph | None = None) -> None:
        self.program = program
        self.config = config
        self.callgraph = callgraph
        self.mapped = {
            cls: config.spec_for(cls) for cls in _CLASSES
            if config.spec_for(cls).has_rc
        }
        self.allocatable = {
            cls: frozenset(config.spec_for(cls).allocatable_core())
            for cls in _CLASSES
        }

    # -- resolution helpers ---------------------------------------------------

    def entries_of(self, cls: RClass) -> int:
        spec = self.mapped.get(cls)
        return spec.core if spec is not None else 0

    def read_entry(self, state: _State, cls: RClass, num: int):
        """Abstract (phys, site) set a source operand resolves to."""
        if num < self.entries_of(cls):
            return state.maps[cls].read_entry(num), True
        return frozenset({(num, None)}), False

    def write_entry(self, state: _State, cls: RClass, num: int):
        """Abstract (phys, site) set a destination operand resolves to."""
        if num < self.entries_of(cls):
            return state.maps[cls].write_entry(num), True
        return frozenset({(num, None)}), False

    # -- ForwardAnalysis interface --------------------------------------------

    def boundary(self, fn: FuncCFG) -> _State:
        maps = {cls: AbstractMap(spec.core, self.config.rc_model)
                for cls, spec in self.mapped.items()}
        # Only the stack pointer holds a meaningful value at entry (arguments
        # arrive on the stack); a trap handler inherits the interrupted
        # context, where any register may be live.
        defined = None if fn.is_handler else reg_mask([(RClass.INT, 0)])
        return _State(maps=maps, sp=0, written=0, saved=0, restored=0,
                      fresh=0, defined=defined)

    def copy(self, state: _State) -> _State:
        return _State(maps={cls: m.copy() for cls, m in state.maps.items()},
                      sp=state.sp, written=state.written, saved=state.saved,
                      restored=state.restored, fresh=state.fresh,
                      defined=state.defined)

    def join(self, a: _State, b: _State) -> _State:
        for cls, m in a.maps.items():
            m.join(b.maps[cls])
        a.sp = a.sp if a.sp == b.sp else None
        a.written = a.written | b.written
        a.saved = a.saved & b.saved
        a.restored = a.restored & b.restored
        a.fresh = a.fresh & b.fresh
        if a.defined is None:
            a.defined = b.defined
        elif b.defined is not None:
            a.defined = a.defined & b.defined
        return a

    def transfer(self, state: _State, index: int, instr) -> _State:
        op = instr.op

        if instr.is_connect:
            cls = instr.imm[0]
            if cls in self.mapped:
                amap = state.maps[cls]
                for _cls, which, ri, rp in instr.connect_updates():
                    if ri < amap.entries:
                        amap.connect(which, ri, rp,
                                     index if rp != ri else None)
            return state

        if op in (Opcode.CALL, Opcode.RET):
            for m in state.maps.values():
                m.reset_home()
            if op is Opcode.CALL:
                # Extended registers are caller-saved: the callee may
                # clobber any of them.  With a call graph (and no trap
                # handlers — an interrupt may run anywhere and clobber
                # anything), only the callee's transitive extended-write
                # footprint is invalidated.  The callee returns its result
                # in the return-value registers.
                if (self.callgraph is not None
                        and not self.program.trap_handlers):
                    state.fresh &= ~self.callgraph.may_write_at(index)
                else:
                    state.fresh = 0
                if state.defined is not None:
                    state.defined |= _RETVAL_MASK
            return state

        # Model 5: reads are one-shot connections.
        for src in instr.reg_srcs():
            if src.cls in self.mapped and src.num < self.entries_of(src.cls):
                state.maps[src.cls].after_read(src.num)

        self._track_frame(state, index, instr)

        dest = instr.dest
        if dest is not None:
            entry, mapped = self.write_entry(state, dest.cls, dest.num)
            targets = {p for p, _ in entry}
            core = self.config.spec_for(dest.cls).core
            alloc = self.allocatable[dest.cls]
            adds_written = reg_mask(
                (dest.cls, p) for p in targets if p in alloc)
            if adds_written:
                state.written |= adds_written
            adds_fresh = reg_mask(
                (dest.cls, p) for p in targets if p >= core)
            if adds_fresh:
                state.fresh |= adds_fresh
            if state.defined is not None and len(targets) == 1:
                # Only an unambiguous write is a definite definition.
                state.defined |= 1 << reg_bit(dest.cls, next(iter(targets)))
            if mapped:
                state.maps[dest.cls].after_write(dest.num)
        return state

    # -- frame / calling-convention tracking ----------------------------------

    def save_pattern(self, state: _State, instr) -> tuple | None:
        """Detect a callee-save store: a pristine allocatable core register
        stored to the frame.  Returns its ``(cls, phys)`` key or ``None``.

        The value operand of such a store legitimately reads a register this
        function never wrote (it preserves the *caller's* value), so the
        use-before-def rules exempt it.
        """
        if instr.op not in (Opcode.STORE, Opcode.FSTORE):
            return None
        value, base = instr.srcs
        if isinstance(value, Imm) or not self._sp_resolved_home(state, base):
            return None
        entry, _ = self.read_entry(state, value.cls, value.num)
        if len(entry) != 1:
            return None
        phys = next(iter(entry))[0]
        key = (value.cls, phys)
        if (phys in self.allocatable[value.cls]
                and not state.written >> reg_bit(*key) & 1):
            return key
        return None

    def _sp_resolved_home(self, state: _State, reg) -> bool:
        """Whether *reg* is the stack pointer resolving to its home slot."""
        if isinstance(reg, Imm) or reg.cls is not RClass.INT or reg.num != 0:
            return False
        entry, _ = self.read_entry(state, RClass.INT, 0)
        return entry == frozenset({(0, None)})

    def _track_frame(self, state: _State, index: int, instr) -> None:
        op = instr.op

        # Stack-pointer arithmetic: add/sub sp, sp, #k.
        dest = instr.dest
        if dest is not None and dest.cls is RClass.INT:
            wentry, _ = self.write_entry(state, dest.cls, dest.num)
            if any(p == 0 for p, _ in wentry):
                exact = (
                    op in (Opcode.ADD, Opcode.SUB)
                    and wentry == frozenset({(0, None)})
                    and len(instr.srcs) == 2
                    and not isinstance(instr.srcs[0], Imm)
                    and self._sp_resolved_home(state, instr.srcs[0])
                    and isinstance(instr.srcs[1], Imm)
                    and state.sp is not None
                )
                if exact:
                    delta = instr.srcs[1].value
                    state.sp = state.sp + (delta if op is Opcode.SUB
                                           else -delta)
                else:
                    state.sp = None

        # Callee-save discipline: a store of a not-yet-written allocatable
        # core register to the frame is a save; the matching load back is
        # its restore.
        if op in (Opcode.STORE, Opcode.FSTORE):
            key = self.save_pattern(state, instr)
            if key is not None:
                state.saved |= 1 << reg_bit(*key)
        elif op in (Opcode.LOAD, Opcode.FLOAD):
            base = instr.srcs[0]
            if not self._sp_resolved_home(state, base):
                return
            entry, _ = self.write_entry(state, instr.dest.cls, instr.dest.num)
            if len(entry) != 1:
                return
            phys = next(iter(entry))[0]
            bit = 1 << reg_bit(instr.dest.cls, phys)
            if state.saved & bit:
                state.restored |= bit


@dataclass
class _Collector:
    """Whole-program facts accumulated across the reporting walks."""

    #: (site, which, index) connect updates used by some resolved access.
    used_sites: set = field(default_factory=set)
    #: (cls, phys) extended registers some access can read.
    ext_readable: set = field(default_factory=set)
    #: first write site per written extended register: (cls, phys) -> (i, fn).
    ext_written: dict = field(default_factory=dict)


def check_program(program: MachineProgram,
                  config: MachineConfig) -> AnalysisReport:
    """Run every static check on *program* and return the report."""
    cfg = build_cfg(program)
    callgraph = build_callgraph(cfg, config) if config.has_rc else None
    checker = _Checker(program, config, callgraph=callgraph)
    results = [
        (fn, solve_forward(fn, checker, program.instrs))
        for fn in cfg.functions
    ]

    # Backward slot/extended liveness per function, with the extended
    # use/def masks resolved through the forward fixpoint (a mapped access
    # only "uses" an extended register via whatever its slot holds there).
    live_by_fn: dict[str, dict[int, LiveState]] = {}
    if config.has_rc:
        for fn, result in results:
            ext_use, ext_def = _ext_tables(checker, fn, result, callgraph)
            analysis = SlotLiveness(program, config,
                                    ext_use=ext_use, ext_def=ext_def)
            live_by_fn[fn.name] = after_states(
                solve_backward(fn, analysis, program.instrs))

    collect = _Collector()
    findings: set[Finding] = set()
    for fn, result in results:
        _report_function(checker, fn, result, collect, findings,
                         config, program)
        live = live_by_fn.get(fn.name)
        if live is not None and not program.trap_handlers:
            _report_dead_ext_writes(checker, fn, result, live, findings)

    _report_dead_connects(checker, cfg, live_by_fn, findings)
    _report_unreadable_ext(collect, findings)

    report = AnalysisReport(
        program_name=program.name,
        model=config.rc_model.value if config.has_rc else 0,
    )
    suppress = getattr(program, "suppressions", {})
    everywhere = suppress.get(-1, frozenset())
    for f in sorted(findings, key=lambda f: (f.index, f.rule, f.message)):
        if f.rule in everywhere or f.rule in suppress.get(f.index, ()):
            report.suppressed += 1
        else:
            report.findings.append(f)
    return report


def _report_function(checker: _Checker, fn: FuncCFG, result: DataflowResult,
                     collect: _Collector, findings: set[Finding],
                     config: MachineConfig, program: MachineProgram) -> None:
    core_of = {cls: config.spec_for(cls).core for cls in _CLASSES}
    latency = config.latency
    reachable = sorted(fn.reachable())

    def emit(rule: str, index: int, message: str) -> None:
        findings.add(Finding(rule=rule, index=index, function=fn.name,
                             message=message))

    def check_read(state: _State, i: int, reg,
                   exempt_ubd: bool = False) -> frozenset:
        """Check one source operand; returns its possible physical regs."""
        entry, mapped = checker.read_entry(state, reg.cls, reg.num)
        physset = frozenset(p for p, _ in entry)
        core = core_of[reg.cls]
        for p, site in entry:
            if site is not None:
                collect.used_sites.add((site, "read", reg.num))
            if p >= core:
                collect.ext_readable.add((reg.cls, p))
        defined = state.defined
        garbage = (defined is not None and not exempt_ubd
                   and not any(defined >> reg_bit(reg.cls, p) & 1
                               for p in physset))
        if mapped:
            if len(physset) > 1:
                alts = ",".join(str(p) for p in sorted(physset))
                emit("RC002", i,
                     f"read of {reg!r} is path-dependent (may resolve to "
                     f"physical {alts})")
            if garbage:
                emit("RC001", i,
                     f"read of {reg!r} resolves to physical "
                     f"{min(physset)} which holds no value written on any "
                     f"path from function entry")
        elif garbage:
            emit("UBD001", i,
                 f"read of {reg!r} before any definition reaches it")
        if not garbage and defined is not None:
            stale = sorted(p for p in physset
                           if p >= core
                           and not state.fresh >> reg_bit(reg.cls, p) & 1)
            if stale:
                emit("CC003", i,
                     f"read of extended physical {stale[0]} "
                     f"({reg.cls.value}) which a call may have clobbered")
        return physset

    def check_block(block) -> None:
        # (index, cls, physical targets, latency) of recent producers.
        producers: list[tuple[int, RClass, frozenset, int]] = []

        def visit(state: _State, i: int, instr) -> None:
            op = instr.op
            if instr.is_connect:
                cls = instr.imm[0]
                core = core_of[cls]
                for _cls, which, _ri, rp in instr.connect_updates():
                    if which == "read" and rp >= core:
                        collect.ext_readable.add((cls, rp))
                # RC005: an update whose slot already holds exactly the
                # requested physical register on every path in is a no-op.
                # Walk the updates over a scratch copy so the second update
                # of a combined connect sees the first.
                if cls in checker.mapped:
                    scratch = state.maps[cls].copy()
                    for _cls, which, ri, rp in instr.connect_updates():
                        if ri >= scratch.entries:
                            continue
                        entry = (scratch.read_entry(ri) if which == "read"
                                 else scratch.write_entry(ri))
                        if {p for p, _ in entry} == {rp}:
                            emit("RC005", i,
                                 f"connect of index {ri} to physical {rp} "
                                 f"({which} map) is redundant (slot already "
                                 f"holds it on every path in)")
                        scratch.connect(which, ri, rp, None)
                return
            save_key = checker.save_pattern(state, instr)
            src_phys: dict[RClass, set] = {}
            for src in instr.reg_srcs():
                exempt = save_key is not None and src is instr.srcs[0]
                physset = check_read(state, i, src, exempt_ubd=exempt)
                src_phys.setdefault(src.cls, set()).update(physset)
            for pi, pcls, pset, lat in producers:
                if i - pi < lat and src_phys.get(pcls, set()) & pset:
                    emit("LAT001", i,
                         f"depends on @{pi} ({program.instrs[pi].op.value}, "
                         f"latency {lat}) at distance {i - pi}")
            dest = instr.dest
            if dest is not None:
                entry, _ = checker.write_entry(state, dest.cls, dest.num)
                for p, site in entry:
                    if site is not None:
                        collect.used_sites.add((site, "write", dest.num))
                targets = frozenset(p for p, _ in entry)
                ext = sorted(p for p in targets if p >= core_of[dest.cls])
                for p in ext:
                    collect.ext_written.setdefault((dest.cls, p), (i, fn.name))
                lat = latency.of(op)
                if lat > 1:
                    producers.append((i, dest.cls, targets, lat))
            if op is Opcode.RET:
                if state.sp not in (None, 0):
                    emit("CC001", i,
                         f"stack delta is {state.sp} words at return")
                if not fn.is_entry and not fn.is_handler:
                    unrestored = reg_items(state.written & ~state.restored)
                    for cls, p in sorted(unrestored,
                                         key=lambda k: (k[0].value, k[1])):
                        emit("CC002", i,
                             f"callee-saved {'r' if cls is RClass.INT else 'f'}"
                             f"{p} modified but not restored before return")

        result.walk(fn.blocks[block], visit)

    for start in reachable:
        check_block(start)

    # Structural: control must not run off the end of the program, nor fall
    # through the end of a compiler-delimited function body.
    for start in reachable:
        block = fn.blocks[start]
        if block.falls_off_end:
            emit("CFG001", block.end - 1,
                 "control can fall off the end of the program")
        elif program.func_ranges:
            _lo, hi = program.func_ranges[fn.name]
            last_op = program.instrs[block.end - 1].op
            if block.end == hi and falls_through(last_op):
                emit("CFG001", block.end - 1,
                     f"control falls through the end of function {fn.name}")


def _ext_tables(checker: _Checker, fn: FuncCFG, result: DataflowResult,
                callgraph: CallGraph | None
                ) -> tuple[dict[int, int], dict[int, int]]:
    """Per-instruction extended-register use/def masks for liveness.

    The forward fixpoint resolves every mapped operand to its possible
    physical registers, so the backward pass knows that e.g. a read through
    a slot holding physical 70 keeps extended register 70 live.  Defs only
    record *definite* (single-target) extended writes — an ambiguous write
    must not kill liveness.  ``CALL`` sites use the callee's transitive
    may-read summary.
    """
    ext_use: dict[int, int] = {}
    ext_def: dict[int, int] = {}
    core_of = {cls: checker.config.spec_for(cls).core for cls in _CLASSES}

    def visit(state: _State, i: int, instr) -> None:
        if instr.is_connect:
            return
        if instr.op is Opcode.CALL:
            if callgraph is not None:
                mask = callgraph.may_read_at(i)
                if mask:
                    ext_use[i] = mask
            return
        use = 0
        for src in instr.reg_srcs():
            entry, _ = checker.read_entry(state, src.cls, src.num)
            for p, _site in entry:
                if p >= core_of[src.cls]:
                    use |= 1 << reg_bit(src.cls, p)
        if use:
            ext_use[i] = use
        dest = instr.dest
        if dest is not None:
            entry, _ = checker.write_entry(state, dest.cls, dest.num)
            targets = {p for p, _ in entry}
            if len(targets) == 1:
                p = next(iter(targets))
                if p >= core_of[dest.cls]:
                    ext_def[i] = 1 << reg_bit(dest.cls, p)

    for start in sorted(fn.reachable()):
        result.walk(fn.blocks[start], visit)
    return ext_use, ext_def


def _report_dead_ext_writes(checker: _Checker, fn: FuncCFG,
                            result: DataflowResult,
                            live: dict[int, LiveState],
                            findings: set[Finding]) -> None:
    """RC006: definite extended-register writes whose value is never read."""
    core_of = {cls: checker.config.spec_for(cls).core for cls in _CLASSES}

    def visit(state: _State, i: int, instr) -> None:
        dest = instr.dest
        if dest is None or instr.is_connect or i not in live:
            return
        entry, _ = checker.write_entry(state, dest.cls, dest.num)
        targets = {p for p, _ in entry}
        if len(targets) != 1:
            return
        p = next(iter(targets))
        if p < core_of[dest.cls]:
            return
        if not live[i][2] >> reg_bit(dest.cls, p) & 1:
            findings.add(Finding(
                rule="RC006", index=i, function=fn.name,
                message=(f"write of {dest!r} lands in extended physical "
                         f"{p} ({dest.cls.value}) which is never read "
                         f"afterwards"),
            ))

    for start in sorted(fn.reachable()):
        result.walk(fn.blocks[start], visit)


def _report_dead_connects(checker: _Checker, cfg: ProgramCFG,
                          live_by_fn: dict[str, dict[int, LiveState]],
                          findings: set[Finding]) -> None:
    """RC003: connects none of whose non-home updates can be observed.

    Decided by backward slot liveness: an update is dead when its slot is
    overwritten or reset on every path before any access resolves through
    it — including connects inside reachable-but-never-read regions, which
    the earlier forward used-site bookkeeping silently skipped.  Connects
    outside every recovered function never execute at all and stay out of
    scope here (they are unreachable code, not a live-but-dead mapping).
    """
    program = cfg.program
    for i, instr in enumerate(program.instrs):
        if not instr.is_connect:
            continue
        start = _containing_block(cfg, i)
        block = cfg.block_at[start] if start is not None else None
        if block is None or not block.func:
            continue  # outside every function: unreachable code
        live = live_by_fn.get(block.func)
        if live is None or i not in live:
            continue
        cls = instr.imm[0]
        entries = checker.entries_of(cls)
        rmap, wmap, _ext = live[i]
        updates = instr.connect_updates()
        dead: dict[int, tuple] = {}
        redefined: set[tuple[str, int]] = set()
        for pos in range(len(updates) - 1, -1, -1):
            _cls, which, ri, rp = updates[pos]
            if ri >= entries:
                continue
            bit = 1 << reg_bit(cls, ri)
            alive = (rmap if which == "read" else wmap) & bit
            if (which, ri) in redefined or not alive:
                dead[pos] = (which, ri, rp)
            redefined.add((which, ri))
        non_home = [pos for pos, (_cls, _which, ri, rp) in enumerate(updates)
                    if rp != ri]
        if not non_home:
            continue  # pure home-restore
        if all(pos in dead for pos in non_home):
            which, ri, rp = dead[non_home[0]]
            findings.add(Finding(
                rule="RC003", index=i, function=block.func,
                message=(f"connect of index {ri} to physical {rp} "
                         f"({which} map) is never used before being reset "
                         f"or remapped"),
            ))


def _containing_block(cfg: ProgramCFG, index: int) -> int | None:
    for start, block in cfg.block_at.items():
        if block.start <= index < block.end:
            return start
    return None


def _report_unreadable_ext(collect: _Collector,
                           findings: set[Finding]) -> None:
    """RC004: extended registers written but unreadable everywhere."""
    for (cls, p), (i, fn_name) in sorted(
            collect.ext_written.items(),
            key=lambda kv: kv[1][0]):
        if (cls, p) not in collect.ext_readable:
            findings.add(Finding(
                rule="RC004", index=i, function=fn_name,
                message=(f"extended physical {p} ({cls.value}) is written "
                         f"but never readable (no direct read and never a "
                         f"connect-use target)"),
            ))
