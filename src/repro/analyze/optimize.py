"""Analysis-driven connect optimizer (post-regalloc machine pass).

Consumes the forward mapping-table abstract interpretation and the backward
slot liveness to shrink connect traffic in a compiled
:class:`~repro.sim.program.MachineProgram` without changing its
architectural behaviour:

* **dead-connect deletion** — a connect update whose map slot is never
  observed (no read resolves through a dead read-map slot, no write lands
  through a dead write-map slot) before the slot is reconnected or reset is
  removed; because writes count as uses of the write map, deletion can never
  move a value to a different physical register.
* **redundant-connect elimination** — an update whose slot already holds
  exactly the requested physical register on every incoming path is a
  no-op and is removed.
* **loop-invariant hoisting** — a connect inside a natural loop whose slots
  are dead on loop entry is copied into the preheader; the original then
  becomes redundant on every iteration and is deleted by the next deletion
  round.  A hoist is only committed when the follow-up deletion brings the
  static connect count back to no more than it was, so the static cost
  never grows while the dynamic count drops from once-per-iteration to
  once-per-loop-entry.

The pass refuses to touch programs it cannot model statically: anything
with trap handlers, ``TRAP``/``RTE`` (handlers may connect with mapping
disabled), ``MTPSW`` (may toggle mapping at runtime) or ``MFMAP`` (observes
raw table state).  Such programs are returned unchanged with the bail
reason in the report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analyze.cfg import FuncCFG, ProgramCFG, build_cfg
from repro.analyze.dataflow import (ForwardAnalysis, reg_bit, solve_backward,
                                    solve_forward)
from repro.analyze.liveness import SlotLiveness, after_states
from repro.isa.instruction import Instr, connect_def, connect_use
from repro.isa.opcodes import Opcode
from repro.isa.registers import RClass
from repro.rc.abstract import AbstractMap
from repro.sim.config import MachineConfig
from repro.sim.program import MachineProgram

_CLASSES = (RClass.INT, RClass.FP)

#: Opcodes that invalidate the static map model (see module docstring).
BAIL_OPS = frozenset({Opcode.TRAP, Opcode.RTE, Opcode.MTPSW, Opcode.MFMAP})

_MAX_DELETE_ROUNDS = 20
_MAX_HOIST_PASSES = 2


@dataclass
class ConnectEdit:
    """One applied rewrite, reported against the pre-pass instruction index."""

    kind: str  # "dead" | "redundant" | "hoist"
    function: str
    index: int  # instruction index at the time the edit was applied
    detail: str


@dataclass
class ConnectOptReport:
    """What the optimizer did to one program."""

    connects_before: int = 0
    connects_after: int = 0
    removed_dead: int = 0
    removed_redundant: int = 0
    hoisted: int = 0
    edits: list[ConnectEdit] = field(default_factory=list)
    #: Why the pass declined to run, or None when it ran.
    bail_reason: str | None = None

    @property
    def changed(self) -> bool:
        return bool(self.edits)

    @property
    def removed(self) -> int:
        return self.connects_before - self.connects_after

    def lines(self) -> list[str]:
        """Human-readable summary for ``repro disasm --annotate``."""
        if self.bail_reason is not None:
            return [f"connect-opt: skipped ({self.bail_reason})"]
        head = (f"connect-opt: {self.connects_before} -> "
                f"{self.connects_after} static connects "
                f"({self.removed_dead} dead, "
                f"{self.removed_redundant} redundant, "
                f"{self.hoisted} hoisted)")
        out = [head]
        for e in self.edits:
            out.append(f"  {e.kind:<9} {e.function}@{e.index}: {e.detail}")
        return out


@dataclass
class OptimizeResult:
    program: MachineProgram
    report: ConnectOptReport


def _static_connects(program: MachineProgram) -> int:
    return sum(1 for i in program.instrs if i.is_connect)


class _MapState(ForwardAnalysis):
    """Forward mapping-table state, site-free (entries collapse by target).

    Identical transfer semantics to the checker's abstract interpretation
    but with ``site=None`` on every connect, so an entry that holds physical
    register *p* compares equal no matter which connect established it —
    exactly the question redundancy elimination asks.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.entries = {
            cls: (config.spec_for(cls).core
                  if config.spec_for(cls).has_rc else 0)
            for cls in _CLASSES
        }

    def boundary(self, fn: FuncCFG) -> dict:
        return {cls: AbstractMap(n, self.config.rc_model)
                for cls, n in self.entries.items() if n}

    def join(self, a: dict, b: dict) -> dict:
        for cls, amap in a.items():
            amap.join(b[cls])
        return a

    def copy(self, state: dict) -> dict:
        return {cls: amap.copy() for cls, amap in state.items()}

    def transfer(self, state: dict, index: int, instr) -> dict:
        if instr.is_connect:
            amap = state.get(instr.imm[0])
            if amap is not None:
                for _cls, which, ri, rp in instr.connect_updates():
                    if ri < amap.entries:
                        amap.connect(which, ri, rp, None)
            return state
        op = instr.op
        if op in (Opcode.CALL, Opcode.RET):
            for amap in state.values():
                amap.reset_home()
            return state
        for src in instr.reg_srcs():
            amap = state.get(src.cls)
            if amap is not None and src.num < amap.entries:
                amap.after_read(src.num)
        dest = instr.dest
        if dest is not None:
            amap = state.get(dest.cls)
            if amap is not None and dest.num < amap.entries:
                amap.after_write(dest.num)
        return state


def _bail_reason(program: MachineProgram,
                 config: MachineConfig) -> str | None:
    if not config.has_rc:
        return "no extended registers in this configuration"
    if program.trap_handlers:
        return "program installs trap handlers"
    for instr in program.instrs:
        if instr.op in BAIL_OPS:
            return f"program uses {instr.op.value}"
    return None


# -- deletion ----------------------------------------------------------------


def _classify_drops(program: MachineProgram, config: MachineConfig,
                    cfg: ProgramCFG) -> dict[int, tuple[set[int], str]]:
    """Map connect index -> (update positions to drop, position -> kind).

    Kind is ``"redundant"`` (the slot already holds the target on every
    incoming path) or ``"dead"`` (the slot is never observed afterwards);
    an update qualifying as both reports as redundant.

    The two kinds must not be applied in the same rewrite: a dead update
    can owe its deadness to a later redundant one (the redefinition that
    kills it) while that one owes its redundancy to the former (the
    definition that established the mapping) — removing both at once would
    leave reads resolving through the home mapping.  ``_delete_round``
    therefore applies one kind per round and lets the fixpoint re-judge.
    """
    drops: dict[int, tuple[set[int], dict[int, str]]] = {}
    claimed: set[int] = set()

    for fn in cfg.functions:
        analysis = _MapState(config)
        fwd = solve_forward(fn, analysis, program.instrs)
        bwd = solve_backward(fn, SlotLiveness(program, config),
                             program.instrs)
        live = after_states(bwd)
        for block in fn.blocks.values():
            claimed.update(range(block.start, block.end))
            if block.start not in fwd.block_in:
                continue  # unreachable within the function

            def visit(state: dict, i: int, instr) -> None:
                if not instr.is_connect:
                    return
                updates = instr.connect_updates()
                cls = instr.imm[0]
                amap = state.get(cls)
                if amap is None:
                    return
                drop: set[int] = set()
                kinds: dict[int, str] = {}
                # Redundancy: walk updates forward over a scratch copy so
                # the second update of a combined connect sees the first.
                scratch = amap.copy()
                for pos, (_c, which, ri, rp) in enumerate(updates):
                    if ri >= scratch.entries:
                        continue
                    entry = (scratch.read_entry(ri) if which == "read"
                             else scratch.write_entry(ri))
                    if entry == frozenset({(rp, None)}):
                        drop.add(pos)
                        kinds[pos] = "redundant"
                    scratch.connect(which, ri, rp, None)
                # Deadness: walk updates backward so an earlier same-slot
                # update is killed by a later one.
                rmap, wmap, _ext = live[i]
                redefined: set[tuple[str, int]] = set()
                for pos in range(len(updates) - 1, -1, -1):
                    _c, which, ri, _rp = updates[pos]
                    if ri >= scratch.entries:
                        continue
                    bit = 1 << reg_bit(cls, ri)
                    alive = (rmap if which == "read" else wmap) & bit
                    if (which, ri) in redefined or not alive:
                        drop.add(pos)
                        kinds.setdefault(pos, "dead")
                    redefined.add((which, ri))
                if drop:
                    drops[i] = (drop, kinds)

            fwd.walk(block, visit)

    # Connects outside every recovered function never execute (no trap
    # handlers here — the pass bails on those): drop them whole.
    for i, instr in enumerate(program.instrs):
        if instr.is_connect and i not in claimed:
            updates = instr.connect_updates()
            drops[i] = (set(range(len(updates))),
                        {p: "dead" for p in range(len(updates))})
    return drops


def _fmt_update(update) -> str:
    _cls, which, ri, rp = update
    return f"{which}[{ri}]->p{rp}"


def _rebuild_connect(instr: Instr, kept: list) -> Instr | None:
    """The replacement for *instr* keeping only *kept* updates."""
    if not kept:
        return None
    if len(kept) == len(instr.connect_updates()):
        return instr
    cls, which, ri, rp = kept[0]
    make = connect_use if which == "read" else connect_def
    new = make(cls, ri, rp, origin=instr.origin)
    new.alias = instr.alias
    return new


def _delete_indices(program: MachineProgram,
                    deleted: set[int]) -> MachineProgram:
    """Rebuild *program* without the instructions in *deleted*.

    Jump targets, the entry point, function ranges and suppressions are
    remapped; a target whose entire suffix would be deleted keeps its
    landing instruction alive (the caller guarantees this cannot happen for
    connect-only deletions inside well-formed programs, but the guard keeps
    the rebuild total).
    """
    n = len(program.instrs)
    anchors = {program.entry}
    anchors.update(t for t in program.targets if t is not None)
    for t in sorted(anchors, reverse=True):
        if t in deleted and all(j in deleted for j in range(t, n)):
            deleted.discard(t)

    # shift[i] = number of deleted indices < i; valid for i in [0, n].
    shift = [0] * (n + 1)
    for i in range(n):
        shift[i + 1] = shift[i] + (1 if i in deleted else 0)

    def remap(t: int) -> int:
        return t - shift[t]

    new_instrs, new_targets = [], []
    for i in range(n):
        if i in deleted:
            continue
        new_instrs.append(program.instrs[i])
        t = program.targets[i]
        new_targets.append(None if t is None else remap(t))

    return replace(
        program,
        instrs=new_instrs,
        targets=new_targets,
        entry=remap(program.entry),
        func_ranges={name: (remap(lo), remap(hi))
                     for name, (lo, hi) in program.func_ranges.items()},
        suppressions={(k if k < 0 else remap(k)): v
                      for k, v in program.suppressions.items()
                      if k < 0 or k not in deleted},
    )


def _delete_round(program: MachineProgram, config: MachineConfig,
                  report: ConnectOptReport) -> MachineProgram | None:
    """One deletion round; None when nothing was removable."""
    cfg = build_cfg(program)
    drops = _classify_drops(program, config, cfg)
    if not drops:
        return None

    # One kind per round (see _classify_drops): dead drops first, then a
    # later round picks up whatever stays redundant without them.
    kind_now = ("dead" if any("dead" in kinds.values()
                              for _d, kinds in drops.values())
                else "redundant")
    filtered: dict[int, tuple[set[int], dict[int, str]]] = {}
    for i, (drop, kinds) in drops.items():
        keep = {pos for pos in drop if kinds[pos] == kind_now}
        if keep:
            filtered[i] = (keep, kinds)
    drops = filtered

    deleted: set[int] = set()
    replaced: dict[int, Instr] = {}
    for i, (drop, kinds) in sorted(drops.items()):
        instr = program.instrs[i]
        updates = instr.connect_updates()
        kept = [u for pos, u in enumerate(updates) if pos not in drop]
        new = _rebuild_connect(instr, kept)
        fn = program.function_of(i) or "?"
        for pos in sorted(drop):
            report.edits.append(ConnectEdit(
                kind=kinds[pos], function=fn, index=i,
                detail=_fmt_update(updates[pos])))
            if kinds[pos] == "dead":
                report.removed_dead += 1
            else:
                report.removed_redundant += 1
        if new is None:
            deleted.add(i)
        else:
            replaced[i] = new

    if replaced:
        instrs = list(program.instrs)
        for i, new in replaced.items():
            instrs[i] = new
        program = replace(program, instrs=instrs)
    if deleted:
        program = _delete_indices(program, deleted)
    return program


def _delete_fixpoint(program: MachineProgram, config: MachineConfig,
                     report: ConnectOptReport) -> MachineProgram:
    for _ in range(_MAX_DELETE_ROUNDS):
        nxt = _delete_round(program, config, report)
        if nxt is None:
            return program
        program = nxt
    return program  # pragma: no cover - round bound is a safety net


# -- hoisting ----------------------------------------------------------------


def _dominators(fn: FuncCFG) -> dict[int, set[int]]:
    """Dominator sets per block (iterative, fine at these sizes)."""
    rpo = fn.rpo()
    all_blocks = {b.start for b in rpo}
    doms = {b.start: set(all_blocks) for b in rpo}
    doms[fn.entry] = {fn.entry}
    changed = True
    while changed:
        changed = False
        for b in rpo:
            if b.start == fn.entry:
                continue
            preds = [p for p in b.preds if p in all_blocks]
            new = set(all_blocks)
            for p in preds:
                new &= doms[p]
            new.add(b.start)
            if new != doms[b.start]:
                doms[b.start] = new
                changed = True
    return doms


def _natural_loops(fn: FuncCFG) -> dict[int, set[int]]:
    """header block start -> loop body block starts (header included)."""
    doms = _dominators(fn)
    loops: dict[int, set[int]] = {}
    for b in fn.rpo():
        for s in b.succs:
            if s in fn.blocks and s in doms[b.start]:
                body = loops.setdefault(s, {s})
                stack = [b.start]
                while stack:
                    x = stack.pop()
                    if x in body:
                        continue
                    body.add(x)
                    stack.extend(p for p in fn.blocks[x].preds
                                 if p in fn.blocks)
    return loops


def _preheader(fn: FuncCFG, header: int, body: set[int]) -> int | None:
    """The unique out-of-loop predecessor that only feeds *header*."""
    outside = [p for p in fn.blocks[header].preds
               if p in fn.blocks and p not in body]
    if len(outside) != 1:
        return None
    pred = fn.blocks[outside[0]]
    if pred.succs != (header,):
        return None
    return pred.start


def _insert_at(program: MachineProgram, instr: Instr, p: int,
               execute_on_jump: bool) -> MachineProgram:
    """Insert *instr* (no target) at index *p*, shifting the suffix."""

    def remap(t: int) -> int:
        if t > p or (t == p and not execute_on_jump):
            return t + 1
        return t

    instrs = list(program.instrs)
    targets = list(program.targets)
    instrs.insert(p, instr)
    targets_new = [None if t is None else remap(t) for t in targets]
    targets_new.insert(p, None)
    return replace(
        program,
        instrs=instrs,
        targets=targets_new,
        entry=remap(program.entry),
        func_ranges={name: (lo + 1 if lo > p else lo,
                            hi + 1 if hi > p else hi)
                     for name, (lo, hi) in program.func_ranges.items()},
        suppressions={(k if k < 0 else (k + 1 if k >= p else k)): v
                      for k, v in program.suppressions.items()},
    )


def _hoist_candidates(program: MachineProgram, config: MachineConfig,
                      cfg: ProgramCFG):
    """Yield (connect index, preheader insert position, flag, fn name)."""
    for fn in cfg.functions:
        loops = _natural_loops(fn)
        if not loops:
            continue
        bwd = solve_backward(fn, SlotLiveness(program, config),
                             program.instrs)
        for header, body in sorted(loops.items()):
            if header == fn.entry or header not in bwd.block_in:
                continue
            pre = _preheader(fn, header, body)
            if pre is None:
                continue
            rmap_in, wmap_in, _ext = bwd.block_in[header]
            for start in sorted(body):
                block = fn.blocks[start]
                for i in range(block.start, block.end):
                    instr = program.instrs[i]
                    if not instr.is_connect:
                        continue
                    cls = instr.imm[0]
                    spec = config.spec_for(cls)
                    entries = spec.core if spec.has_rc else 0
                    ok = True
                    for _c, which, ri, _rp in instr.connect_updates():
                        if ri >= entries:
                            ok = False
                            break
                        bit = 1 << reg_bit(cls, ri)
                        live_in = rmap_in if which == "read" else wmap_in
                        if live_in & bit:
                            ok = False
                            break
                    if not ok:
                        continue
                    pb = fn.blocks[pre]
                    last = program.instrs[pb.end - 1]
                    if last.op is Opcode.JMP or last.is_cond_branch:
                        yield i, pb.end - 1, True, fn.name
                    else:
                        yield i, pb.end, False, fn.name


def _fully_redundant(program: MachineProgram, config: MachineConfig,
                     index: int) -> bool:
    """Whether every update of the connect at *index* is a no-op."""
    cfg = build_cfg(program)
    fn = block = None
    for f in cfg.functions:
        for b in f.blocks.values():
            if b.start <= index < b.end:
                fn, block = f, b
                break
        if block is not None:
            break
    if block is None:
        return False
    analysis = _MapState(config)
    fwd = solve_forward(fn, analysis, program.instrs)
    if block.start not in fwd.block_in:
        return False
    captured: dict = {}

    def visit(state: dict, i: int, _instr) -> None:
        if i == index:
            captured.update(analysis.copy(state))

    fwd.walk(block, visit)
    instr = program.instrs[index]
    amap = captured.get(instr.imm[0])
    if amap is None:
        return False
    scratch = amap.copy()
    for _c, which, ri, rp in instr.connect_updates():
        if ri >= scratch.entries:
            return False
        entry = (scratch.read_entry(ri) if which == "read"
                 else scratch.write_entry(ri))
        if entry != frozenset({(rp, None)}):
            return False
        scratch.connect(which, ri, rp, None)
    return True


def _hoist_pass(program: MachineProgram, config: MachineConfig,
                report: ConnectOptReport) -> MachineProgram:
    """Attempt each hoist candidate; commit only verified, non-growing moves.

    A trial inserts a copy of the loop connect into the preheader, then
    demands the original become a provable no-op in the trial program (it
    now re-establishes a mapping the preheader already set on every path)
    before deleting exactly it and re-running the deletion fixpoint.  The
    explicit redundancy proof is what keeps the pair sound: the inserted
    copy and the original are never judged against each other's absence.
    """
    trials = 0
    progress = True
    while progress and trials < 200:
        progress = False
        cfg = build_cfg(program)
        for i, p, eoj, fname in _hoist_candidates(program, config, cfg):
            trials += 1
            before = _static_connects(program)
            trial = _insert_at(program, program.instrs[i].copy(), p, eoj)
            orig = i + 1 if i >= p else i
            if not _fully_redundant(trial, config, orig):
                continue
            trial = _delete_indices(trial, {orig})
            trial_report = ConnectOptReport()
            trial = _delete_fixpoint(trial, config, trial_report)
            if _static_connects(trial) > before:
                continue
            report.hoisted += 1
            report.edits.append(ConnectEdit(
                kind="hoist", function=fname, index=i,
                detail=f"loop connect@{i} -> preheader@{p}"))
            report.removed_dead += trial_report.removed_dead
            report.removed_redundant += trial_report.removed_redundant
            report.edits.extend(trial_report.edits)
            program = trial
            progress = True
            break  # indices shifted: recompute candidates
    return program


# -- entry point -------------------------------------------------------------


def optimize_connects(program: MachineProgram,
                      config: MachineConfig) -> OptimizeResult:
    """Run the connect optimizer; see the module docstring for the rules."""
    report = ConnectOptReport(connects_before=_static_connects(program))
    report.bail_reason = _bail_reason(program, config)
    if report.bail_reason is not None:
        report.connects_after = report.connects_before
        return OptimizeResult(program=program, report=report)

    program = _delete_fixpoint(program, config, report)
    for _ in range(_MAX_HOIST_PASSES):
        hoists_before = report.hoisted
        program = _hoist_pass(program, config, report)
        if report.hoisted == hoists_before:
            break
    report.connects_after = _static_connects(program)
    return OptimizeResult(program=program, report=report)
