"""Registry of the twelve benchmark kernels (paper section 5.3).

Integer: cccp, cmp, compress, eqn, eqntott, espresso, grep, lex, yacc.
Floating point: matrix300, nasa7, tomcatv.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.ir.function import Module
from repro.workloads.floating import matrix300, nasa7, tomcatv
from repro.workloads.integer import (
    cccp,
    cmp_,
    compress_,
    eqn,
    eqntott,
    espresso,
    grep,
    lex,
    yacc,
)

_MODULES = [cccp, cmp_, compress_, eqn, eqntott, espresso, grep, lex, yacc,
            matrix300, nasa7, tomcatv]


@dataclass(frozen=True)
class Workload:
    """One benchmark: a named, seeded, executable IR module factory."""

    name: str
    kind: str  # "int" or "fp"
    build: Callable[[int], Module]
    reference_checksum: Callable[[int], int | float] | None = None

    def module(self, scale: int = 1) -> Module:
        return self.build(scale)


WORKLOADS: dict[str, Workload] = {
    mod.NAME: Workload(
        name=mod.NAME,
        kind=mod.KIND,
        build=mod.build,
        reference_checksum=getattr(mod, "reference_checksum", None),
    )
    for mod in _MODULES
}

INTEGER_BENCHMARKS = tuple(sorted(
    name for name, w in WORKLOADS.items() if w.kind == "int"
))
FP_BENCHMARKS = tuple(sorted(
    name for name, w in WORKLOADS.items() if w.kind == "fp"
))
ALL_BENCHMARKS = INTEGER_BENCHMARKS + FP_BENCHMARKS


def workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigError(
            f"unknown benchmark {name!r}; available: {ALL_BENCHMARKS}"
        ) from None


def build_workload(name: str, scale: int = 1) -> Module:
    return workload(name).module(scale)
