"""Floating-point benchmark kernels (three, as in the paper's evaluation)."""
