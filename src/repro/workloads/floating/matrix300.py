"""``matrix300`` — dense double-precision matrix multiply.

The SPEC original multiplies 300x300 matrices; this kernel runs the same
triple loop (with the dot-product innermost, as a counted self-loop the
unroller and scheduler can overlap) at simulator-friendly scale.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import floats

NAME = "matrix300"
KIND = "fp"

_N = 12


def _inputs(scale: int) -> tuple[int, list[float], list[float]]:
    n = _N * scale
    a = floats(seed=1515, n=n * n, lo=-1.0, hi=1.0)
    bm = floats(seed=1616, n=n * n, lo=-1.0, hi=1.0)
    return n, a, bm


def build(scale: int = 1) -> Module:
    n, a, bm = _inputs(scale)
    m = Module(NAME)
    m.add_global("A", n * n, a)
    m.add_global("B", n * n, bm)
    m.add_global("C", n * n)
    m.add_global("checksum", 1)

    b = FnBuilder(m, "main")
    pa = b.la("A")
    pb = b.la("B")
    pc = b.la("C")
    csum = b.fli(0.0, name="csum")
    i = b.li(0, name="i")

    b.block("i_loop")
    row = b.mul(i, n, name="row")
    j = b.li(0, name="j")
    b.block("j_loop")
    acc = b.fli(0.0, name="acc")
    arow = b.add(pa, row, name="arow")
    bcol = b.add(pb, j, name="bcol")
    k = b.li(0, name="k")
    b.block("k_loop")
    av = b.fload(b.add(arow, k), 0, name="av")
    bv = b.fload(b.add(bcol, b.mul(k, n)), 0, name="bv")
    b.fadd(acc, b.fmul(av, bv), dest=acc)
    b.add(k, 1, dest=k)
    b.br("blt", k, n, "k_loop")
    b.block("j_next")
    b.fstore(acc, b.add(pc, b.add(row, j)), 0)
    b.fadd(csum, acc, dest=csum)
    b.add(j, 1, dest=j)
    b.br("blt", j, n, "j_loop")
    b.block("i_next")
    b.add(i, 1, dest=i)
    b.br("blt", i, n, "i_loop")
    b.block("done")
    b.fstore(csum, b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> float:
    n, a, bm = _inputs(scale)
    csum = 0.0
    for i in range(n):
        for j in range(n):
            acc = 0.0
            for k in range(n):
                acc = acc + a[i * n + k] * bm[k * n + j]
            csum += acc
    return csum
