"""``tomcatv`` — vectorized mesh generation: 2D stencil relaxation.

The SPEC original iterates residual/relaxation sweeps over two coordinate
grids.  This kernel performs Jacobi-style five-point relaxation sweeps over
an ``n x n`` double grid, tracking the maximum-residual proxy (sum of
absolute corrections) per sweep, as the original's RXM/RYM reductions do.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import floats

NAME = "tomcatv"
KIND = "fp"

_N = 18
_SWEEPS = 3


def _grid(scale: int) -> tuple[int, list[float]]:
    n = _N * scale
    return n, floats(seed=1717, n=n * n, lo=0.0, hi=4.0)


def build(scale: int = 1) -> Module:
    n, grid = _grid(scale)
    m = Module(NAME)
    m.add_global("X", n * n, grid)
    m.add_global("Y", n * n)
    m.add_global("checksum", 1)
    m.add_global("residual", 1)

    b = FnBuilder(m, "main")
    px = b.la("X")
    py = b.la("Y")
    quarter = b.fli(0.25, name="quarter")
    relax = b.fli(0.9, name="relax")
    res = b.fli(0.0, name="res")
    sweep = b.li(0, name="sweep")

    b.block("sweep_loop")
    i = b.li(1, name="i")
    b.block("i_loop")
    rowbase = b.mul(i, n, name="rowbase")
    j = b.li(1, name="j")
    b.block("j_loop")
    idx = b.add(rowbase, j, name="idx")
    center = b.fload(b.add(px, idx), 0, name="center")
    north = b.fload(b.add(px, b.sub(idx, n)), 0, name="north")
    south = b.fload(b.add(px, b.add(idx, n)), 0, name="south")
    west = b.fload(b.add(px, idx), -1, name="west")
    east = b.fload(b.add(px, idx), 1, name="east")
    avg = b.fmul(quarter,
                 b.fadd(b.fadd(north, south), b.fadd(west, east)),
                 name="avg")
    corr = b.fmul(relax, b.fsub(avg, center), name="corr")
    b.fstore(b.fadd(center, corr), b.add(py, idx), 0)
    # accumulate the squared correction into the residual proxy (branch-free,
    # keeping the sweep one counted block the unroller can overlap)
    b.fadd(res, b.fmul(corr, corr), dest=res)
    b.add(j, 1, dest=j)
    b.br("blt", j, n - 1, "j_loop")
    b.block("i_next")
    b.add(i, 1, dest=i)
    b.br("blt", i, n - 1, "i_loop")
    b.block("copy_back")
    # interior copy Y -> X for the next sweep
    k = b.li(n + 1, name="k")
    b.block("copy_loop")
    v = b.fload(b.add(py, k), 0, name="v")
    b.fstore(v, b.add(px, k), 0)
    b.add(k, 1, dest=k)
    b.br("blt", k, n * (n - 1) - 1, "copy_loop")
    b.block("sweep_next")
    b.add(sweep, 1, dest=sweep)
    b.br("blt", sweep, _SWEEPS, "sweep_loop")
    b.block("done")
    b.fstore(res, b.la("residual"), 0)
    # checksum = residual + sum of a probe row
    probe = b.fli(0.0, name="probe")
    t = b.li(0, name="t")
    rowp = b.add(px, n * (_N // 2), name="rowp")
    b.block("probe_loop")
    b.fadd(probe, b.fload(b.add(rowp, t), 0), dest=probe)
    b.add(t, 1, dest=t)
    b.br("blt", t, n, "probe_loop")
    b.block("out")
    b.fstore(b.fadd(res, probe), b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> float:
    n, grid = _grid(scale)
    x = list(grid)
    y = [0.0] * (n * n)
    res = 0.0
    for _ in range(_SWEEPS):
        for i in range(1, n - 1):
            for j in range(1, n - 1):
                idx = i * n + j
                avg = 0.25 * ((x[idx - n] + x[idx + n])
                              + (x[idx - 1] + x[idx + 1]))
                corr = 0.9 * (avg - x[idx])
                y[idx] = x[idx] + corr
                res = res + corr * corr
        for k in range(n + 1, n * (n - 1) - 1):
            x[k] = y[k]
    probe = 0.0
    for t in range(n):
        probe += x[(_N // 2) * n + t]
    return res + probe
