"""``nasa7`` — the NAS kernel collection (MXM, CHOLSKY, VPENTA slices).

The SPEC original runs seven FP kernels; this reproduction implements three
representative members at reduced scale — a matrix-multiply (MXM), a
forward triangular solve (the CHOLSKY inner sweep), and a recurrence sweep
over banded systems (VPENTA's data access pattern) — and folds their
results into one checksum, mirroring the original's per-kernel checksums.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import floats

NAME = "nasa7"
KIND = "fp"

_MXM_N = 8
_TRI_N = 14
_PENTA_N = 260


def _inputs(scale: int):
    mn = _MXM_N * scale
    tn = _TRI_N * scale
    pn = _PENTA_N * scale
    mxm_a = floats(seed=1818, n=mn * mn, lo=-1.0, hi=1.0)
    mxm_b = floats(seed=1919, n=mn * mn, lo=-1.0, hi=1.0)
    # Lower-triangular with dominant diagonal so the solve is stable.
    tri = floats(seed=2020, n=tn * tn, lo=0.0, hi=0.5)
    for d in range(tn):
        tri[d * tn + d] = 2.0 + (d % 3) * 0.5
    rhs = floats(seed=2121, n=tn, lo=-1.0, hi=1.0)
    penta = floats(seed=2222, n=pn, lo=0.1, hi=1.1)
    return mn, tn, pn, mxm_a, mxm_b, tri, rhs, penta


def build(scale: int = 1) -> Module:
    mn, tn, pn, mxm_a, mxm_b, tri, rhs, penta = _inputs(scale)
    m = Module(NAME)
    m.add_global("MA", mn * mn, mxm_a)
    m.add_global("MB", mn * mn, mxm_b)
    m.add_global("MC", mn * mn)
    m.add_global("L", tn * tn, tri)
    m.add_global("rhs", tn, rhs)
    m.add_global("sol", tn)
    m.add_global("penta", pn, penta)
    m.add_global("checksum", 1)

    b = FnBuilder(m, "main")

    # --- MXM ---------------------------------------------------------------
    pa, pb, pc = b.la("MA"), b.la("MB"), b.la("MC")
    mxm_sum = b.fli(0.0, name="mxm_sum")
    i = b.li(0, name="i")
    b.block("mxm_i")
    row = b.mul(i, mn, name="row")
    j = b.li(0, name="j")
    b.block("mxm_j")
    acc = b.fli(0.0, name="acc")
    k = b.li(0, name="k")
    b.block("mxm_k")
    av = b.fload(b.add(b.add(pa, row), k), 0, name="av")
    bv = b.fload(b.add(b.add(pb, j), b.mul(k, mn)), 0, name="bv")
    b.fadd(acc, b.fmul(av, bv), dest=acc)
    b.add(k, 1, dest=k)
    b.br("blt", k, mn, "mxm_k")
    b.block("mxm_jn")
    b.fstore(acc, b.add(b.add(pc, row), j), 0)
    b.fadd(mxm_sum, acc, dest=mxm_sum)
    b.add(j, 1, dest=j)
    b.br("blt", j, mn, "mxm_j")
    b.block("mxm_in")
    b.add(i, 1, dest=i)
    b.br("blt", i, mn, "mxm_i")

    # --- CHOLSKY-style forward solve:  L y = rhs ----------------------------
    b.block("tri_start")
    pl, pr, ps = b.la("L"), b.la("rhs"), b.la("sol")
    tri_sum = b.fli(0.0, name="tri_sum")
    r = b.li(0, name="r")
    b.block("tri_r")
    rrow = b.mul(r, tn, name="rrow")
    dot = b.fli(0.0, name="dot")
    b.br("beqz", r, "tri_div")
    b.block("tri_c_init")
    c = b.li(0, name="c")
    b.block("tri_c")
    lv = b.fload(b.add(b.add(pl, rrow), c), 0, name="lv")
    yv = b.fload(b.add(ps, c), 0, name="yv")
    b.fadd(dot, b.fmul(lv, yv), dest=dot)
    b.add(c, 1, dest=c)
    b.br("blt", c, r, "tri_c")
    b.block("tri_div")
    rv = b.fload(b.add(pr, r), 0, name="rv")
    diag = b.fload(b.add(b.add(pl, rrow), r), 0, name="diag")
    y = b.fdiv(b.fsub(rv, dot), diag, name="y")
    b.fstore(y, b.add(ps, r), 0)
    b.fadd(tri_sum, y, dest=tri_sum)
    b.add(r, 1, dest=r)
    b.br("blt", r, tn, "tri_r")

    # --- VPENTA-style recurrence sweep --------------------------------------
    b.block("penta_start")
    pp = b.la("penta")
    alpha = b.fli(0.3, name="alpha")
    beta = b.fli(0.2, name="beta")
    carry = b.fli(0.5, name="carry")
    carry2 = b.fli(0.25, name="carry2")
    penta_sum = b.fli(0.0, name="penta_sum")
    t = b.li(2, name="t")
    b.block("penta_loop")
    xv = b.fload(b.add(pp, t), 0, name="xv")
    nv = b.fadd(xv, b.fadd(b.fmul(alpha, carry), b.fmul(beta, carry2)),
                name="nv")
    b.fmov(carry, dest=carry2)
    b.fmov(nv, dest=carry)
    b.fadd(penta_sum, nv, dest=penta_sum)
    b.add(t, 1, dest=t)
    b.br("blt", t, pn, "penta_loop")

    b.block("done")
    total = b.fadd(b.fadd(mxm_sum, tri_sum), penta_sum, name="total")
    b.fstore(total, b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> float:
    mn, tn, pn, mxm_a, mxm_b, tri, rhs, penta = _inputs(scale)
    mxm_sum = 0.0
    for i in range(mn):
        for j in range(mn):
            acc = 0.0
            for k in range(mn):
                acc = acc + mxm_a[i * mn + k] * mxm_b[k * mn + j]
            mxm_sum += acc
    sol = [0.0] * tn
    tri_sum = 0.0
    for r in range(tn):
        dot = 0.0
        for c in range(r):
            dot = dot + tri[r * tn + c] * sol[c]
        y = (rhs[r] - dot) / tri[r * tn + r]
        sol[r] = y
        tri_sum += y
    carry, carry2 = 0.5, 0.25
    penta_sum = 0.0
    for t in range(2, pn):
        nv = penta[t] + (0.3 * carry + 0.2 * carry2)
        carry2, carry = carry, nv
        penta_sum += nv
    return (mxm_sum + tri_sum) + penta_sum
