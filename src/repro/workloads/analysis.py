"""Workload characterization: dynamic instruction mix and structure.

The paper's benchmark choice spans very different program behaviours
(scanners, table-driven interpreters, bit manipulation, dense FP loops);
this module quantifies ours the same way architects characterize suites —
dynamic operation mix, branch density and bias, memory intensity, and call
frequency — from a profiling interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import Module
from repro.ir.interp import Interpreter
from repro.isa.opcodes import Category, Opcode
from repro.workloads.registry import workload


@dataclass
class WorkloadProfile:
    """Dynamic characterization of one benchmark run."""

    name: str
    kind: str
    dynamic_instructions: int
    mix: dict[str, float]          # category name -> fraction
    branch_fraction: float
    taken_fraction: float          # of executed conditional branches
    memory_fraction: float
    fp_fraction: float
    calls: int

    def render(self) -> str:
        lines = [
            f"{self.name} ({self.kind}): "
            f"{self.dynamic_instructions} dynamic instructions",
            f"  branches {100 * self.branch_fraction:5.1f}% "
            f"(taken {100 * self.taken_fraction:.1f}%)   "
            f"memory {100 * self.memory_fraction:5.1f}%   "
            f"fp {100 * self.fp_fraction:5.1f}%   calls {self.calls}",
        ]
        top = sorted(self.mix.items(), key=lambda kv: -kv[1])[:5]
        lines.append("  top ops: " + ", ".join(
            f"{name} {100 * frac:.1f}%" for name, frac in top))
        return "\n".join(lines)


_FP_CATEGORIES = {Category.FP_ALU, Category.FP_CVT, Category.FP_MUL,
                  Category.FP_DIV}


def profile_module(module: Module, name: str = "module",
                   kind: str = "?") -> WorkloadProfile:
    """Characterize *module* by profiling interpretation."""
    result = Interpreter(module).run()
    profile = result.profile

    counts: dict[Category, int] = {}
    branches = taken = mem = fp = 0
    total = 0
    for fn in module.functions.values():
        for block in fn.blocks:
            weight = profile.block_weight(fn.name, block.name)
            if weight == 0:
                continue
            for instr in block.instrs:
                cat = instr.category
                counts[cat] = counts.get(cat, 0) + weight
                total += weight
                if instr.is_mem:
                    mem += weight
                if cat in _FP_CATEGORIES or instr.op in (Opcode.FLOAD,
                                                         Opcode.FSTORE,
                                                         Opcode.LIF):
                    fp += weight
            term = block.terminator
            if term is not None and term.is_cond_branch:
                t, nt = profile.branch_counts.get(
                    (fn.name, block.name), (0, 0))
                branches += t + nt
                taken += t
    calls = sum(profile.call_counts.values())
    mix = {cat.value: count / total for cat, count in counts.items()}
    return WorkloadProfile(
        name=name,
        kind=kind,
        dynamic_instructions=result.steps,
        mix=mix,
        branch_fraction=branches / total if total else 0.0,
        taken_fraction=taken / branches if branches else 0.0,
        memory_fraction=mem / total if total else 0.0,
        fp_fraction=fp / total if total else 0.0,
        calls=calls,
    )


def profile_workload(name: str, scale: int = 1) -> WorkloadProfile:
    """Characterize one registered benchmark."""
    w = workload(name)
    return profile_module(w.module(scale), name=w.name, kind=w.kind)
