"""Deterministic synthetic input generation for the benchmark kernels.

The paper evaluates nine Unix/SPEC integer programs and three SPEC
floating-point programs on their real inputs.  We have neither the programs
nor the inputs, so every kernel here consumes *seeded* synthetic data from
the small linear congruential generator below; runs are bit-reproducible
across machines and Python versions.
"""

from __future__ import annotations

from typing import Iterator

_A = 1103515245
_C = 12345
_M = 1 << 31


def lcg(seed: int) -> Iterator[int]:
    """An infinite LCG stream of 31-bit non-negative integers."""
    x = seed & (_M - 1)
    while True:
        x = (_A * x + _C) % _M
        yield x


def words(seed: int, n: int, mod: int) -> list[int]:
    """*n* integers in ``[0, mod)``."""
    gen = lcg(seed)
    return [next(gen) % mod for _ in range(n)]


def signed_words(seed: int, n: int, bound: int) -> list[int]:
    """*n* integers in ``[-bound, bound]``."""
    gen = lcg(seed)
    return [next(gen) % (2 * bound + 1) - bound for _ in range(n)]


def floats(seed: int, n: int, lo: float = 0.0, hi: float = 1.0) -> list[float]:
    """*n* doubles uniformly spread over ``[lo, hi)``."""
    gen = lcg(seed)
    span = hi - lo
    return [lo + span * (next(gen) / _M) for _ in range(n)]


def text(seed: int, n: int, alphabet: str) -> list[int]:
    """*n* character codes drawn from *alphabet* (as integers)."""
    gen = lcg(seed)
    return [ord(alphabet[next(gen) % len(alphabet)]) for _ in range(n)]
