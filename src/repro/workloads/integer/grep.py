"""``grep`` — fixed-pattern text scan, modeled on the Unix ``grep`` core.

Scans a character buffer for a fixed pattern, counting matches and the
lines containing at least one match (newline = 10).
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import text

NAME = "grep"
KIND = "int"

_ALPHABET = "abcdefgh \n"
_PATTERN = "fade"


def _input(scale: int) -> list[int]:
    n = 1400 * scale
    buf = text(seed=303, n=n, alphabet=_ALPHABET)
    # Plant the pattern at deterministic spots so matches exist.
    for k in range(7, n - len(_PATTERN), 97):
        for j, ch in enumerate(_PATTERN):
            buf[k + j] = ord(ch)
    return buf


def build(scale: int = 1) -> Module:
    buf = _input(scale)
    n = len(buf)
    plen = len(_PATTERN)
    m = Module(NAME)
    m.add_global("textbuf", n, buf)
    m.add_global("pattern", plen, [ord(c) for c in _PATTERN])
    m.add_global("checksum", 1)
    m.add_global("nmatch", 1)

    b = FnBuilder(m, "main")
    ptext = b.la("textbuf")
    ppat = b.la("pattern")
    nmatch = b.li(0, name="nmatch")
    line_hits = b.li(0, name="line_hits")
    line_has = b.li(0, name="line_has")
    i = b.li(0, name="i")
    limit = b.li(n - plen, name="limit")

    b.block("outer")
    ch = b.load(b.add(ptext, i), 0, name="ch")
    b.br("bne", ch, 10, "try_match")
    b.block("newline")
    b.add(line_hits, line_has, dest=line_hits)
    b.li(0, dest=line_has)
    b.jmp("advance")

    b.block("try_match")
    j = b.li(0, name="j")
    b.block("inner")
    tc = b.load(b.add(b.add(ptext, i), j), 0, name="tc")
    pc = b.load(b.add(ppat, j), 0, name="pc")
    b.br("bne", tc, pc, "advance")
    b.block("inner_next")
    b.add(j, 1, dest=j)
    b.br("blt", j, plen, "inner")
    b.block("matched")
    b.add(nmatch, 1, dest=nmatch)
    b.li(1, dest=line_has)
    b.jmp("advance")

    b.block("advance")
    b.add(i, 1, dest=i)
    b.br("ble", i, limit, "outer")
    b.block("done")
    b.add(line_hits, line_has, dest=line_hits)
    b.store(nmatch, b.la("nmatch"), 0)
    b.store(b.add(b.mul(nmatch, 1000), line_hits), b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    buf = _input(scale)
    n = len(buf)
    plen = len(_PATTERN)
    pat = [ord(c) for c in _PATTERN]
    nmatch = line_hits = line_has = 0
    for i in range(0, n - plen + 1):
        if buf[i] == 10:
            line_hits += line_has
            line_has = 0
            continue
        if buf[i:i + plen] == pat:
            nmatch += 1
            line_has = 1
    line_hits += line_has
    return nmatch * 1000 + line_hits
