"""``yacc`` — LR parser driver: shift/reduce over an expression grammar.

The generated-parser inner loop: an explicit state/value stack in simulated
memory, driven by action and goto tables for the classic grammar

    E -> E + T | T        T -> T * F | F        F -> n

over a deterministic token stream, accumulating the semantic values.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import words

NAME = "yacc"
KIND = "int"

# Tokens: 0=n 1='+' 2='*' 3=$ ; Nonterminals: E=0 T=1 F=2
# LR(0)/SLR tables for the grammar above (states 0..11), built by hand.
# action[state][token]: 0 = error, s>0 = shift to state s-1? We encode:
#   value = 1 + 2*s        -> shift, goto state s
#   value = 2 + 2*r        -> reduce by rule r
#   value = -1             -> accept
# rules: 0: E->E+T (3)  1: E->T (1)  2: T->T*F (3)  3: T->F (1)  4: F->n (1)
def _SHIFT(s):
    return 1 + 2 * s


def _REDUCE(r):
    return 2 + 2 * r

_ACCEPT = -1

_ACTION = [
    # n            +             *             $
    [_SHIFT(5), 0, 0, 0],                                   # 0
    [0, _SHIFT(6), 0, _ACCEPT],                             # 1: E .
    [0, _REDUCE(1), _SHIFT(7), _REDUCE(1)],                 # 2: T .
    [0, _REDUCE(3), _REDUCE(3), _REDUCE(3)],                # 3: F .
    [0, 0, 0, 0],                                           # 4 (unused)
    [0, _REDUCE(4), _REDUCE(4), _REDUCE(4)],                # 5: n .
    [_SHIFT(5), 0, 0, 0],                                   # 6: E+ .
    [_SHIFT(5), 0, 0, 0],                                   # 7: T* .
    [0, _REDUCE(0), _SHIFT(7), _REDUCE(0)],                 # 8: E+T .
    [0, _REDUCE(2), _REDUCE(2), _REDUCE(2)],                # 9: T*F .
    [0, 0, 0, 0],                                           # 10 (unused)
    [0, 0, 0, 0],                                           # 11 (unused)
]
# goto[state][nonterminal]
_GOTO = [
    [1, 2, 3],
    [0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 0],
    [0, 8, 3],
    [0, 0, 9],
    [0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 0],
]
_RULE_LEN = [3, 1, 3, 1, 1]
_RULE_LHS = [0, 0, 1, 1, 2]
_NTOK, _NNT = 4, 3


def _tokens(scale: int) -> tuple[list[int], list[int]]:
    """(token, value) stream forming valid expressions n(+|*)n..., $-separated."""
    n_exprs = 90 * scale
    ops = words(seed=1212, n=8 * n_exprs, mod=2)
    vals = words(seed=1313, n=8 * n_exprs, mod=50)
    lens = [2 + w % 6 for w in words(seed=1414, n=n_exprs, mod=97)]
    toks: list[int] = []
    tvals: list[int] = []
    vi = oi = 0
    for ln in lens:
        for k in range(ln):
            toks.append(0)
            tvals.append(vals[vi])
            vi += 1
            if k + 1 < ln:
                toks.append(1 + ops[oi])
                tvals.append(0)
                oi += 1
        toks.append(3)
        tvals.append(0)
    return toks, tvals


def build(scale: int = 1) -> Module:
    toks, tvals = _tokens(scale)
    n = len(toks)
    m = Module(NAME)
    m.add_global("toks", n, toks)
    m.add_global("tvals", n, tvals)
    m.add_global("action", 12 * _NTOK,
                 [_ACTION[s][t] for s in range(12) for t in range(_NTOK)])
    m.add_global("goto_t", 12 * _NNT,
                 [_GOTO[s][g] for s in range(12) for g in range(_NNT)])
    m.add_global("rlen", 5, _RULE_LEN)
    m.add_global("rlhs", 5, _RULE_LHS)
    m.add_global("sstack", 128)
    m.add_global("vstack", 128)
    m.add_global("checksum", 1)
    m.add_global("reductions", 1)

    # Semantic actions live in a separate function, as yacc-generated
    # parsers do (the switch in yyparse calls user action code): the parse
    # state stays live across these calls.
    b = FnBuilder(m, "semantic",
                  params=[("i", "rule"), ("i", "lhsv"), ("i", "rhsv")],
                  ret="i")
    rule_p, lhsv_p, rhsv_p = b.params
    b.br("beq", rule_p, 0, "do_add")
    b.block("do_mul")
    b.ret(b.and_(b.mul(lhsv_p, rhsv_p), 0xFFFF))
    b.block("do_add")
    b.ret(b.add(lhsv_p, rhsv_p))
    b.done()

    b = FnBuilder(m, "main")
    ptok = b.la("toks")
    pval = b.la("tvals")
    pact = b.la("action")
    pgoto = b.la("goto_t")
    prlen = b.la("rlen")
    prlhs = b.la("rlhs")
    pss = b.la("sstack")
    pvs = b.la("vstack")
    sig = b.li(0, name="sig")
    nred = b.li(0, name="nred")
    sp = b.li(1, name="sp")
    zero = b.li(0, name="zero")
    b.store(zero, pss, 0)   # state 0 on the stack bottom
    i = b.li(0, name="i")

    b.block("parse")
    tok = b.load(b.add(ptok, i), 0, name="tok")
    b.block("act")   # re-dispatch after reduces without consuming input
    st = b.load(b.add(pss, b.sub(sp, 1)), 0, name="st")
    a = b.load(b.add(pact, b.add(b.mul(st, _NTOK), tok)), 0, name="a")
    b.br("beq", a, _ACCEPT, "accept")
    b.block("notacc")
    kind = b.and_(a, 1, name="kind")
    arg = b.sra(b.sub(a, 1), 1, name="arg")  # shift target or rule, see enc
    b.br("bnez", kind, "shift")

    b.block("reduce")
    rule = b.sra(b.sub(a, 2), 1, name="rule")
    b.add(nred, 1, dest=nred)
    rl = b.load(b.add(prlen, rule), 0, name="rl")
    # Semantic action: combine the top rl values (sum, folded with rule id).
    combined = b.load(b.add(pvs, b.sub(sp, 1)), 0, name="combined")
    b.br("blt", rl, 3, "apply")
    b.block("combine3")
    lhsv = b.load(b.add(pvs, b.sub(sp, 3)), 0, name="lhsv")
    b.call("semantic", [rule, lhsv, combined], ret="i", dest=combined)
    b.jmp("apply")
    b.block("apply")
    b.sub(sp, rl, dest=sp)
    lhs = b.load(b.add(prlhs, rule), 0, name="lhs")
    topst = b.load(b.add(pss, b.sub(sp, 1)), 0, name="topst")
    g = b.load(b.add(pgoto, b.add(b.mul(topst, _NNT), lhs)), 0, name="g")
    b.store(g, b.add(pss, sp), 0)
    b.store(combined, b.add(pvs, sp), 0)
    b.add(sp, 1, dest=sp)
    b.jmp("act")

    b.block("shift")
    tv = b.load(b.add(pval, i), 0, name="tv")
    b.store(arg, b.add(pss, sp), 0)
    b.store(tv, b.add(pvs, sp), 0)
    b.add(sp, 1, dest=sp)
    b.add(i, 1, dest=i)
    b.jmp("parse")

    b.block("accept")
    result = b.load(b.add(pvs, b.sub(sp, 1)), 0, name="result")
    b.and_(b.add(b.mul(sig, 7), result), 0xFFFFFF, dest=sig)
    b.li(1, dest=sp)
    b.store(zero, pss, 0)
    b.add(i, 1, dest=i)
    b.br("blt", i, n, "parse")
    b.block("done")
    b.store(nred, b.la("reductions"), 0)
    b.store(b.add(b.mul(nred, 0x1000000), sig), b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    toks, tvals = _tokens(scale)
    sig = nred = 0
    sstack, vstack = [0], [0]
    i = 0
    n = len(toks)
    while i < n:
        tok = toks[i]
        a = _ACTION[sstack[-1]][tok]
        if a == _ACCEPT:
            result = vstack[-1]
            sig = (sig * 7 + result) & 0xFFFFFF
            sstack, vstack = [0], [0]
            i += 1
            continue
        if a & 1:  # shift
            arg = (a - 1) >> 1
            sstack.append(arg)
            vstack.append(tvals[i])
            i += 1
        else:      # reduce
            rule = (a - 2) >> 1
            nred += 1
            rl = _RULE_LEN[rule]
            combined = vstack[-1]
            if rl >= 3:
                lhsv = vstack[-3]
                if rule == 0:
                    combined = lhsv + combined
                else:
                    combined = (lhsv * combined) & 0xFFFF
            del sstack[len(sstack) - rl:]
            del vstack[len(vstack) - rl:]
            g = _GOTO[sstack[-1]][_RULE_LHS[rule]]
            sstack.append(g)
            vstack.append(combined)
    return nred * 0x1000000 + sig


# Keep the parser honest at import time: action 0 entries must be
# unreachable for well-formed input, which reference_checksum exercises.
