"""``eqn`` — equation-typesetting core: RPN expression evaluation.

``eqn`` spends its time walking parsed equation boxes and combining size
and position values; this kernel drives an explicit evaluation stack in
simulated memory over a deterministic RPN token stream (push / add / sub /
mul / dup), accumulating each expression result into a signature.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import words

NAME = "eqn"
KIND = "int"

_OP_PUSH, _OP_ADD, _OP_SUB, _OP_MUL, _OP_DUP, _OP_END = range(6)


def _tokens(scale: int) -> list[int]:
    """Token stream: pairs of (opcode, operand); END flushes an expression."""
    stream: list[int] = []
    ops = words(seed=606, n=700 * scale, mod=10)
    vals = words(seed=707, n=700 * scale, mod=97)
    depth = 0
    for op, val in zip(ops, vals):
        if depth < 2 or op < 4:
            stream += [_OP_PUSH, val]
            depth += 1
        elif op < 6:
            stream += [_OP_ADD, 0]
            depth -= 1
        elif op < 7:
            stream += [_OP_SUB, 0]
            depth -= 1
        elif op < 8:
            stream += [_OP_MUL, 0]
            depth -= 1
        elif op < 9 and depth < 30:
            stream += [_OP_DUP, 0]
            depth += 1
        else:
            stream += [_OP_END, 0]
            depth = 0
    stream += [_OP_END, 0]
    return stream


def build(scale: int = 1) -> Module:
    stream = _tokens(scale)
    n = len(stream)
    m = Module(NAME)
    m.add_global("tokens", n, stream)
    m.add_global("stack", 64)
    m.add_global("checksum", 1)

    b = FnBuilder(m, "main")
    ptok = b.la("tokens")
    pstk = b.la("stack")
    sig = b.li(0, name="sig")
    sp = b.li(0, name="sp")  # stack depth
    i = b.li(0, name="i")

    b.block("loop")
    op = b.load(b.add(ptok, i), 0, name="op")
    arg = b.load(b.add(ptok, i), 1, name="arg")
    b.br("beq", op, _OP_PUSH, "push")
    b.block("d1")
    b.br("beq", op, _OP_ADD, "add_op")
    b.block("d2")
    b.br("beq", op, _OP_SUB, "sub_op")
    b.block("d3")
    b.br("beq", op, _OP_MUL, "mul_op")
    b.block("d4")
    b.br("beq", op, _OP_DUP, "dup_op")
    b.block("end_op")  # flush: pop everything into the signature
    b.br("beqz", sp, "advance")
    b.block("flush_loop")
    b.sub(sp, 1, dest=sp)
    v = b.load(b.add(pstk, sp), 0, name="v")
    b.and_(b.add(b.mul(sig, 5), v), 0xFFFFFF, dest=sig)
    b.br("bnez", sp, "flush_loop")
    b.jmp("advance")

    b.block("push")
    b.store(arg, b.add(pstk, sp), 0)
    b.add(sp, 1, dest=sp)
    b.jmp("advance")

    def binop(label, emit):
        b.block(label)
        b.br("ble", sp, 1, "advance")
        b.block(label + "_go")
        b.sub(sp, 1, dest=sp)
        rhs = b.load(b.add(pstk, sp), 0, name=label + "_rhs")
        lhs = b.load(b.add(pstk, sp), -1, name=label + "_lhs")
        res = emit(lhs, rhs)
        b.store(res, b.add(pstk, sp), -1)
        b.jmp("advance")

    binop("add_op", lambda lhs, rhs: b.add(lhs, rhs))
    binop("sub_op", lambda lhs, rhs: b.sub(lhs, rhs))
    binop("mul_op", lambda lhs, rhs: b.and_(b.mul(lhs, rhs), 0xFFFF))

    b.block("dup_op")
    b.br("beqz", sp, "advance")
    b.block("dup_go")
    top = b.load(b.add(pstk, sp), -1, name="top")
    b.store(top, b.add(pstk, sp), 0)
    b.add(sp, 1, dest=sp)
    b.jmp("advance")

    b.block("advance")
    b.add(i, 2, dest=i)
    b.br("blt", i, n, "loop")
    b.block("done")
    b.store(sig, b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    stream = _tokens(scale)
    stack: list[int] = []
    sig = 0
    for i in range(0, len(stream), 2):
        op, arg = stream[i], stream[i + 1]
        if op == _OP_PUSH:
            stack.append(arg)
        elif op in (_OP_ADD, _OP_SUB, _OP_MUL):
            if len(stack) > 1:
                rhs, lhs = stack.pop(), stack.pop()
                if op == _OP_ADD:
                    stack.append(lhs + rhs)
                elif op == _OP_SUB:
                    stack.append(lhs - rhs)
                else:
                    stack.append((lhs * rhs) & 0xFFFF)
        elif op == _OP_DUP:
            if stack:
                stack.append(stack[-1])
        else:  # END
            while stack:
                sig = (sig * 5 + stack.pop()) & 0xFFFFFF
    return sig
