"""``compress`` — LZW compression, modeled on the SPEC ``compress`` core.

A real LZW coder: the string table is an open-addressing hash table in
simulated memory (linear probing), codes are emitted into a rolling
signature, and the table stops growing at a fixed capacity, exactly like the
block-compress behaviour of the original at small scale.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import words

NAME = "compress"
KIND = "int"

_ALPHA = 16          # alphabet size: codes 0..15 are literals
_HASH = 1024         # hash table slots (power of two)
_MAXCODE = 256       # dictionary capacity


def _input(scale: int) -> list[int]:
    # Concatenate a few repeated sections so LZW finds real structure.
    base = words(seed=404, n=220 * scale, mod=_ALPHA)
    return base + base[: 110 * scale] + base[55 * scale: 165 * scale]


def build(scale: int = 1) -> Module:
    data = _input(scale)
    n = len(data)
    m = Module(NAME)
    m.add_global("input", n, data)
    m.add_global("hkeys", _HASH)
    m.add_global("hvals", _HASH)
    m.add_global("checksum", 1)
    m.add_global("ncodes", 1)

    b = FnBuilder(m, "main")
    pin = b.la("input")
    pkeys = b.la("hkeys")
    pvals = b.la("hvals")
    sig = b.li(0, name="sig")
    nout = b.li(0, name="nout")
    next_code = b.li(_ALPHA, name="next_code")
    w = b.load(pin, 0, name="w")
    i = b.li(1, name="i")

    b.block("outer")
    s = b.load(b.add(pin, i), 0, name="s")
    key = b.add(b.mul(b.add(w, 1), 256), s, name="key")
    h = b.and_(b.mul(key, 31), _HASH - 1, name="h")

    b.block("probe")
    slot = b.add(pkeys, h, name="slot")
    k = b.load(slot, 0, name="k")
    b.br("beq", k, key, "hit")
    b.block("probe_miss")
    b.br("beqz", k, "empty")
    b.block("probe_next")
    b.add(h, 1, dest=h)
    b.and_(h, _HASH - 1, dest=h)
    b.jmp("probe")

    b.block("hit")
    b.load(b.add(pvals, h), 0, dest=w)
    b.jmp("advance")

    b.block("empty")
    # Emit w, then insert (w, s) -> next_code if the table has room.
    b.add(b.mul(sig, 17), w, dest=sig)
    b.and_(sig, 0xFFFFFF, dest=sig)
    b.add(nout, 1, dest=nout)
    b.br("bge", next_code, _MAXCODE, "no_insert")
    b.block("insert")
    b.store(key, b.add(pkeys, h), 0)
    b.store(next_code, b.add(pvals, h), 0)
    b.add(next_code, 1, dest=next_code)
    b.jmp("no_insert")
    b.block("no_insert")
    b.move(s, dest=w)
    b.jmp("advance")

    b.block("advance")
    b.add(i, 1, dest=i)
    b.br("blt", i, n, "outer")
    b.block("flush")
    b.add(b.mul(sig, 17), w, dest=sig)
    b.and_(sig, 0xFFFFFF, dest=sig)
    b.add(nout, 1, dest=nout)
    b.store(nout, b.la("ncodes"), 0)
    b.store(b.add(b.mul(nout, 0x10000), sig), b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    data = _input(scale)
    keys = [0] * _HASH
    vals = [0] * _HASH
    sig = nout = 0
    next_code = _ALPHA
    w = data[0]
    for s in data[1:]:
        key = (w + 1) * 256 + s
        h = (key * 31) & (_HASH - 1)
        while True:
            if keys[h] == key:
                w = vals[h]
                break
            if keys[h] == 0:
                sig = (sig * 17 + w) & 0xFFFFFF
                nout += 1
                if next_code < _MAXCODE:
                    keys[h] = key
                    vals[h] = next_code
                    next_code += 1
                w = s
                break
            h = (h + 1) & (_HASH - 1)
    sig = (sig * 17 + w) & 0xFFFFFF
    nout += 1
    return nout * 0x10000 + sig
