"""``lex`` — table-driven DFA scanning, the generated-scanner inner loop.

A small hand-built DFA (identifiers, numbers, operators, whitespace) runs
over a character stream using a state x char-class transition table held in
simulated memory — exactly the `yy_nxt` walk of a lex-generated scanner —
counting accepted tokens per kind.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import text

NAME = "lex"
KIND = "int"

# Char classes: 0=letter 1=digit 2=op 3=space 4=newline
_CLASSES = {**{ord(c): 0 for c in "abcdef"},
            **{ord(c): 1 for c in "012345"},
            **{ord(c): 2 for c in "+-*="},
            ord(" "): 3, ord("\n"): 4}
_ALPHABET = "abcdef012345+-*= \n"

# States: 0=start 1=in_ident 2=in_number 3=after_op
# transition[state][class] -> next state
_NEXT = [
    [1, 2, 3, 0, 0],
    [1, 1, 3, 0, 0],   # letters continue idents; digit after letter: ident
    [1, 2, 3, 0, 0],   # letter after number starts a new ident token
    [1, 2, 3, 0, 0],
]
# token emitted when leaving a state (0 = none, 1=ident, 2=number, 3=op)
_EMIT = [0, 1, 2, 3]
_NSTATES, _NCLASSES = 4, 5


def _input(scale: int) -> list[int]:
    return text(seed=1111, n=1600 * scale, alphabet=_ALPHABET)


def build(scale: int = 1) -> Module:
    buf = _input(scale)
    n = len(buf)
    m = Module(NAME)
    m.add_global("src", n, buf)
    m.add_global("classes", 128,
                 [_CLASSES.get(c, 3) for c in range(128)])
    m.add_global("next_state", _NSTATES * _NCLASSES,
                 [_NEXT[s][c] for s in range(_NSTATES)
                  for c in range(_NCLASSES)])
    m.add_global("emit", _NSTATES, _EMIT)
    m.add_global("token_counts", 4)
    m.add_global("checksum", 1)

    b = FnBuilder(m, "main")
    psrc = b.la("src")
    pcls = b.la("classes")
    pnext = b.la("next_state")
    pemit = b.la("emit")
    pcounts = b.la("token_counts")
    state = b.li(0, name="state")
    i = b.li(0, name="i")

    # The transition walk is if-converted (the token-count bump is folded in
    # arithmetically: +0 when the state does not change), the shape a
    # predicating ILP compiler produces, so the scan is one counted block.
    b.block("scan")
    ch = b.load(b.add(psrc, i), 0, name="ch")
    cls = b.load(b.add(pcls, ch), 0, name="cls")
    nxt = b.load(b.add(pnext, b.add(b.mul(state, _NCLASSES), cls)), 0,
                 name="nxt")
    changed = b.cmpne(nxt, state, name="changed")
    tok = b.load(b.add(pemit, state), 0, name="tok")
    slot = b.add(pcounts, tok, name="slot")
    b.store(b.add(b.load(slot, 0), changed), slot, 0)
    b.move(nxt, dest=state)
    b.add(i, 1, dest=i)
    b.br("blt", i, n, "scan")
    b.block("done")
    tok2 = b.load(b.add(pemit, state), 0, name="tok2")
    slot2 = b.add(pcounts, tok2, name="slot2")
    b.store(b.add(b.load(slot2, 0), 1), slot2, 0)
    sig = b.li(0, name="sig")
    k = b.li(0, name="k")
    b.block("sum")
    c = b.load(b.add(pcounts, k), 0, name="c")
    b.add(b.mul(sig, 1009), c, dest=sig)
    b.add(k, 1, dest=k)
    b.br("blt", k, 4, "sum")
    b.block("out")
    b.store(sig, b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    buf = _input(scale)
    counts = [0, 0, 0, 0]
    state = 0
    for ch in buf:
        cls = _CLASSES.get(ch, 3)
        nxt = _NEXT[state][cls]
        if nxt != state:
            counts[_EMIT[state]] += 1
            state = nxt
    counts[_EMIT[state]] += 1
    sig = 0
    for c in counts:
        sig = sig * 1009 + c
    return sig
