"""``eqntott`` — boolean equation to truth table conversion.

The real eqntott enumerates input assignments and evaluates boolean
equations to build a truth table (then sorts it).  This kernel evaluates a
fixed random NOR-form equation over every assignment of ``k`` inputs,
writes the table, and bit-counts/sorts-signatures the result.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import words

NAME = "eqntott"
KIND = "int"

_K = 9          # inputs -> 512 assignments
_TERMS = 12     # product terms


def _equation(scale: int) -> tuple[list[int], list[int]]:
    """Product terms as (care-mask, value-mask) pairs over K inputs."""
    nterms = _TERMS * scale
    cares = [w | 1 for w in words(seed=808, n=nterms, mod=1 << _K)]
    values = [v for v in words(seed=909, n=nterms, mod=1 << _K)]
    values = [v & c for v, c in zip(values, cares)]
    return cares, values


def build(scale: int = 1) -> Module:
    cares, values = _equation(scale)
    nterms = len(cares)
    nvec = 1 << _K
    m = Module(NAME)
    m.add_global("cares", nterms, cares)
    m.add_global("values", nterms, values)
    m.add_global("table", nvec)
    m.add_global("checksum", 1)
    m.add_global("minterms", 1)

    b = FnBuilder(m, "main")
    pc = b.la("cares")
    pv = b.la("values")
    pt = b.la("table")
    ones = b.li(0, name="ones")
    sig = b.li(0, name="sig")
    vec = b.li(0, name="vec")

    b.block("vec_loop")
    out = b.li(0, name="out")
    t = b.li(0, name="t")
    b.block("term_loop")
    care = b.load(b.add(pc, t), 0, name="care")
    val = b.load(b.add(pv, t), 0, name="val")
    masked = b.and_(vec, care, name="masked")
    hit = b.cmpeq(masked, val, name="hit")
    b.or_(out, hit, dest=out)
    b.add(t, 1, dest=t)
    b.br("blt", t, nterms, "term_loop")
    b.block("emit")
    b.store(out, b.add(pt, vec), 0)
    b.add(ones, out, dest=ones)
    b.and_(b.add(b.mul(sig, 3), out), 0xFFFFF, dest=sig)
    b.add(vec, 1, dest=vec)
    b.br("blt", vec, nvec, "vec_loop")
    b.block("done")
    b.store(ones, b.la("minterms"), 0)
    b.store(b.add(b.mul(ones, 0x100000), sig), b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    cares, values = _equation(scale)
    ones = sig = 0
    for vec in range(1 << _K):
        out = 0
        for care, val in zip(cares, values):
            if (vec & care) == val:
                out = 1
                # note: the kernel keeps scanning terms (no early exit), so
                # the reference must not break either for identical timing -
                # for the checksum it makes no difference.
        ones += out
        sig = (sig * 3 + out) & 0xFFFFF
    return ones * 0x100000 + sig
