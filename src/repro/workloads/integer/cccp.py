"""``cccp`` — C preprocessor core: tokenization plus macro-name hashing.

Scans a character stream, classifying identifiers, numbers, and punctuation;
identifier tokens are hashed and looked up in a small macro table (a handful
of "defined" names), counting expansions — the hot inner work of GNU cccp.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import text

NAME = "cccp"
KIND = "int"

_ALPHABET = "abcdefg0123 ;#\n"
_MACROS = ("abc", "fed", "dag", "bee")


def _hash_name(chars: list[int]) -> int:
    h = 0
    for c in chars:
        h = (h * 37 + c) & 0xFFFF
    return h


def _input(scale: int) -> list[int]:
    buf = text(seed=505, n=1300 * scale, alphabet=_ALPHABET)
    # Plant macro names so lookups hit.
    pos = 3
    for k, name in enumerate(_MACROS * (20 * scale)):
        pos += 29 + k % 7
        if pos + len(name) + 1 >= len(buf):
            break
        buf[pos - 1] = ord(" ")
        for j, ch in enumerate(name):
            buf[pos + j] = ord(ch)
        buf[pos + len(name)] = ord(" ")
    return buf


def build(scale: int = 1) -> Module:
    buf = _input(scale)
    n = len(buf)
    m = Module(NAME)
    m.add_global("src", n, buf)
    m.add_global("macros", len(_MACROS),
                 [_hash_name([ord(c) for c in name]) for name in _MACROS])
    m.add_global("checksum", 1)
    m.add_global("counts", 4)  # idents, numbers, punct, expansions

    # Macro lookup is a real function call, as in GNU cccp (where lookup()
    # is called per identifier): the call sites keep scanner state live
    # across calls, exercising the caller-save path of the compiler.
    b = FnBuilder(m, "macro_lookup", params=[("i", "h")], ret="i")
    (hq,) = b.params
    pm = b.la("macros")
    j = b.li(0, name="j")
    b.block("mac_loop")
    mh = b.load(b.add(pm, j), 0, name="mh")
    b.br("beq", mh, hq, "mac_hit")
    b.block("mac_next")
    b.add(j, 1, dest=j)
    b.br("blt", j, len(_MACROS), "mac_loop")
    b.block("mac_miss")
    b.ret(0)
    b.block("mac_hit")
    b.ret(1)
    b.done()

    b = FnBuilder(m, "main")
    psrc = b.la("src")
    idents = b.li(0, name="idents")
    numbers = b.li(0, name="numbers")
    punct = b.li(0, name="punct")
    expans = b.li(0, name="expans")
    i = b.li(0, name="i")

    b.block("scan")
    ch = b.load(b.add(psrc, i), 0, name="ch")
    is_lower = b.and_(b.cmpge(ch, ord("a")), b.cmple(ch, ord("g")),
                      name="is_lower")
    b.br("bnez", is_lower, "ident")
    b.block("notident")
    is_digit = b.and_(b.cmpge(ch, ord("0")), b.cmple(ch, ord("9")),
                      name="is_digit")
    b.br("bnez", is_digit, "number")
    b.block("notnumber")
    is_ws = b.or_(b.cmpeq(ch, ord(" ")), b.cmpeq(ch, ord("\n")),
                  name="is_ws")
    b.br("bnez", is_ws, "advance")
    b.block("punct_blk")
    b.add(punct, 1, dest=punct)
    b.jmp("advance")

    b.block("ident")
    b.add(idents, 1, dest=idents)
    h = b.li(0, name="h")
    b.block("ident_scan")
    c2 = b.load(b.add(psrc, i), 0, name="c2")
    b.and_(b.add(b.mul(h, 37), c2), 0xFFFF, dest=h)
    b.add(i, 1, dest=i)
    b.br("bge", i, n, "ident_done")
    b.block("ident_more")
    c3 = b.load(b.add(psrc, i), 0, name="c3")
    again = b.and_(b.cmpge(c3, ord("a")), b.cmple(c3, ord("g")),
                   name="again")
    b.br("bnez", again, "ident_scan")
    b.block("ident_done")
    hit = b.call("macro_lookup", [h], ret="i")
    b.add(expans, hit, dest=expans)
    b.jmp("scan_cont")

    b.block("number")
    b.add(numbers, 1, dest=numbers)
    b.jmp("advance")

    b.block("advance")
    b.add(i, 1, dest=i)
    b.block("scan_cont")
    b.br("blt", i, n, "scan")
    b.block("done")
    pc = b.la("counts")
    b.store(idents, pc, 0)
    b.store(numbers, pc, 1)
    b.store(punct, pc, 2)
    b.store(expans, pc, 3)
    total = b.add(b.mul(idents, 7), b.mul(numbers, 11), name="total")
    b.add(total, b.mul(punct, 13), dest=total)
    b.add(total, b.mul(expans, 1009), dest=total)
    b.store(total, b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    buf = _input(scale)
    n = len(buf)
    macs = [_hash_name([ord(c) for c in name]) for name in _MACROS]
    idents = numbers = punct = expans = 0
    i = 0
    while i < n:
        ch = buf[i]
        if ord("a") <= ch <= ord("g"):
            idents += 1
            h = 0
            while True:
                h = (h * 37 + buf[i]) & 0xFFFF
                i += 1
                if i >= n or not (ord("a") <= buf[i] <= ord("g")):
                    break
            if h in macs:
                expans += 1
            continue
        if ord("0") <= ch <= ord("9"):
            numbers += 1
        elif ch not in (ord(" "), ord("\n")):
            punct += 1
        i += 1
    return idents * 7 + numbers * 11 + punct * 13 + expans * 1009
