"""``cmp`` — byte-stream comparison, modeled on the Unix ``cmp`` utility.

Compares two buffers word by word, recording the number of differing
positions, the position of the first difference, and a rolling signature.
The loop body is written fully if-converted (comparison results folded in
arithmetically), the shape an ILP compiler's predication/superblock pass
produces — so the whole scan is one counted block the unroller and
scheduler can overlap.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import words

NAME = "cmp"
KIND = "int"


def _inputs(scale: int) -> tuple[list[int], list[int]]:
    n = 900 * scale
    a = words(seed=101, n=n, mod=256)
    bdata = list(a)
    # Perturb ~1/16 of the positions so differences are sparse but real.
    for pos in words(seed=202, n=n // 16, mod=n):
        bdata[pos] = (bdata[pos] + 1 + pos) % 256
    return a, bdata


def build(scale: int = 1) -> Module:
    a, bdata = _inputs(scale)
    n = len(a)
    m = Module(NAME)
    m.add_global("buf_a", n, a)
    m.add_global("buf_b", n, bdata)
    m.add_global("checksum", 1)
    m.add_global("ndiff", 1)
    m.add_global("first_diff", 1)

    b = FnBuilder(m, "main")
    pa = b.la("buf_a")
    pb = b.la("buf_b")
    ndiff = b.li(0, name="ndiff")
    first = b.li(-1, name="first")
    sig = b.li(0, name="sig")
    i = b.li(0, name="i")
    b.block("loop")
    va = b.load(b.add(pa, i), 0, name="va")
    vb = b.load(b.add(pb, i), 0, name="vb")
    d = b.cmpne(va, vb, name="d")
    b.add(ndiff, d, dest=ndiff)
    delta = b.sub(va, vb, name="delta")
    b.xor(sig, b.add(b.mul(sig, 33), delta), dest=sig)
    b.and_(sig, 0xFFFFFF, dest=sig)
    # first-difference update, if-converted:
    take = b.and_(d, b.cmplt(first, 0), name="take")
    adj = b.mul(b.sub(i, first), take, name="adj")
    b.add(first, adj, dest=first)
    b.add(i, 1, dest=i)
    b.br("blt", i, n, "loop")
    b.block("done")
    b.store(ndiff, b.la("ndiff"), 0)
    b.store(first, b.la("first_diff"), 0)
    total = b.add(b.mul(ndiff, 131), first, name="total")
    b.store(b.xor(total, sig), b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    a, bdata = _inputs(scale)
    ndiff, first, sig = 0, -1, 0
    for i, (va, vb) in enumerate(zip(a, bdata)):
        d = int(va != vb)
        ndiff += d
        sig = (sig ^ (sig * 33 + (va - vb))) & 0xFFFFFF
        if d and first < 0:
            first = i
    return (ndiff * 131 + first) ^ sig
