"""``espresso`` — two-level logic minimization: cube containment sweep.

Espresso's hot loops compare cubes of a cover pairwise (containment,
distance-1 merging).  Cubes here are two-bit-per-variable bitmasks; the
kernel removes single-cube-contained cubes and counts mergeable pairs,
which is the EXPAND/IRREDUNDANT inner work at miniature scale.
"""

from __future__ import annotations

from repro.ir import FnBuilder, Module
from repro.workloads.data import words

NAME = "espresso"
KIND = "int"

_VARS = 10  # two bits per variable -> 20-bit cubes


def _cover(scale: int) -> list[int]:
    n = 56 * scale
    raw = words(seed=1010, n=2 * n, mod=1 << _VARS)
    cubes = []
    for i in range(n):
        lo, hi = raw[2 * i], raw[2 * i + 1]
        cube = 0
        for v in range(_VARS):
            bit0 = (lo >> v) & 1
            bit1 = (hi >> v) & 1
            pair = (bit0 << 1) | bit1 or 3  # avoid the empty literal 00
            cube |= pair << (2 * v)
        cubes.append(cube)
    return cubes


def build(scale: int = 1) -> Module:
    cubes = _cover(scale)
    n = len(cubes)
    m = Module(NAME)
    m.add_global("cubes", n, cubes)
    m.add_global("alive", n, [1] * n)
    m.add_global("checksum", 1)
    m.add_global("kept", 1)

    b = FnBuilder(m, "main")
    pcube = b.la("cubes")
    palive = b.la("alive")
    merges = b.li(0, name="merges")
    i = b.li(0, name="i")

    b.block("outer")
    ai = b.load(b.add(palive, i), 0, name="ai")
    b.br("beqz", ai, "outer_next")
    b.block("outer_live")
    ci = b.load(b.add(pcube, i), 0, name="ci")
    j = b.li(0, name="j")
    b.block("inner")
    b.br("beq", i, j, "inner_next")
    b.block("distinct")
    aj = b.load(b.add(palive, j), 0, name="aj")
    b.br("beqz", aj, "inner_next")
    b.block("both_live")
    cj = b.load(b.add(pcube, j), 0, name="cj")
    # cube_i contained in cube_j  <=>  ci & cj == ci (j's literals cover i's)
    inter = b.and_(ci, cj, name="inter")
    b.br("bne", inter, ci, "try_merge")
    b.block("contained")
    # Tie-break: equal cubes keep the lower index.
    b.br("bne", ci, cj, "kill_i")
    b.block("equal_cubes")
    b.br("blt", j, i, "kill_i")
    b.block("keep_i")
    b.jmp("inner_next")
    b.block("kill_i")
    zero = b.li(0, name="zero")
    b.store(zero, b.add(palive, i), 0)
    b.jmp("outer_next")
    b.block("try_merge")
    # Distance-1 pairs (differ in exactly one variable's literal) merge.
    diff = b.xor(ci, cj, name="diff")
    lsb = b.and_(diff, b.sub(0, diff), name="lsb")
    evenmask = b.li(0x55555, name="evenmask")
    lowbit = b.and_(lsb, evenmask, name="lowbit")
    aligned = b.or_(lowbit, b.srl(b.and_(lsb, b.sll(evenmask, 1)), 1),
                    name="aligned")
    varmask = b.or_(aligned, b.sll(aligned, 1), name="varmask")
    b.br("bne", diff, b.and_(diff, varmask), "inner_next")
    b.block("merge_found")
    b.add(merges, 1, dest=merges)
    b.jmp("inner_next")

    b.block("inner_next")
    b.add(j, 1, dest=j)
    b.br("blt", j, n, "inner")
    b.block("outer_next")
    b.add(i, 1, dest=i)
    b.br("blt", i, n, "outer")

    b.block("count")
    kept = b.li(0, name="kept")
    sig = b.li(0, name="sig")
    k = b.li(0, name="k")
    b.block("count_loop")
    ak = b.load(b.add(palive, k), 0, name="ak")
    b.add(kept, ak, dest=kept)
    ck = b.load(b.add(pcube, k), 0, name="ck")
    live_cube = b.mul(ak, ck, name="live_cube")
    b.and_(b.add(b.mul(sig, 9), live_cube), 0xFFFFFF, dest=sig)
    b.add(k, 1, dest=k)
    b.br("blt", k, n, "count_loop")
    b.block("done")
    b.store(kept, b.la("kept"), 0)
    total = b.add(b.mul(kept, 0x1000000), sig, name="total")
    b.store(b.add(total, b.mul(merges, 31)), b.la("checksum"), 0)
    b.halt()
    b.done()
    return m


def reference_checksum(scale: int = 1) -> int:
    cubes = _cover(scale)
    n = len(cubes)
    alive = [1] * n
    merges = 0
    i = 0
    while i < n:
        if alive[i]:
            ci = cubes[i]
            killed = False
            for j in range(n):
                if j == i or not alive[j]:
                    continue
                cj = cubes[j]
                if ci & cj == ci:
                    if ci != cj or j < i:
                        alive[i] = 0
                        killed = True
                        break
                    continue
                diff = ci ^ cj
                lsb = diff & -diff
                even = 0x55555
                lowbit = (lsb & even) | ((lsb & (even << 1)) >> 1)
                varmask = (lowbit | (lowbit << 1))
                if diff == diff & varmask:
                    merges += 1
            del killed
        i += 1
    kept = sum(alive)
    sig = 0
    for ak, ck in zip(alive, cubes):
        sig = (sig * 9 + ak * ck) & 0xFFFFFF
    return kept * 0x1000000 + sig + merges * 31
