"""Integer benchmark kernels (nine, as in the paper's evaluation)."""
