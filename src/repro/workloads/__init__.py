"""The twelve benchmark workloads of the paper's evaluation."""

from repro.workloads.analysis import WorkloadProfile, profile_module, profile_workload
from repro.workloads.registry import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INTEGER_BENCHMARKS,
    WORKLOADS,
    Workload,
    build_workload,
    workload,
)

__all__ = [
    "ALL_BENCHMARKS",
    "FP_BENCHMARKS",
    "INTEGER_BENCHMARKS",
    "WORKLOADS",
    "Workload",
    "WorkloadProfile",
    "profile_module",
    "profile_workload",
    "build_workload",
    "workload",
]
