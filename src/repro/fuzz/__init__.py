"""Differential fuzzing harness (ROADMAP item 1: the trust foundation).

The repo carries several redundant implementations that must agree
bit-exactly: reference vs fast simulator, tree-walking vs specializing IR
interpreter, serial vs parallel compile backend.  This package generates
random programs at two levels (IR builder and machine assembly), runs them
through three oracles (engine parity, checker soundness, compile
determinism), auto-shrinks any failure, and replays a committed corpus of
minimized reproducers forever.

Entry points:

* ``repro fuzz`` (see :mod:`repro.cli`) — the CLI sweep with a JSON report.
* :func:`repro.fuzz.runner.run_fuzz` — the programmatic driver.
* :mod:`repro.fuzz.oracles` — individual differential oracles.
* :mod:`repro.fuzz.shrink` — delta-debugging minimizers.
"""

from repro.fuzz.corpus import (
    module_from_json,
    module_to_json,
    program_to_text,
)
from repro.fuzz.gen_asm import AsmGenOptions, gen_machine_program
from repro.fuzz.gen_ir import IRGenOptions, gen_module
from repro.fuzz.mutate import MUTATIONS, mutate_program
from repro.fuzz.oracles import (
    Divergence,
    checker_soundness,
    compile_determinism,
    fuzz_configs,
    interp_parity,
    resume_parity,
    sim_parity,
)
from repro.fuzz.runner import FuzzOptions, FuzzReport, run_fuzz
from repro.fuzz.shrink import shrink_machine, shrink_module

__all__ = [
    "AsmGenOptions",
    "Divergence",
    "FuzzOptions",
    "FuzzReport",
    "IRGenOptions",
    "MUTATIONS",
    "checker_soundness",
    "compile_determinism",
    "fuzz_configs",
    "gen_machine_program",
    "gen_module",
    "interp_parity",
    "module_from_json",
    "module_to_json",
    "mutate_program",
    "program_to_text",
    "resume_parity",
    "run_fuzz",
    "shrink_machine",
    "shrink_module",
    "sim_parity",
]
