"""Corpus management: serialize, save, load, and enumerate fuzz cases.

Minimized reproducers live in a committed ``corpus/`` directory and are
replayed by both ``repro fuzz`` and the test suite forever:

* ``corpus/regressions/*.s`` — machine-level cases in the textual assembly
  format (with a ``; fuzz-case:`` header naming the oracle that the case
  once tripped).
* ``corpus/regressions/*.json`` — IR-level cases as a JSON encoding of the
  module (round-tripped through :func:`module_to_json` /
  :func:`module_from_json`).
* ``corpus/crashes/*.s`` — malformed assembly that must raise a
  line-numbered :class:`~repro.isa.asmparse.AsmError`, never a bare
  ``ValueError``/``IndexError``/``KeyError``.

:mod:`repro.isa.asmfmt` cannot be reused for the ``.s`` side because its
listing format drops labels; :func:`program_to_text` emits the exact
syntax :func:`repro.isa.asmparse.parse_program` accepts, so every saved
case round-trips bit-exactly.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.ir.function import Function, Module
from repro.isa.instruction import Instr
from repro.isa.opcodes import CONNECT_OPS, Opcode
from repro.isa.registers import Imm, PhysReg, RClass, VReg
from repro.sim.program import MachineProgram

_CASE_HEADER_RE = re.compile(
    r"^[;#]\s*fuzz-case:\s*(.*)$", re.MULTILINE)


# -- machine program -> .s text ------------------------------------------------

def _fmt_reg(reg: PhysReg) -> str:
    prefix = "r" if reg.cls is RClass.INT else "f"
    return f"{prefix}{reg.num}"


def _fmt_operand(op) -> str:
    if isinstance(op, Imm):
        return repr(op.value) if isinstance(op.value, float) else str(op.value)
    return _fmt_reg(op)


def _fmt_connect(instr: Instr) -> str:
    rclass = instr.imm[0]
    prefix = "r" if rclass is RClass.INT else "f"
    pieces = list(instr.imm[1:])
    fields = []
    for k in range(0, len(pieces), 2):
        fields.append(f"{prefix}i{pieces[k]}")
        fields.append(f"{prefix}p{pieces[k + 1]}")
    return f"{instr.op.value} {', '.join(fields)}"


def _fmt_instr(instr: Instr, target_label: str | None) -> str:
    op = instr.op
    if op in CONNECT_OPS:
        return _fmt_connect(instr)
    if op is Opcode.TRAP:
        return f"trap {instr.imm}"
    if op in (Opcode.LOAD, Opcode.FLOAD):
        return (f"{op.value} {_fmt_reg(instr.dest)}, "
                f"{instr.imm}({_fmt_operand(instr.srcs[0])})")
    if op in (Opcode.STORE, Opcode.FSTORE):
        return (f"{op.value} {_fmt_operand(instr.srcs[0])}, "
                f"{instr.imm}({_fmt_operand(instr.srcs[1])})")
    if op in (Opcode.LI, Opcode.LIF):
        imm = instr.imm
        shown = repr(imm) if isinstance(imm, float) else str(imm)
        return f"{op.value} {_fmt_reg(instr.dest)}, {shown}"
    if op in (Opcode.JMP, Opcode.CALL):
        return f"{op.value} {target_label}"
    parts = []
    if instr.dest is not None:
        parts.append(_fmt_reg(instr.dest))
    parts.extend(_fmt_operand(s) for s in instr.srcs)
    text = op.value
    if parts:
        text += " " + ", ".join(parts)
    if target_label is not None:
        text += f" -> {target_label}"
    if instr.hint_taken is not None:
        text += " [taken]" if instr.hint_taken else " [not-taken]"
    return text


def program_to_text(program: MachineProgram, header: str = "") -> str:
    """Serialize to the textual assembly format (labels included), such
    that ``parse_program(program_to_text(p))`` reproduces ``p``."""
    label_at: dict[int, str] = {}

    def _label_for(index: int) -> str:
        return label_at.setdefault(index, f"L{index}")

    for target in program.targets:
        if target is not None:
            _label_for(target)
    for target in program.trap_handlers.values():
        _label_for(target)
    if program.entry != 0:
        _label_for(program.entry)

    lines = []
    if header:
        lines.extend(f"; {line}" for line in header.splitlines())
    if program.entry != 0:
        lines.append(f".entry {label_at[program.entry]}")
    for addr in sorted(program.initial_memory):
        value = program.initial_memory[addr]
        shown = repr(value) if isinstance(value, float) else str(value)
        lines.append(f".word {addr} = {shown}")
    for vector in sorted(program.trap_handlers):
        lines.append(
            f".handler {vector} = {label_at[program.trap_handlers[vector]]}")
    for index, instr in enumerate(program.instrs):
        if index in label_at:
            lines.append(f"{label_at[index]}:")
        target = program.targets[index]
        target_label = label_at[target] if target is not None else None
        suffix = ""
        rules = program.suppressions.get(index)
        if rules:
            suffix = f"    ; check: ignore={','.join(sorted(rules))}"
        lines.append(f"    {_fmt_instr(instr, target_label)}{suffix}")
    for rules in (program.suppressions.get(-1),):
        if rules:
            lines.append(f"; check: ignore={','.join(sorted(rules))}")
    return "\n".join(lines) + "\n"


# -- IR module <-> JSON --------------------------------------------------------

_CLS_CODE = {RClass.INT: "i", RClass.FP: "f"}
_CODE_CLS = {"i": RClass.INT, "f": RClass.FP}


def _vreg_to_json(v: VReg) -> dict:
    out = {"cls": _CLS_CODE[v.cls], "vid": v.vid}
    if v.name:
        out["name"] = v.name
    return out


def _vreg_from_json(data: dict) -> VReg:
    return VReg(_CODE_CLS[data["cls"]], data["vid"], data.get("name", ""))


def _operand_to_json(op) -> dict:
    if isinstance(op, Imm):
        return {"imm": op.value}
    return _vreg_to_json(op)


def _operand_from_json(data: dict):
    if "imm" in data:
        return Imm(data["imm"])
    return _vreg_from_json(data)


def _instr_to_json(instr: Instr) -> dict:
    out: dict = {"op": instr.op.name}
    if instr.dest is not None:
        out["dest"] = _vreg_to_json(instr.dest)
    if instr.srcs:
        out["srcs"] = [_operand_to_json(s) for s in instr.srcs]
    if instr.imm is not None:
        out["imm"] = instr.imm
    if instr.label is not None:
        out["label"] = instr.label
    if instr.hint_taken is not None:
        out["hint"] = instr.hint_taken
    return out


def _instr_from_json(data: dict) -> Instr:
    return Instr(
        Opcode[data["op"]],
        dest=_vreg_from_json(data["dest"]) if "dest" in data else None,
        srcs=tuple(_operand_from_json(s) for s in data.get("srcs", ())),
        imm=data.get("imm"),
        label=data.get("label"),
        hint_taken=data.get("hint"),
    )


def module_to_json(module: Module) -> str:
    """Serialize an IR module (globals in declaration order, functions,
    blocks) to a JSON string."""
    doc = {
        "name": module.name,
        "globals": [
            {"name": g.name, "size": g.size, "addr": g.addr,
             "init": list(g.init)}
            for g in module.globals.values()
        ],
        "functions": [
            {
                "name": fn.name,
                "params": [_vreg_to_json(p) for p in fn.params],
                "ret": _CLS_CODE[fn.ret_class] if fn.ret_class else None,
                "blocks": [
                    {
                        "name": block.name,
                        "fallthrough": block.fallthrough,
                        "instrs": [_instr_to_json(i) for i in block.instrs],
                    }
                    for block in fn.blocks
                ],
            }
            for fn in module.functions.values()
        ],
    }
    return json.dumps(doc, indent=1)


def module_from_json(text: str) -> Module:
    """Rebuild a module serialized by :func:`module_to_json`."""
    doc = json.loads(text)
    module = Module(doc["name"])
    for g in doc["globals"]:
        added = module.add_global(g["name"], g["size"], g["init"])
        if added.addr != g["addr"]:
            raise ValueError(
                f"global {g['name']!r} relocated: saved addr {g['addr']}, "
                f"rebuilt at {added.addr}")
    for fdoc in doc["functions"]:
        params = [_vreg_from_json(p) for p in fdoc["params"]]
        ret = _CODE_CLS[fdoc["ret"]] if fdoc["ret"] else None
        fn = Function(fdoc["name"], params, ret)
        max_vid = max((p.vid for p in params), default=-1)
        for bdoc in fdoc["blocks"]:
            block = fn.new_block(bdoc["name"])
            block.fallthrough = bdoc["fallthrough"]
            for idoc in bdoc["instrs"]:
                instr = _instr_from_json(idoc)
                block.instrs.append(instr)
                for reg in instr.regs():
                    if isinstance(reg, VReg):
                        max_vid = max(max_vid, reg.vid)
        # Keep the vreg namespace collision-free for compiler passes that
        # allocate fresh vregs on this function.
        fn._next_vid = max_vid + 1
        module.add_function(fn)
    return module


# -- cases on disk -------------------------------------------------------------

@dataclass
class Case:
    """One corpus entry."""

    name: str
    kind: str  # "asm" | "ir" | "crash"
    path: Path
    text: str
    meta: dict = field(default_factory=dict)

    @property
    def oracle(self) -> str:
        return self.meta.get("oracle", "")


def default_corpus_root() -> Path | None:
    """The repo's committed ``corpus/`` directory, if present."""
    for base in (Path.cwd(), Path(__file__).resolve().parents[3]):
        candidate = base / "corpus"
        if candidate.is_dir():
            return candidate
    return None


def _parse_meta(text: str) -> dict:
    m = _CASE_HEADER_RE.search(text)
    if not m:
        return {}
    meta = {}
    for piece in m.group(1).split():
        if "=" in piece:
            key, _, value = piece.partition("=")
            meta[key] = value
    return meta


def save_asm_case(directory: Path, name: str, program: MachineProgram,
                  oracle: str, note: str = "") -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    header = f"fuzz-case: oracle={oracle} kind=asm"
    if note:
        header += f"\n{note}"
    path = directory / f"{name}.s"
    path.write_text(program_to_text(program, header=header))
    return path


def save_ir_case(directory: Path, name: str, module: Module,
                 oracle: str, note: str = "") -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    doc = {"kind": "ir", "oracle": oracle, "note": note,
           "module": json.loads(module_to_json(module))}
    path = directory / f"{name}.json"
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


def load_case(path: Path) -> Case:
    text = path.read_text()
    if path.suffix == ".json":
        doc = json.loads(text)
        meta = {"oracle": doc.get("oracle", ""), "note": doc.get("note", "")}
        return Case(path.stem, "ir", path,
                    json.dumps(doc["module"]), meta)
    kind = "crash" if path.parent.name == "crashes" else "asm"
    return Case(path.stem, kind, path, text, _parse_meta(text))


def iter_cases(root: Path) -> list[Case]:
    """All corpus cases under *root* (regressions + crashes), sorted."""
    cases = []
    for sub in ("regressions", "crashes"):
        directory = root / sub
        if not directory.is_dir():
            continue
        for path in sorted(directory.iterdir()):
            if path.suffix in (".s", ".json"):
                cases.append(load_case(path))
    return cases
