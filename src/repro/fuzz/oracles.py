"""Differential oracles for the fuzzing harness.

Three oracle families (ISSUE 6 / ROADMAP item 1):

* **engine parity** — the fast simulator and the specializing IR
  interpreter must be bit-exact with their references: full
  :class:`SimStats`, memory image, both register files, halting state, and
  (when either side faults) the exact exception type and message.
* **checker soundness** — a program the static checker passes with zero
  errors must never raise a (non arithmetic-fault) simulation error at
  runtime; targeted mutations that change behavior must surface a finding.
* **compile determinism** — the serial and parallel compile backends, and
  the fast and reference IR profiling engines, must produce byte-identical
  listings.

Every oracle returns ``None`` when it holds and a human-readable
description of the first disagreement otherwise, so the runner can wrap it
in a :class:`Divergence` with the generator seed attached.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.analyze import check_program
from repro.compiler import CompileOptions, compile_module
from repro.errors import ReproError, SimulationError, SimulationFault
from repro.ir.interp import Interpreter
from repro.isa.asmfmt import format_listing
from repro.isa.registers import RClass
from repro.rc import RCModel
from repro.sim import FastSimulator, Simulator, paper_machine
from repro.sim.config import MachineConfig

#: Reset models every fuzz run sweeps (no-reset, the paper default, and the
#: read-reset extension) — three points that exercise every mapping-table
#: update rule between them.
FUZZ_MODELS = (RCModel.NO_RESET, RCModel.WRITE_RESET_READ_UPDATE,
               RCModel.READ_RESET)
FUZZ_WIDTHS = (1, 2, 4)

#: Cycle budget for fuzz machines: far above any generated program's
#: runtime, far below the 2e8 default so runaway mutants fail fast.
FUZZ_MAX_CYCLES = 1_000_000


@dataclass
class Divergence:
    """One oracle violation, with everything needed to reproduce it."""

    oracle: str  # sim-parity | interp-parity | checker-soundness | ...
    detail: str
    level: str = ""  # "asm" | "ir"
    seed: int | None = None
    config: str = ""
    case_name: str = ""
    #: Minimized reproducer: assembly text (asm level) or module JSON (ir).
    reproducer: str = ""
    mutation: str = ""
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {k: v for k, v in dataclasses.asdict(self).items() if v}


def fuzz_configs(has_connects: bool = True,
                 widths: tuple[int, ...] = FUZZ_WIDTHS,
                 models: tuple[RCModel, ...] = FUZZ_MODELS,
                 ) -> list[MachineConfig]:
    """The fuzz configuration matrix: every model × width, with connect
    latency and the extra decode stage toggled deterministically so both
    values of each appear in every sweep."""
    configs = []
    for width in widths:
        for model in models:
            cfg = paper_machine(
                issue_width=width,
                int_core=16,
                fp_core=16,
                rc_class=RClass.INT,
                rc_model=model,
                connect_latency=(width + model.value) % 2,
                extra_decode_stage=(model is RCModel.READ_RESET),
            )
            configs.append(_bounded(cfg))
    if not has_connects:
        configs.append(_bounded(paper_machine(issue_width=4, int_core=16,
                                              fp_core=16)))
    return configs


def _bounded(cfg: MachineConfig) -> MachineConfig:
    return dataclasses.replace(cfg, max_cycles=FUZZ_MAX_CYCLES)


def _outcome(run):
    """Run a thunk, capturing either its result or its exception."""
    try:
        return None, run()
    except Exception as exc:  # noqa: BLE001 - exceptions ARE the output
        return (type(exc).__name__, str(exc)), None


#: The batched-parity gang sweeps reset models {1, 2, 4} — the two the
#: other oracles skip plus no-reset — so between the two matrices all five
#: models are fuzzed.
GANG_MODELS = (RCModel.NO_RESET, RCModel.WRITE_RESET,
               RCModel.READ_WRITE_RESET)


def gang_configs() -> list[MachineConfig]:
    """The gang-of-9 batched-parity matrix: models {1,2,4} x widths {1,2,4}."""
    return [_bounded(paper_machine(issue_width=width, int_core=16, fp_core=16,
                                   rc_class=RClass.INT, rc_model=model))
            for model in GANG_MODELS for width in FUZZ_WIDTHS]


def batched_parity(program) -> str | None:
    """One gang-of-9 lockstep run vs nine single fast runs vs reference.

    Every slot of the gang must match its config's single-config fast run
    *and* the reference engine bit-exactly: full :class:`SimStats`, memory,
    both register files, halting state — and when the point faults, the
    exact exception type and message.  A slot that retires early (fault,
    budget) must leave every other slot untouched, which this oracle checks
    implicitly by comparing all nine slots of the same gang.
    """
    from repro.sim import simulate_gang

    configs = gang_configs()
    gang_exc, gang = _outcome(lambda: simulate_gang(program, configs))
    if gang_exc is not None:
        return f"gang run raised {gang_exc!r}"
    for i, (config, slot) in enumerate(zip(configs, gang)):
        tag = f"slot{i} w{config.issue_width}-m{config.rc_model.value}"
        ref_exc, ref = _outcome(lambda c=config: Simulator(program, c).run())
        fast_exc, fast = _outcome(
            lambda c=config: FastSimulator(program, c).run())
        slot_exc = ((type(slot.error).__name__, str(slot.error))
                    if slot.error is not None else None)
        if slot_exc != ref_exc:
            return (f"{tag}: batched fault {slot_exc!r} vs reference "
                    f"{ref_exc!r}")
        if fast_exc != ref_exc:
            return (f"{tag}: fast fault {fast_exc!r} vs reference "
                    f"{ref_exc!r}")
        if slot.error is not None:
            continue
        for name, other in (("reference", ref), ("fast", fast)):
            for what, a, b in (
                ("stats", slot.result.stats, other.stats),
                ("halted", slot.result.halted, other.halted),
                ("memory", slot.result.state.memory, other.state.memory),
                ("int_regs", slot.result.state.int_regs,
                 other.state.int_regs),
                ("fp_regs", slot.result.state.fp_regs, other.state.fp_regs),
            ):
                if a != b:
                    return (f"{tag}: {what} diverge: batched {a!r} vs "
                            f"{name} {b!r}")
    return None


def opt_parity(program) -> str | None:
    """Connect-optimizer soundness over the gang matrix.

    For every model {1,2,4} × width {1,2,4} point: optimizing the program
    must preserve its architectural outcome bit-exactly — final memory,
    both register files, halting state, and on faults the exception *type*
    (messages carry instruction indices, which deletion legitimately
    shifts) — and a second pass must find nothing left to do.  At one
    width per model the checker must also agree: a warning-clean original
    stays warning-clean after optimization (LAT001 schedule infos may
    shift with deleted instructions and are excluded).
    """
    from repro.analyze import optimize_connects

    for config in gang_configs():
        tag = f"w{config.issue_width}-m{config.rc_model.value}"
        opt_exc, result = _outcome(
            lambda c=config: optimize_connects(program, c))
        if opt_exc is not None:
            return f"{tag}: optimizer crashed: {opt_exc!r}"
        if result.report.changed:
            base_exc, base = _outcome(
                lambda c=config: FastSimulator(program, c).run())
            new_exc, new = _outcome(
                lambda c=config, p=result.program: FastSimulator(p, c).run())
            base_type = base_exc[0] if base_exc else None
            new_type = new_exc[0] if new_exc else None
            if base_type != new_type:
                return (f"{tag}: fault mismatch after optimization: "
                        f"original {base_exc!r} vs optimized {new_exc!r}")
            if base_exc is None:
                for what, a, b in (
                    ("halted", base.halted, new.halted),
                    ("memory", base.state.memory, new.state.memory),
                    ("int_regs", base.state.int_regs, new.state.int_regs),
                    ("fp_regs", base.state.fp_regs, new.state.fp_regs),
                ):
                    if a != b:
                        return (f"{tag}: {what} diverge after "
                                f"optimization: {a!r} vs {b!r}")
            again_exc, again = _outcome(
                lambda c=config, p=result.program: optimize_connects(p, c))
            if again_exc is not None:
                return f"{tag}: re-optimization crashed: {again_exc!r}"
            if again.report.changed:
                return (f"{tag}: optimizer is not idempotent: second pass "
                        f"made {len(again.report.edits)} more edit(s)")
        if config.issue_width == 2:
            chk_exc, before = _outcome(
                lambda c=config: check_program(program, c))
            if chk_exc is not None:
                return f"{tag}: checker crashed: {chk_exc!r}"
            if before.errors or before.warnings:
                continue  # the clean-stays-clean claim does not apply
            chk_exc, after = _outcome(
                lambda c=config, p=result.program: check_program(p, c))
            if chk_exc is not None:
                return f"{tag}: checker crashed on optimized: {chk_exc!r}"
            if after.errors or after.warnings:
                first = (after.errors + after.warnings)[0]
                return (f"{tag}: optimization introduced a finding on a "
                        f"clean program: {first.format()}")
    return None


def sim_parity(program, config) -> tuple[str | None, bool]:
    """Fast-vs-reference simulator parity on one (program, config) point.

    Returns ``(problem, used_fastpath)``; a fast engine that silently fell
    back still passes (trivially), but the runner counts it so coverage
    loss is visible in the report.
    """
    ref_exc, ref = _outcome(lambda: Simulator(program, config).run())
    fast_sim_box = []

    def _fast():
        sim = FastSimulator(program, config)
        fast_sim_box.append(sim)
        return sim.run()

    fast_exc, fast = _outcome(_fast)
    used_fastpath = bool(fast_sim_box and fast_sim_box[0].ran_fastpath)
    if ref_exc or fast_exc:
        if ref_exc != fast_exc:
            return (f"fault mismatch: reference {ref_exc!r} vs fast "
                    f"{fast_exc!r}"), used_fastpath
        return None, used_fastpath
    for what, a, b in (
        ("stats", fast.stats, ref.stats),
        ("halted", fast.halted, ref.halted),
        ("memory", fast.state.memory, ref.state.memory),
        ("int_regs", fast.state.int_regs, ref.state.int_regs),
        ("fp_regs", fast.state.fp_regs, ref.state.fp_regs),
    ):
        if a != b:
            return (f"{what} diverge: fast {a!r} vs reference {b!r}",
                    used_fastpath)
    return None, used_fastpath


def interp_parity(module, entry: str = "main",
                  args: tuple = ()) -> tuple[str | None, bool]:
    """Fast-vs-reference IR interpreter parity on one module."""
    ref_exc, ref = _outcome(
        lambda: Interpreter(module, engine="reference").run(entry, args))
    box = []

    def _fast():
        interp = Interpreter(module, engine="fast")
        box.append(interp)
        return interp.run(entry, args)

    fast_exc, fast = _outcome(_fast)
    used_fastpath = bool(box and box[0].ran_fastpath)
    if ref_exc or fast_exc:
        if ref_exc != fast_exc:
            return (f"fault mismatch: reference {ref_exc!r} vs fast "
                    f"{fast_exc!r}"), used_fastpath
        return None, used_fastpath
    if fast.steps != ref.steps:
        return (f"steps diverge: fast {fast.steps} vs reference "
                f"{ref.steps}"), used_fastpath
    if fast.memory != ref.memory:
        return (f"memory diverges: fast {fast.memory!r} vs reference "
                f"{ref.memory!r}"), used_fastpath
    for what in ("block_counts", "branch_counts", "call_counts"):
        a = getattr(fast.profile, what)
        b = getattr(ref.profile, what)
        if a != b:
            return (f"profile {what} diverge: fast {a!r} vs reference "
                    f"{b!r}"), used_fastpath
    return None, used_fastpath


def resume_parity(program, config, chunk: int = 7) -> str | None:
    """Segmented execution parity: running in ``until_cycle`` chunks (plus
    one idempotent re-``run()`` after halting) must equal one full run, on
    both engines, including when the program faults mid-segment.  A
    ``run()`` after a *failed* run must also behave identically on both
    engines (they refuse to resume inconsistent state with the same
    diagnostic)."""
    full_exc, full = _outcome(lambda: Simulator(program, config).run())

    if full_exc is not None:
        def _rerun_after_failure(cls):
            sim = cls(program, config)
            try:
                sim.run()
            except Exception:  # noqa: BLE001 - the expected first failure
                pass
            return sim.run()

        ref2 = _outcome(lambda: _rerun_after_failure(Simulator))
        fast2 = _outcome(lambda: _rerun_after_failure(FastSimulator))
        if ref2[0] != fast2[0]:
            return (f"re-run after failure: reference {ref2[0]!r} vs fast "
                    f"{fast2[0]!r}")
        if ref2[1] is not None and fast2[1] is not None:
            if ref2[1].stats != fast2[1].stats:
                return ("re-run after failure stats diverge: reference "
                        f"{ref2[1].stats!r} vs fast {fast2[1].stats!r}")

    def _segmented(cls):
        sim = cls(program, config)
        result = sim.run(until_cycle=chunk)
        guard = FUZZ_MAX_CYCLES // chunk + 2
        while not result.halted:
            guard -= 1
            if guard < 0:
                raise SimulationError("segmented run failed to make progress")
            result = sim.run(until_cycle=result.stats.cycles + chunk)
        rerun = sim.run()
        if rerun.stats != result.stats or not rerun.halted:
            raise AssertionError("re-run after halt changed the result")
        return result

    for name, cls in (("reference", Simulator), ("fast", FastSimulator)):
        exc, seg = _outcome(lambda cls=cls: _segmented(cls))
        if exc != full_exc:
            return (f"segmented {name} outcome {exc!r} vs full reference "
                    f"{full_exc!r}")
        if seg is None:
            continue
        for what, a, b in (
            ("stats", seg.stats, full.stats),
            ("memory", seg.state.memory, full.state.memory),
            ("int_regs", seg.state.int_regs, full.state.int_regs),
            ("fp_regs", seg.state.fp_regs, full.state.fp_regs),
        ):
            if a != b:
                return (f"segmented {name} {what} diverge: {a!r} vs full "
                        f"{b!r}")
    return None


def checker_soundness(program, config) -> str | None:
    """A program the checker passes with zero errors must not raise a
    (non arithmetic-fault) simulation error in the reference engine."""
    try:
        report = check_program(program, config)
    except ReproError as exc:
        return f"checker crashed: {type(exc).__name__}: {exc}"
    if report.errors:
        return None  # the checker made no soundness claim
    try:
        Simulator(program, config).run()
    except SimulationFault:
        return None  # data-dependent arithmetic fault; outside the claim
    except ReproError as exc:
        return (f"checker reported zero errors but the reference "
                f"simulator raised {type(exc).__name__}: {exc}")
    return None


def mutation_surfaced(original, mutant, config) -> str | None:
    """Checker completeness on a targeted mutation.

    When a mutation provably changes observable behavior (different final
    memory/registers, or a new fault), the static checker must surface a
    read-of-undefined family finding (RC001/RC002/UBD001) on the mutant.
    """
    base_exc, base = _outcome(lambda: Simulator(original, config).run())
    mut_exc, mut = _outcome(lambda: Simulator(mutant, config).run())
    changed = (base_exc != mut_exc) or (
        base is not None and mut is not None and (
            base.state.memory != mut.state.memory
            or base.state.int_regs != mut.state.int_regs
            or base.state.fp_regs != mut.state.fp_regs))
    if not changed:
        return None  # mutation was semantically neutral; nothing to flag
    try:
        report = check_program(mutant, config)
    except ReproError as exc:
        return f"checker crashed on mutant: {type(exc).__name__}: {exc}"
    hits = [f for f in report.findings
            if f.rule in ("RC001", "RC002", "UBD001")]
    if not hits:
        return ("mutation changed behavior but the checker surfaced no "
                "RC001/RC002/UBD001 finding")
    return None


def compile_determinism(module, config) -> str | None:
    """Byte-identical listings across jobs=1 / jobs=4 and the fast /
    reference IR profiling engines."""
    variants = {
        "jobs=1": CompileOptions(jobs=1),
        "jobs=4": CompileOptions(jobs=4),
        "ir=reference": CompileOptions(jobs=1, ir_engine="reference"),
    }
    outputs = {}
    for name, options in variants.items():
        exc, out = _outcome(
            lambda options=options: compile_module(module, config,
                                                   options=options))
        outputs[name] = (exc, out)
    base_name = "jobs=1"
    base_exc, base = outputs[base_name]
    base_listing = format_listing(base.program.instrs) if base else None
    for name, (exc, out) in outputs.items():
        if name == base_name:
            continue
        if exc != base_exc:
            return (f"compile outcome differs: {base_name} {base_exc!r} "
                    f"vs {name} {exc!r}")
        if out is None:
            continue
        listing = format_listing(out.program.instrs)
        if listing != base_listing:
            return f"listing differs between {base_name} and {name}"
        if out.program.targets != base.program.targets:
            return f"branch targets differ between {base_name} and {name}"
        if out.program.entry != base.program.entry:
            return f"entry differs between {base_name} and {name}"
        if out.program.initial_memory != base.program.initial_memory:
            return f"initial memory differs between {base_name} and {name}"
    return None
