"""Seeded random generator of well-formed :class:`MachineProgram`\\ s.

The generator emits structured machine code — straight-line ALU runs,
counted loops, diamonds, call/return pairs, traps, and connect clusters —
so every program terminates, decodes under every fuzz config, and is
statically clean (no RC001/CFG001 errors) by construction.  That last
property is what makes the checker-soundness oracle decidable: a targeted
mutation either leaves behavior unchanged or must surface a finding.

Register discipline (``int_core=16``, ``fp_core=16`` fuzz machines):

* ``r1..r7`` — the write pool; initialized up front, freely clobbered.
* ``r8..r15`` — *unwritten homes*: never written directly, only read
  through an explicit ``connect_use`` onto an extended register that a
  ``connect_def`` cluster has just written.  NOP-ing that connect_use
  therefore provably changes the read (home is unwritten) and must trip
  RC001/UBD001.
* ``f2..f14`` (even) — the FP pool; the FP file is never mapped.
* extended physical registers live in ``[16, 256)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, PhysReg, RClass
from repro.sim.program import MachineProgram, assemble

INT_POOL = tuple(range(1, 8))
UNWRITTEN_HOMES = tuple(range(8, 16))
FP_POOL = tuple(range(2, 16, 2))
EXT_RANGE = (16, 256)

_INT_BINOPS = (
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.MUL,
    Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
    Opcode.CMPGT, Opcode.CMPGE,
)
_FP_BINOPS = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL)
_COND_BRANCHES = (
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BLE, Opcode.BGT,
    Opcode.BGE, Opcode.BEQZ, Opcode.BNEZ,
)


@dataclass
class AsmGenOptions:
    """Knobs for the machine-level generator."""

    max_segments: int = 6
    max_loop_iters: int = 8
    max_loop_depth: int = 2
    connect_prob: float = 0.6
    trap_prob: float = 0.2
    call_prob: float = 0.3
    div_prob: float = 0.15
    #: Probability a DIV/REM keeps a register divisor (may fault; fault
    #: parity between engines is itself an oracle).
    unguarded_div_prob: float = 0.05
    memory_words: int = 4


@dataclass
class GeneratedProgram:
    """A generated program plus the facts oracles rely on."""

    program: MachineProgram
    #: Instruction indices of connect_use instrs whose NOP-ing provably
    #: redirects a read to an unwritten home register.
    load_bearing_connects: list[int] = field(default_factory=list)
    has_connects: bool = False
    #: True when a DIV/REM with a register divisor was emitted (the run may
    #: legitimately fault with a divide-by-zero).
    may_fault: bool = False


def _ir(n: int) -> PhysReg:
    return PhysReg(RClass.INT, n)


def _fr(n: int) -> PhysReg:
    return PhysReg(RClass.FP, n)


class _Emitter:
    def __init__(self, rng: random.Random, opts: AsmGenOptions) -> None:
        self.rng = rng
        self.opts = opts
        self.instrs: list[Instr] = []
        self.labels: dict[str, int] = {}
        self._next_label = 0
        self._next_ext = EXT_RANGE[0]
        self.load_bearing: list[int] = []
        self.has_connects = False
        self.may_fault = False
        self.memory: dict[int, int | float] = {}
        self.trap_handlers: dict[int, str] = {}
        self._subroutines: list[str] = []

    def emit(self, instr: Instr) -> int:
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def label(self, prefix: str = "L") -> str:
        name = f"{prefix}{self._next_label}"
        self._next_label += 1
        return name

    def place(self, name: str) -> None:
        self.labels[name] = len(self.instrs)

    def fresh_ext(self) -> int:
        """A fresh extended physical register (wraps around if exhausted)."""
        phys = self._next_ext
        self._next_ext += 1
        if self._next_ext >= EXT_RANGE[1]:
            self._next_ext = EXT_RANGE[0]
        return phys

    # -- segment emitters -----------------------------------------------------

    def init_pools(self) -> None:
        for n in INT_POOL:
            self.emit(Instr(Opcode.LI, dest=_ir(n), imm=self._imm()))
        for n in self.rng.sample(FP_POOL, 3):
            self.emit(Instr(Opcode.LIF, dest=_fr(n),
                            imm=float(self.rng.randint(-8, 8)) / 2))
        if self.opts.memory_words and self.rng.random() < 0.5:
            base = 4096
            for i in range(self.rng.randint(1, self.opts.memory_words)):
                self.memory[base + i] = self._imm()

    def _imm(self) -> int:
        r = self.rng.random()
        if r < 0.7:
            return self.rng.randint(-100, 100)
        if r < 0.9:
            return self.rng.randint(-(1 << 16), 1 << 16)
        return self.rng.choice((1 << 62, -(1 << 62), (1 << 63) - 1))

    def _pool(self, exclude: frozenset[int]) -> int:
        choices = [n for n in INT_POOL if n not in exclude]
        return self.rng.choice(choices)

    def alu_run(self, exclude: frozenset[int]) -> None:
        for _ in range(self.rng.randint(1, 5)):
            op = self.rng.choice(_INT_BINOPS)
            dest = self._pool(exclude)
            a = self.rng.choice(INT_POOL)
            b: PhysReg | Imm
            if self.rng.random() < 0.3:
                b = Imm(self._imm())
            else:
                b = _ir(self.rng.choice(INT_POOL))
            self.emit(Instr(op, dest=_ir(dest), srcs=(_ir(a), b)))
        if self.rng.random() < self.opts.div_prob:
            op = self.rng.choice((Opcode.DIV, Opcode.REM))
            dest = self._pool(exclude)
            a = self.rng.choice(INT_POOL)
            if self.rng.random() < self.opts.unguarded_div_prob:
                self.may_fault = True
                divisor: PhysReg | Imm = _ir(self.rng.choice(INT_POOL))
            else:
                value = self.rng.randint(1, 50) * self.rng.choice((1, -1))
                divisor = Imm(value)
            self.emit(Instr(op, dest=_ir(dest), srcs=(_ir(a), divisor)))

    def fp_run(self, exclude: frozenset[int]) -> None:
        for _ in range(self.rng.randint(1, 3)):
            op = self.rng.choice(_FP_BINOPS)
            dest = self.rng.choice(FP_POOL)
            a, b = (self.rng.choice(FP_POOL) for _ in range(2))
            self.emit(Instr(op, dest=_fr(dest), srcs=(_fr(a), _fr(b))))
        if self.rng.random() < 0.3:
            dest = self._pool(exclude)
            self.emit(Instr(Opcode.CVTFI, dest=_ir(dest),
                            srcs=(_fr(self.rng.choice(FP_POOL)),)))
        if self.rng.random() < 0.3:
            self.emit(Instr(Opcode.CVTIF, dest=_fr(self.rng.choice(FP_POOL)),
                            srcs=(_ir(self.rng.choice(INT_POOL)),)))

    def mem_run(self, exclude: frozenset[int]) -> None:
        off = self.rng.randint(0, 48)
        src = self.rng.choice(INT_POOL)
        self.emit(Instr(Opcode.STORE, srcs=(_ir(src), _ir(0)), imm=off))
        if self.rng.random() < 0.7:
            dest = self._pool(exclude)
            back = off if self.rng.random() < 0.7 else self.rng.randint(0, 48)
            self.emit(Instr(Opcode.LOAD, dest=_ir(dest), srcs=(_ir(0),),
                            imm=back))
        if self.memory and self.rng.random() < 0.5:
            addr = self.rng.choice(sorted(self.memory))
            ptr = self._pool(exclude)
            dest = self._pool(exclude)
            self.emit(Instr(Opcode.LI, dest=_ir(ptr), imm=addr))
            self.emit(Instr(Opcode.LOAD, dest=_ir(dest), srcs=(_ir(ptr),),
                            imm=0))

    def connect_cluster(self, exclude: frozenset[int]) -> None:
        """``cdef A->P; write A; cuse B->P; read B`` then restore home maps.

        ``B`` comes from the unwritten homes, so the read provably observes
        the extended register; the cluster ends with both entries explicitly
        reset to home so later code is model-independent.
        """
        self.has_connects = True
        rng = self.rng
        pairs = 2 if rng.random() < 0.3 else 1
        defs = rng.sample([n for n in INT_POOL if n not in exclude],
                          pairs)
        uses = rng.sample(UNWRITTEN_HOMES, pairs)
        exts = [self.fresh_ext() for _ in range(pairs)]
        if pairs == 2 and rng.random() < 0.5:
            self.emit(Instr(Opcode.CDD, imm=(RClass.INT, defs[0], exts[0],
                                             defs[1], exts[1])))
        else:
            for a, p in zip(defs, exts):
                self.emit(Instr(Opcode.CDEF, imm=(RClass.INT, a, p)))
        for a in defs:
            self.emit(Instr(Opcode.LI, dest=_ir(a), imm=self._imm()))
        if pairs == 2 and rng.random() < 0.5:
            idx = self.emit(Instr(Opcode.CUU, imm=(RClass.INT, uses[0],
                                                   exts[0], uses[1],
                                                   exts[1])))
            self.load_bearing.append(idx)
        else:
            for b, p in zip(uses, exts):
                idx = self.emit(Instr(Opcode.CUSE, imm=(RClass.INT, b, p)))
                self.load_bearing.append(idx)
        acc = self._pool(exclude)
        for b in uses:
            self.emit(Instr(Opcode.ADD, dest=_ir(acc),
                            srcs=(_ir(acc), _ir(b))))
        # Restore home mappings so trailing code reads core registers
        # identically under every reset model.
        for a in defs:
            self.emit(Instr(Opcode.CDEF, imm=(RClass.INT, a, a)))
        for b in uses:
            self.emit(Instr(Opcode.CUSE, imm=(RClass.INT, b, b)))

    def diamond(self, exclude: frozenset[int], depth: int) -> None:
        then_label = self.label()
        join_label = self.label()
        a = self.rng.choice(INT_POOL)
        op = self.rng.choice(_COND_BRANCHES)
        if op in (Opcode.BEQZ, Opcode.BNEZ):
            srcs: tuple = (_ir(a),)
        else:
            b: PhysReg | Imm = (Imm(self.rng.randint(-20, 20))
                                if self.rng.random() < 0.5
                                else _ir(self.rng.choice(INT_POOL)))
            srcs = (_ir(a), b)
        hint = self.rng.choice((None, True, False))
        self.emit(Instr(op, srcs=srcs, label=then_label, hint_taken=hint))
        self.body(exclude, depth, max_segments=2)  # else arm
        self.emit(Instr(Opcode.JMP, label=join_label))
        self.place(then_label)
        self.body(exclude, depth, max_segments=2)  # then arm
        self.place(join_label)

    def loop(self, exclude: frozenset[int], depth: int) -> None:
        counter = self._pool(exclude)
        inner = exclude | {counter}
        top = self.label()
        n = self.rng.randint(2, self.opts.max_loop_iters)
        self.emit(Instr(Opcode.LI, dest=_ir(counter), imm=0))
        self.place(top)
        self.body(inner, depth + 1, max_segments=2)
        self.emit(Instr(Opcode.ADD, dest=_ir(counter),
                        srcs=(_ir(counter), Imm(1))))
        hint = self.rng.choice((None, True))
        self.emit(Instr(Opcode.BLT, srcs=(_ir(counter), Imm(n)), label=top,
                        hint_taken=hint))

    def trap_seg(self, exclude: frozenset[int]) -> None:
        vector = self.rng.randint(1, 4)
        if vector not in self.trap_handlers:
            self.trap_handlers[vector] = self.label("H")
        self.emit(Instr(Opcode.TRAP, imm=vector))

    def call_seg(self, exclude: frozenset[int]) -> None:
        if not self._subroutines:
            self._subroutines.append(self.label("F"))
        target = self.rng.choice(self._subroutines)
        self.emit(Instr(Opcode.CALL, label=target))

    def body(self, exclude: frozenset[int], depth: int,
             max_segments: int | None = None) -> None:
        rng = self.rng
        limit = max_segments or self.opts.max_segments
        for _ in range(rng.randint(1, limit)):
            roll = rng.random()
            if roll < 0.30:
                self.alu_run(exclude)
            elif roll < 0.45:
                self.fp_run(exclude)
            elif roll < 0.60:
                self.mem_run(exclude)
            elif roll < 0.60 + 0.15 * self.opts.connect_prob:
                self.connect_cluster(exclude)
            elif roll < 0.80 and depth < self.opts.max_loop_depth:
                if rng.random() < 0.5:
                    self.loop(exclude, depth)
                else:
                    self.diamond(exclude, depth)
            elif roll < 0.80 + 0.10 * self.opts.trap_prob:
                self.trap_seg(exclude)
            elif roll < 0.90 + 0.10 * self.opts.call_prob:
                self.call_seg(exclude)
            else:
                self.alu_run(exclude)

    def tail(self) -> None:
        """Fold the pools into a checksum, store it, and halt."""
        acc = 5
        for n in INT_POOL:
            if n != acc:
                self.emit(Instr(Opcode.XOR, dest=_ir(acc),
                                srcs=(_ir(acc), _ir(n))))
        self.emit(Instr(Opcode.STORE, srcs=(_ir(acc), _ir(0)), imm=3000))
        f = self.rng.choice(FP_POOL)
        self.emit(Instr(Opcode.FSTORE, srcs=(_fr(f), _ir(0)), imm=3001))
        self.emit(Instr(Opcode.HALT))

    def appendix(self) -> None:
        """Subroutine bodies and trap handlers, placed after ``halt``."""
        for name in self._subroutines:
            self.place(name)
            self.alu_run(frozenset())
            self.emit(Instr(Opcode.RET))
        for vector, name in self.trap_handlers.items():
            self.place(name)
            marker = self.rng.choice(INT_POOL)
            self.emit(Instr(Opcode.STORE, srcs=(_ir(marker), _ir(0)),
                            imm=3100 + vector))
            self.emit(Instr(Opcode.RTE))


def gen_machine_program(seed: int,
                        opts: AsmGenOptions | None = None) -> GeneratedProgram:
    """Generate one seeded random machine program."""
    opts = opts or AsmGenOptions()
    rng = random.Random(seed)
    em = _Emitter(rng, opts)
    em.init_pools()
    em.body(frozenset(), depth=0)
    em.tail()
    em.appendix()
    handlers = {v: em.labels[name] for v, name in em.trap_handlers.items()}
    program = assemble(em.instrs, labels=em.labels,
                       initial_memory=em.memory, trap_handlers=handlers,
                       name=f"fuzz-asm-{seed}")
    return GeneratedProgram(program=program,
                            load_bearing_connects=em.load_bearing,
                            has_connects=em.has_connects,
                            may_fault=em.may_fault)
