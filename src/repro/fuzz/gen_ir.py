"""Seeded random generator of IR modules via :class:`FnBuilder`.

Programs are structured (counted loops, diamonds, calls) so they always
terminate, and every accumulator vreg is initialized in the entry block so
no path reads an undefined register.  A register-pressure knob (the number
of live accumulators) pushes the allocator into spilling and — on RC
machines — into the extended register file, which is what makes the
compiled output connect-rich for the downstream simulator oracles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ir.builder import FnBuilder
from repro.ir.function import Module

_INT_OPS = ("add", "sub", "mul", "and_", "or_", "xor", "sll", "srl", "sra",
            "cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge")
_FP_OPS = ("fadd", "fsub", "fmul")
_BRANCHES = ("beq", "bne", "blt", "ble", "bgt", "bge", "beqz", "bnez")


@dataclass
class IRGenOptions:
    """Knobs for the IR-level generator."""

    min_accs: int = 4
    #: Live integer accumulators — the register-pressure knob.  Anything
    #: above the core file size forces spills / extended registers.
    max_accs: int = 18
    max_fp_accs: int = 4
    max_segments: int = 5
    max_loop_iters: int = 6
    max_depth: int = 2
    helper_prob: float = 0.6
    div_prob: float = 0.2


class _FnGen:
    def __init__(self, rng: random.Random, opts: IRGenOptions,
                 module: Module, helpers: list[str]) -> None:
        self.rng = rng
        self.opts = opts
        self.module = module
        self.helpers = helpers
        self.b = FnBuilder(module, "main")
        self._next = 0
        n_accs = rng.randint(opts.min_accs, opts.max_accs)
        n_fp = rng.randint(1, opts.max_fp_accs)
        self.iaccs = [self.b.li(self._const(), name=f"acc{i}")
                      for i in range(n_accs)]
        self.faccs = [self.b.fli(float(rng.randint(-6, 6)) / 2 or 1.0,
                                 name=f"facc{i}")
                      for i in range(n_fp)]

    def _label(self, stem: str) -> str:
        self._next += 1
        return f"{stem}{self._next}"

    def _const(self) -> int:
        r = self.rng.random()
        if r < 0.8:
            return self.rng.randint(-64, 64)
        return self.rng.choice((1 << 30, -(1 << 30), (1 << 62)))

    def _iacc(self):
        return self.rng.choice(self.iaccs)

    def _isrc(self):
        return self._iacc() if self.rng.random() < 0.7 else self._const()

    # -- segments -------------------------------------------------------------

    def alu_seg(self) -> None:
        b = self.b
        for _ in range(self.rng.randint(1, 4)):
            op = self.rng.choice(_INT_OPS)
            getattr(b, op)(self._isrc(), self._isrc(), dest=self._iacc())
        if self.rng.random() < self.opts.div_prob:
            divisor = b.or_(self._isrc(), 1)  # guaranteed odd, never zero
            fn = b.div if self.rng.random() < 0.5 else b.rem
            fn(self._isrc(), divisor, dest=self._iacc())

    def fp_seg(self) -> None:
        b = self.b
        for _ in range(self.rng.randint(1, 3)):
            op = self.rng.choice(_FP_OPS)
            a, c = (self.rng.choice(self.faccs) for _ in range(2))
            getattr(b, op)(a, c, dest=self.rng.choice(self.faccs))
        roll = self.rng.random()
        if roll < 0.25:
            d = b.fli(float(self.rng.randint(1, 4)))
            b.fdiv(self.rng.choice(self.faccs), d,
                   dest=self.rng.choice(self.faccs))
        elif roll < 0.5:
            b.fcmplt(self.rng.choice(self.faccs),
                     self.rng.choice(self.faccs), dest=self._iacc())
        elif roll < 0.75:
            b.cvtif(self._iacc(), dest=self.rng.choice(self.faccs))

    def mem_seg(self) -> None:
        b = self.b
        off = self.rng.randrange(8)
        v = b.load(b.la("data"), off)
        b.add(self._iacc(), v, dest=self._iacc())
        if self.rng.random() < 0.6:
            b.store(self._iacc(), b.la("out"), self.rng.randrange(8))

    def call_seg(self) -> None:
        if not self.helpers:
            return self.alu_seg()
        b = self.b
        name = self.rng.choice(self.helpers)
        r = b.call(name, [self._isrc(), self._isrc()], ret="i")
        b.add(self._iacc(), r, dest=self._iacc())

    def loop_seg(self, depth: int) -> None:
        b = self.b
        counter = b.li(0, name=self._label("c"))
        iters = self.rng.randint(2, self.opts.max_loop_iters)
        top = self._label("top")
        b.block(top)
        self.body(depth + 1, max_segments=2)
        b.add(counter, 1, dest=counter)
        b.br("blt", counter, iters, target=top)
        b.block(self._label("after"))

    def diamond_seg(self, depth: int) -> None:
        b = self.b
        then = self._label("then")
        join = self._label("join")
        cond = self.rng.choice(_BRANCHES)
        if cond in ("beqz", "bnez"):
            b.br(cond, self._iacc(), target=then)
        else:
            b.br(cond, self._iacc(), self._isrc(), target=then)
        b.block(self._label("else"))
        self.body(depth + 1, max_segments=1)
        b.jmp(join)
        b.block(then)
        self.body(depth + 1, max_segments=1)
        b.jmp(join)
        b.block(join)

    def body(self, depth: int, max_segments: int | None = None) -> None:
        limit = max_segments or self.opts.max_segments
        for _ in range(self.rng.randint(1, limit)):
            roll = self.rng.random()
            if roll < 0.35:
                self.alu_seg()
            elif roll < 0.50:
                self.fp_seg()
            elif roll < 0.65:
                self.mem_seg()
            elif roll < 0.75:
                self.call_seg()
            elif depth < self.opts.max_depth:
                if self.rng.random() < 0.5:
                    self.loop_seg(depth)
                else:
                    self.diamond_seg(depth)
            else:
                self.alu_seg()

    def finish(self) -> None:
        b = self.b
        fold = b.li(0, name="fold")
        for acc in self.iaccs:
            b.xor(fold, acc, dest=fold)
        b.store(fold, b.la("checksum"), 0)
        fsum = self.faccs[0]
        for facc in self.faccs[1:]:
            b.fadd(fsum, facc, dest=fsum)
        b.fstore(fsum, b.la("fsum"), 0)
        b.halt()
        b.done()


def _gen_helper(rng: random.Random, opts: IRGenOptions, module: Module,
                name: str) -> None:
    b = FnBuilder(module, name, params=[("i", "a"), ("i", "b")], ret="i")
    x, y = b.params
    avail = [x, y]
    for _ in range(rng.randint(2, 6)):
        op = rng.choice(_INT_OPS)
        a = rng.choice(avail)
        c = rng.choice(avail) if rng.random() < 0.7 else rng.randint(-32, 32)
        avail.append(getattr(b, op)(a, c))
    if rng.random() < opts.div_prob:
        divisor = b.or_(rng.choice(avail), 1)
        avail.append(b.rem(rng.choice(avail), divisor))
    b.ret(rng.choice(avail))
    b.done()


def gen_module(seed: int, opts: IRGenOptions | None = None) -> Module:
    """Generate one seeded random IR module with a ``main`` entry."""
    opts = opts or IRGenOptions()
    rng = random.Random(seed)
    module = Module(f"fuzz-ir-{seed}")
    module.add_global("data", 8, [rng.randint(-100, 100) for _ in range(8)])
    module.add_global("out", 8)
    module.add_global("checksum", 1)
    module.add_global("fsum", 1)
    helpers: list[str] = []
    if rng.random() < opts.helper_prob:
        for i in range(rng.randint(1, 2)):
            name = f"helper{i}"
            _gen_helper(rng, opts, module, name)
            helpers.append(name)
    gen = _FnGen(rng, opts, module, helpers)
    gen.body(depth=0)
    gen.finish()
    return module
