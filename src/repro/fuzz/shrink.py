"""Delta-debugging minimizers for failing fuzz cases.

Both shrinkers take a *predicate* — "does this candidate still trip the
oracle?" — and greedily apply reductions that keep the predicate true,
re-checking after every step:

* :func:`shrink_machine` deletes instruction ranges from a flat
  :class:`MachineProgram`, retargeting branches across the cut (a target
  inside a deleted range moves to the first surviving instruction after
  it).  Range deletion first (halves, quarters, ...), then single
  instructions to a fixpoint.
* :func:`shrink_module` works on IR: delete non-terminator instructions,
  collapse conditional branches to unconditional jumps (which lets
  unreachable-block elimination delete whole blocks — the delete-block
  pass), and drop entire uncalled functions.

A candidate whose construction or predicate evaluation raises is simply
rejected; the shrinkers never propagate candidate errors.
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.ir.function import Module
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.sim.program import MachineProgram

Predicate = Callable[[object], bool]


def _holds(predicate: Predicate, candidate) -> bool:
    try:
        return bool(predicate(candidate))
    except Exception:  # noqa: BLE001 - malformed candidate: reject it
        return False


# -- machine-program shrinking -------------------------------------------------

def delete_range(program: MachineProgram, start: int,
                 stop: int) -> MachineProgram | None:
    """Delete instructions ``[start, stop)``, retargeting control flow.

    Returns ``None`` when the deletion cannot produce a valid program
    (empty result, or a branch/entry/handler would point past the end).
    """
    cut = stop - start
    instrs = program.instrs[:start] + program.instrs[stop:]
    if not instrs:
        return None

    def adjust(target: int | None) -> int | None | str:
        if target is None:
            return None
        if target >= stop:
            return target - cut
        if target >= start:
            # Fell inside the cut: move to the first surviving instruction
            # after it, unless the cut reached the end of the program.
            return start if start < len(instrs) else "invalid"
        return target

    targets: list[int | None] = []
    for k, target in enumerate(program.targets):
        if start <= k < stop:
            continue
        moved = adjust(target)
        if moved == "invalid":
            return None
        targets.append(moved)
    entry = adjust(program.entry)
    handlers = {v: adjust(t) for v, t in program.trap_handlers.items()}
    if entry == "invalid" or "invalid" in handlers.values():
        return None
    suppressions = {}
    for index, rules in program.suppressions.items():
        if index < 0:
            suppressions[index] = rules
        elif not start <= index < stop:
            moved = adjust(index)
            if moved != "invalid":
                suppressions[moved] = rules
    try:
        return MachineProgram(
            instrs=[i.copy() for i in instrs],
            targets=targets,
            initial_memory=dict(program.initial_memory),
            entry=entry,
            initial_sp=program.initial_sp,
            trap_handlers=handlers,
            name=f"{program.name}-min",
            suppressions=suppressions,
        )
    except Exception:  # noqa: BLE001 - invalid deletion: reject it
        return None


def shrink_machine(program: MachineProgram, predicate: Predicate,
                   max_rounds: int = 40) -> MachineProgram:
    """Minimize *program* while *predicate* keeps returning True."""
    current = program
    for _round in range(max_rounds):
        changed = False
        # Coarse pass: binary-search style range deletion.
        chunk = len(current.instrs) // 2
        while chunk >= 1:
            start = 0
            while start < len(current.instrs):
                candidate = delete_range(current, start,
                                         min(start + chunk,
                                             len(current.instrs)))
                if candidate is not None and _holds(predicate, candidate):
                    current = candidate
                    changed = True
                else:
                    start += chunk
            chunk //= 2
        # Fine pass: drop initial memory words and trap handlers.
        for addr in sorted(current.initial_memory):
            candidate = copy.deepcopy(current)
            del candidate.initial_memory[addr]
            if _holds(predicate, candidate):
                current = candidate
                changed = True
        for vector in sorted(current.trap_handlers):
            candidate = copy.deepcopy(current)
            del candidate.trap_handlers[vector]
            if _holds(predicate, candidate):
                current = candidate
                changed = True
        if not changed:
            break
    return current


# -- IR module shrinking -------------------------------------------------------

def _module_sites(module: Module):
    for fn_name, fn in module.functions.items():
        for bi, block in enumerate(fn.blocks):
            body = len(block.instrs)
            if block.terminator is not None:
                body -= 1
            for ii in range(body):
                yield fn_name, bi, ii


def _delete_ir_instr(module: Module, fn_name: str, bi: int,
                     ii: int) -> Module | None:
    candidate = copy.deepcopy(module)
    try:
        del candidate.functions[fn_name].blocks[bi].instrs[ii]
    except (KeyError, IndexError):
        return None
    return candidate


def _collapse_branches(module: Module):
    """Candidates that replace a conditional terminator with a plain jump
    to one successor, then drop any blocks that become unreachable."""
    for fn_name, fn in module.functions.items():
        for bi, block in enumerate(fn.blocks):
            term = block.terminator
            if term is None or not term.is_cond_branch:
                continue
            for successor in (term.label, block.fallthrough):
                if successor is None:
                    continue
                candidate = copy.deepcopy(module)
                cfn = candidate.functions[fn_name]
                cblock = cfn.blocks[bi]
                cblock.instrs[-1] = Instr(Opcode.JMP, label=successor)
                cblock.fallthrough = None
                try:
                    cfn.remove_unreachable_blocks()
                except Exception:  # noqa: BLE001
                    continue
                yield candidate


def _drop_functions(module: Module):
    called = set()
    for fn in module.functions.values():
        for _block, instr in fn.iter_instrs():
            if instr.op is Opcode.CALL and instr.label:
                called.add(instr.label)
    for name in module.functions:
        if name != "main" and name not in called:
            candidate = copy.deepcopy(module)
            del candidate.functions[name]
            yield candidate


def shrink_module(module: Module, predicate: Predicate,
                  max_rounds: int = 40) -> Module:
    """Minimize an IR *module* while *predicate* keeps returning True."""
    current = module
    for _round in range(max_rounds):
        changed = False
        for candidate in _drop_functions(current):
            if _holds(predicate, candidate):
                current = candidate
                changed = True
                break
        for candidate in _collapse_branches(current):
            if _holds(predicate, candidate):
                current = candidate
                changed = True
                break
        # Instruction deletion: first deletable site wins, then rescan.
        deleted = True
        while deleted:
            deleted = False
            for fn_name, bi, ii in _module_sites(current):
                candidate = _delete_ir_instr(current, fn_name, bi, ii)
                if candidate is not None and _holds(predicate, candidate):
                    current = candidate
                    changed = deleted = True
                    break
        if not changed:
            break
    return current
