"""Targeted mutations over generated machine programs.

Each mutation produces a *new* :class:`MachineProgram` (instructions are
copied, never edited in place) plus a record of what changed, so the
oracles can decide which guarantees apply: every mutant must preserve
engine parity, and the ``nop_connect`` mutation on a load-bearing
connect-use must either be neutral or surface a static-checker finding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.isa.instruction import Instr
from repro.isa.opcodes import CONNECT_OPS, Opcode
from repro.isa.registers import Imm, RClass
from repro.sim.program import MachineProgram

MUTATIONS = ("nop_connect", "swap_operands", "flip_hint", "perturb_imm")


@dataclass
class MutationResult:
    program: MachineProgram
    kind: str
    index: int
    #: True for a ``nop_connect`` hitting a load-bearing connect-use — the
    #: checker-completeness oracle applies to exactly these mutants.
    targeted: bool = False


def _rebuild(program: MachineProgram, index: int,
             replacement: Instr) -> MachineProgram:
    instrs = [i.copy() for i in program.instrs]
    instrs[index] = replacement
    return MachineProgram(
        instrs=instrs,
        targets=list(program.targets),
        initial_memory=dict(program.initial_memory),
        entry=program.entry,
        initial_sp=program.initial_sp,
        trap_handlers=dict(program.trap_handlers),
        name=f"{program.name}-mut",
        suppressions=dict(program.suppressions),
    )


def _nop_connect(rng: random.Random, program: MachineProgram,
                 load_bearing: list[int]) -> MutationResult | None:
    sites = [i for i, ins in enumerate(program.instrs)
             if ins.op in CONNECT_OPS]
    if not sites:
        return None
    bearing = [i for i in load_bearing if i in sites]
    if bearing and rng.random() < 0.7:
        index = rng.choice(bearing)
    else:
        index = rng.choice(sites)
    return MutationResult(_rebuild(program, index, Instr(Opcode.NOP)),
                          "nop_connect", index, targeted=index in bearing)


def _swap_operands(rng: random.Random, program: MachineProgram,
                   _load_bearing: list[int]) -> MutationResult | None:
    def swappable(ins: Instr) -> bool:
        if len(ins.srcs) != 2:
            return False
        classes = {RClass.INT if isinstance(s, Imm) else s.cls
                   for s in ins.srcs}
        return len(classes) == 1

    sites = [i for i, ins in enumerate(program.instrs) if swappable(ins)]
    if not sites:
        return None
    index = rng.choice(sites)
    ins = program.instrs[index].copy()
    ins.srcs = (ins.srcs[1], ins.srcs[0])
    return MutationResult(_rebuild(program, index, ins),
                          "swap_operands", index)


def _flip_hint(rng: random.Random, program: MachineProgram,
               _load_bearing: list[int]) -> MutationResult | None:
    sites = [i for i, ins in enumerate(program.instrs)
             if ins.is_cond_branch]
    if not sites:
        return None
    index = rng.choice(sites)
    ins = program.instrs[index].copy()
    ins.hint_taken = {None: True, True: False, False: None}[ins.hint_taken]
    return MutationResult(_rebuild(program, index, ins), "flip_hint", index)


def _perturb_imm(rng: random.Random, program: MachineProgram,
                 _load_bearing: list[int]) -> MutationResult | None:
    sites = [i for i, ins in enumerate(program.instrs)
             if ins.op in (Opcode.LI, Opcode.LOAD, Opcode.STORE)]
    if not sites:
        return None
    index = rng.choice(sites)
    ins = program.instrs[index].copy()
    delta = rng.choice((-7, -1, 1, 13, 1 << 40))
    if ins.op is Opcode.LI:
        ins.imm = ins.imm + delta
    else:
        # Keep memory offsets non-negative so stores stay near the probe
        # region instead of wrapping below address zero.
        ins.imm = max(0, ins.imm + delta)
    return MutationResult(_rebuild(program, index, ins), "perturb_imm", index)


_MUTATORS = {
    "nop_connect": _nop_connect,
    "swap_operands": _swap_operands,
    "flip_hint": _flip_hint,
    "perturb_imm": _perturb_imm,
}


def mutate_program(rng: random.Random, program: MachineProgram,
                   load_bearing: list[int] | None = None,
                   kind: str | None = None) -> MutationResult | None:
    """Apply one random (or the requested) mutation; ``None`` when no site
    for any mutation exists in the program."""
    load_bearing = load_bearing or []
    kinds = [kind] if kind else list(MUTATIONS)
    rng.shuffle(kinds)
    for name in kinds:
        result = _MUTATORS[name](rng, program, load_bearing)
        if result is not None:
            return result
    return None
