"""The fuzzing loop: generate, oracle-check, mutate, shrink, report.

One *iteration* is either

* an **asm** iteration — one generated :class:`MachineProgram` checked for
  engine parity on the full model × width matrix, checker soundness on the
  (width, model) diagonal, plus a handful of mutants (parity again, and
  checker completeness for targeted ``nop_connect`` mutants and a
  load-latency perturbation config), or
* an **ir** iteration — one generated module checked for interpreter
  parity and compile determinism, then compiled for each fuzz model and
  the compiled output pushed through the machine-level oracles.

Before any new programs are generated the committed corpus is replayed:
every past reproducer must still pass its oracle, and every crash-corpus
file must still raise a diagnostic :class:`AsmError`.

Any oracle violation is minimized with :mod:`repro.fuzz.shrink` (when a
single-artifact predicate exists for it) and recorded as a
:class:`Divergence` carrying the reproducer text.
"""

from __future__ import annotations

import dataclasses
import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro.compiler import CompileOptions, compile_module
from repro.fuzz.corpus import (
    default_corpus_root,
    iter_cases,
    module_from_json,
    module_to_json,
    program_to_text,
)
from repro.fuzz.gen_asm import AsmGenOptions, gen_machine_program
from repro.fuzz.gen_ir import IRGenOptions, gen_module
from repro.fuzz.mutate import mutate_program
from repro.fuzz.oracles import (
    FUZZ_MODELS,
    FUZZ_WIDTHS,
    Divergence,
    batched_parity,
    checker_soundness,
    compile_determinism,
    fuzz_configs,
    interp_parity,
    mutation_surfaced,
    opt_parity,
    resume_parity,
    sim_parity,
)
from repro.fuzz.shrink import shrink_machine, shrink_module
from repro.isa.asmparse import AsmError, parse_program
from repro.isa.registers import RClass
from repro.sim import paper_machine

#: Seeds for derived iterations are spread out so asm seed k, ir seed k and
#: mutation seed k never collide with the raw user seed space.
_SEED_STRIDE = 1 << 20


@dataclass
class FuzzOptions:
    seed: int = 0
    budget: int = 200
    level: str = "all"  # "asm" | "ir" | "all"
    jobs: int = 1
    #: Corpus root to replay (``None`` = auto-detect the repo's corpus/).
    corpus: Path | None = None
    replay_corpus: bool = True
    shrink: bool = True
    mutants_per_program: int = 2
    asm_opts: AsmGenOptions = field(default_factory=AsmGenOptions)
    ir_opts: IRGenOptions = field(default_factory=IRGenOptions)


@dataclass
class FuzzReport:
    options: FuzzOptions
    counters: dict = field(default_factory=dict)
    divergences: list[Divergence] = field(default_factory=list)
    elapsed_sec: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.divergences

    def bump(self, key: str, n: int = 1) -> None:
        self.counters[key] = self.counters.get(key, 0) + n

    def merge(self, counters: dict, divergences: list[Divergence]) -> None:
        for key, value in counters.items():
            self.bump(key, value)
        self.divergences.extend(divergences)

    def to_dict(self) -> dict:
        return {
            "seed": self.options.seed,
            "budget": self.options.budget,
            "level": self.options.level,
            "jobs": self.options.jobs,
            "clean": self.clean,
            "counters": dict(sorted(self.counters.items())),
            "divergences": [d.to_dict() for d in self.divergences],
            "elapsed_sec": round(self.elapsed_sec, 3),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"


def _diagonal_configs(configs):
    """One config per fuzz model, at a rotating issue width: the subset the
    expensive per-program oracles (checker soundness, mutants) run on."""
    count = len(FUZZ_MODELS)
    return [configs[(i * len(FUZZ_WIDTHS) + i) % len(configs)]
            for i in range(count)]


def _config_tag(config) -> str:
    return (f"w{config.issue_width}-{config.rc_model.name.lower()}"
            f"-cl{config.latency.connect}")


def _perturbed_config():
    """The 'perturb latencies' point: same machine, load latency 4."""
    cfg = paper_machine(issue_width=2, load_latency=4, int_core=16,
                       fp_core=16, rc_class=RClass.INT,
                       rc_model=FUZZ_MODELS[1])
    return dataclasses.replace(cfg, max_cycles=1_000_000)


class _Session:
    """Single-process fuzzing over a list of iteration seeds."""

    def __init__(self, opts: FuzzOptions) -> None:
        self.opts = opts
        self.report = FuzzReport(options=opts)

    # -- divergence plumbing --------------------------------------------------

    def _record(self, div: Divergence) -> None:
        self.report.divergences.append(div)
        self.report.bump("divergences")

    def _shrunk_asm(self, program, predicate) -> str:
        if not self.opts.shrink:
            return program_to_text(program)
        return program_to_text(shrink_machine(program, predicate))

    def _shrunk_ir(self, module, predicate) -> str:
        if not self.opts.shrink:
            return module_to_json(module)
        return module_to_json(shrink_module(module, predicate))

    # -- asm level ------------------------------------------------------------

    def asm_iteration(self, seed: int) -> None:
        self.report.bump("asm_programs")
        gen = gen_machine_program(seed, self.opts.asm_opts)
        program = gen.program
        configs = fuzz_configs(gen.has_connects)
        diagonal = _diagonal_configs(configs)
        for config in configs:
            self._check_asm_parity(program, config, seed)
        for config in diagonal:
            self._check_soundness(program, config, seed)
        self._run_mutants(gen, diagonal, seed)
        self._check_asm_parity(program, _perturbed_config(), seed,
                               tag="load-latency=4")
        self._check_resume(program, diagonal[seed % len(diagonal)], seed)
        self._check_batched(program, seed)
        self._check_opt_parity(program, seed)

    def _check_opt_parity(self, program, seed) -> None:
        self.report.bump("opt_runs")
        problem = opt_parity(program)
        if problem is None:
            return
        predicate = lambda p: opt_parity(p) is not None  # noqa: E731
        self._record(Divergence(
            oracle="opt-parity", detail=problem, level="asm", seed=seed,
            config="gang-of-9",
            reproducer=self._shrunk_asm(program, predicate)))

    def _check_batched(self, program, seed) -> None:
        self.report.bump("gang_runs")
        problem = batched_parity(program)
        if problem is None:
            return
        predicate = lambda p: batched_parity(p) is not None  # noqa: E731
        self._record(Divergence(
            oracle="batched-parity", detail=problem, level="asm", seed=seed,
            config="gang-of-9",
            reproducer=self._shrunk_asm(program, predicate)))

    def _check_resume(self, program, config, seed) -> None:
        self.report.bump("resume_runs")
        problem = resume_parity(program, config)
        if problem is None:
            return
        predicate = lambda p: resume_parity(p, config) is not None  # noqa: E731
        self._record(Divergence(
            oracle="resume-parity", detail=problem, level="asm", seed=seed,
            config=_config_tag(config),
            reproducer=self._shrunk_asm(program, predicate)))

    def _check_asm_parity(self, program, config, seed, *,
                          mutation: str = "", tag: str = "") -> bool:
        self.report.bump("sim_runs")
        problem, used_fast = sim_parity(program, config)
        self.report.bump("fastpath_runs" if used_fast else "fallback_runs")
        if problem is None:
            return True
        predicate = lambda p: sim_parity(p, config)[0] is not None  # noqa: E731
        self._record(Divergence(
            oracle="sim-parity", detail=problem, level="asm", seed=seed,
            config=tag or _config_tag(config), mutation=mutation,
            reproducer=self._shrunk_asm(program, predicate)))
        return False

    def _check_soundness(self, program, config, seed, *,
                         mutation: str = "") -> None:
        self.report.bump("soundness_runs")
        problem = checker_soundness(program, config)
        if problem is None:
            return
        predicate = lambda p: checker_soundness(p, config) is not None  # noqa: E731
        self._record(Divergence(
            oracle="checker-soundness", detail=problem, level="asm",
            seed=seed, config=_config_tag(config), mutation=mutation,
            reproducer=self._shrunk_asm(program, predicate)))

    def _run_mutants(self, gen, diagonal, seed: int) -> None:
        rng = Random(seed + 7 * _SEED_STRIDE)
        for k in range(self.opts.mutants_per_program):
            result = mutate_program(rng, gen.program,
                                    load_bearing=gen.load_bearing_connects)
            if result is None:
                return
            self.report.bump("mutants")
            config = diagonal[k % len(diagonal)]
            mutation = f"{result.kind}@{result.index}"
            ok = self._check_asm_parity(result.program, config, seed,
                                        mutation=mutation)
            self._check_soundness(result.program, config, seed,
                                  mutation=mutation)
            if result.targeted and ok:
                self._check_completeness(gen.program, result, config, seed)

    def _check_completeness(self, original, result, config, seed) -> None:
        self.report.bump("completeness_runs")
        problem = mutation_surfaced(original, result.program, config)
        if problem is None:
            return
        self._record(Divergence(
            oracle="checker-completeness", detail=problem, level="asm",
            seed=seed, config=_config_tag(config),
            mutation=f"{result.kind}@{result.index}",
            reproducer=program_to_text(result.program)))

    # -- ir level -------------------------------------------------------------

    def ir_iteration(self, seed: int) -> None:
        self.report.bump("ir_modules")
        module = gen_module(seed, self.opts.ir_opts)
        self._check_interp_parity(module, seed)
        width = FUZZ_WIDTHS[seed % len(FUZZ_WIDTHS)]
        for model in FUZZ_MODELS:
            cfg = fuzz_configs(widths=(width,), models=(model,))[0]
            self._compile_and_check(module, cfg, seed)
        det_cfg = fuzz_configs(widths=(width,), models=(FUZZ_MODELS[1],))[0]
        self._check_determinism(module, det_cfg, seed)

    def _check_interp_parity(self, module, seed) -> None:
        self.report.bump("interp_runs")
        problem, used_fast = interp_parity(module)
        self.report.bump("interp_fastpath" if used_fast
                         else "interp_fallback")
        if problem is None:
            return
        predicate = lambda m: interp_parity(m)[0] is not None  # noqa: E731
        self._record(Divergence(
            oracle="interp-parity", detail=problem, level="ir", seed=seed,
            reproducer=self._shrunk_ir(module, predicate)))

    def _compile_and_check(self, module, config, seed) -> None:
        self.report.bump("compiles")
        try:
            out = compile_module(module, config,
                                 options=CompileOptions(jobs=1))
        except Exception as exc:  # noqa: BLE001 - compiler crash is a finding
            def predicate(m, config=config):
                try:
                    compile_module(m, config, options=CompileOptions(jobs=1))
                except Exception:  # noqa: BLE001
                    return True
                return False

            self._record(Divergence(
                oracle="compile-crash",
                detail=f"{type(exc).__name__}: {exc}", level="ir",
                seed=seed, config=_config_tag(config),
                reproducer=self._shrunk_ir(module, predicate)))
            return
        self.report.bump("sim_runs")
        problem, used_fast = sim_parity(out.program, config)
        self.report.bump("fastpath_runs" if used_fast else "fallback_runs")
        if problem is not None:
            def predicate(m, config=config):
                compiled = compile_module(m, config,
                                          options=CompileOptions(jobs=1))
                return sim_parity(compiled.program, config)[0] is not None

            self._record(Divergence(
                oracle="sim-parity", detail=problem, level="ir", seed=seed,
                config=_config_tag(config),
                reproducer=self._shrunk_ir(module, predicate)))
        self.report.bump("soundness_runs")
        problem = checker_soundness(out.program, config)
        if problem is not None:
            def predicate(m, config=config):
                compiled = compile_module(m, config,
                                          options=CompileOptions(jobs=1))
                return checker_soundness(compiled.program,
                                         config) is not None

            self._record(Divergence(
                oracle="checker-soundness", detail=problem, level="ir",
                seed=seed, config=_config_tag(config),
                reproducer=self._shrunk_ir(module, predicate)))

    def _check_determinism(self, module, config, seed) -> None:
        self.report.bump("determinism_runs")
        problem = compile_determinism(module, config)
        if problem is None:
            return
        predicate = lambda m: compile_determinism(m, config) is not None  # noqa: E731
        self._record(Divergence(
            oracle="compile-determinism", detail=problem, level="ir",
            seed=seed, config=_config_tag(config),
            reproducer=self._shrunk_ir(module, predicate)))

    # -- corpus replay --------------------------------------------------------

    def replay(self, root: Path) -> None:
        for case in iter_cases(root):
            self.report.bump("corpus_cases")
            if case.kind == "crash":
                self._replay_crash(case)
            elif case.kind == "asm":
                self._replay_asm(case)
            else:
                self._replay_ir(case)

    def _replay_crash(self, case) -> None:
        try:
            parse_program(case.text)
        except AsmError:
            return  # diagnostic error: exactly what the corpus demands
        except Exception as exc:  # noqa: BLE001
            self._record(Divergence(
                oracle="parser-crash",
                detail=(f"crash corpus case raised "
                        f"{type(exc).__name__}: {exc}"),
                level="asm", case_name=case.name, reproducer=case.text))
        else:
            self._record(Divergence(
                oracle="parser-crash",
                detail="crash corpus case parsed without error",
                level="asm", case_name=case.name, reproducer=case.text))

    def _replay_asm(self, case) -> None:
        try:
            program = parse_program(case.text)
        except Exception as exc:  # noqa: BLE001
            self._record(Divergence(
                oracle="corpus-replay",
                detail=f"failed to parse: {type(exc).__name__}: {exc}",
                level="asm", case_name=case.name, reproducer=case.text))
            return
        configs = _diagonal_configs(fuzz_configs())
        for config in configs:
            self.report.bump("sim_runs")
            problem, used_fast = sim_parity(program, config)
            self.report.bump("fastpath_runs" if used_fast
                             else "fallback_runs")
            if problem is not None:
                self._record(Divergence(
                    oracle="sim-parity", detail=problem, level="asm",
                    case_name=case.name, config=_config_tag(config),
                    reproducer=case.text))
            problem = checker_soundness(program, config)
            if problem is not None:
                self._record(Divergence(
                    oracle="checker-soundness", detail=problem,
                    level="asm", case_name=case.name,
                    config=_config_tag(config), reproducer=case.text))
            problem = resume_parity(program, config)
            if problem is not None:
                self._record(Divergence(
                    oracle="resume-parity", detail=problem, level="asm",
                    case_name=case.name, config=_config_tag(config),
                    reproducer=case.text))
        self.report.bump("gang_runs")
        problem = batched_parity(program)
        if problem is not None:
            self._record(Divergence(
                oracle="batched-parity", detail=problem, level="asm",
                case_name=case.name, config="gang-of-9",
                reproducer=case.text))
        self.report.bump("opt_runs")
        problem = opt_parity(program)
        if problem is not None:
            self._record(Divergence(
                oracle="opt-parity", detail=problem, level="asm",
                case_name=case.name, config="gang-of-9",
                reproducer=case.text))

    def _replay_ir(self, case) -> None:
        try:
            module = module_from_json(case.text)
        except Exception as exc:  # noqa: BLE001
            self._record(Divergence(
                oracle="corpus-replay",
                detail=f"failed to load: {type(exc).__name__}: {exc}",
                level="ir", case_name=case.name))
            return
        problem, _ = interp_parity(module)
        self.report.bump("interp_runs")
        if problem is not None:
            self._record(Divergence(
                oracle="interp-parity", detail=problem, level="ir",
                case_name=case.name, reproducer=case.text))
        config = fuzz_configs(widths=(2,), models=(FUZZ_MODELS[1],))[0]
        self._compile_and_check(module, config, case.name and 0)

    # -- driving --------------------------------------------------------------

    def run_seeds(self, asm_seeds: list[int], ir_seeds: list[int]) -> None:
        for seed in asm_seeds:
            self.report.bump("iterations")
            self.asm_iteration(seed)
        for seed in ir_seeds:
            self.report.bump("iterations")
            self.ir_iteration(seed)


def _split_budget(opts: FuzzOptions) -> tuple[list[int], list[int]]:
    base = opts.seed * _SEED_STRIDE
    if opts.level == "asm":
        return [base + k for k in range(opts.budget)], []
    if opts.level == "ir":
        return [], [base + k for k in range(opts.budget)]
    half = opts.budget // 2
    return ([base + k for k in range(opts.budget - half)],
            [base + k for k in range(half)])


def _chunk_worker(payload) -> tuple[dict, list[Divergence]]:
    """Module-level worker (must be picklable for ProcessPoolExecutor)."""
    opts_fields, asm_seeds, ir_seeds = payload
    opts = FuzzOptions(**opts_fields)
    session = _Session(opts)
    session.run_seeds(asm_seeds, ir_seeds)
    return session.report.counters, session.report.divergences


def run_fuzz(opts: FuzzOptions) -> FuzzReport:
    """Run the whole harness: corpus replay, then *budget* fresh iterations
    split across the requested levels, fanned out over *jobs* processes."""
    started = time.monotonic()
    report = FuzzReport(options=opts)
    root = opts.corpus if opts.corpus is not None else default_corpus_root()
    if opts.replay_corpus and root is not None:
        session = _Session(opts)
        session.replay(root)
        report.merge(session.report.counters, session.report.divergences)
    asm_seeds, ir_seeds = _split_budget(opts)
    jobs = max(1, opts.jobs)
    if jobs == 1 or len(asm_seeds) + len(ir_seeds) <= 1:
        session = _Session(opts)
        session.run_seeds(asm_seeds, ir_seeds)
        report.merge(session.report.counters, session.report.divergences)
    else:
        opts_fields = {
            "seed": opts.seed, "budget": opts.budget, "level": opts.level,
            "jobs": 1, "replay_corpus": False, "shrink": opts.shrink,
            "mutants_per_program": opts.mutants_per_program,
            "asm_opts": opts.asm_opts, "ir_opts": opts.ir_opts,
        }
        payloads = [(opts_fields, asm_seeds[w::jobs], ir_seeds[w::jobs])
                    for w in range(jobs)]
        payloads = [p for p in payloads if p[1] or p[2]]
        with ProcessPoolExecutor(max_workers=len(payloads)) as pool:
            for counters, divergences in pool.map(_chunk_worker, payloads):
                report.merge(counters, divergences)
    report.elapsed_sec = time.monotonic() - started
    return report
