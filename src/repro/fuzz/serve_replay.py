"""Replay the fuzz oracles against a running ``repro serve`` instance.

``repro fuzz --serve <url>`` drives the same seeded program generator as
the local harness, but executes each parity run as a *remote job*: the
program is serialized to assembly text, submitted once per engine with
the engine pinned explicitly (so the two submissions cannot coalesce
onto one artifact), and the engine-parity oracle compares the job
results — cycles, instruction counts, and fault classification must
agree between the fast and reference engines end-to-end through the
wire format, scheduler, and worker pool.

This doubles as an integration fuzz of the service itself: every
generated program exercises payload validation, the artifact
fingerprint, and the worker's error classification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.fuzz.corpus import program_to_text
from repro.fuzz.gen_asm import AsmGenOptions, gen_machine_program
from repro.fuzz.oracles import Divergence, fuzz_configs
from repro.fuzz.runner import _config_tag, _diagonal_configs
from repro.serve.client import JobFailed, ServeClient
from repro.serve.wire import machine_to_payload

ENGINES = ("fast", "reference")


@dataclass
class ServeReplayReport:
    """Outcome of one remote-replay session."""

    url: str
    seeds: int = 0
    jobs: int = 0
    artifact_hits: int = 0
    elapsed_sec: float = 0.0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "seeds": self.seeds,
            "jobs": self.jobs,
            "artifact_hits": self.artifact_hits,
            "elapsed_sec": round(self.elapsed_sec, 3),
            "clean": self.clean,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def _outcome(client: ServeClient, payload: dict) -> tuple:
    """Submit one simulate job; returns a comparable outcome tuple.

    Successful runs compare on (cycles, instructions); failed runs on
    the structured error type plus message, mirroring the local parity
    oracle's exception-name comparison.
    """
    try:
        result = client.run("simulate", payload)
    except JobFailed as exc:
        error = exc.job.get("error") or {}
        return ("error", error.get("type"), error.get("message"))
    return ("ok", result["cycles"], result["instructions"])


def run_serve_replay(url: str, budget: int = 10, seed: int = 0,
                     progress=None) -> ServeReplayReport:
    """Fuzz *budget* seeded programs through the service at *url*."""
    started = time.perf_counter()
    report = ServeReplayReport(url=url)
    client = ServeClient(url, client_id="fuzz-replay")
    for index in range(budget):
        case_seed = seed + index
        gen = gen_machine_program(case_seed, AsmGenOptions())
        text = program_to_text(gen.program, header=f"fuzz seed {case_seed}")
        configs = _diagonal_configs(fuzz_configs(gen.has_connects))
        report.seeds += 1
        for config in configs:
            machine = machine_to_payload(config)
            outcomes = {}
            for engine in ENGINES:
                payload = {"asm": text, "machine": machine,
                           "engine": engine}
                outcomes[engine] = _outcome(client, payload)
                report.jobs += 1
            fast, ref = outcomes["fast"], outcomes["reference"]
            if fast != ref:
                report.divergences.append(Divergence(
                    oracle="serve-parity",
                    detail=(f"seed {case_seed} on {_config_tag(config)}: "
                            f"fast={fast} reference={ref}"),
                    level="asm", seed=case_seed))
        if progress is not None:
            progress(index + 1, budget)
    stats = client.stats()
    report.artifact_hits = stats.get("jobs", {}).get("artifact_hits", 0)
    report.elapsed_sec = time.perf_counter() - started
    return report
