"""Register Connection architectural support: mapping table, PSW, contexts."""

from repro.rc.abstract import AbstractMap
from repro.rc.context import (
    ClassContext,
    ProcessContext,
    restore_context,
    save_context,
)
from repro.rc.mapping_table import MappingTable
from repro.rc.models import DEFAULT_MODEL, RCModel
from repro.rc.psw import MAP_ENABLE_BIT, PSW, RC_MODE_BIT

__all__ = [
    "AbstractMap",
    "ClassContext",
    "DEFAULT_MODEL",
    "MAP_ENABLE_BIT",
    "MappingTable",
    "PSW",
    "ProcessContext",
    "RCModel",
    "RC_MODE_BIT",
    "restore_context",
    "save_context",
]
