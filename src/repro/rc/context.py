"""Context-switch support (paper section 4.2).

Programs compiled for the extended architecture need core registers, extended
registers, *and* the connection information preserved across a context
switch.  Programs compiled for the original architecture only need the core
registers, "although saving and restoring extended registers and connection
information would still result in correct operation."  The ``rc_mode`` PSW
flag selects between the two process-context formats, which is exactly the
optimization the paper describes.

The functions here operate on plain register-file lists and
:class:`~repro.rc.mapping_table.MappingTable` objects, so they are usable
both from tests and from the simulator's OS-model helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.rc.mapping_table import MappingTable
from repro.rc.psw import PSW


@dataclass
class ClassContext:
    """Saved state for one register class."""

    core: list = field(default_factory=list)
    extended: list = field(default_factory=list)
    read_map: list[int] | None = None
    write_map: list[int] | None = None


@dataclass
class ProcessContext:
    """A saved process context in either the legacy or the extended format."""

    psw_value: int
    int_state: ClassContext
    fp_state: ClassContext

    @property
    def is_extended_format(self) -> bool:
        return bool(PSW.unpack(self.psw_value).rc_mode)

    def word_count(self) -> int:
        """Size of this context frame in words (PSW + registers + maps)."""
        words = 1
        for state in (self.int_state, self.fp_state):
            words += len(state.core) + len(state.extended)
            if state.read_map is not None:
                words += len(state.read_map) + len(state.write_map)
        return words


def _save_class(regs: list, table: MappingTable | None,
                extended_format: bool) -> ClassContext:
    if table is None:
        return ClassContext(core=list(regs))
    core = list(regs[: table.entries])
    if not extended_format:
        return ClassContext(core=core)
    read_map, write_map = table.snapshot()
    return ClassContext(
        core=core,
        extended=list(regs[table.entries:]),
        read_map=read_map,
        write_map=write_map,
    )


def save_context(psw: PSW, int_regs: list, fp_regs: list,
                 int_table: MappingTable | None,
                 fp_table: MappingTable | None) -> ProcessContext:
    """Save a process context, choosing the format from ``psw.rc_mode``."""
    extended = psw.rc_mode
    return ProcessContext(
        psw_value=psw.pack(),
        int_state=_save_class(int_regs, int_table, extended),
        fp_state=_save_class(fp_regs, fp_table, extended),
    )


def _restore_class(state: ClassContext, regs: list,
                   table: MappingTable | None) -> None:
    if len(state.core) > len(regs):
        raise SimulationError("context core section larger than register file")
    regs[: len(state.core)] = state.core
    if table is None:
        return
    if state.read_map is not None:
        regs[table.entries: table.entries + len(state.extended)] = state.extended
        table.restore((state.read_map, state.write_map))
    else:
        # Legacy-format restore: the process never touched the map, but the
        # architecture guarantees home mapping after a switch regardless.
        table.reset_home()


def restore_context(ctx: ProcessContext, psw: PSW, int_regs: list,
                    fp_regs: list, int_table: MappingTable | None,
                    fp_table: MappingTable | None) -> None:
    """Restore a previously saved process context in place."""
    restored = PSW.unpack(ctx.psw_value)
    psw.map_enable = restored.map_enable
    psw.rc_mode = restored.rc_mode
    _restore_class(ctx.int_state, int_regs, int_table)
    _restore_class(ctx.fp_state, fp_regs, fp_table)
