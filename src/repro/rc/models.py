"""The four automatic register connection models (paper section 2.3).

After an instruction writes a register through map index ``Rix``, the
hardware may automatically adjust the mapping table entry of ``Rix``:

1. **NO_RESET** — the map is unchanged; only explicit connects modify it.
2. **WRITE_RESET** — the write map is reset to the home location
   (``Rix_write := Rpx``) so subsequent writes return to the core register,
   but a connect-use is still needed to read the written value.
3. **WRITE_RESET_READ_UPDATE** — additionally the read map is replaced by
   the previous write map (``Rix_read := Rix_write; Rix_write := Rpx``),
   so the written value is readable without an extra connect-use.  This is
   the model the paper implements and simulates.
4. **READ_WRITE_RESET** — both maps reset to the home location
   (``Rix_read := Rpx; Rix_write := Rpx``), emphasizing free use of the core
   section.

The paper adds: "Other strategies for automatic register connection for the
source registers are possible; however, they are not considered in this
paper."  We implement one such strategy as model 5:

5. **READ_RESET** (ours) — a *read* through ``Rix`` resets its read map to
   the home location (one-shot read connections), combined with model 2's
   write reset.  Every access to an extended register then needs its own
   connect, which quantifies how much the paper's sticky read connections
   are worth.
"""

from __future__ import annotations

import enum


class RCModel(enum.Enum):
    NO_RESET = 1
    WRITE_RESET = 2
    WRITE_RESET_READ_UPDATE = 3
    READ_WRITE_RESET = 4
    READ_RESET = 5

    @property
    def resets_write_map(self) -> bool:
        return self is not RCModel.NO_RESET

    @property
    def updates_read_map(self) -> bool:
        """Whether a write makes the written value readable through its index."""
        return self in (RCModel.WRITE_RESET_READ_UPDATE,
                        RCModel.READ_WRITE_RESET)

    @property
    def resets_read_map_on_read(self) -> bool:
        """Whether a read through an index resets its read map (model 5)."""
        return self is RCModel.READ_RESET


#: The model evaluated in the paper's experiments.
DEFAULT_MODEL = RCModel.WRITE_RESET_READ_UPDATE
