"""Processor status word bits for the RC extension (paper sections 4.2-4.3).

Two flags are added to the PSW:

* ``map_enable`` — when clear, register accesses bypass the mapping table and
  go directly to the core registers.  Traps and interrupts clear this flag on
  entry so time-critical handlers need not save/connect/restore map entries;
  ``rte`` restores the saved PSW, automatically re-enabling the map.
* ``rc_mode`` — marks the running process as compiled for the extended
  architecture.  The context-switch code uses it to choose between the legacy
  (core-only) and extended (core + extended + connection info) context
  formats.
"""

from __future__ import annotations

from dataclasses import dataclass

MAP_ENABLE_BIT = 1 << 0
RC_MODE_BIT = 1 << 1


@dataclass
class PSW:
    """The processor status word (only RC-relevant bits are modeled)."""

    map_enable: bool = True
    rc_mode: bool = True

    def pack(self) -> int:
        """Encode as an integer for ``mfpsw``/``mtpsw`` and context frames."""
        value = 0
        if self.map_enable:
            value |= MAP_ENABLE_BIT
        if self.rc_mode:
            value |= RC_MODE_BIT
        return value

    @classmethod
    def unpack(cls, value: int) -> "PSW":
        return cls(
            map_enable=bool(value & MAP_ENABLE_BIT),
            rc_mode=bool(value & RC_MODE_BIT),
        )

    def copy(self) -> "PSW":
        return PSW(self.map_enable, self.rc_mode)

    @classmethod
    def legacy(cls) -> "PSW":
        """PSW for a program compiled for the original architecture."""
        return cls(map_enable=True, rc_mode=False)
