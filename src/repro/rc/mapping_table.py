"""The register mapping table (paper section 2.1).

Each of the ``m`` addressable register indices has a *read map* and a
*write map* entry naming the physical register to use when the index appears
as a source or destination operand.  The *home location* of index ``i`` is
physical register ``i`` (the core section is the first ``m`` physical
registers), so a table at home behaves exactly like the original
architecture — the basis of upward compatibility (section 4).

The same class is used by the simulator (as the hardware table) and by the
compiler's connect-insertion pass (as an emulation of the hardware table,
section 3), which guarantees the two never disagree about reset semantics.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.rc.models import DEFAULT_MODEL, RCModel


class MappingTable:
    """An ``m``-entry register mapping table with read and write maps."""

    __slots__ = ("entries", "num_physical", "model", "read_map", "write_map")

    def __init__(self, entries: int, num_physical: int,
                 model: RCModel = DEFAULT_MODEL) -> None:
        if num_physical < entries:
            raise SimulationError(
                f"physical file ({num_physical}) smaller than map ({entries})"
            )
        self.entries = entries
        self.num_physical = num_physical
        self.model = model
        self.read_map = list(range(entries))
        self.write_map = list(range(entries))

    # -- lookups -------------------------------------------------------------

    def read_target(self, index: int) -> int:
        """Physical register accessed when *index* is a source operand."""
        return self.read_map[index]

    def write_target(self, index: int) -> int:
        """Physical register accessed when *index* is a destination operand."""
        return self.write_map[index]

    def at_home(self, index: int) -> bool:
        return self.read_map[index] == index and self.write_map[index] == index

    # -- explicit connect instructions (section 2.2) --------------------------

    def _check(self, index: int, phys: int) -> None:
        if not 0 <= index < self.entries:
            raise SimulationError(f"connect index {index} out of range")
        if not 0 <= phys < self.num_physical:
            raise SimulationError(f"connect physical register {phys} out of range")

    def connect_use(self, index: int, phys: int) -> None:
        """Redirect subsequent reads of *index* to physical register *phys*."""
        self._check(index, phys)
        self.read_map[index] = phys

    def connect_def(self, index: int, phys: int) -> None:
        """Redirect subsequent writes of *index* to physical register *phys*."""
        self._check(index, phys)
        self.write_map[index] = phys

    def apply(self, which: str, index: int, phys: int) -> None:
        """Apply one decoded connect update ('read' or 'write')."""
        if which == "read":
            self.connect_use(index, phys)
        else:
            self.connect_def(index, phys)

    # -- automatic connection on register writes (section 2.3) ----------------

    def after_write(self, index: int) -> None:
        """Apply the model's automatic reset after a write through *index*."""
        model = self.model
        if model is RCModel.NO_RESET:
            return
        if model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
            self.write_map[index] = index
        elif model is RCModel.WRITE_RESET_READ_UPDATE:
            self.read_map[index] = self.write_map[index]
            self.write_map[index] = index
        else:  # READ_WRITE_RESET
            self.read_map[index] = index
            self.write_map[index] = index

    def after_read(self, index: int) -> None:
        """Apply the model's automatic reset after a read through *index*
        (only model 5, READ_RESET, does anything here)."""
        if self.model.resets_read_map_on_read:
            self.read_map[index] = index

    # -- whole-table operations ------------------------------------------------

    def reset_home(self) -> None:
        """Reset every entry to its home location.

        Performed at power-up and by ``jsr``/``rts`` (section 4.1) to
        guarantee upward compatibility across subroutine boundaries.
        """
        self.read_map[:] = range(self.entries)
        self.write_map[:] = range(self.entries)

    def snapshot(self) -> tuple[list[int], list[int]]:
        """Capture the connection information for a context switch."""
        return list(self.read_map), list(self.write_map)

    def restore(self, snapshot: tuple[list[int], list[int]]) -> None:
        read_map, write_map = snapshot
        if len(read_map) != self.entries or len(write_map) != self.entries:
            raise SimulationError("snapshot size does not match table")
        self.read_map[:] = read_map
        self.write_map[:] = write_map

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        diffs = [
            f"{i}:(r{self.read_map[i]},w{self.write_map[i]})"
            for i in range(self.entries)
            if not self.at_home(i)
        ]
        inner = " ".join(diffs) if diffs else "home"
        return f"<MappingTable {self.entries}/{self.num_physical} {inner}>"
