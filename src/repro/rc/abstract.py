"""Abstract-interpretation domain for the register mapping table.

Mirrors :class:`~repro.rc.mapping_table.MappingTable` over sets: each map
entry abstracts to a *set* of ``(phys, site)`` pairs — every physical
register the entry may name on some path, tagged with the instruction index
of the connect that established it (``None`` for the home location and for
automatic model resets).  The per-model transfer functions (``after_write``,
``after_read``) apply the exact reset semantics of paper section 2.3 to the
abstract entries, and ``join`` is set union over paths.

The site tags exist so the static checker can tell which connect
instructions are ever *used* by a resolved access (dead-connect detection,
rule RC003) without a separate reaching-definitions pass.
"""

from __future__ import annotations

from repro.rc.models import RCModel

#: One abstract map entry: every (phys, connect-site) the entry may hold.
Entry = frozenset[tuple[int, int | None]]


def home(index: int) -> Entry:
    return frozenset({(index, None)})


class AbstractMap:
    """Abstract read/write maps for one register class.

    Entries are stored sparsely: an index absent from the dict is at its
    home location on every path.
    """

    __slots__ = ("entries", "model", "read", "write")

    def __init__(self, entries: int, model: RCModel,
                 read: dict[int, Entry] | None = None,
                 write: dict[int, Entry] | None = None) -> None:
        self.entries = entries
        self.model = model
        self.read: dict[int, Entry] = read if read is not None else {}
        self.write: dict[int, Entry] = write if write is not None else {}

    # -- lookups -------------------------------------------------------------

    def read_entry(self, index: int) -> Entry:
        return self.read.get(index, home(index))

    def write_entry(self, index: int) -> Entry:
        return self.write.get(index, home(index))

    def _set(self, which: dict[int, Entry], index: int, value: Entry) -> None:
        if value == home(index):
            which.pop(index, None)
        else:
            which[index] = value

    # -- connect instructions ------------------------------------------------

    def connect(self, which: str, index: int, phys: int,
                site: int | None) -> None:
        """Apply one decoded connect update ('read' or 'write')."""
        target = self.read if which == "read" else self.write
        self._set(target, index, frozenset({(phys, site)}))

    # -- automatic resets (paper section 2.3) --------------------------------

    def after_write(self, index: int) -> None:
        model = self.model
        if model is RCModel.NO_RESET:
            return
        if model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
            self.write.pop(index, None)
        elif model is RCModel.WRITE_RESET_READ_UPDATE:
            self._set(self.read, index, self.write_entry(index))
            self.write.pop(index, None)
        else:  # READ_WRITE_RESET
            self.read.pop(index, None)
            self.write.pop(index, None)

    def after_read(self, index: int) -> None:
        if self.model.resets_read_map_on_read:
            self.read.pop(index, None)

    def reset_home(self) -> None:
        """CALL/RET semantics (section 4.1): every entry back to home."""
        self.read.clear()
        self.write.clear()

    # -- lattice operations --------------------------------------------------

    def copy(self) -> "AbstractMap":
        return AbstractMap(self.entries, self.model,
                           read=dict(self.read), write=dict(self.write))

    def join(self, other: "AbstractMap") -> "AbstractMap":
        """Union each entry's possibilities (may-analysis path merge)."""
        for which, theirs in ((self.read, other.read),
                              (self.write, other.write)):
            for index in set(which) | set(theirs):
                a = which.get(index, home(index))
                b = theirs.get(index, home(index))
                self._set(which, index, a | b)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractMap):
            return NotImplemented
        return (self.entries == other.entries and self.model is other.model
                and self.read == other.read and self.write == other.write)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def show(which: dict[int, Entry]) -> str:
            parts = []
            for i in sorted(which):
                alts = "|".join(f"p{p}" for p, _ in sorted(
                    which[i], key=lambda e: e[0]))
                parts.append(f"{i}->{alts}")
            return " ".join(parts) or "home"

        return f"<AbstractMap r[{show(self.read)}] w[{show(self.write)}]>"
