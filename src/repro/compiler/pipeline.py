"""The compiler driver: IR module -> optimized, allocated machine program.

Stage order (see DESIGN.md):

1. copy the module (compilation never mutates the caller's IR);
2. classical + ILP optimization;
3. re-profile by interpretation (priorities and branch hints must describe
   the *optimized* code; this also re-checks semantic equivalence upstream);
4. call lowering to the stack convention;
5. priority graph-coloring allocation (core / extended / spill) with
   connection-window reservation;
6. spill and extended-register caller-save insertion;
7. prologue/epilogue insertion and frame-offset resolution;
8. connect insertion through the window emulation of the mapping table;
9. profile-driven static branch hints;
10. machine-aware list scheduling;
11. layout and flattening into a :class:`~repro.sim.program.MachineProgram`.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.compiler.alias import annotate_module
from repro.compiler.callconv import (
    check_no_symbolic_offsets,
    insert_prologue_epilogue,
    lower_calls,
)
from repro.compiler.lower import lower_module
from repro.compiler.opt import OptOptions, optimize_module
from repro.compiler.regalloc.allocator import (
    AllocationOptions,
    AllocationResult,
    _SharedCounters,
    allocate_function,
    apply_allocation,
)
from repro.compiler.regalloc.rc_rewrite import check_encodable, insert_connects
from repro.compiler.sched.listsched import schedule_function
from repro.ir.function import Module
from repro.ir.interp import Interpreter, InterpResult, Profile
from repro.isa.registers import RClass, UNLIMITED
from repro.observe.passes import PassMetrics, maybe_measure
from repro.sim.config import MachineConfig
from repro.sim.program import MachineProgram

#: Environment variable selecting the backend worker-process count.
COMPILE_JOBS_ENV = "REPRO_COMPILE_JOBS"


def resolve_compile_jobs(jobs: int | None = None) -> int:
    """Backend worker count: explicit *jobs*, else ``$REPRO_COMPILE_JOBS``,
    else 1 (serial — process startup is not worth it for one function)."""
    if jobs is not None:
        return max(1, jobs)
    raw = os.environ.get(COMPILE_JOBS_ENV, "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return 1


@dataclass
class CompileOptions:
    opt: OptOptions = field(default_factory=OptOptions)
    alloc: AllocationOptions = field(default_factory=AllocationOptions)
    schedule: bool = True
    #: Step limit for the profiling interpretation.
    profile_step_limit: int = 50_000_000
    #: Run the static checker (:mod:`repro.analyze`) on the generated
    #: machine code and fail compilation on any error-severity finding.
    check: bool = False
    #: IR interpreter engine for the profiling stage ("fast"/"reference");
    #: ``None`` defers to ``$REPRO_IR_ENGINE`` (default fast).
    ir_engine: str | None = None
    #: Worker processes for the per-function backend (allocate through
    #: schedule); ``None`` defers to ``$REPRO_COMPILE_JOBS`` (default
    #: serial).  The emitted program is byte-identical for any job count.
    jobs: int | None = None
    #: Run the analysis-driven connect optimizer
    #: (:mod:`repro.analyze.optimize`) on the laid-out machine program:
    #: delete dead connects, eliminate redundant ones, hoist loop-invariant
    #: ones to preheaders.  Architecturally invisible (gated by bit-exact
    #: parity in CI); the report lands in :attr:`CompileOutput.connect_opt`.
    opt_connects: bool = True


@dataclass
class CompileStats:
    """Static code-size accounting (Figure 9's raw material)."""

    total_instructions: int = 0
    program_instructions: int = 0
    spill_instructions: int = 0
    connect_instructions: int = 0
    callsave_instructions: int = 0
    frame_instructions: int = 0
    spilled_vregs: int = 0
    extended_vregs: int = 0
    #: Static connect instructions removed by the connect optimizer.
    connects_removed: int = 0

    @property
    def overhead_instructions(self) -> int:
        """Code added because registers ran out (spill/connect/callsave)."""
        return (self.spill_instructions + self.connect_instructions
                + self.callsave_instructions)

    @property
    def base_instructions(self) -> int:
        return self.total_instructions - self.overhead_instructions

    @property
    def code_size_increase(self) -> float:
        """Fractional code growth due to allocation overhead."""
        base = self.base_instructions
        return self.overhead_instructions / base if base else 0.0

    @property
    def callsave_increase(self) -> float:
        """The Figure 9 'black bar': extended save/restore share of growth."""
        base = self.base_instructions
        return self.callsave_instructions / base if base else 0.0


@dataclass
class CompileOutput:
    program: MachineProgram
    module: Module
    profile: Profile
    stats: CompileStats
    allocations: dict[str, AllocationResult]
    #: The profiling interpretation of the *optimized* module; compiled
    #: output must reproduce exactly these results (FP reassociation makes
    #: them differ from the original module's by rounding only).
    interp: InterpResult | None = None
    #: Per-pass wall time and IR deltas, populated when the caller passed a
    #: :class:`~repro.observe.passes.PassMetrics` to :func:`compile_module`.
    metrics: PassMetrics | None = None
    #: What the connect optimizer did (``None`` when it was disabled).
    #: The object is ``repro.analyze.optimize.ConnectOptReport``.
    connect_opt: object | None = None


def _call_graph_reachability(module: Module) -> dict[str, set[str]]:
    """Map each function to the set of functions reachable from it."""
    from repro.isa.opcodes import Opcode

    edges: dict[str, set[str]] = {name: set() for name in module.functions}
    for name, fn in module.functions.items():
        for _, instr in fn.iter_instrs():
            if instr.op is Opcode.CALL:
                edges[name].add(instr.label)
    reach: dict[str, set[str]] = {}
    for name in module.functions:
        seen: set[str] = set()
        stack = [name]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(edges.get(node, ()))
        reach[name] = seen
    return reach


@dataclass
class _BackendTask:
    """One function's worth of backend work, shipped to a worker process."""

    fn: object
    profile: Profile
    config: MachineConfig
    alloc: AllocationOptions
    #: Pre-reserved :class:`_SharedCounters` start values for the unlimited
    #: baseline (``None`` otherwise).  Computed serially so the numbering is
    #: identical to a serial run regardless of worker scheduling.
    counter_start: dict | None
    #: Call labels whose callees can re-enter this function (unlimited
    #: baseline's recursion-aware save policy); ``None`` = default policy.
    recursive_callees: frozenset | None
    schedule: bool
    is_entry: bool


def _backend_one(task: _BackendTask):
    """Allocate, rewrite, connect, hint, and schedule one function.

    Mirrors the serial stage bodies in :func:`compile_module` exactly; the
    benchmark harness asserts byte-identical output for any job count.
    """
    fn = task.fn
    config = task.config
    shared = _SharedCounters()
    if task.counter_start is not None:
        shared.next = dict(task.counter_start)
    result = allocate_function(fn, task.profile, config.int_spec,
                               config.fp_spec, task.alloc,
                               shared_counters=shared)

    ext_threshold = {RClass.INT: config.int_spec.core,
                     RClass.FP: config.fp_spec.core}
    if task.recursive_callees is not None:
        rec = task.recursive_callees

        def save_policy(label, reg):
            return label in rec
    else:
        save_policy = None
    apply_allocation(fn, result, ext_threshold, save_policy)
    insert_prologue_epilogue(fn, result.frame, result.callee_saves,
                             result.param_homes, is_entry=task.is_entry)
    check_no_symbolic_offsets(fn)

    unlimited = config.int_spec.core >= UNLIMITED
    tracked_indices: dict[RClass, list[int]] = {}
    for cls in (RClass.INT, RClass.FP):
        windows = result.windows.get(cls)
        if windows:
            spec = config.spec_for(cls)
            steal_pool = [c for c in spec.allocatable_core()
                          if c not in set(windows)]
            insert_connects(fn, cls, ext_threshold[cls], windows,
                            config.rc_model, steal_pool=steal_pool)
            tracked_indices[cls] = windows + steal_pool
        if not unlimited:
            check_encodable(fn, cls, ext_threshold[cls])

    for block in fn.blocks:
        term = block.terminator
        if term is not None and term.is_cond_branch:
            term.hint_taken = task.profile.predict_taken(fn.name, block.name)

    if task.schedule:
        schedule_function(fn, config, tracked_indices or None)
    return fn, result


def _counter_starts(module: Module) -> dict[str, dict]:
    """Per-function :class:`_SharedCounters` start values.

    Replays the serial allocation order (module insertion order, one take
    per virtual register, FP registers two wide) without allocating, so
    parallel workers hand out exactly the registers a serial run would.
    """
    counters = _SharedCounters()
    starts: dict[str, dict] = {}
    for name, fn in module.functions.items():
        starts[name] = dict(counters.next)
        for v in fn.vregs():
            counters.next[v.cls] += 1 if v.cls is RClass.INT else 2
    return starts


def compile_module(module: Module, config: MachineConfig,
                   options: CompileOptions | None = None,
                   entry: str = "main",
                   metrics: PassMetrics | None = None) -> CompileOutput:
    """Compile *module* for *config* and return the executable program.

    When *metrics* is given, every pipeline stage is timed and its IR delta
    recorded (see :mod:`repro.observe.passes`); collection never changes the
    generated code.
    """
    options = options or CompileOptions()
    work = copy.deepcopy(module)
    with maybe_measure(metrics, "optimize", work):
        optimize_module(work, options.opt)
    with maybe_measure(metrics, "profile", work):
        interp_result = Interpreter(
            work, step_limit=options.profile_step_limit,
            engine=options.ir_engine,
        ).run(entry)
    profile = interp_result.profile
    with maybe_measure(metrics, "alias", work):
        annotate_module(work)  # memory-region tags for disambiguation

    if options.schedule:
        # Prepass scheduling over *virtual* registers (the IMPACT-style
        # phase order): with no false WAW/WAR dependences the scheduler
        # freely overlaps independent work, which is precisely what
        # "tends to increase the number of variables that are
        # simultaneously live" (paper section 1) — the allocator then
        # sees the scheduled order's higher register pressure.
        with maybe_measure(metrics, "schedule-pre", work):
            for fn in work.functions.values():
                schedule_function(fn, config, None)
    with maybe_measure(metrics, "lower-calls", work):
        for fn in work.functions.values():
            lower_calls(fn)

    shared = _SharedCounters()
    allocations: dict[str, AllocationResult] = {}
    ext_threshold = {
        RClass.INT: config.int_spec.core,
        RClass.FP: config.fp_spec.core,
    }
    stats = CompileStats()
    unlimited = config.int_spec.core >= UNLIMITED
    reach = _call_graph_reachability(work) if unlimited else None

    jobs = resolve_compile_jobs(options.jobs)
    if jobs > 1 and metrics is None and len(work.functions) > 1:
        # Per-function fan-out of the whole backend (allocate through
        # schedule).  Functions are independent once the unlimited
        # baseline's register numbering is pre-reserved; results are
        # stitched back in module order, so the emitted program is
        # byte-identical to a serial run.  Metrics runs stay serial: the
        # per-stage timings are the product there.
        starts = _counter_starts(work) if unlimited else None
        tasks = []
        for fn in work.functions.values():
            rec = (frozenset(label for label, seen in reach.items()
                             if fn.name in seen)
                   if unlimited else None)
            tasks.append(_BackendTask(
                fn=fn, profile=profile, config=config, alloc=options.alloc,
                counter_start=starts[fn.name] if starts else None,
                recursive_callees=rec, schedule=options.schedule,
                is_entry=fn.name == entry,
            ))
        workers = min(jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outputs = list(pool.map(_backend_one, tasks))
        for fn, result in outputs:
            work.functions[fn.name] = fn
            allocations[fn.name] = result
            stats.spilled_vregs += len(result.spilled)
            stats.extended_vregs += sum(
                1 for r in result.assignment.values()
                if r.num >= ext_threshold[r.cls]
            )
        return _finish_compile(module, work, config, options, entry, metrics,
                               profile, interp_result, allocations, stats)

    with maybe_measure(metrics, "allocate", work):
        for fn in work.functions.values():
            result = allocate_function(
                fn, profile, config.int_spec, config.fp_spec,
                options.alloc, shared_counters=shared,
            )
            allocations[fn.name] = result
            stats.spilled_vregs += len(result.spilled)
            stats.extended_vregs += sum(
                1 for r in result.assignment.values()
                if r.num >= ext_threshold[r.cls]
            )

    with maybe_measure(metrics, "spill+frame", work):
        for fn in work.functions.values():
            result = allocations[fn.name]
            if unlimited:
                # Globally unique register ranges make callee clobbering
                # impossible except through recursion: save a live register
                # only when the callee can re-enter this function.
                fname = fn.name

                def save_policy(label, reg, f=fname):
                    return f in reach[label]
            else:
                save_policy = None
            apply_allocation(fn, result, ext_threshold, save_policy)
            insert_prologue_epilogue(fn, result.frame, result.callee_saves,
                                     result.param_homes,
                                     is_entry=fn.name == entry)
            check_no_symbolic_offsets(fn)

    tracked_by_fn: dict[str, dict[RClass, list[int]]] = {}
    with maybe_measure(metrics, "connect-insert", work):
        for fn in work.functions.values():
            result = allocations[fn.name]
            tracked_indices: dict[RClass, list[int]] = {}
            for cls in (RClass.INT, RClass.FP):
                windows = result.windows.get(cls)
                if windows:
                    spec = config.spec_for(cls)
                    steal_pool = [c for c in spec.allocatable_core()
                                  if c not in set(windows)]
                    insert_connects(fn, cls, ext_threshold[cls], windows,
                                    config.rc_model, steal_pool=steal_pool)
                    tracked_indices[cls] = windows + steal_pool
                if not unlimited:
                    check_encodable(fn, cls, ext_threshold[cls])
            tracked_by_fn[fn.name] = tracked_indices

            # Profile-driven static branch hints (paper section 5.2: extra
            # branch opcodes "facilitate static branch prediction").
            for block in fn.blocks:
                term = block.terminator
                if term is not None and term.is_cond_branch:
                    term.hint_taken = profile.predict_taken(fn.name,
                                                            block.name)

    if options.schedule:
        with maybe_measure(metrics, "schedule", work):
            for fn in work.functions.values():
                schedule_function(fn, config,
                                  tracked_by_fn[fn.name] or None)

    return _finish_compile(module, work, config, options, entry, metrics,
                           profile, interp_result, allocations, stats)


def _finish_compile(module: Module, work: Module, config: MachineConfig,
                    options: CompileOptions, entry: str,
                    metrics: PassMetrics | None, profile: Profile,
                    interp_result: InterpResult,
                    allocations: dict[str, AllocationResult],
                    stats: CompileStats) -> CompileOutput:
    """Layout, connect optimization, optional check, and accounting."""
    with maybe_measure(metrics, "layout", work):
        program = lower_module(work, entry=entry, name=module.name)

    connect_opt = None
    if options.opt_connects and config.has_rc:
        # Imported here: repro.analyze consumes machine programs and is not
        # otherwise a compiler dependency.
        from repro.analyze import optimize_connects

        with maybe_measure(metrics, "connect-opt", work):
            result = optimize_connects(program, config)
        program = result.program
        connect_opt = result.report
        stats.connects_removed = connect_opt.removed

    if options.check:
        # Imported here: repro.analyze consumes machine programs and is not
        # otherwise a compiler dependency.
        from repro.analyze import check_program
        from repro.errors import CompileError

        with maybe_measure(metrics, "check", work):
            report = check_program(program, config)
        if report.errors:
            details = "\n".join(f.format() for f in report.errors)
            raise CompileError(
                f"static check failed with {len(report.errors)} error(s):\n"
                f"{details}"
            )

    counts = program.static_counts()
    stats.total_instructions = len(program)
    stats.program_instructions = counts.get(None, 0)
    stats.spill_instructions = counts.get("spill", 0)
    stats.connect_instructions = counts.get("connect", 0)
    stats.callsave_instructions = counts.get("callsave", 0)
    stats.frame_instructions = counts.get("frame", 0)
    return CompileOutput(program=program, module=work, profile=profile,
                         stats=stats, allocations=allocations,
                         interp=interp_result, metrics=metrics,
                         connect_opt=connect_opt)
