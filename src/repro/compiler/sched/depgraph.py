"""Dependence DAG construction for basic-block scheduling.

Resources tracked:

* physical registers (per class),
* memory (with simple base+offset disambiguation: accesses off the same
  unmodified base register at different offsets are independent, and loads
  never conflict with loads),
* register-mapping-table entries of the connection windows — a connect
  writes its target map entry; an instruction reading/writing through a
  window reads that window's read/write map entry, and (per the automatic
  reset model) a write also rewrites its own entry.  These edges are what
  keep connects glued in front of their consumers while still letting the
  scheduler exploit zero-cycle connect latency (a 0-cycle edge permits
  same-cycle issue in program order).

Calls, traps, and PSW manipulation are scheduling barriers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instr
from repro.isa.latency import LatencyModel
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, PhysReg, RClass
from repro.rc.models import RCModel

_BARRIERS = {Opcode.CALL, Opcode.RET, Opcode.TRAP, Opcode.RTE,
             Opcode.MTPSW, Opcode.MFPSW, Opcode.MFMAP, Opcode.HALT}


@dataclass
class DepNode:
    index: int
    instr: Instr
    preds: dict[int, int] = field(default_factory=dict)  # pred -> latency
    succs: dict[int, int] = field(default_factory=dict)

    def add_edge_to(self, succ: "DepNode", latency: int) -> None:
        if succ.index == self.index:
            return
        prev = self.succs.get(succ.index, -1)
        if latency > prev:
            self.succs[succ.index] = latency
            succ.preds[self.index] = latency


class DepGraph:
    """Dependence DAG over one basic block's instructions."""

    def __init__(self, instrs: list[Instr], latency: LatencyModel,
                 rc_model: RCModel,
                 windows: dict[RClass, list[int]] | None = None) -> None:
        self.nodes = [DepNode(i, ins) for i, ins in enumerate(instrs)]
        self._latency = latency
        self._model = rc_model
        self._windows = {
            cls: set(w) for cls, w in (windows or {}).items()
        }
        self._build()

    # -- resource footprints --------------------------------------------------
    #
    # Register operands that go through a connection window are resolved to
    # their *physical* targets by emulating the mapping table in program
    # order; the map-entry pseudo-resources then pin every access between
    # the connects that establish its mapping, so the resolution stays valid
    # under any schedule the DAG permits.

    def _is_window(self, reg: PhysReg) -> bool:
        return reg.num in self._windows.get(reg.cls, ())

    def _footprint(self, instr: Instr, read_map: dict, write_map: dict):
        """Return (reads, writes) resource-key sets for *instr*.

        ``read_map``/``write_map`` are the window-emulation state, keyed by
        ``(rclass, index)`` and updated in place.
        """
        reads: set = set()
        writes: set = set()
        for s in instr.srcs:
            if isinstance(s, Imm):
                continue
            if isinstance(s, PhysReg) and self._is_window(s):
                phys = read_map.get((s.cls, s.num), s.num)
                reads.add(PhysReg(s.cls, phys))
                reads.add(("rmap", s.cls, s.num))
                if self._model.resets_read_map_on_read:
                    # Model 5: a read consumes its connection.
                    writes.add(("rmap", s.cls, s.num))
                    read_map[(s.cls, s.num)] = s.num
            else:
                reads.add(s)
        dest = instr.dest
        if dest is not None:
            if isinstance(dest, PhysReg) and self._is_window(dest):
                key = (dest.cls, dest.num)
                phys = write_map.get(key, dest.num)
                writes.add(PhysReg(dest.cls, phys))
                reads.add(("wmap", dest.cls, dest.num))
                if self._model.resets_write_map:
                    writes.add(("wmap", dest.cls, dest.num))
                if self._model.updates_read_map:
                    writes.add(("rmap", dest.cls, dest.num))
                # Apply the automatic reset to the emulation state.
                if self._model is RCModel.WRITE_RESET_READ_UPDATE:
                    read_map[key] = write_map.get(key, dest.num)
                    write_map[key] = dest.num
                elif self._model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
                    write_map[key] = dest.num
                elif self._model is RCModel.READ_WRITE_RESET:
                    read_map[key] = dest.num
                    write_map[key] = dest.num
            else:
                writes.add(dest)
        if instr.is_connect:
            for rclass, which, idx, phys in instr.connect_updates():
                key = ("rmap" if which == "read" else "wmap", rclass, idx)
                writes.add(key)
                if which == "read":
                    read_map[(rclass, idx)] = phys
                else:
                    write_map[(rclass, idx)] = phys
        return reads, writes

    @staticmethod
    def _mem_key(instr: Instr, reg_version: dict) -> tuple | None:
        """A disambiguation key for a memory access, or None if unknown."""
        if instr.op in (Opcode.LOAD, Opcode.FLOAD):
            base = instr.srcs[0]
        elif instr.op in (Opcode.STORE, Opcode.FSTORE):
            base = instr.srcs[1]
        else:
            return None
        if isinstance(base, Imm) or not isinstance(instr.imm, int):
            return None
        version = reg_version.get(base, 0)
        return (base, version, instr.imm)

    @staticmethod
    def _mem_tag(instr: Instr) -> tuple | None:
        """Memory-region provenance: alias-analysis tag or the SP region."""
        if instr.alias is not None:
            return instr.alias
        base = (instr.srcs[0]
                if instr.op in (Opcode.LOAD, Opcode.FLOAD)
                else instr.srcs[1] if instr.op in (Opcode.STORE,
                                                   Opcode.FSTORE)
                else None)
        if (isinstance(base, PhysReg) and base.cls is RClass.INT
                and base.num == 0):
            return ("stack",)
        return None

    # Register resources are keyed by the operand object itself (VReg before
    # allocation, PhysReg after), so the same graph serves both the prepass
    # schedule over virtual registers and the postpass over machine code.

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        last_writer: dict = {}
        readers_since_write: dict = {}
        reg_version: dict = {}
        mem_ops: list[tuple] = []  # (node, is_store, key, region tag)
        barrier: DepNode | None = None
        read_map: dict = {}
        write_map: dict = {}

        for node in self.nodes:
            instr = node.instr
            if instr.op in (Opcode.CALL, Opcode.RET):
                read_map.clear()   # jsr/rts reset the map to home
                write_map.clear()
            reads, writes = self._footprint(instr, read_map, write_map)

            if barrier is not None:
                barrier.add_edge_to(node, 1)

            # RAW and WAR/WAW through named resources.
            for key in reads:
                w = last_writer.get(key)
                if w is not None:
                    edge_lat = self._producer_latency(w.instr, key)
                    w.add_edge_to(node, edge_lat)
                readers_since_write.setdefault(key, []).append(node)
            for key in writes:
                w = last_writer.get(key)
                if w is not None:
                    w.add_edge_to(node, self._producer_latency(w.instr, key))
                for r in readers_since_write.get(key, ()):
                    r.add_edge_to(node, 0)  # WAR: order only
                last_writer[key] = node
                readers_since_write[key] = []
                if not isinstance(key, tuple):
                    reg_version[key] = reg_version.get(key, 0) + 1

            # Memory ordering.
            if instr.is_mem:
                is_store = instr.op in (Opcode.STORE, Opcode.FSTORE)
                key = self._mem_key(instr, reg_version)
                tag = self._mem_tag(instr)
                for other, other_store, other_key, other_tag in mem_ops:
                    if not is_store and not other_store:
                        continue  # loads reorder freely among loads
                    if (tag is not None and other_tag is not None
                            and tag != other_tag):
                        continue  # provably distinct memory regions
                    if (key is not None and other_key is not None
                            and key[:2] == other_key[:2]
                            and key[2] != other_key[2]):
                        continue  # provably disjoint slots off the same base
                    edge_lat = 1 if other_store else 0
                    other.add_edge_to(node, edge_lat)
                mem_ops.append((node, is_store, key, tag))

            if instr.op in _BARRIERS:
                for earlier in self.nodes[: node.index]:
                    earlier.add_edge_to(node, 1)
                barrier = node

        # The terminator anchors the block end.
        if self.nodes:
            term = self.nodes[-1]
            if term.instr.is_branch or term.instr.op is Opcode.HALT:
                for other in self.nodes[:-1]:
                    other.add_edge_to(term, 0)

    def _producer_latency(self, instr: Instr, key) -> int:
        if isinstance(key, tuple) and key[0] in ("rmap", "wmap"):
            if instr.is_connect:
                return self._latency.connect
            return 0  # automatic reset takes effect at issue
        return self._latency.of(instr.op)

    # -- queries -----------------------------------------------------------------

    def heights(self) -> list[int]:
        """Critical-path height of every node (longest path to a sink)."""
        heights = [0] * len(self.nodes)
        for node in reversed(self.nodes):
            best = 0
            for succ, edge_lat in node.succs.items():
                candidate = heights[succ] + max(edge_lat, 1)
                if candidate > best:
                    best = candidate
            heights[node.index] = best
        return heights
