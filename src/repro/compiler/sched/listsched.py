"""Machine-aware list scheduling of basic blocks.

The scheduler reorders each block to minimize interlock stalls on the target
machine: it models issue width, memory channels, and instruction latencies
while picking among ready instructions by critical-path height.  It is
designed "to take advantage of the zero-cycle latency of the connect
instructions" (paper section 5.1): a 0-latency dependence edge allows the
consumer to be placed in the same cycle as its connect, later in the group.
"""

from __future__ import annotations

from repro.compiler.sched.depgraph import DepGraph
from repro.ir.function import Function
from repro.isa.registers import RClass
from repro.sim.config import MachineConfig


def schedule_block_instrs(instrs: list, config: MachineConfig,
                          windows: dict[RClass, list[int]] | None) -> list:
    """Return a latency-aware reordering of *instrs* (same multiset)."""
    n = len(instrs)
    if n <= 2:
        return list(instrs)
    graph = DepGraph(instrs, config.latency, config.rc_model, windows)
    heights = graph.heights()
    nodes = graph.nodes

    unscheduled_preds = [len(node.preds) for node in nodes]
    earliest = [0] * n
    ready = [i for i in range(n) if unscheduled_preds[i] == 0]
    order: list[int] = []
    finish_cycle = [0] * n
    cycle = 0
    width = config.issue_width
    channels = config.mem_channels

    def priority(i: int) -> tuple:
        return (-heights[i], i)

    while len(order) < n:
        issued = 0
        mem_used = 0
        progressed = True
        while issued < width and progressed:
            progressed = False
            ready.sort(key=priority)
            for i in list(ready):
                if earliest[i] > cycle:
                    continue
                instr = nodes[i].instr
                if instr.is_mem:
                    if mem_used >= channels:
                        continue
                # Issue node i at this cycle.
                ready.remove(i)
                order.append(i)
                issued += 1
                if instr.is_mem:
                    mem_used += 1
                finish_cycle[i] = cycle
                for succ, edge_lat in nodes[i].succs.items():
                    e = cycle + edge_lat
                    if e > earliest[succ]:
                        earliest[succ] = e
                    unscheduled_preds[succ] -= 1
                    if unscheduled_preds[succ] == 0:
                        ready.append(succ)
                progressed = True
                break
        cycle += 1

    return [instrs[i] for i in order]


def schedule_function(fn: Function, config: MachineConfig,
                      windows: dict[RClass, list[int]] | None = None) -> None:
    """Schedule every block of *fn* in place."""
    for block in fn.blocks:
        block.instrs = schedule_block_instrs(block.instrs, config, windows)
