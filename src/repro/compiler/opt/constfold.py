"""Constant folding: evaluate pure operations with all-immediate sources."""

from __future__ import annotations

from repro.errors import SimulationFault
from repro.ir.function import Function
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, RClass
from repro.isa.semantics import ALU_FUNCS


def fold_constants(fn: Function) -> int:
    """Fold constant computations into ``li``/``lif``; returns fold count."""
    folded = 0
    for block in fn.blocks:
        for i, instr in enumerate(block.instrs):
            if instr.op not in ALU_FUNCS:
                continue
            if not instr.srcs or not all(isinstance(s, Imm) for s in instr.srcs):
                continue
            try:
                value = ALU_FUNCS[instr.op](*(s.value for s in instr.srcs))
            except SimulationFault:
                continue  # leave faulting code in place (e.g. div by zero)
            if instr.dest.cls is RClass.INT:
                block.instrs[i] = Instr(Opcode.LI, dest=instr.dest,
                                        imm=int(value), origin=instr.origin)
            else:
                block.instrs[i] = Instr(Opcode.LIF, dest=instr.dest,
                                        imm=float(value), origin=instr.origin)
            folded += 1
    return folded
