"""Local common-subexpression elimination over pure operations."""

from __future__ import annotations

from repro.ir.function import Function
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode, spec
from repro.isa.registers import Imm, RClass, VReg
from repro.isa.semantics import ALU_FUNCS

_PURE = frozenset(ALU_FUNCS) | {Opcode.LI, Opcode.LIF}


def _key(instr: Instr):
    parts = [instr.op]
    srcs = instr.srcs
    if spec(instr.op).commutative and len(srcs) == 2:
        srcs = tuple(sorted(srcs, key=repr))
    for s in srcs:
        parts.append(("imm", s.value) if isinstance(s, Imm) else ("reg", s))
    parts.append(instr.imm)
    return tuple(parts)


def eliminate_common_subexpressions(fn: Function) -> int:
    """Replace block-local recomputations with copies; returns count."""
    eliminated = 0
    for block in fn.blocks:
        available: dict[tuple, VReg] = {}
        for i, instr in enumerate(block.instrs):
            dest = instr.dest
            if instr.op in _PURE and isinstance(dest, VReg):
                key = _key(instr)
                prior = available.get(key)
                if prior is not None and prior != dest:
                    op = (Opcode.MOVE if dest.cls is RClass.INT
                          else Opcode.FMOV)
                    block.instrs[i] = Instr(op, dest=dest, srcs=(prior,),
                                            origin=instr.origin)
                    eliminated += 1
                    instr = block.instrs[i]
            if isinstance(dest, VReg):
                # Kill expressions that used the redefined register (or were
                # produced into it).
                stale = [k for k, v in available.items()
                         if v == dest or ("reg", dest) in k]
                for k in stale:
                    del available[k]
                if (instr.op in _PURE
                        and instr.op not in (Opcode.MOVE, Opcode.FMOV)
                        and dest not in instr.srcs):
                    # A recurrence like v = add(v, t) computes with the OLD
                    # v but would be keyed on the NEW v — never record it.
                    available[_key(instr)] = dest
    return eliminated
