"""Local copy and constant propagation.

Within each basic block, ``move d, s`` makes later uses of ``d`` read ``s``
directly, and ``li d, c`` makes later *integer* uses of ``d`` read the
immediate.  Bindings are killed when either side is redefined.  FP source
slots never receive immediates (the ISA has no FP-immediate operand form
other than ``lif``), so FP constants propagate only through register copies.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.isa.opcodes import Opcode, spec
from repro.isa.registers import Imm, RClass, VReg


def propagate_copies(fn: Function) -> int:
    """Propagate copies/constants locally; returns replacement count."""
    replaced = 0
    for block in fn.blocks:
        env: dict[VReg, VReg | Imm] = {}
        for instr in block.instrs:
            # Rewrite sources through the environment.
            if env and instr.srcs:
                src_specs = spec(instr.op).srcs
                new_srcs = list(instr.srcs)
                changed = False
                for i, s in enumerate(new_srcs):
                    if not isinstance(s, VReg):
                        continue
                    repl = env.get(s)
                    if repl is None:
                        continue
                    if isinstance(repl, Imm):
                        # Immediates are only legal in integer source slots,
                        # and calls keep register arguments until lowering.
                        if instr.op is Opcode.CALL:
                            continue
                        if i >= len(src_specs) or src_specs[i] is not RClass.INT:
                            continue
                    new_srcs[i] = repl
                    changed = True
                if changed:
                    instr.srcs = tuple(new_srcs)
                    replaced += 1

            dest = instr.dest
            if not isinstance(dest, VReg):
                continue
            # Kill bindings invalidated by this definition.
            env.pop(dest, None)
            for key in [k for k, v in env.items() if v == dest]:
                del env[key]
            # Record new bindings.
            if instr.op in (Opcode.MOVE, Opcode.FMOV):
                src = instr.srcs[0]
                if isinstance(src, (VReg, Imm)) and src != dest:
                    env[dest] = src
            elif instr.op is Opcode.LI:
                env[dest] = Imm(instr.imm)
    return replaced
