"""Global dead-code elimination for pure instructions."""

from __future__ import annotations

from collections import Counter

from repro.ir.function import Function
from repro.isa.opcodes import Opcode
from repro.isa.registers import VReg
from repro.isa.semantics import ALU_FUNCS

_REMOVABLE = frozenset(ALU_FUNCS) | {Opcode.LI, Opcode.LIF, Opcode.NOP}


def eliminate_dead_code(fn: Function) -> int:
    """Remove pure instructions whose results are never used."""
    removed_total = 0
    while True:
        uses: Counter = Counter()
        for _, instr in fn.iter_instrs():
            for s in instr.reg_srcs():
                if isinstance(s, VReg):
                    uses[s] += 1
        removed = 0
        for block in fn.blocks:
            kept = []
            for instr in block.instrs:
                dead = (
                    instr.op in _REMOVABLE
                    and isinstance(instr.dest, VReg)
                    and uses[instr.dest] == 0
                ) or instr.op is Opcode.NOP
                if dead:
                    removed += 1
                else:
                    kept.append(instr)
            block.instrs = kept
        removed_total += removed
        if removed == 0:
            return removed_total
