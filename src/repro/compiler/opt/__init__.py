"""Classical and ILP optimization passes.

``optimize_module`` runs the configured pass pipeline to a fixed point:
classical scalar optimizations always, loop unrolling when the ILP level is
requested (the paper compiles everything "with full-scale classical and
instruction-level parallelization code optimizations", section 5.1; the
speedup *baseline* uses "conventional compiler scalar optimizations",
section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.opt.constfold import fold_constants
from repro.compiler.opt.copyprop import propagate_copies
from repro.compiler.opt.cse import eliminate_common_subexpressions
from repro.compiler.opt.dce import eliminate_dead_code
from repro.compiler.opt.unroll import unroll_loops
from repro.ir.function import Function, Module
from repro.ir.verify import verify_module

#: Optimization levels: ``scalar`` = classical only (the paper's speedup
#: baseline), ``ilp`` = classical + loop unrolling for ILP.
OPT_LEVELS = ("scalar", "ilp")


@dataclass(frozen=True)
class OptOptions:
    level: str = "ilp"
    unroll_factor: int = 4
    max_unroll_body: int = 64
    #: Split FP-add reduction recurrences into per-copy partials while
    #: unrolling.  Integer reductions are always split (exact under wrap64);
    #: FP splitting changes rounding, so compiled output is verified against
    #: the interpretation of the *optimized* module.
    reassociate_fp: bool = True

    def __post_init__(self) -> None:
        if self.level not in OPT_LEVELS:
            raise ValueError(f"opt level must be one of {OPT_LEVELS}")


def optimize_function(fn: Function, options: OptOptions) -> None:
    """Run the pass pipeline on one function, in place."""
    if options.level == "ilp":
        unroll_loops(fn, options.unroll_factor, options.max_unroll_body,
                     options.reassociate_fp)
    for _ in range(8):  # classical passes to a (bounded) fixed point
        changed = 0
        changed += fold_constants(fn)
        changed += propagate_copies(fn)
        changed += eliminate_common_subexpressions(fn)
        changed += eliminate_dead_code(fn)
        if not changed:
            break
    fn.remove_unreachable_blocks()


def optimize_module(module: Module, options: OptOptions | None = None) -> None:
    """Optimize every function of *module* in place and re-verify."""
    options = options or OptOptions()
    for fn in module.functions.values():
        optimize_function(fn, options)
    verify_module(module)


__all__ = [
    "OPT_LEVELS",
    "OptOptions",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "optimize_function",
    "optimize_module",
    "propagate_copies",
    "unroll_loops",
]
