"""Counted-loop unrolling with register renaming.

This pass stands in for the IMPACT compiler's ILP transformations (superblock
formation and friends): it replicates the body of hot innermost loops inside
one basic block with fully renamed temporaries, giving the list scheduler
multiple independent iterations to overlap.  This is exactly the kind of
optimization that "increase[s] the number of variables that are
simultaneously live" (paper section 1) and thereby drives register pressure.

Shape handled: a *do-while self-loop* — a block ``B`` whose terminator is a
conditional branch back to ``B`` of the form ``b{le,lt,ge,gt} iv, limit`` with
``iv`` updated exactly once in the block by ``iv := iv +/- constant`` and
``limit`` loop-invariant.  The transformed CFG is::

    preds -> P:  limit2 = limit - (k-1)*step
                 if cond(iv, limit2) -> M else B
    M:  body_1 ... body_k (renamed; copy k writes the original names)
        if cond(iv, limit2) -> M else C
    C:  if cond(iv, limit) -> B else exit
    B:  original do-while loop (remainder iterations)

The guard condition ``cond(iv, limit - (k-1)*step)`` guarantees the next
``k`` iterations all continue, so the intermediate exit tests can be elided;
the remainder loop ``B`` picks up the leftover iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.function import BasicBlock, Function
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, RClass, VReg

_UP_BRANCHES = {Opcode.BLE, Opcode.BLT}
_DOWN_BRANCHES = {Opcode.BGE, Opcode.BGT}
_COUNTED_BRANCHES = _UP_BRANCHES | _DOWN_BRANCHES
_EXCLUDED_OPS = {Opcode.CALL, Opcode.RET, Opcode.TRAP, Opcode.RTE,
                 Opcode.MTPSW}

#: Reduction operations safe to reassociate across unrolled copies.  Integer
#: add/or/xor are exact under wrap-around arithmetic; FP add changes rounding
#: (gated by the ``reassociate_fp`` option and verified against the optimized
#: module's interpretation downstream).
_REASSOC_OPS = {Opcode.ADD, Opcode.OR, Opcode.XOR, Opcode.FADD}


@dataclass
class _Candidate:
    block: BasicBlock
    iv: VReg
    limit: VReg | Imm
    step: int
    branch_op: Opcode


def _match_candidate(fn: Function, block: BasicBlock) -> _Candidate | None:
    term = block.terminator
    if term is None or term.op not in _COUNTED_BRANCHES:
        return None
    if term.label != block.name:
        return None  # not a self-loop
    if block is fn.entry:
        return None
    iv, limit = term.srcs[0], term.srcs[1]
    if not isinstance(iv, VReg):
        return None
    body = block.body()
    iv_defs = [ins for ins in body if ins.dest == iv]
    if len(iv_defs) != 1:
        return None
    update = iv_defs[0]
    if update.op not in (Opcode.ADD, Opcode.SUB):
        return None
    if update.srcs[0] != iv or not isinstance(update.srcs[1], Imm):
        return None
    step = update.srcs[1].value
    if update.op is Opcode.SUB:
        step = -step
    if step == 0:
        return None
    if term.op in _UP_BRANCHES and step <= 0:
        return None
    if term.op in _DOWN_BRANCHES and step >= 0:
        return None
    if isinstance(limit, VReg) and any(ins.dest == limit for ins in body):
        return None
    if any(ins.op in _EXCLUDED_OPS for ins in block.instrs):
        return None
    return _Candidate(block, iv, limit, step, term.op)


def _redirect_predecessors(fn: Function, old: str, new: str,
                           skip: set[str]) -> None:
    for block in fn.blocks:
        if block.name in skip:
            continue
        term = block.terminator
        if term is not None and term.label == old and term.op is not Opcode.RET:
            term.label = new
        if block.fallthrough == old:
            block.fallthrough = new


def _find_accumulators(body: list[Instr], term: Instr,
                       reassociate_fp: bool) -> dict[VReg, int]:
    """Accumulator reductions eligible for reassociation.

    ``v`` qualifies when its only definition in the body is
    ``v = op(v, t)`` with an associative ``op``, and ``v`` is read nowhere
    else (including the terminator).  Returns ``{v: body index of the def}``.
    """
    defs: dict[VReg, list[int]] = {}
    reads: dict[VReg, int] = {}
    for idx, ins in enumerate(body):
        if isinstance(ins.dest, VReg):
            defs.setdefault(ins.dest, []).append(idx)
        for s in ins.reg_srcs():
            if isinstance(s, VReg):
                reads[s] = reads.get(s, 0) + 1
    for s in term.reg_srcs():
        if isinstance(s, VReg):
            reads[s] = reads.get(s, 0) + 100  # terminator uses disqualify
    found: dict[VReg, int] = {}
    for v, positions in defs.items():
        if len(positions) != 1:
            continue
        ins = body[positions[0]]
        if ins.op not in _REASSOC_OPS or len(ins.srcs) != 2:
            continue
        if ins.srcs[0] != v or ins.srcs[1] == v:
            continue
        if reads.get(v, 0) != 1:  # only its own recurrence reads it
            continue
        if v.cls is RClass.FP and not reassociate_fp:
            continue
        found[v] = positions[0]
    return found


def _unroll_one(fn: Function, cand: _Candidate, factor: int,
                reassociate_fp: bool) -> None:
    block = cand.block
    body = block.body()
    exit_name = block.fallthrough
    adjust = (factor - 1) * cand.step
    accumulators = _find_accumulators(body, block.terminator, reassociate_fp)
    accumulators.pop(cand.iv, None)

    pre = fn.new_block(f"{block.name}.pre")
    main = fn.new_block(f"{block.name}.u{factor}")
    check = fn.new_block(f"{block.name}.chk")

    _redirect_predecessors(fn, block.name, pre.name,
                           skip={block.name, pre.name, main.name, check.name})

    # Partial accumulators: copy 1 keeps accumulating into the original
    # register; copies 2..factor get fresh loop-carried partials initialized
    # to the identity in the preheader and reduced back after the loop.
    partials: dict[VReg, list[VReg]] = {}
    for v in accumulators:
        parts = [v]
        for copy in range(2, factor + 1):
            p = fn.new_vreg(v.cls, f"{v.name}.p{copy}")
            if v.cls is RClass.FP:
                pre.instrs.append(Instr(Opcode.LIF, dest=p, imm=0.0))
            else:
                pre.instrs.append(Instr(Opcode.LI, dest=p, imm=0))
            parts.append(p)
        partials[v] = parts

    # Preheader: compute the adjusted limit and guard the unrolled loop.
    if isinstance(cand.limit, Imm):
        limit2: VReg | Imm = Imm(cand.limit.value - adjust)
    else:
        limit2 = fn.new_vreg(cand.iv.cls, f"{block.name}.lim2")
        pre.instrs.append(
            Instr(Opcode.SUB, dest=limit2, srcs=(cand.limit, Imm(adjust)))
        )
    pre.instrs.append(Instr(cand.branch_op, srcs=(cand.iv, limit2),
                            label=main.name))
    pre.fallthrough = block.name

    # Unrolled body: factor copies with renaming; the final copy writes the
    # original names so the back edge and exits see a consistent state.
    last_def: dict[VReg, int] = {}
    for idx, ins in enumerate(body):
        if isinstance(ins.dest, VReg):
            last_def[ins.dest] = idx
    acc_def_at = {idx: v for v, idx in accumulators.items()}
    cur: dict[VReg, VReg] = {}
    for copy in range(1, factor + 1):
        for idx, ins in enumerate(body):
            clone = ins.copy()
            acc = acc_def_at.get(idx)
            if acc is not None:
                part = partials[acc][copy - 1]
                other = clone.srcs[1]
                if isinstance(other, VReg):
                    other = cur.get(other, other)
                clone.srcs = (part, other)
                clone.dest = part
                main.instrs.append(clone)
                continue
            clone.srcs = tuple(
                cur.get(s, s) if isinstance(s, VReg) else s for s in clone.srcs
            )
            dest = clone.dest
            if isinstance(dest, VReg):
                if copy == factor and last_def[dest] == idx:
                    new_dest = dest
                else:
                    new_dest = fn.new_vreg(dest.cls, f"{dest.name}.u{copy}")
                clone.dest = new_dest
                cur[dest] = new_dest
            main.instrs.append(clone)
    main.instrs.append(Instr(cand.branch_op, srcs=(cand.iv, limit2),
                             label=main.name))
    main.fallthrough = check.name

    # Remainder check: first reduce the partials (only the unrolled path
    # reaches this block), then decide whether remainder iterations remain.
    for v, (first, *rest) in partials.items():
        op = body[accumulators[v]].op
        for p in rest:
            check.instrs.append(Instr(op, dest=v, srcs=(v, p)))
    check.instrs.append(Instr(cand.branch_op, srcs=(cand.iv, cand.limit),
                              label=block.name))
    check.fallthrough = exit_name


def unroll_loops(fn: Function, factor: int = 4,
                 max_body: int = 64, reassociate_fp: bool = True) -> int:
    """Unroll qualifying counted self-loops by *factor*; returns loop count.

    Loops whose body exceeds *max_body* instructions are left alone to bound
    code growth.  ``reassociate_fp`` additionally splits FP-add reduction
    recurrences into per-copy partial sums (changes rounding; integer
    reductions are always split, exactly).
    """
    if factor < 2:
        return 0
    candidates = []
    for block in list(fn.blocks):
        cand = _match_candidate(fn, block)
        if cand is not None and len(block.body()) <= max_body:
            candidates.append(cand)
    for cand in candidates:
        _unroll_one(fn, cand, factor, reassociate_fp)
    return len(candidates)
