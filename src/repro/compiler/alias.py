"""Memory-provenance (alias) analysis.

Every memory access in the kernels addresses either a named module global
(a distinct array) or the stack; two accesses to *different* regions can
never alias, which is what lets the list scheduler overlap loads from one
array with stores to another (e.g. the stencil grids of tomcatv).

The analysis is a forward must-dataflow over virtual registers: a register
holding the address of global ``g`` (from ``li``) keeps that provenance
through ``add``/``sub``/``move`` with non-address operands; any merge of
differing provenances, or arithmetic mixing two addresses, degrades to
unknown.  Each load/store whose base resolves to one region is annotated
with ``("global", name)``; stack accesses are recognized later by their SP
base in the dependence builder.
"""

from __future__ import annotations

from repro.ir.cfg import reverse_postorder
from repro.ir.function import Function, Module
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import Imm, VReg

_PROPAGATE = {Opcode.ADD, Opcode.SUB, Opcode.MOVE}
#: Provenance lattice: missing key = "not an address" (bottom-ish, mergeable)
#: and _UNKNOWN = "some address we cannot name" (kills disambiguation).
_UNKNOWN = ("?",)


def _global_of(module: Module, addr) -> tuple | None:
    if not isinstance(addr, int):
        return None
    for g in module.globals.values():
        if g.addr <= addr < g.addr + g.size:
            return ("global", g.name)
    return None


def _transfer(module: Module, instr: Instr, env: dict) -> tuple | None:
    """Provenance of *instr*'s destination value (None = not an address).

    Assumption (documented in DESIGN.md): addresses are only formed by
    ``li`` of a global's address plus ``add``/``sub``/``move`` chains over
    non-address values — i.e. no pointer is synthesized by multiplication,
    masking, or loaded back from memory.  Every module in this repository
    satisfies this, and golden-equivalence tests would catch a violation;
    callers with exotic address arithmetic should disable alias annotation.
    """
    if instr.op is Opcode.LI:
        return _global_of(module, instr.imm)
    if instr.op in _PROPAGATE:
        provs = []
        for s in instr.srcs:
            if isinstance(s, VReg):
                provs.append(env.get(s))
            elif isinstance(s, Imm):
                provs.append(None)
            else:  # physical register: contents unknown
                provs.append(_UNKNOWN)
        addresses = [p for p in provs if p is not None]
        if not addresses:
            return None
        if len(addresses) == 1 and addresses[0] is not _UNKNOWN:
            return addresses[0]
        return _UNKNOWN
    if instr.op is Opcode.CALL:
        return _UNKNOWN  # a callee may legitimately return an address
    return None


def _apply_block(module: Module, block, env: dict,
                 annotate: bool = False) -> int:
    tagged = 0
    for instr in block.instrs:
        if annotate and instr.op in (Opcode.LOAD, Opcode.FLOAD,
                                     Opcode.STORE, Opcode.FSTORE):
            base = (instr.srcs[0]
                    if instr.op in (Opcode.LOAD, Opcode.FLOAD)
                    else instr.srcs[1])
            if isinstance(base, Imm):
                prov = _global_of(module, base.value)
            elif isinstance(base, VReg):
                prov = env.get(base)
            else:
                prov = None
            if prov is not None and prov != _UNKNOWN:
                instr.alias = prov
                tagged += 1
        if isinstance(instr.dest, VReg):
            prov = _transfer(module, instr, env)
            if prov is None:
                env.pop(instr.dest, None)
            else:
                env[instr.dest] = prov
    return tagged


def annotate_memory_aliases(fn: Function, module: Module) -> int:
    """Tag every load/store of *fn* with its memory region; returns the
    number of accesses that received a definite tag."""
    rpo = reverse_postorder(fn)
    entry_env: dict[str, dict | None] = {name: None for name in rpo}
    entry_env[fn.entry.name] = {}
    for _ in range(len(rpo) + 2):
        changed = False
        for name in rpo:
            start = entry_env[name]
            if start is None:
                continue
            env = dict(start)
            _apply_block(module, fn.block(name), env)
            for succ in fn.block(name).successors():
                current = entry_env.get(succ)
                if current is None:
                    entry_env[succ] = dict(env)
                    changed = True
                else:
                    # Meet = intersection of agreeing facts.
                    for v in [v for v, p in current.items()
                              if env.get(v) != p]:
                        del current[v]
                        changed = True
        if not changed:
            break

    tagged = 0
    for name in rpo:
        env = dict(entry_env[name] or {})
        tagged += _apply_block(module, fn.block(name), env, annotate=True)
    return tagged


def annotate_module(module: Module) -> int:
    """Annotate every function; returns the total number of tagged accesses."""
    return sum(annotate_memory_aliases(fn, module)
               for fn in module.functions.values())
