"""The compiler: optimization, register allocation, scheduling, lowering."""

from repro.compiler.callconv import insert_prologue_epilogue, lower_calls
from repro.compiler.frame import FrameLayout, InArg, LocalSlot, OutArg
from repro.compiler.lower import layout_function, lower_module
from repro.compiler.opt import OptOptions, optimize_module
from repro.compiler.pipeline import (
    COMPILE_JOBS_ENV,
    CompileOptions,
    CompileOutput,
    CompileStats,
    compile_module,
    resolve_compile_jobs,
)
from repro.compiler.regalloc.allocator import (
    AllocationOptions,
    AllocationResult,
    allocate_function,
    apply_allocation,
)
from repro.compiler.regalloc.interference import (
    InterferenceGraph,
    build_interference,
)
from repro.compiler.regalloc.priority import priority_order, reference_weights
from repro.compiler.regalloc.rc_rewrite import (
    ConnectionAllocator,
    check_encodable,
    insert_connects,
)
from repro.compiler.sched.depgraph import DepGraph
from repro.compiler.sched.listsched import schedule_block_instrs, schedule_function

__all__ = [
    "AllocationOptions",
    "AllocationResult",
    "COMPILE_JOBS_ENV",
    "CompileOptions",
    "CompileOutput",
    "CompileStats",
    "DepGraph",
    "FrameLayout",
    "InArg",
    "InterferenceGraph",
    "LocalSlot",
    "OptOptions",
    "OutArg",
    "ConnectionAllocator",
    "allocate_function",
    "apply_allocation",
    "build_interference",
    "check_encodable",
    "compile_module",
    "insert_connects",
    "insert_prologue_epilogue",
    "layout_function",
    "lower_calls",
    "lower_module",
    "optimize_module",
    "priority_order",
    "reference_weights",
    "resolve_compile_jobs",
    "schedule_block_instrs",
    "schedule_function",
]
