"""Calling-convention lowering: calls, returns, prologue/epilogue.

Two phases operate here:

* :func:`lower_calls` runs *before* register allocation: it turns IR-level
  calls with register arguments into explicit argument stores plus a bare
  ``call``, and moves return values through the dedicated return-value
  registers (``r1`` / ``f0``).
* :func:`insert_prologue_epilogue` runs *after* allocation: it adjusts SP,
  saves/restores the callee-save core registers the function actually uses,
  loads incoming parameters, and resolves all symbolic frame offsets.
"""

from __future__ import annotations

from repro.compiler.frame import FrameLayout, InArg, OutArg
from repro.errors import CompileError
from repro.ir.function import Function
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import (
    FP_RETVAL,
    Imm,
    INT_RETVAL,
    PhysReg,
    RClass,
    SP,
    VReg,
)


def lower_calls(fn: Function) -> None:
    """Lower call arguments and return values to the stack convention."""
    for block in fn.blocks:
        new_instrs: list[Instr] = []
        for instr in block.instrs:
            if instr.op is Opcode.CALL:
                for i, arg in enumerate(instr.srcs):
                    if isinstance(arg, Imm) or arg.cls is RClass.INT:
                        op = Opcode.STORE
                    else:
                        op = Opcode.FSTORE
                    new_instrs.append(
                        Instr(op, srcs=(arg, SP), imm=OutArg(i), origin="frame")
                    )
                dest = instr.dest
                new_instrs.append(Instr(Opcode.CALL, label=instr.label,
                                        origin=instr.origin))
                if dest is not None:
                    if dest.cls is RClass.INT:
                        new_instrs.append(Instr(Opcode.MOVE, dest=dest,
                                                srcs=(INT_RETVAL,),
                                                origin="frame"))
                    else:
                        new_instrs.append(Instr(Opcode.FMOV, dest=dest,
                                                srcs=(FP_RETVAL,),
                                                origin="frame"))
            elif instr.op is Opcode.RET and instr.srcs:
                value = instr.srcs[0]
                if isinstance(value, Imm) or value.cls is RClass.INT:
                    new_instrs.append(Instr(Opcode.MOVE, dest=INT_RETVAL,
                                            srcs=(value,), origin="frame"))
                else:
                    new_instrs.append(Instr(Opcode.FMOV, dest=FP_RETVAL,
                                            srcs=(value,), origin="frame"))
                new_instrs.append(Instr(Opcode.RET, origin=instr.origin))
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs


def insert_prologue_epilogue(
    fn: Function,
    frame: FrameLayout,
    callee_saves: list[PhysReg],
    param_homes: dict[VReg, PhysReg],
    is_entry: bool = False,
) -> None:
    """Insert frame management code and resolve symbolic offsets.

    ``callee_saves`` lists the allocatable core registers this function
    writes; ``param_homes`` maps each register-allocated parameter to its
    assigned physical register (spilled parameters live in their incoming
    argument slot already).  The program entry function has no caller whose
    registers need protecting, so ``is_entry`` suppresses callee-save code.
    """
    if is_entry:
        callee_saves = []
    # Reserve save slots up front so the frame size is final before any
    # SP-relative code is emitted.
    for reg in callee_saves:
        frame.save_slot(reg)
    size = frame.size
    prologue: list[Instr] = []
    if size:
        prologue.append(Instr(Opcode.SUB, dest=SP, srcs=(SP, Imm(size)),
                              origin="frame"))
    for reg in callee_saves:
        op = Opcode.STORE if reg.cls is RClass.INT else Opcode.FSTORE
        prologue.append(Instr(op, srcs=(reg, SP), imm=frame.save_slot(reg),
                              origin="spill"))
    for i, param in enumerate(fn.params):
        home = param_homes.get(param)
        if home is None:
            continue  # spilled parameter: lives in its InArg slot
        op = Opcode.LOAD if home.cls is RClass.INT else Opcode.FLOAD
        prologue.append(Instr(op, dest=home, srcs=(SP,), imm=InArg(i),
                              origin="frame"))

    epilogue: list[Instr] = []
    for reg in callee_saves:
        op = Opcode.LOAD if reg.cls is RClass.INT else Opcode.FLOAD
        epilogue.append(Instr(op, dest=reg, srcs=(SP,), imm=frame.save_slot(reg),
                              origin="spill"))
    if size:
        epilogue.append(Instr(Opcode.ADD, dest=SP, srcs=(SP, Imm(size)),
                              origin="frame"))

    if prologue:
        # A fresh entry block keeps the prologue out of any loop that might
        # target the old entry.
        old_entry = fn.entry.name
        entry = fn.new_block(f"{fn.name}.prologue")
        entry.instrs = prologue + [Instr(Opcode.JMP, label=old_entry,
                                         origin="frame")]
        fn.blocks.remove(entry)
        fn.blocks.insert(0, entry)
    if epilogue:
        for block in fn.blocks:
            term = block.terminator
            if term is not None and term.op is Opcode.RET:
                block.instrs[-1:-1] = [ins.copy() for ins in epilogue]

    # Resolve every symbolic memory offset now that F is known.
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.is_mem and not isinstance(instr.imm, int):
                instr.imm = frame.resolve(instr.imm)


def check_no_symbolic_offsets(fn: Function) -> None:
    for block in fn.blocks:
        for instr in block.instrs:
            if instr.is_mem and not isinstance(instr.imm, int):
                raise CompileError(
                    f"{fn.name}/{block.name}: unresolved offset {instr.imm!r}"
                )
