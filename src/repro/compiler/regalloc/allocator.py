"""Priority graph-coloring register allocation (paper sections 3 and 5.1).

The allocator colors virtual registers in profile-priority order.  Core
registers are preferred; with RC support, lower-priority values overflow into
the extended section instead of memory; anything left is spilled through the
reserved spill temporaries.

Connection windows: to realize the paper's "select the least important index"
rule with a statically checkable invariant, a small number of the
least-important allocatable core registers are reserved as rotating
*connection windows* when (and only when) the extended section is actually
needed.  A first allocation attempt runs with the full core file; windows are
reserved and the class is recolored only if that attempt spills.  This keeps
the with-RC model's performance identical to the without-RC model whenever
the core file alone suffices (as in the paper's 32/64-register results).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.frame import FrameLayout
from repro.compiler.regalloc.interference import (
    InterferenceGraph,
    build_interference,
)
from repro.compiler.regalloc.priority import priority_order
from repro.errors import AllocationError
from repro.ir.bitset import bit_liveness
from repro.ir.function import Function
from repro.ir.interp import Profile
from repro.isa.instruction import Instr
from repro.isa.opcodes import Opcode
from repro.isa.registers import (
    FP_SPILL_TEMPS,
    INT_SPILL_TEMPS,
    NUM_RESERVED_FP,
    NUM_RESERVED_INT,
    UNLIMITED,
    Imm,
    PhysReg,
    RClass,
    RegFileSpec,
    SP,
    VReg,
)


@dataclass
class AllocationOptions:
    """Tuning knobs for the allocator."""

    #: Number of core registers reserved as connection windows per RC class
    #: (pairs for FP).  Must be at least 2 so one instruction can read two
    #: extended sources.
    num_windows: int = 4

    def __post_init__(self) -> None:
        if self.num_windows < 2:
            raise AllocationError("need at least 2 connection windows")


@dataclass
class AllocationResult:
    """Everything later pipeline stages need to know about one function."""

    assignment: dict[VReg, PhysReg] = field(default_factory=dict)
    spilled: set[VReg] = field(default_factory=set)
    frame: FrameLayout | None = None
    callee_saves: list[PhysReg] = field(default_factory=list)
    param_homes: dict[VReg, PhysReg] = field(default_factory=dict)
    windows: dict[RClass, list[int]] = field(default_factory=dict)
    used_extended: dict[RClass, set[int]] = field(default_factory=dict)

    def location_of(self, v: VReg) -> str:
        """Human-readable location of a virtual register."""
        if v in self.spilled:
            return "memory"
        reg = self.assignment.get(v)
        return "unassigned" if reg is None else repr(reg)


class _SharedCounters:
    """Module-wide unique register numbering for the unlimited baseline."""

    def __init__(self) -> None:
        self.next = {RClass.INT: NUM_RESERVED_INT, RClass.FP: NUM_RESERVED_FP}

    def take(self, cls: RClass, total: int) -> int:
        num = self.next[cls]
        step = 1 if cls is RClass.INT else 2
        if num + step > total:
            raise AllocationError(
                f"unlimited-register baseline exhausted the {cls.value} file"
            )
        self.next[cls] = num + step
        return num


def _color_class(
    cls: RClass,
    order: list[VReg],
    graph: InterferenceGraph,
    core_colors: list[int],
    ext_colors: list[int],
) -> tuple[dict[VReg, PhysReg], set[VReg], list[int], set[int]]:
    """Greedy priority coloring of one register class.

    Returns (assignment, spilled, used core colors in first-use order,
    used extended registers).
    """
    assignment: dict[VReg, PhysReg] = {}
    spilled: set[VReg] = set()
    used_core: list[int] = []
    used_core_set: set[int] = set()
    used_ext: set[int] = set()
    cursor = 0
    ext_cursor = 0
    n_core = len(core_colors)
    n_ext = len(ext_colors)
    for v in order:
        if v.cls is not cls:
            continue
        forbidden = {
            assignment[n].num for n in graph.neighbors(v) if n in assignment
        }
        chosen = None
        # Round-robin color choice: maximizing reuse distance minimizes the
        # false WAW/WAR dependences that serialize an in-order pipeline
        # (maximal reuse would be pessimal for the scheduler).
        for off in range(n_core):
            c = core_colors[(cursor + off) % n_core]
            if c not in forbidden:
                chosen = c
                cursor = (cursor + off + 1) % n_core
                if c not in used_core_set:
                    used_core_set.add(c)
                    used_core.append(c)
                break
        if chosen is None:
            for off in range(n_ext):
                e = ext_colors[(ext_cursor + off) % n_ext]
                if e not in forbidden:
                    chosen = e
                    ext_cursor = (ext_cursor + off + 1) % n_ext
                    used_ext.add(e)
                    break
        if chosen is None:
            spilled.add(v)
        else:
            assignment[v] = PhysReg(cls, chosen)
    return assignment, spilled, used_core, used_ext


def _reserved_windows(spec: RegFileSpec, count: int) -> list[int]:
    """The least-important allocatable core registers become windows.

    Small core files (e.g. 8 integer registers, of which 5 are reserved)
    may turn *every* allocatable register into a window; values then live
    entirely in the extended section, which is exactly the high-pressure
    regime the paper's 8-register experiments probe.
    """
    allocatable = spec.allocatable_core()
    count = min(count, len(allocatable))
    if count < 2:
        raise AllocationError(
            f"{spec.cls.value} core file of {spec.core} cannot reserve "
            "two connection windows"
        )
    return allocatable[-count:]


def allocate_function(
    fn: Function,
    profile: Profile | None,
    int_spec: RegFileSpec,
    fp_spec: RegFileSpec,
    options: AllocationOptions | None = None,
    shared_counters: _SharedCounters | None = None,
) -> AllocationResult:
    """Assign every virtual register of *fn* a location.

    The caller is expected to have run :func:`~repro.compiler.callconv.
    lower_calls` first.  The function is not rewritten here; see
    :func:`apply_allocation`.
    """
    options = options or AllocationOptions()
    result = AllocationResult()
    result.frame = FrameLayout(len(fn.params))

    if int_spec.core >= UNLIMITED:
        counters = shared_counters or _SharedCounters()
        for v in sorted(fn.vregs(), key=lambda v: (v.cls.value, v.vid)):
            spec = int_spec if v.cls is RClass.INT else fp_spec
            result.assignment[v] = PhysReg(v.cls, counters.take(v.cls,
                                                                spec.total))
        result.windows = {}
        _finish_params(fn, result)
        return result

    graph = build_interference(fn)
    order = priority_order(fn, profile)

    for cls, spec in ((RClass.INT, int_spec), (RClass.FP, fp_spec)):
        allocatable = spec.allocatable_core()
        assignment, spilled, used_core, used_ext = _color_class(
            cls, order, graph, allocatable, []
        )
        if spilled and spec.has_rc:
            # Second attempt: reserve connection windows and open the
            # extended section.
            windows = _reserved_windows(spec, options.num_windows)
            core = [c for c in allocatable if c not in windows]
            assignment, spilled, used_core, used_ext = _color_class(
                cls, order, graph, core, spec.extended_registers()
            )
            result.windows[cls] = windows
        result.assignment.update(assignment)
        result.spilled.update(spilled)
        result.used_extended[cls] = used_ext
        result.callee_saves.extend(PhysReg(cls, c) for c in used_core)

    _finish_params(fn, result)
    return result


def _finish_params(fn: Function, result: AllocationResult) -> None:
    for i, param in enumerate(fn.params):
        if param in result.spilled:
            result.frame.assign_param_slot(param, i)
        elif param in result.assignment:
            result.param_homes[param] = result.assignment[param]


class _TempPool:
    """Rotating spill temporaries for one instruction rewrite."""

    def __init__(self) -> None:
        self._cursor = {RClass.INT: 0, RClass.FP: 0}
        self._pools = {RClass.INT: INT_SPILL_TEMPS, RClass.FP: FP_SPILL_TEMPS}

    def take(self, cls: RClass, in_use: set[PhysReg]) -> PhysReg:
        pool = self._pools[cls]
        for _ in range(len(pool)):
            reg = pool[self._cursor[cls] % len(pool)]
            self._cursor[cls] += 1
            if reg not in in_use:
                return reg
        raise AllocationError(f"out of {cls.value} spill temporaries")


def apply_allocation(fn: Function, result: AllocationResult,
                     ext_threshold: dict[RClass, int],
                     save_policy=None) -> dict[str, int]:
    """Rewrite *fn* to physical registers, inserting spill and caller-save
    code.

    ``ext_threshold`` gives, per class, the first extended register number
    (i.e. the core size) so caller-save code can recognize extended
    assignments.  ``save_policy(call_label, reg) -> bool`` decides which
    assigned registers live across a call need caller-save code; the default
    saves extended registers at every call (the callee may freely use the
    extended section, and ``jsr``/``rts`` reset the map anyway — paper
    section 4.1), while core registers are protected by callee-save code.
    Returns counters: spill loads/stores and caller saves.
    """
    binfo = bit_liveness(fn)
    frame = result.frame
    assignment = result.assignment
    spilled = result.spilled
    temps = _TempPool()
    stats = {"spill_loads": 0, "spill_stores": 0, "call_saves": 0}

    def is_extended(reg: PhysReg) -> bool:
        return reg.num >= ext_threshold.get(reg.cls, 1 << 30)

    if save_policy is None:
        def save_policy(label, reg):
            return is_extended(reg)

    for block in fn.blocks:
        # Live-after sets are only consulted at call sites; materialize the
        # masks lazily so call-free blocks skip the backward walk entirely.
        after_masks = None
        new_instrs: list[Instr] = []
        for idx, instr in enumerate(block.instrs):
            if instr.op is Opcode.CALL:
                if after_masks is None:
                    after_masks = binfo.live_across_instr_masks(block)
                live_after = binfo.index.set_of(after_masks[idx])
                saves = sorted(
                    {assignment[v] for v in live_after
                     if v in assignment
                     and save_policy(instr.label, assignment[v])},
                    key=lambda r: (r.cls.value, r.num),
                )
                for reg in saves:
                    op = (Opcode.STORE if reg.cls is RClass.INT
                          else Opcode.FSTORE)
                    new_instrs.append(Instr(op, srcs=(reg, SP),
                                            imm=frame.save_slot(reg),
                                            origin="callsave"))
                    stats["call_saves"] += 1
                new_instrs.append(instr)
                for reg in saves:
                    op = (Opcode.LOAD if reg.cls is RClass.INT
                          else Opcode.FLOAD)
                    new_instrs.append(Instr(op, dest=reg, srcs=(SP,),
                                            imm=frame.save_slot(reg),
                                            origin="callsave"))
                continue

            in_use: set[PhysReg] = set()
            loads: list[Instr] = []
            new_srcs: list = []
            for s in instr.srcs:
                if isinstance(s, Imm) or not isinstance(s, VReg):
                    new_srcs.append(s)
                    continue
                if s in spilled:
                    temp = temps.take(s.cls, in_use)
                    in_use.add(temp)
                    op = (Opcode.LOAD if s.cls is RClass.INT else Opcode.FLOAD)
                    loads.append(Instr(op, dest=temp, srcs=(SP,),
                                       imm=frame.spill_slot(s),
                                       origin="spill"))
                    stats["spill_loads"] += 1
                    new_srcs.append(temp)
                else:
                    new_srcs.append(assignment.get(s, s))
            store = None
            dest = instr.dest
            if isinstance(dest, VReg):
                if dest in spilled:
                    # The destination temp may overlap a source temp (the
                    # sources are read before the result is written, so
                    # reusing one within a single instruction is safe).
                    match = None
                    for s, ns in zip(instr.srcs, new_srcs):
                        if s == dest and isinstance(ns, PhysReg):
                            match = ns
                            break
                    if match is None:
                        reusable = [t for t in in_use if t.cls is dest.cls]
                        match = reusable[0] if reusable else None
                    temp = match or temps.take(dest.cls, in_use)
                    op = (Opcode.STORE if dest.cls is RClass.INT
                          else Opcode.FSTORE)
                    store = Instr(op, srcs=(temp, SP),
                                  imm=frame.spill_slot(dest), origin="spill")
                    stats["spill_stores"] += 1
                    dest = temp
                else:
                    dest = assignment.get(dest, dest)
            instr.srcs = tuple(new_srcs)
            instr.dest = dest
            new_instrs.extend(loads)
            new_instrs.append(instr)
            if store is not None:
                new_instrs.append(store)
        block.instrs = new_instrs
    return stats
