"""Connect insertion: make extended-register references encodable.

After allocation, instructions may reference extended physical registers
(numbers >= the core size), which the instruction format cannot encode.
This pass rewrites each such reference to go through a core register index,
inserting ``connect-use``/``connect-def`` instructions and emulating the
register mapping table (paper section 3: "this can be accomplished by
emulating the register mapping table and either selecting the index entry
currently pointing to the physical register as its index or selecting the
least important index as the new index").

Index selection uses two pools:

* a small set of reserved **connection windows** — core registers the
  allocator never assigns, always safe to redirect; and
* **stolen indices** — allocatable core registers whose value is provably
  not read again within the current block.  Redirecting their read map is
  safe because (a) in-block reads are excluded by the eligibility check,
  (b) an in-block write through the index self-heals the map under the
  automatic-reset models, and (c) a restore connect re-homes any index still
  redirected at block exit, preserving the invariant that every block (and
  every function, via the ``jsr``/``rts`` hardware reset) starts with
  non-window indices at their home locations.

Write-map redirection through stolen indices is only done under models that
reset the write map after a write (models 2-4); model 1 (no reset) uses the
reserved windows exclusively.

Finally, adjacent connect pairs are merged into the combined
``connect-use-use`` / ``connect-def-use`` / ``connect-def-def`` forms, which
is the encoding the paper's experiments use (section 2.2, footnote 1).
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.ir.function import Function
from repro.isa.instruction import (
    Instr,
    combine_connects,
    connect_def,
    connect_use,
)
from repro.isa.opcodes import Opcode
from repro.isa.registers import PhysReg, RClass
from repro.rc.models import RCModel

_STATE_RESET_OPS = {Opcode.CALL, Opcode.RET, Opcode.TRAP, Opcode.RTE,
                    Opcode.MTPSW}


class ConnectionAllocator:
    """Mapping-table emulation over windows plus stealable core indices."""

    def __init__(self, windows: list[int], steal_pool: list[int],
                 model: RCModel) -> None:
        if len(windows) < 2:
            raise AllocationError("need at least two connection windows")
        self.windows = list(windows)
        self.steal_pool = [c for c in steal_pool if c not in set(windows)]
        self.model = model
        all_indices = self.windows + self.steal_pool
        #: Current read/write targets; the home target of index i is i
        #: itself (windows start unknown, which behaves like home for our
        #: purposes: neither is a useful extended connection).
        self.read_t: dict[int, int] = {i: i for i in all_indices}
        self.write_t: dict[int, int] = {i: i for i in all_indices}
        self._tick = 0
        self._last_used: dict[int, int] = {
            i: n for n, i in enumerate(all_indices)
        }

    def reset_home(self) -> None:
        for i in self.read_t:
            self.read_t[i] = i
            self.write_t[i] = i

    def _touch(self, i: int) -> None:
        self._tick += 1
        self._last_used[i] = self._tick

    def _pick(self, eligible_steals, excluded: set[int]) -> int:
        candidates = [w for w in self.windows if w not in excluded]
        candidates += [c for c in eligible_steals if c not in excluded]
        if not candidates:
            raise AllocationError("no connectable register index available")
        return min(candidates, key=lambda i: self._last_used[i])

    def for_read(self, ext: int, eligible_steals, claimed: set[int],
                 cls: RClass, origin: str) -> tuple[int, Instr | None]:
        for i, target in self.read_t.items():
            if target == ext:
                self._touch(i)
                return i, None
        i = self._pick(eligible_steals, claimed)
        self.read_t[i] = ext
        self._touch(i)
        return i, connect_use(cls, i, ext, origin=origin)

    def for_write(self, ext: int, eligible_steals, cls: RClass,
                  origin: str) -> tuple[int, Instr | None]:
        if self.model is RCModel.NO_RESET:
            for i, target in self.write_t.items():
                if target == ext:
                    self._touch(i)
                    return i, None
            eligible_steals = ()  # model 1 never self-heals: windows only
        elif not self.model.resets_write_map:
            eligible_steals = ()
        i = self._pick(eligible_steals, set())
        self.write_t[i] = ext
        self._touch(i)
        return i, connect_def(cls, i, ext, origin=origin)

    def after_write(self, i: int) -> None:
        """Model transition after a write through index *i* (section 2.3)."""
        if i not in self.read_t:
            return  # reserved registers are never redirected
        model = self.model
        if model is RCModel.NO_RESET:
            return
        if model in (RCModel.WRITE_RESET, RCModel.READ_RESET):
            self.write_t[i] = i
        elif model is RCModel.WRITE_RESET_READ_UPDATE:
            self.read_t[i] = self.write_t[i]
            self.write_t[i] = i
        else:  # READ_WRITE_RESET
            self.read_t[i] = i
            self.write_t[i] = i

    def after_read(self, i: int) -> None:
        """Model transition after a read through index *i* (model 5)."""
        if i in self.read_t and self.model.resets_read_map_on_read:
            self.read_t[i] = i

    def restores(self, cls: RClass) -> list[Instr]:
        """Connects that re-home every stolen index still redirected."""
        out: list[Instr] = []
        for i in self.steal_pool:
            if self.read_t[i] != i:
                out.append(connect_use(cls, i, i, origin="connect"))
                self.read_t[i] = i
            if self.write_t[i] != i:
                out.append(connect_def(cls, i, i, origin="connect"))
                self.write_t[i] = i
        return out


def _combine_adjacent_connects(instrs: list[Instr]) -> list[Instr]:
    out: list[Instr] = []
    for instr in instrs:
        if (out and out[-1].op in (Opcode.CUSE, Opcode.CDEF)
                and instr.op in (Opcode.CUSE, Opcode.CDEF)):
            merged = combine_connects(out[-1], instr)
            if merged is not None:
                out[-1] = merged
                continue
        out.append(instr)
    return out


def _reads_after(instrs: list[Instr], cls: RClass,
                 core_size: int) -> list[set[int]]:
    """For each position, the core indices of *cls* read at or after it."""
    acc: set[int] = set()
    result: list[set[int]] = [set()] * len(instrs)
    for p in range(len(instrs) - 1, -1, -1):
        instr = instrs[p]
        for s in instr.srcs:
            if isinstance(s, PhysReg) and s.cls is cls and s.num < core_size:
                acc = acc | {s.num}
        result[p] = acc
    return result


def insert_connects(fn: Function, cls: RClass, core_size: int,
                    windows: list[int], model: RCModel,
                    combine: bool = True,
                    steal_pool: list[int] | None = None) -> int:
    """Rewrite extended references of class *cls* through core indices.

    Returns the number of connect instructions inserted (after combining,
    each combined connect counts once).
    """
    steal_pool = steal_pool or []
    inserted = 0
    for block in fn.blocks:
        alloc = ConnectionAllocator(windows, steal_pool, model)
        instrs = block.instrs
        reads_after = _reads_after(instrs, cls, core_size)
        out: list[Instr] = []
        n = len(instrs)
        for p, instr in enumerate(instrs):
            if instr.op in _STATE_RESET_OPS:
                if instr.op is Opcode.CALL:
                    out.append(instr)
                else:
                    # RET/TRAP/etc.: hardware handles the map, but any
                    # fall-through (trap return) must still see home maps.
                    restores = alloc.restores(cls)
                    out.extend(restores)
                    inserted += len(restores)
                    out.append(instr)
                alloc.reset_home()
                continue
            is_terminator = p == n - 1 and instr.is_branch
            if is_terminator:
                # Re-home stolen indices before leaving the block; the
                # terminator itself may only use windows (its connects come
                # after the restores).
                restores = alloc.restores(cls)
                out.extend(restores)
                inserted += len(restores)
                eligible: set[int] = set()
            else:
                eligible = {c for c in alloc.steal_pool
                            if c not in reads_after[p]}
            origin = "callsave" if instr.origin == "callsave" else "connect"
            claimed: set[int] = set()
            read_indices: list[int] = []
            connects: list[Instr] = []
            new_srcs = list(instr.srcs)
            for i, s in enumerate(new_srcs):
                if (isinstance(s, PhysReg) and s.cls is cls
                        and s.num >= core_size):
                    idx, conn = alloc.for_read(s.num, eligible, claimed,
                                               cls, origin)
                    claimed.add(idx)
                    read_indices.append(idx)
                    if conn is not None:
                        connects.append(conn)
                    new_srcs[i] = PhysReg(cls, idx)
            dest = instr.dest
            if (isinstance(dest, PhysReg) and dest.cls is cls
                    and dest.num >= core_size):
                idx, conn = alloc.for_write(dest.num, eligible, cls, origin)
                if conn is not None:
                    connects.append(conn)
                instr.dest = PhysReg(cls, idx)
            instr.srcs = tuple(new_srcs)
            out.extend(connects)
            inserted += len(connects)
            out.append(instr)
            for idx in read_indices:
                alloc.after_read(idx)
            final_dest = instr.dest
            if (isinstance(final_dest, PhysReg) and final_dest.cls is cls
                    and final_dest.num < core_size):
                alloc.after_write(final_dest.num)
        if block.terminator is None or not block.terminator.is_branch:
            # Blocks ending in HALT need no restores (execution stops);
            # defensive: re-home anything left if the block falls through.
            pass
        block.instrs = _combine_adjacent_connects(out) if combine else out
    return inserted


def check_encodable(fn: Function, cls: RClass, core_size: int) -> None:
    """Assert no remaining operand references an extended register."""
    for block in fn.blocks:
        for instr in block.instrs:
            for reg in instr.regs():
                if (isinstance(reg, PhysReg) and reg.cls is cls
                        and reg.num >= core_size):
                    raise AllocationError(
                        f"{fn.name}/{block.name}: unencodable operand "
                        f"{reg!r} survived connect insertion"
                    )
