"""Profile-weighted allocation priorities.

The paper's allocator "uses a graph coloring algorithm that utilizes profile
information in its priority calculations" (section 5.1) and "attempts to
place the most important variables into the core registers, while storing the
less important variables in the extended registers or memory" (section 3).
Importance here is the profile-weighted reference count: each definition or
use of a virtual register contributes the execution count of its block.
"""

from __future__ import annotations

from collections import defaultdict

from repro.ir.cfg import loop_depths
from repro.ir.function import Function
from repro.ir.interp import Profile
from repro.isa.registers import VReg


def reference_weights(fn: Function,
                      profile: Profile | None) -> dict[VReg, float]:
    """Profile-weighted def/use counts per virtual register.

    Without a profile, blocks are weighted ``10 ** loop_depth`` as a static
    estimate.
    """
    if profile is None:
        depths = loop_depths(fn)
        block_weight = {name: float(10 ** min(d, 6))
                        for name, d in depths.items()}
    else:
        block_weight = {b.name: float(profile.block_weight(fn.name, b.name))
                        for b in fn.blocks}
    weights: dict[VReg, float] = defaultdict(float)
    for v in fn.params:
        weights[v] += 1.0  # parameters always have at least entry weight
    for block in fn.blocks:
        w = block_weight.get(block.name, 0.0)
        for instr in block.instrs:
            for reg in instr.regs():
                if isinstance(reg, VReg):
                    weights[reg] += w
    return dict(weights)


def priority_order(fn: Function, profile: Profile | None) -> list[VReg]:
    """Virtual registers sorted most-important-first (deterministically)."""
    weights = reference_weights(fn, profile)
    return sorted(fn.vregs(),
                  key=lambda v: (-weights.get(v, 0.0), v.cls.value, v.vid))
