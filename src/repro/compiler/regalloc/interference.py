"""Interference graph construction over virtual registers."""

from __future__ import annotations

from repro.ir.bitset import bit_liveness
from repro.ir.function import Function
from repro.ir.liveness import LivenessInfo
from repro.isa.opcodes import Opcode
from repro.isa.registers import VReg


class InterferenceGraph:
    """Undirected interference graph; same-class edges only matter."""

    def __init__(self) -> None:
        self.adj: dict[VReg, set[VReg]] = {}

    def ensure(self, v: VReg) -> None:
        self.adj.setdefault(v, set())

    def add_edge(self, a: VReg, b: VReg) -> None:
        if a == b or a.cls is not b.cls:
            return
        self.adj.setdefault(a, set()).add(b)
        self.adj.setdefault(b, set()).add(a)

    def neighbors(self, v: VReg) -> set[VReg]:
        return self.adj.get(v, set())

    def degree(self, v: VReg) -> int:
        return len(self.adj.get(v, ()))

    def interferes(self, a: VReg, b: VReg) -> bool:
        return b in self.adj.get(a, ())


def build_interference(fn: Function,
                       info: LivenessInfo | None = None) -> InterferenceGraph:
    """Build the interference graph for *fn*.

    A definition interferes with everything live after it, with the classic
    exception that the destination of a copy does not interfere with its
    source.  Parameters are treated as defined on function entry.

    The default path accumulates adjacency as int bitmasks over the dense
    numbering of :mod:`repro.ir.bitset` and materializes the ``VReg`` sets
    once at the end.  Passing a set-based *info* selects the original
    pairwise ``add_edge`` construction, kept as the executable reference
    for the property tests; both produce identical graphs.
    """
    if info is not None:
        return _build_from_sets(fn, info)
    return _build_from_masks(fn)


def _build_from_masks(fn: Function) -> InterferenceGraph:
    binfo = bit_liveness(fn)
    index = binfo.index
    idx = index.index
    vregs = index.vregs
    cls_mask = index.class_mask
    adj = [0] * len(vregs)

    # Parameters are all "defined" at entry: they interfere with each other
    # and with anything else live into the entry block.
    entry_live = binfo.live_in[fn.entry.name] | index.mask_of(fn.params)
    for p in fn.params:
        pi = idx[p]
        adj[pi] |= entry_live & cls_mask[p.cls] & ~(1 << pi)

    for block in fn.blocks:
        after = binfo.live_across_instr_masks(block)
        for i, instr in enumerate(block.instrs):
            dest = instr.dest
            if not isinstance(dest, VReg):
                continue
            di = idx[dest]
            m = after[i] & cls_mask[dest.cls] & ~(1 << di)
            if m and instr.op in (Opcode.MOVE, Opcode.FMOV):
                src = instr.srcs[0]
                if isinstance(src, VReg):
                    m &= ~(1 << idx[src])
            adj[di] |= m

    # Materialize and symmetrize in one pass over the recorded edges.
    graph = InterferenceGraph()
    gadj = graph.adj
    for v in vregs:
        gadj[v] = set()
    for i, m in enumerate(adj):
        vi = vregs[i]
        si = gadj[vi]
        while m:
            low = m & -m
            vj = vregs[low.bit_length() - 1]
            si.add(vj)
            gadj[vj].add(vi)
            m ^= low
    return graph


def _build_from_sets(fn: Function, info: LivenessInfo) -> InterferenceGraph:
    graph = InterferenceGraph()
    for v in fn.vregs():
        graph.ensure(v)

    entry_live = info.live_in[fn.entry.name] | set(fn.params)
    params = list(fn.params)
    for i, p in enumerate(params):
        for q in params[i + 1:]:
            graph.add_edge(p, q)
        for other in entry_live:
            if other != p:
                graph.add_edge(p, other)

    for block in fn.blocks:
        after = info.live_across_instr(block)
        for i, instr in enumerate(block.instrs):
            dest = instr.dest
            if not isinstance(dest, VReg):
                continue
            copy_src = None
            if instr.op in (Opcode.MOVE, Opcode.FMOV):
                src = instr.srcs[0]
                if isinstance(src, VReg):
                    copy_src = src
            for live in after[i]:
                if live is not dest and live != copy_src:
                    graph.add_edge(dest, live)
    return graph
