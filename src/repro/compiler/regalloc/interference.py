"""Interference graph construction over virtual registers."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.liveness import LivenessInfo, liveness
from repro.isa.opcodes import Opcode
from repro.isa.registers import VReg


class InterferenceGraph:
    """Undirected interference graph; same-class edges only matter."""

    def __init__(self) -> None:
        self.adj: dict[VReg, set[VReg]] = {}

    def ensure(self, v: VReg) -> None:
        self.adj.setdefault(v, set())

    def add_edge(self, a: VReg, b: VReg) -> None:
        if a == b or a.cls is not b.cls:
            return
        self.adj.setdefault(a, set()).add(b)
        self.adj.setdefault(b, set()).add(a)

    def neighbors(self, v: VReg) -> set[VReg]:
        return self.adj.get(v, set())

    def degree(self, v: VReg) -> int:
        return len(self.adj.get(v, ()))

    def interferes(self, a: VReg, b: VReg) -> bool:
        return b in self.adj.get(a, ())


def build_interference(fn: Function,
                       info: LivenessInfo | None = None) -> InterferenceGraph:
    """Build the interference graph for *fn*.

    A definition interferes with everything live after it, with the classic
    exception that the destination of a copy does not interfere with its
    source.  Parameters are treated as defined on function entry.
    """
    info = info or liveness(fn)
    graph = InterferenceGraph()
    for v in fn.vregs():
        graph.ensure(v)

    # Parameters are all "defined" at entry: they interfere with each other
    # and with anything else live into the entry block.
    entry_live = info.live_in[fn.entry.name] | set(fn.params)
    params = list(fn.params)
    for i, p in enumerate(params):
        for q in params[i + 1:]:
            graph.add_edge(p, q)
        for other in entry_live:
            if other != p:
                graph.add_edge(p, other)

    for block in fn.blocks:
        after = info.live_across_instr(block)
        for i, instr in enumerate(block.instrs):
            dest = instr.dest
            if not isinstance(dest, VReg):
                continue
            copy_src = None
            if instr.op in (Opcode.MOVE, Opcode.FMOV):
                src = instr.srcs[0]
                if isinstance(src, VReg):
                    copy_src = src
            for live in after[i]:
                if live is not dest and live != copy_src:
                    graph.add_edge(dest, live)
    return graph
