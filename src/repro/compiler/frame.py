"""Stack frame layout and symbolic slot sentinels.

The calling convention (see DESIGN.md):

* the stack grows toward lower addresses in word-sized slots; ``r0`` is SP;
* the caller stores outgoing argument *i* at ``SP - (i+1)`` (just below its
  own frame, inside the callee's future frame);
* the callee's prologue performs ``SP -= F``; incoming argument *i* then
  lives at ``SP + F - (i+1)`` and local slot *j* at ``SP + j``;
* allocatable core registers are callee-save; extended registers are
  caller-save around call sites (forced by the ``jsr``/``rts`` map reset,
  paper section 4.1).

Because ``F`` is only known after register allocation, the compiler emits
memory offsets as the symbolic sentinels below and resolves them in
``FrameLayout.finalize``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError
from repro.isa.registers import PhysReg, VReg


@dataclass(frozen=True, slots=True)
class OutArg:
    """Outgoing argument slot: resolves to ``-(index + 1)`` off SP."""

    index: int


@dataclass(frozen=True, slots=True)
class InArg:
    """Incoming argument slot: resolves to ``F - (index + 1)`` off SP."""

    index: int


@dataclass(frozen=True, slots=True)
class LocalSlot:
    """A local frame slot: resolves to its slot index off SP."""

    sid: int


class FrameLayout:
    """Accumulates frame slots for one function and resolves sentinels."""

    def __init__(self, num_params: int) -> None:
        self.num_params = num_params
        self._next_sid = 0
        self._spill_slots: dict[VReg, LocalSlot | InArg] = {}
        self._save_slots: dict[PhysReg, LocalSlot] = {}

    def new_slot(self) -> LocalSlot:
        slot = LocalSlot(self._next_sid)
        self._next_sid += 1
        return slot

    def spill_slot(self, vreg: VReg) -> LocalSlot | InArg:
        """The frame slot backing a spilled virtual register."""
        slot = self._spill_slots.get(vreg)
        if slot is None:
            slot = self.new_slot()
            self._spill_slots[vreg] = slot
        return slot

    def assign_param_slot(self, vreg: VReg, index: int) -> None:
        """Spilled parameters live directly in their incoming-arg slot."""
        self._spill_slots[vreg] = InArg(index)

    def save_slot(self, reg: PhysReg) -> LocalSlot:
        """The slot used to save/restore physical register *reg*."""
        slot = self._save_slots.get(reg)
        if slot is None:
            slot = self.new_slot()
            self._save_slots[reg] = slot
        return slot

    @property
    def size(self) -> int:
        """Total frame size ``F`` in words (locals + incoming-arg area)."""
        return self._next_sid + self.num_params

    def resolve(self, imm: object) -> int:
        """Resolve a (possibly symbolic) memory offset to a word offset."""
        if isinstance(imm, int):
            return imm
        if isinstance(imm, OutArg):
            return -(imm.index + 1)
        if isinstance(imm, InArg):
            return self.size - (imm.index + 1)
        if isinstance(imm, LocalSlot):
            if imm.sid >= self._next_sid:
                raise CompileError(f"unknown local slot {imm}")
            return imm.sid
        raise CompileError(f"unresolvable memory offset {imm!r}")
