"""Lowering: block layout, label resolution, and program flattening.

Blocks are laid out greedily so that every conditional branch is physically
followed by its fall-through block; when a fall-through block has already
been placed elsewhere, a one-instruction trampoline (``jmp``) is inserted.
Functions are concatenated with ``main`` first; call targets resolve to
function entry points, and branch targets to instruction indices.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.ir.function import Function, Module
from repro.isa.instruction import Instr
from repro.isa.opcodes import NEGATED_BRANCH, Opcode
from repro.sim.program import MachineProgram


def layout_function(fn: Function) -> list:
    """Order blocks with fall-throughs adjacent; returns the block order.

    Profile-guided branch normalization happens here too: a conditional
    branch whose *taken* target is the hot successor (and still forward) is
    negated so the hot path falls through — taken branches end an issue
    group, so keeping hot paths on the fall-through side is what lets the
    superscalar front end stream through them (the trace-layout half of the
    IMPACT compiler's ILP strategy).  May append trampoline blocks to *fn*.
    """
    placed: list = []
    placed_names: set[str] = set()
    trampolines = 0

    current = fn.entry
    while True:
        placed.append(current)
        placed_names.add(current.name)
        term = current.terminator
        next_block = None
        if term is not None and term.is_cond_branch:
            if (term.hint_taken
                    and term.op in NEGATED_BRANCH
                    and term.label != current.name
                    and term.label not in placed_names):
                term.op = NEGATED_BRANCH[term.op]
                term.label, current.fallthrough = (current.fallthrough,
                                                   term.label)
                term.hint_taken = False
            ft = current.fallthrough
            if ft not in placed_names:
                next_block = fn.block(ft)
            else:
                tramp = fn.new_block(f"{ft}.tramp{trampolines}")
                trampolines += 1
                tramp.instrs.append(Instr(Opcode.JMP, label=ft,
                                          origin="frame"))
                current.fallthrough = tramp.name
                next_block = tramp
        if next_block is None:
            next_block = next(
                (b for b in fn.blocks if b.name not in placed_names), None
            )
        if next_block is None:
            return placed
        current = next_block


def lower_module(module: Module, entry: str = "main",
                 name: str | None = None) -> MachineProgram:
    """Flatten *module* into an executable :class:`MachineProgram`.

    All functions must already be fully allocated (physical operands only)
    with symbolic frame offsets resolved.
    """
    if entry not in module.functions:
        raise CompileError(f"no entry function {entry!r}")
    order = [module.functions[entry]] + [
        fn for fname, fn in module.functions.items() if fname != entry
    ]

    instrs: list[Instr] = []
    label_at: dict[tuple[str, str], int] = {}
    func_ranges: dict[str, tuple[int, int]] = {}
    pending: list[tuple[int, Instr, str]] = []  # (index, instr, fn name)

    for fn in order:
        start = len(instrs)
        for block in layout_function(fn):
            label_at[(fn.name, block.name)] = len(instrs)
            for instr in block.instrs:
                if instr.label is not None:
                    pending.append((len(instrs), instr, fn.name))
                instrs.append(instr)
        func_ranges[fn.name] = (start, len(instrs))

    targets: list[int | None] = [None] * len(instrs)
    for index, instr, fname in pending:
        if instr.op is Opcode.CALL:
            callee = instr.label
            if callee not in func_ranges:
                raise CompileError(f"call to unknown function {callee!r}")
            targets[index] = func_ranges[callee][0]
        elif instr.op is Opcode.RET:
            continue
        else:
            key = (fname, instr.label)
            if key not in label_at:
                raise CompileError(
                    f"{fname}: unresolved branch target {instr.label!r}"
                )
            targets[index] = label_at[key]

    return MachineProgram(
        instrs=instrs,
        targets=targets,
        initial_memory=module.initial_memory(),
        entry=func_ranges[entry][0],
        name=name or module.name,
        func_ranges=func_ranges,
    )
