"""Dense virtual-register numbering and int-bitmask liveness.

The set-of-:class:`~repro.isa.registers.VReg` dataflow in
:mod:`repro.ir.liveness` is the executable specification, but its
``live_across_instr`` copies a fresh set per instruction and every set
operation hashes frozen dataclasses.  This module re-expresses the same
lattice as Python integers: each virtual register gets a dense index
(parameters first, then first appearance), a live set becomes one int, and
transfer functions become ``&``/``|``/``~`` on machine words.  The register
allocator's interference construction and the analyzer's abstract states
consume these masks; ``tests/test_bitset.py`` property-checks equality with
the set-based reference on randomized CFGs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.cfg import reverse_postorder
from repro.ir.function import BasicBlock, Function
from repro.ir.liveness import LivenessInfo
from repro.isa.registers import RClass, VReg

__all__ = ["BitLivenessInfo", "VRegIndex", "bit_liveness"]


class VRegIndex:
    """Dense numbering of one function's virtual registers.

    Parameters come first (in declaration order), then every other register
    in order of first appearance.  ``class_mask[cls]`` selects all registers
    of one class; ``mask_of``/``set_of`` convert between representations.
    """

    __slots__ = ("vregs", "index", "class_mask")

    def __init__(self, fn: Function) -> None:
        index: dict[VReg, int] = {}
        for p in fn.params:
            if p not in index:
                index[p] = len(index)
        for _, instr in fn.iter_instrs():
            for r in instr.regs():
                if isinstance(r, VReg) and r not in index:
                    index[r] = len(index)
        self.index = index
        self.vregs: list[VReg] = list(index)
        cm = {RClass.INT: 0, RClass.FP: 0}
        for v, i in index.items():
            cm[v.cls] |= 1 << i
        self.class_mask = cm

    def __len__(self) -> int:
        return len(self.vregs)

    def mask_of(self, regs) -> int:
        idx = self.index
        m = 0
        for v in regs:
            m |= 1 << idx[v]
        return m

    def set_of(self, mask: int) -> set[VReg]:
        vregs = self.vregs
        out: set[VReg] = set()
        while mask:
            low = mask & -mask
            out.add(vregs[low.bit_length() - 1])
            mask ^= low
        return out


@dataclass
class BitLivenessInfo:
    """Per-block live-in/live-out masks for one function."""

    index: VRegIndex
    live_in: dict[str, int]
    live_out: dict[str, int]

    def live_across_instr_masks(self, block: BasicBlock) -> list[int]:
        """Mask of registers live immediately after each instruction."""
        idx = self.index.index
        live = self.live_out[block.name]
        n = len(block.instrs)
        after = [0] * n
        for i in range(n - 1, -1, -1):
            after[i] = live
            instr = block.instrs[i]
            d = instr.dest
            if isinstance(d, VReg):
                live &= ~(1 << idx[d])
            for s in instr.reg_srcs():
                if isinstance(s, VReg):
                    live |= 1 << idx[s]
        return after

    def to_sets(self) -> LivenessInfo:
        """The equivalent set-based :class:`LivenessInfo` (tests, adapters)."""
        conv = self.index.set_of
        return LivenessInfo(
            {name: conv(m) for name, m in self.live_in.items()},
            {name: conv(m) for name, m in self.live_out.items()},
        )


def _block_use_def_masks(block: BasicBlock,
                         idx: dict[VReg, int]) -> tuple[int, int]:
    """Upward-exposed use and def masks of *block*."""
    use = 0
    defs = 0
    for instr in block.instrs:
        for s in instr.reg_srcs():
            if isinstance(s, VReg):
                b = 1 << idx[s]
                if not defs & b:
                    use |= b
        d = instr.dest
        if isinstance(d, VReg):
            defs |= 1 << idx[d]
    return use, defs


def bit_liveness(fn: Function, index: VRegIndex | None = None
                 ) -> BitLivenessInfo:
    """Compute per-block liveness for *fn* as bitmasks.

    Same fixpoint as :func:`repro.ir.liveness.liveness`, over the same
    reachable-block domain, with set union/difference replaced by integer
    ``|``/``& ~``.
    """
    index = index or VRegIndex(fn)
    idx = index.index
    rpo = reverse_postorder(fn)
    use: dict[str, int] = {}
    defs: dict[str, int] = {}
    succs: dict[str, list[str]] = {}
    for name in rpo:
        block = fn.block(name)
        use[name], defs[name] = _block_use_def_masks(block, idx)
        succs[name] = block.successors()
    live_in = dict.fromkeys(rpo, 0)
    live_out = dict.fromkeys(rpo, 0)

    worklist = list(reversed(rpo))
    changed = True
    while changed:
        changed = False
        for name in worklist:
            out = 0
            for succ in succs[name]:
                out |= live_in.get(succ, 0)
            newly_in = use[name] | (out & ~defs[name])
            if out != live_out[name] or newly_in != live_in[name]:
                live_out[name] = out
                live_in[name] = newly_in
                changed = True
    return BitLivenessInfo(index, live_in, live_out)
